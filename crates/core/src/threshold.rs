//! `k`-of-`n` threshold intersection over sorted lists.
//!
//! The motif condition is "more than k of [A's followings] follow an
//! account C within a time period τ". After the `D` lookup produces `n ≥ k`
//! witness `B`s, the detector must find every `A` appearing in **at least
//! k** of the `n` sorted follower lists `S[B₁] … S[Bₙ]`. (For `k = n = 2`
//! this is plain intersection.)
//!
//! All kernels are generic over the element type (`Copy + Ord + Hash`) so
//! the detector can run them over dense `u32` ids — half the memory
//! traffic of raw `u64` user ids — while tests and offline consumers can
//! still use them over [`magicrecs_types::UserId`].
//!
//! Algorithms (ablation B2):
//!
//! * [`threshold_scan_count`] — hash-count every element of every list;
//!   O(total) with a small constant, wins at large `n` with uniform
//!   lengths.
//! * [`threshold_heap_merge`] — `n`-way merge via binary heap, counting
//!   runs of equal values; O(total · log n) but allocation-light and
//!   cache-friendly at tiny `n`.
//! * [`threshold_pivot_skip`] — pivot-generation from the `n − k + 1`
//!   shortest lists with galloping cursors and count-based early exit:
//!   a candidate is abandoned the moment `(lists remaining) < (k − hits)`,
//!   so whole suffixes of celebrity-sized lists are never touched. This is
//!   the skew winner: cost scales with the *short* lists plus
//!   O(log) probes into the long ones, not with total input size. Pivots
//!   come from a linear min-scan over the generator lists — O(g) per
//!   pivot, unbeatable for a handful of generators.
//! * [`threshold_pivot_tree`] — the same skip/early-exit structure with
//!   pivots drawn from a **loser (tournament) tree** over the generator
//!   lists: O(log g) per cursor advance instead of O(g) per pivot, which
//!   is what lifts the old 16-generator cap on the adaptive choice and
//!   lets pivot generation win at high fan-in too.
//! * adaptive ([`threshold_intersect`] with [`ThresholdAlgo::Adaptive`]) —
//!   picks a pivot kernel under celebrity skew (linear min-scan at few
//!   generators, loser tree above), the heap at tiny fan-in, scan-count
//!   otherwise; see [`ThresholdAlgo::Adaptive`] for the measured
//!   crossovers.
//!
//! The pivot kernels advance their per-list cursors through
//! [`gallop_to_simd`], so on dense-id lists every probe's final bracket is
//! resolved by the vectorized count-below scan (see [`crate::simd`] for
//! the dispatch story; `MAGICRECS_FORCE_SCALAR=1` pins the scalar twins).
//!
//! All return `(value, count)` pairs sorted by value, counts being the
//! exact number of lists containing the value (ties are deterministic).

use crate::intersect::gallop_to_simd;
use crate::simd::SimdElem;
use magicrecs_types::FxHashMap;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hash::Hash;

/// Largest fan-in the heap is ever picked for (its per-element cost grows
/// with log n; see ablation B2).
const HEAP_MAX_LISTS: usize = 8;

/// Largest total input size the heap is ever picked for. The heap's edge
/// over scan-count is avoiding the per-call hash-map allocation, which
/// only pays while the inputs are small; on the balanced 8×2000 fixture
/// (16k total) scan-count beats the heap ~3× despite that allocation.
const HEAP_MAX_TOTAL: usize = 8192;

/// Adaptive picks a pivot kernel when the `k − 1` longest lists hold at
/// least this many times the entries of all other lists combined: the
/// excluded tail is exactly what pivot-skip never walks, so its dominance
/// is the win condition (a celebrity witness among ordinary ones).
const PIVOT_DOMINANCE_RATIO: usize = 4;

/// Generator count above which the loser tree's O(log g) pivot updates
/// always beat the linear min-scan's O(g) pass, regardless of volume.
const PIVOT_TREE_MIN_GENERATORS: usize = 8;

/// Generator-side volume (total entries across the generator lists) at
/// which the tree wins even at small fan-in: its build allocations
/// amortize over the pivot walk, and per-pivot it replays only the lists
/// that matched instead of min-scanning and galloping every generator.
/// Below this, per-event allocation dominates and the linear scan stays
/// ahead (the Zipf steady-trace events).
const PIVOT_TREE_MIN_VOLUME: usize = 512;

/// Which threshold algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThresholdAlgo {
    /// Hash-count (ScanCount).
    ScanCount,
    /// n-way heap merge.
    HeapMerge,
    /// Pivot generation from the `n − k + 1` shortest lists via linear
    /// min-scan, galloping cursors, count-based early exit.
    PivotSkip,
    /// Pivot generation through a loser (tournament) tree over the
    /// generator lists — same skip semantics, O(log g) per cursor advance.
    PivotTree,
    /// A pivot kernel when the `k − 1` longest lists dominate the rest by
    /// `PIVOT_DOMINANCE_RATIO` (4×): the loser tree at high fan-in
    /// (> `PIVOT_TREE_MIN_GENERATORS` generators — no cap anymore) or
    /// sizable generator volume (≥ `PIVOT_TREE_MIN_VOLUME` entries), the
    /// linear min-scan for few small generators. Otherwise the heap while
    /// both fan-in (`HEAP_MAX_LISTS`) and total input (`HEAP_MAX_TOTAL`)
    /// stay small, and scan-count beyond. Crossovers measured by ablation
    /// B2 and guarded by the hotpath bench (`adaptive` must stay within
    /// 1.2× of the best arm on the balanced and celebrity fixtures).
    #[default]
    Adaptive,
}

/// Runs the selected algorithm.
pub fn threshold_intersect<V: SimdElem + Hash>(
    algo: ThresholdAlgo,
    lists: &[&[V]],
    k: usize,
    out: &mut Vec<(V, u32)>,
) {
    match algo {
        ThresholdAlgo::ScanCount => threshold_scan_count(lists, k, out),
        ThresholdAlgo::HeapMerge => threshold_heap_merge(lists, k, out),
        ThresholdAlgo::PivotSkip => threshold_pivot_skip(lists, k, out),
        ThresholdAlgo::PivotTree => threshold_pivot_tree(lists, k, out),
        ThresholdAlgo::Adaptive => match pivot_choice(lists, k) {
            Some(ThresholdAlgo::PivotTree) => threshold_pivot_tree(lists, k, out),
            Some(_) => threshold_pivot_skip(lists, k, out),
            None => {
                let total: usize = lists.iter().map(|l| l.len()).sum();
                if lists.len() <= HEAP_MAX_LISTS && total <= HEAP_MAX_TOTAL {
                    threshold_heap_merge(lists, k, out)
                } else {
                    threshold_scan_count(lists, k, out)
                }
            }
        },
    }
}

/// Adaptive's skew test: a pivot kernel wins when the `k − 1` longest
/// lists (which it excludes from pivot generation and usually never
/// walks) dominate the total volume. Returns which pivot variant to use —
/// the loser tree once the generator side is either wide (fan-in no
/// longer caps the choice) or voluminous enough to amortize the tree
/// build — or `None` when skew does not pay at all.
fn pivot_choice<V>(lists: &[&[V]], k: usize) -> Option<ThresholdAlgo> {
    let n = lists.len();
    if k < 2 || n < k {
        return None;
    }
    let excl = k - 1;
    let (total, excluded) = if excl > 8 {
        // Unusual k: pay a sort rather than grow the fixed buffer.
        let mut lengths: Vec<usize> = lists.iter().map(|l| l.len()).collect();
        lengths.sort_unstable();
        let total: usize = lengths.iter().sum();
        let excluded: usize = lengths[n - excl..].iter().sum();
        (total, excluded)
    } else {
        // Track the k−1 largest lengths in a tiny descending insertion
        // buffer: zero allocation on the per-event path.
        let mut top = [0usize; 8];
        let mut total = 0usize;
        for l in lists {
            total += l.len();
            let mut v = l.len();
            for slot in top[..excl].iter_mut() {
                if v > *slot {
                    std::mem::swap(&mut v, slot);
                }
            }
        }
        (total, top[..excl].iter().sum())
    };
    let kept = total - excluded;
    if excluded < PIVOT_DOMINANCE_RATIO * kept.max(1) {
        return None;
    }
    let generators = n - k + 1;
    if generators > PIVOT_TREE_MIN_GENERATORS || kept >= PIVOT_TREE_MIN_VOLUME {
        Some(ThresholdAlgo::PivotTree)
    } else {
        Some(ThresholdAlgo::PivotSkip)
    }
}

/// Hash-count variant: one pass over every list, then filter by `k`.
pub fn threshold_scan_count<V: SimdElem + Hash>(lists: &[&[V]], k: usize, out: &mut Vec<(V, u32)>) {
    if k == 0 || lists.len() < k {
        return;
    }
    let total: usize = lists.iter().map(|l| l.len()).sum();
    let mut counts: FxHashMap<V, u32> = FxHashMap::default();
    counts.reserve(total.min(1 << 16));
    for list in lists {
        for &v in *list {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    let base = out.len();
    out.extend(counts.into_iter().filter(|&(_, c)| c as usize >= k));
    out[base..].sort_unstable_by_key(|&(v, _)| v);
}

/// Heap-merge variant: pop runs of equal minimal values across lists.
pub fn threshold_heap_merge<V: SimdElem + Hash>(lists: &[&[V]], k: usize, out: &mut Vec<(V, u32)>) {
    if k == 0 || lists.len() < k {
        return;
    }
    // Heap of (next value, list index); cursors track per-list positions.
    let mut heap: BinaryHeap<Reverse<(V, usize)>> = BinaryHeap::with_capacity(lists.len());
    let mut cursors = vec![0usize; lists.len()];
    for (i, list) in lists.iter().enumerate() {
        if let Some(&v) = list.first() {
            heap.push(Reverse((v, i)));
        }
    }
    while let Some(&Reverse((value, _))) = heap.peek() {
        let mut count = 0u32;
        while let Some(&Reverse((v, i))) = heap.peek() {
            if v != value {
                break;
            }
            heap.pop();
            count += 1;
            cursors[i] += 1;
            if let Some(&next) = lists[i].get(cursors[i]) {
                heap.push(Reverse((next, i)));
            }
        }
        if count as usize >= k {
            out.push((value, count));
        }
    }
}

/// Pivot-skipping threshold intersection — the skew specialist.
///
/// Any value present in at least `k` of `n` lists must appear in at least
/// one of the `n − k + 1` **shortest** lists (only `k − 1` lists are
/// excluded from that set). Those short lists therefore generate candidate
/// pivots in ascending order; each pivot is counted across all lists from
/// shortest to longest by galloping that list's cursor forward, and — the
/// key win — counting stops the moment
/// `(lists remaining) < (k − hits so far)`: the pivot can no longer reach
/// `k`, so the longest (celebrity) lists are usually never probed at all.
/// Cursors advance monotonically and lazily, so skipped suffixes cost
/// nothing even across pivots.
pub fn threshold_pivot_skip<V: SimdElem + Hash>(lists: &[&[V]], k: usize, out: &mut Vec<(V, u32)>) {
    let n = lists.len();
    if k == 0 || n < k {
        return;
    }
    // Process lists shortest-first so the early-exit check trims the
    // expensive tails.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| lists[i].len());
    let generators = n - k + 1;
    let mut cursors = vec![0usize; n];

    loop {
        // Next pivot: the smallest un-consumed value across the generator
        // lists. n is small (witness fan-in), so a linear min is cheaper
        // than a heap.
        let mut pivot: Option<V> = None;
        for &li in &order[..generators] {
            if let Some(&v) = lists[li].get(cursors[li]) {
                pivot = Some(match pivot {
                    Some(p) if p <= v => p,
                    _ => v,
                });
            }
        }
        let Some(pivot) = pivot else { break };

        let mut hits = 0u32;
        for (pos, &li) in order.iter().enumerate() {
            // Early exit: even if every remaining list matched, the pivot
            // cannot reach k. Only non-generator (long) lists can be cut
            // here, so every generator always advances past the pivot and
            // the pivot sequence stays strictly increasing.
            let remaining = n - pos;
            if (hits as usize) + remaining < k {
                break;
            }
            let c = gallop_to_simd(lists[li], cursors[li], pivot);
            if let Some(&v) = lists[li].get(c) {
                if v == pivot {
                    hits += 1;
                    cursors[li] = c + 1;
                    continue;
                }
            }
            cursors[li] = c;
        }
        if hits as usize >= k {
            // The counting loop only breaks below k, so reaching k means
            // every list was probed: `hits` is the exact count.
            out.push((pivot, hits));
        }
    }
}

/// A loser (tournament) tree over the generator lists' head values.
///
/// Leaves are generator indices; each internal node stores the *loser* of
/// the match below it and the overall winner (the minimum head across
/// generators) sits at the root. After the winner's list cursor advances,
/// one leaf-to-root replay — O(log g) compares against stored losers —
/// restores the invariant, instead of the O(g) min-scan the linear pivot
/// generator pays per pivot. Exhausted lists hold a `None` key, which
/// compares as +∞; ties break on the lower leaf index so the pivot
/// sequence is deterministic.
struct LoserTree<V> {
    /// Loser leaf index per internal node (1-based heap layout; node 0
    /// unused). Length `p2` = leaf count rounded up to a power of two.
    losers: Vec<u32>,
    /// Current head value per leaf; `None` = exhausted (or virtual leaf
    /// padding up to `p2`).
    keys: Vec<Option<V>>,
    /// Leaf currently winning the whole tournament.
    winner: u32,
    /// Power-of-two leaf capacity.
    p2: usize,
}

impl<V: Copy + Ord> LoserTree<V> {
    /// Builds the tree from per-leaf initial keys.
    fn new(keys: Vec<Option<V>>) -> Self {
        let g = keys.len().max(1);
        let p2 = g.next_power_of_two();
        let mut tree = LoserTree {
            losers: vec![0; p2],
            keys,
            winner: 0,
            p2,
        };
        tree.keys.resize(p2, None);
        // Bottom-up build: winners per node computed transiently, losers
        // stored. Node n's children are nodes 2n and 2n+1; leaf i is node
        // p2 + i.
        let mut win: Vec<u32> = vec![0; 2 * p2];
        for (i, w) in win.iter_mut().enumerate().skip(p2) {
            *w = (i - p2) as u32;
        }
        for n in (1..p2).rev() {
            let (a, b) = (win[2 * n], win[2 * n + 1]);
            let (w, l) = if tree.beats(a, b) { (a, b) } else { (b, a) };
            win[n] = w;
            tree.losers[n] = l;
        }
        tree.winner = win[1];
        tree
    }

    /// Whether leaf `x` wins against leaf `y` (`None` loses to everything;
    /// ties go to the lower leaf index).
    #[inline]
    fn beats(&self, x: u32, y: u32) -> bool {
        match (self.keys[x as usize], self.keys[y as usize]) {
            (Some(a), Some(b)) => a < b || (a == b && x < y),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => x < y,
        }
    }

    /// The winning leaf's key (`None` once every list is exhausted).
    #[inline]
    fn winner_key(&self) -> Option<V> {
        self.keys[self.winner as usize]
    }

    /// The winning leaf index.
    #[inline]
    fn winner_leaf(&self) -> usize {
        self.winner as usize
    }

    /// Replaces the current winner's key and replays its path to the root.
    fn replace_winner(&mut self, key: Option<V>) {
        let leaf = self.winner;
        self.keys[leaf as usize] = key;
        let mut w = leaf;
        let mut node = (leaf as usize + self.p2) / 2;
        while node >= 1 {
            let l = self.losers[node];
            if self.beats(l, w) {
                self.losers[node] = w;
                w = l;
            }
            node /= 2;
        }
        self.winner = w;
    }
}

/// Pivot-skipping threshold intersection with loser-tree pivot generation
/// — the high-fan-in skew specialist.
///
/// Identical skip semantics, pivot sequence, and output to
/// [`threshold_pivot_skip`] (property-tested equivalence at 2–64
/// generators); only the pivot source differs. The linear variant pays an
/// O(g) min-scan per pivot across the `g = n − k + 1` generator lists;
/// here the generators feed a [`LoserTree`], so producing the next pivot
/// and advancing the lists that contained the last one costs O(log g)
/// per advance. The `k − 1` longest lists stay outside the tree and are
/// only probed (with early exit) exactly as in the linear variant.
pub fn threshold_pivot_tree<V: SimdElem + Hash>(lists: &[&[V]], k: usize, out: &mut Vec<(V, u32)>) {
    let n = lists.len();
    if k == 0 || n < k {
        return;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| lists[i].len());
    let generators = n - k + 1;
    let mut cursors = vec![0usize; n];
    let mut tree = LoserTree::new(
        order[..generators]
            .iter()
            .map(|&li| lists[li].first().copied())
            .collect(),
    );

    while let Some(pivot) = tree.winner_key() {
        // Count the pivot across the generators: successive tournament
        // winners with an equal key are exactly the generator lists
        // containing it; each advances by one and replays its path.
        let mut hits = 0u32;
        while tree.winner_key() == Some(pivot) {
            let li = order[tree.winner_leaf()];
            cursors[li] += 1;
            tree.replace_winner(lists[li].get(cursors[li]).copied());
            hits += 1;
        }

        // Probe the k − 1 excluded (long) lists, shortest first, with the
        // same count-based early exit as the linear variant.
        for (pos, &li) in order.iter().enumerate().skip(generators) {
            let remaining = n - pos;
            if (hits as usize) + remaining < k {
                break;
            }
            let c = gallop_to_simd(lists[li], cursors[li], pivot);
            if let Some(&v) = lists[li].get(c) {
                if v == pivot {
                    hits += 1;
                    cursors[li] = c + 1;
                    continue;
                }
            }
            cursors[li] = c;
        }
        if hits as usize >= k {
            out.push((pivot, hits));
        }
    }
}

/// Brute-force reference used by tests and property checks.
pub fn threshold_naive<V: Copy + Ord>(lists: &[&[V]], k: usize) -> Vec<(V, u32)> {
    let mut counts: std::collections::BTreeMap<V, u32> = Default::default();
    for list in lists {
        for &v in *list {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .filter(|&(_, c)| k > 0 && c as usize >= k && lists.len() >= k)
        .collect()
}

/// Recovers which lists contain `value` (indices ascending) — used by the
/// detector to attach per-candidate witness sets after counting.
pub fn lists_containing<V: Copy + Ord>(lists: &[&[V]], value: V) -> Vec<u32> {
    lists
        .iter()
        .enumerate()
        .filter(|(_, l)| l.binary_search(&value).is_ok())
        .map(|(i, _)| i as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use magicrecs_types::UserId;
    use proptest::prelude::*;

    fn ids(v: &[u64]) -> Vec<UserId> {
        v.iter().map(|&n| UserId(n)).collect()
    }

    fn run(algo: ThresholdAlgo, lists: &[Vec<u64>], k: usize) -> Vec<(u64, u32)> {
        let owned: Vec<Vec<UserId>> = lists.iter().map(|l| ids(l)).collect();
        let slices: Vec<&[UserId]> = owned.iter().map(|l| l.as_slice()).collect();
        let mut out = Vec::new();
        threshold_intersect(algo, &slices, k, &mut out);
        out.into_iter().map(|(v, c)| (v.raw(), c)).collect()
    }

    const ALGOS: [ThresholdAlgo; 5] = [
        ThresholdAlgo::ScanCount,
        ThresholdAlgo::HeapMerge,
        ThresholdAlgo::PivotSkip,
        ThresholdAlgo::PivotTree,
        ThresholdAlgo::Adaptive,
    ];

    #[test]
    fn two_of_two_is_intersection() {
        let lists = vec![vec![1, 2, 3, 5], vec![2, 3, 4]];
        for algo in ALGOS {
            assert_eq!(run(algo, &lists, 2), vec![(2, 2), (3, 2)], "{algo:?}");
        }
    }

    #[test]
    fn two_of_three_majority() {
        let lists = vec![vec![1, 2, 3], vec![2, 3, 4], vec![3, 4, 5]];
        for algo in ALGOS {
            assert_eq!(
                run(algo, &lists, 2),
                vec![(2, 2), (3, 3), (4, 2)],
                "{algo:?}"
            );
        }
    }

    #[test]
    fn three_of_three_strict() {
        let lists = vec![vec![1, 2, 3], vec![2, 3, 4], vec![3, 4, 5]];
        for algo in ALGOS {
            assert_eq!(run(algo, &lists, 3), vec![(3, 3)], "{algo:?}");
        }
    }

    #[test]
    fn k_larger_than_list_count_is_empty() {
        let lists = vec![vec![1, 2], vec![1, 2]];
        for algo in ALGOS {
            assert_eq!(run(algo, &lists, 3), vec![], "{algo:?}");
        }
    }

    #[test]
    fn k_zero_is_empty() {
        let lists = vec![vec![1], vec![1]];
        for algo in ALGOS {
            assert_eq!(run(algo, &lists, 0), vec![], "{algo:?}");
        }
    }

    #[test]
    fn empty_lists_ignored() {
        let lists = vec![vec![], vec![1, 2], vec![2, 3]];
        for algo in ALGOS {
            assert_eq!(run(algo, &lists, 2), vec![(2, 2)], "{algo:?}");
        }
    }

    #[test]
    fn single_list_k_one() {
        let lists = vec![vec![7, 9]];
        for algo in ALGOS {
            assert_eq!(run(algo, &lists, 1), vec![(7, 1), (9, 1)], "{algo:?}");
        }
    }

    #[test]
    fn many_lists_trigger_scan_count_path() {
        // 20 equal-length lists > HEAP_MAX_LISTS, no skew: adaptive takes
        // the scan-count branch.
        let lists: Vec<Vec<u64>> = (0..20).map(|i| vec![42, 100 + i]).collect();
        for algo in ALGOS {
            let got = run(algo, &lists, 20);
            assert_eq!(got, vec![(42, 20)], "{algo:?}");
        }
    }

    #[test]
    fn pivot_skip_on_celebrity_skew() {
        // Two tiny lists against one huge list; k = 2. The huge list's
        // suffix past the last short-list hit must never matter.
        let celeb: Vec<u64> = (0..100_000).map(|i| i * 2).collect();
        // 10 is in all three lists; 1_001 and 50_001 are odd (not in the
        // celebrity's even-stride list) and shared by the two short lists.
        let lists = vec![vec![10, 1_001, 50_001], vec![10, 1_001, 50_001], celeb];
        for algo in [
            ThresholdAlgo::PivotSkip,
            ThresholdAlgo::PivotTree,
            ThresholdAlgo::Adaptive,
        ] {
            assert_eq!(
                run(algo, &lists, 2),
                vec![(10, 3), (1_001, 2), (50_001, 2)],
                "{algo:?}"
            );
        }
    }

    #[test]
    fn pivot_skip_exact_counts_on_duplicated_membership() {
        // Values in all lists, some in exactly k, some in fewer.
        let lists = vec![
            vec![1, 5, 9],
            vec![1, 5, 7, 9],
            vec![1, 3, 9],
            vec![1, 9, 11],
        ];
        assert_eq!(
            run(ThresholdAlgo::PivotSkip, &lists, 2),
            vec![(1, 4), (5, 2), (9, 4)]
        );
    }

    #[test]
    fn lists_containing_finds_indices() {
        let owned = [ids(&[1, 2, 3]), ids(&[2, 4]), ids(&[3, 4])];
        let slices: Vec<&[UserId]> = owned.iter().map(|l| l.as_slice()).collect();
        assert_eq!(lists_containing(&slices, UserId(2)), vec![0, 1]);
        assert_eq!(lists_containing(&slices, UserId(4)), vec![1, 2]);
        assert_eq!(lists_containing(&slices, UserId(9)), Vec::<u32>::new());
    }

    #[test]
    fn output_appended_not_cleared() {
        let owned = [ids(&[1]), ids(&[1])];
        let slices: Vec<&[UserId]> = owned.iter().map(|l| l.as_slice()).collect();
        let mut out = vec![(UserId(99), 9u32)];
        threshold_intersect(ThresholdAlgo::Adaptive, &slices, 2, &mut out);
        assert_eq!(out[0], (UserId(99), 9));
        assert_eq!(out[1], (UserId(1), 2));
    }

    /// High fan-in forces the loser-tree pivot source through multi-level
    /// replays (65 generator lists → a 128-leaf tree).
    #[test]
    fn pivot_tree_at_high_fan_in() {
        let lists: Vec<Vec<u64>> = (0..66u64)
            .map(|i| vec![i, 100 + (i % 7), 200, 300 + i * 2])
            .collect();
        for k in [1usize, 2, 3, 30, 66] {
            let owned: Vec<Vec<UserId>> = lists.iter().map(|l| ids(l)).collect();
            let slices: Vec<&[UserId]> = owned.iter().map(|l| l.as_slice()).collect();
            let expect = threshold_naive(&slices, k);
            let mut got = Vec::new();
            threshold_pivot_tree(&slices, k, &mut got);
            assert_eq!(
                got.iter().map(|&(v, c)| (v.raw(), c)).collect::<Vec<_>>(),
                expect
                    .iter()
                    .map(|&(v, c)| (v.raw(), c))
                    .collect::<Vec<_>>(),
                "k={k}"
            );
        }
    }

    #[test]
    fn gallop_to_frontier_cases() {
        use crate::intersect::gallop_to;
        let list: Vec<u64> = vec![2, 4, 6, 8, 10, 12];
        // Already at/past target.
        assert_eq!(gallop_to(&list, 0, 1), 0);
        assert_eq!(gallop_to(&list, 0, 2), 0);
        // Mid-list, from various frontiers.
        assert_eq!(gallop_to(&list, 0, 7), 3);
        assert_eq!(gallop_to(&list, 2, 7), 3);
        assert_eq!(gallop_to(&list, 3, 8), 3);
        // Past the end.
        assert_eq!(gallop_to(&list, 0, 13), 6);
        assert_eq!(gallop_to(&list, 5, 13), 6);
        // From == len.
        assert_eq!(gallop_to(&list, 6, 1), 6);
    }

    proptest! {
        #[test]
        fn all_algorithms_match_naive(
            raw in proptest::collection::vec(
                proptest::collection::vec(0u64..64, 0..40),
                0..12,
            ),
            k in 1usize..6,
        ) {
            let lists: Vec<Vec<u64>> = raw
                .into_iter()
                .map(|mut l| {
                    l.sort_unstable();
                    l.dedup();
                    l
                })
                .collect();
            let owned: Vec<Vec<UserId>> = lists.iter().map(|l| ids(l)).collect();
            let slices: Vec<&[UserId]> = owned.iter().map(|l| l.as_slice()).collect();
            let expect: Vec<(u64, u32)> = threshold_naive(&slices, k)
                .into_iter()
                .map(|(v, c)| (v.raw(), c))
                .collect();
            for algo in ALGOS {
                prop_assert_eq!(&run(algo, &lists, k), &expect, "{:?}", algo);
            }
        }

        /// Loser-tree pivot generation is sequence-equivalent to the
        /// linear min-scan: identical `(value, count)` output (and thus an
        /// identical ascending pivot sequence) at 2–64 generator lists.
        #[test]
        fn pivot_tree_matches_pivot_skip_at_2_to_64_generators(
            raw in proptest::collection::vec(
                proptest::collection::vec(0u64..200, 0..30),
                2..68,
            ),
            k in 1usize..6,
        ) {
            let k = k.min(raw.len());
            // Generators = n − k + 1, so this sweep covers 2..=64
            // generator lists around every k.
            let lists: Vec<Vec<u64>> = raw
                .into_iter()
                .map(|mut l| {
                    l.sort_unstable();
                    l.dedup();
                    l
                })
                .collect();
            let owned: Vec<Vec<UserId>> = lists.iter().map(|l| ids(l)).collect();
            let slices: Vec<&[UserId]> = owned.iter().map(|l| l.as_slice()).collect();
            let mut linear = Vec::new();
            threshold_pivot_skip(&slices, k, &mut linear);
            let mut tree = Vec::new();
            threshold_pivot_tree(&slices, k, &mut tree);
            prop_assert_eq!(linear, tree);
        }

        /// Pivot-skip against naive on adversarially skewed inputs: a few
        /// short lists plus one long stride list, arbitrary k.
        #[test]
        fn pivot_skip_matches_naive_under_skew(
            shorts in proptest::collection::vec(
                proptest::collection::vec(0u64..4_000, 0..12),
                1..5,
            ),
            stride in 1u64..7,
            long_len in 100usize..2_000,
            k in 1usize..6,
        ) {
            let mut lists: Vec<Vec<u64>> = shorts
                .into_iter()
                .map(|mut l| {
                    l.sort_unstable();
                    l.dedup();
                    l
                })
                .collect();
            lists.push((0..long_len as u64).map(|i| i * stride).collect());
            let owned: Vec<Vec<UserId>> = lists.iter().map(|l| ids(l)).collect();
            let slices: Vec<&[UserId]> = owned.iter().map(|l| l.as_slice()).collect();
            let expect = threshold_naive(&slices, k);
            let mut got = Vec::new();
            threshold_pivot_skip(&slices, k, &mut got);
            prop_assert_eq!(got, expect);
        }
    }
}
