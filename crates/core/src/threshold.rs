//! `k`-of-`n` threshold intersection over sorted lists.
//!
//! The motif condition is "more than k of [A's followings] follow an
//! account C within a time period τ". After the `D` lookup produces `n ≥ k`
//! witness `B`s, the detector must find every `A` appearing in **at least
//! k** of the `n` sorted follower lists `S[B₁] … S[Bₙ]`. (For `k = n = 2`
//! this is plain intersection.)
//!
//! Algorithms (ablation B2):
//!
//! * [`threshold_scan_count`] — hash-count every element of every list;
//!   O(total) with a small constant, wins at large `n`.
//! * [`threshold_heap_merge`] — `n`-way merge via binary heap, counting
//!   runs of equal values; O(total · log n) but allocation-light and
//!   cache-friendly at small `n`.
//! * adaptive ([`threshold_intersect`] with [`ThresholdAlgo::Adaptive`]) —
//!   heap for `n` ≤ 8, scan-count above.
//!
//! All return `(value, count)` pairs sorted by value, counts being the
//! number of lists containing the value (ties are deterministic).

use magicrecs_types::{FxHashMap, UserId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Fan-in at which scan-count overtakes the heap (see ablation B2).
const HEAP_MAX_LISTS: usize = 8;

/// Which threshold algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThresholdAlgo {
    /// Hash-count (ScanCount).
    ScanCount,
    /// n-way heap merge.
    HeapMerge,
    /// Heap below `HEAP_MAX_LISTS` (8) lists, scan-count above.
    #[default]
    Adaptive,
}

/// Runs the selected algorithm.
pub fn threshold_intersect(
    algo: ThresholdAlgo,
    lists: &[&[UserId]],
    k: usize,
    out: &mut Vec<(UserId, u32)>,
) {
    match algo {
        ThresholdAlgo::ScanCount => threshold_scan_count(lists, k, out),
        ThresholdAlgo::HeapMerge => threshold_heap_merge(lists, k, out),
        ThresholdAlgo::Adaptive => {
            if lists.len() <= HEAP_MAX_LISTS {
                threshold_heap_merge(lists, k, out)
            } else {
                threshold_scan_count(lists, k, out)
            }
        }
    }
}

/// Hash-count variant: one pass over every list, then filter by `k`.
pub fn threshold_scan_count(lists: &[&[UserId]], k: usize, out: &mut Vec<(UserId, u32)>) {
    if k == 0 || lists.len() < k {
        return;
    }
    let total: usize = lists.iter().map(|l| l.len()).sum();
    let mut counts: FxHashMap<UserId, u32> = FxHashMap::default();
    counts.reserve(total.min(1 << 16));
    for list in lists {
        for &v in *list {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    let base = out.len();
    out.extend(
        counts
            .into_iter()
            .filter(|&(_, c)| c as usize >= k),
    );
    out[base..].sort_unstable_by_key(|&(v, _)| v);
}

/// Heap-merge variant: pop runs of equal minimal values across lists.
pub fn threshold_heap_merge(lists: &[&[UserId]], k: usize, out: &mut Vec<(UserId, u32)>) {
    if k == 0 || lists.len() < k {
        return;
    }
    // Heap of (next value, list index); cursors track per-list positions.
    let mut heap: BinaryHeap<Reverse<(UserId, usize)>> = BinaryHeap::with_capacity(lists.len());
    let mut cursors = vec![0usize; lists.len()];
    for (i, list) in lists.iter().enumerate() {
        if let Some(&v) = list.first() {
            heap.push(Reverse((v, i)));
        }
    }
    while let Some(&Reverse((value, _))) = heap.peek() {
        let mut count = 0u32;
        while let Some(&Reverse((v, i))) = heap.peek() {
            if v != value {
                break;
            }
            heap.pop();
            count += 1;
            cursors[i] += 1;
            if let Some(&next) = lists[i].get(cursors[i]) {
                heap.push(Reverse((next, i)));
            }
        }
        if count as usize >= k {
            out.push((value, count));
        }
    }
}

/// Brute-force reference used by tests and property checks.
pub fn threshold_naive(lists: &[&[UserId]], k: usize) -> Vec<(UserId, u32)> {
    let mut counts: std::collections::BTreeMap<UserId, u32> = Default::default();
    for list in lists {
        for &v in *list {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .filter(|&(_, c)| k > 0 && c as usize >= k && lists.len() >= k)
        .collect()
}

/// Recovers which lists contain `value` (indices ascending) — used by the
/// detector to attach per-candidate witness sets after counting.
pub fn lists_containing(lists: &[&[UserId]], value: UserId) -> Vec<u32> {
    lists
        .iter()
        .enumerate()
        .filter(|(_, l)| l.binary_search(&value).is_ok())
        .map(|(i, _)| i as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(v: &[u64]) -> Vec<UserId> {
        v.iter().map(|&n| UserId(n)).collect()
    }

    fn run(algo: ThresholdAlgo, lists: &[Vec<u64>], k: usize) -> Vec<(u64, u32)> {
        let owned: Vec<Vec<UserId>> = lists.iter().map(|l| ids(l)).collect();
        let slices: Vec<&[UserId]> = owned.iter().map(|l| l.as_slice()).collect();
        let mut out = Vec::new();
        threshold_intersect(algo, &slices, k, &mut out);
        out.into_iter().map(|(v, c)| (v.raw(), c)).collect()
    }

    const ALGOS: [ThresholdAlgo; 3] = [
        ThresholdAlgo::ScanCount,
        ThresholdAlgo::HeapMerge,
        ThresholdAlgo::Adaptive,
    ];

    #[test]
    fn two_of_two_is_intersection() {
        let lists = vec![vec![1, 2, 3, 5], vec![2, 3, 4]];
        for algo in ALGOS {
            assert_eq!(run(algo, &lists, 2), vec![(2, 2), (3, 2)], "{algo:?}");
        }
    }

    #[test]
    fn two_of_three_majority() {
        let lists = vec![vec![1, 2, 3], vec![2, 3, 4], vec![3, 4, 5]];
        for algo in ALGOS {
            assert_eq!(
                run(algo, &lists, 2),
                vec![(2, 2), (3, 3), (4, 2)],
                "{algo:?}"
            );
        }
    }

    #[test]
    fn three_of_three_strict() {
        let lists = vec![vec![1, 2, 3], vec![2, 3, 4], vec![3, 4, 5]];
        for algo in ALGOS {
            assert_eq!(run(algo, &lists, 3), vec![(3, 3)], "{algo:?}");
        }
    }

    #[test]
    fn k_larger_than_list_count_is_empty() {
        let lists = vec![vec![1, 2], vec![1, 2]];
        for algo in ALGOS {
            assert_eq!(run(algo, &lists, 3), vec![], "{algo:?}");
        }
    }

    #[test]
    fn k_zero_is_empty() {
        let lists = vec![vec![1], vec![1]];
        for algo in ALGOS {
            assert_eq!(run(algo, &lists, 0), vec![], "{algo:?}");
        }
    }

    #[test]
    fn empty_lists_ignored() {
        let lists = vec![vec![], vec![1, 2], vec![2, 3]];
        for algo in ALGOS {
            assert_eq!(run(algo, &lists, 2), vec![(2, 2)], "{algo:?}");
        }
    }

    #[test]
    fn single_list_k_one() {
        let lists = vec![vec![7, 9]];
        for algo in ALGOS {
            assert_eq!(run(algo, &lists, 1), vec![(7, 1), (9, 1)], "{algo:?}");
        }
    }

    #[test]
    fn many_lists_trigger_scan_count_path() {
        // 20 lists > HEAP_MAX_LISTS: adaptive takes the scan-count branch.
        let lists: Vec<Vec<u64>> = (0..20).map(|i| vec![42, 100 + i]).collect();
        for algo in ALGOS {
            let got = run(algo, &lists, 20);
            assert_eq!(got, vec![(42, 20)], "{algo:?}");
        }
    }

    #[test]
    fn lists_containing_finds_indices() {
        let owned = [ids(&[1, 2, 3]), ids(&[2, 4]), ids(&[3, 4])];
        let slices: Vec<&[UserId]> = owned.iter().map(|l| l.as_slice()).collect();
        assert_eq!(lists_containing(&slices, UserId(2)), vec![0, 1]);
        assert_eq!(lists_containing(&slices, UserId(4)), vec![1, 2]);
        assert_eq!(lists_containing(&slices, UserId(9)), Vec::<u32>::new());
    }

    #[test]
    fn output_appended_not_cleared() {
        let owned = [ids(&[1]), ids(&[1])];
        let slices: Vec<&[UserId]> = owned.iter().map(|l| l.as_slice()).collect();
        let mut out = vec![(UserId(99), 9u32)];
        threshold_intersect(ThresholdAlgo::Adaptive, &slices, 2, &mut out);
        assert_eq!(out[0], (UserId(99), 9));
        assert_eq!(out[1], (UserId(1), 2));
    }

    proptest! {
        #[test]
        fn all_algorithms_match_naive(
            raw in proptest::collection::vec(
                proptest::collection::vec(0u64..64, 0..40),
                0..12,
            ),
            k in 1usize..6,
        ) {
            let lists: Vec<Vec<u64>> = raw
                .into_iter()
                .map(|mut l| {
                    l.sort_unstable();
                    l.dedup();
                    l
                })
                .collect();
            let owned: Vec<Vec<UserId>> = lists.iter().map(|l| ids(l)).collect();
            let slices: Vec<&[UserId]> = owned.iter().map(|l| l.as_slice()).collect();
            let expect: Vec<(u64, u32)> = threshold_naive(&slices, k)
                .into_iter()
                .map(|(v, c)| (v.raw(), c))
                .collect();
            for algo in ALGOS {
                prop_assert_eq!(&run(algo, &lists, k), &expect, "{:?}", algo);
            }
        }
    }
}
