//! Candidate scoring and ranking.
//!
//! The paper ranks implicitly — recommendations must be "relevant,
//! personalized, and timely". This module makes that concrete with a
//! transparent linear-in-logs scorer over the three signals the detector
//! already carries:
//!
//! * **strength** — more co-acting followings ⇒ stronger "what's hot"
//!   evidence (log-scaled: the 4th witness adds less than the 2nd);
//! * **freshness** — exponential decay from the triggering edge with a
//!   configurable half-life (timeliness);
//! * **novelty damping** — targets that are already mega-popular get
//!   discounted (recommending an account the user would find anyway has
//!   low marginal value; niche discoveries engage more).

use magicrecs_graph::FollowGraph;
use magicrecs_types::{Candidate, Duration, Timestamp};

/// Scorer parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoringConfig {
    /// Weight of the log-witness-count term.
    pub witness_weight: f64,
    /// Freshness half-life: score halves every such interval after the
    /// trigger.
    pub half_life: Duration,
    /// Weight of the popularity damping term (0 disables).
    pub popularity_damping: f64,
}

impl ScoringConfig {
    /// Production-ish defaults: witnesses dominate, 10-minute half-life,
    /// mild popularity damping.
    pub fn production() -> Self {
        ScoringConfig {
            witness_weight: 1.0,
            half_life: Duration::from_mins(10),
            popularity_damping: 0.2,
        }
    }
}

impl Default for ScoringConfig {
    fn default() -> Self {
        ScoringConfig::production()
    }
}

/// The scorer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scorer {
    config: ScoringConfig,
}

impl Scorer {
    /// Creates a scorer.
    pub fn new(config: ScoringConfig) -> Self {
        Scorer { config }
    }

    /// Scores one candidate as of `now` against the static graph.
    /// Higher is better; scores are comparable within one graph+config.
    pub fn score(&self, c: &Candidate, graph: &FollowGraph, now: Timestamp) -> f64 {
        let cfg = &self.config;
        // Strength: ln(1 + witnesses), so k=2 ≈ 1.10, k=6 ≈ 1.95.
        let strength = cfg.witness_weight * (1.0 + c.witnesses.len() as f64).ln();
        // Freshness: 2^(-age/half_life).
        let age = now.saturating_since(c.triggered_at).as_secs_f64();
        let freshness =
            (-age / cfg.half_life.as_secs_f64().max(1e-9) * std::f64::consts::LN_2).exp();
        // Popularity damping: subtract λ·ln(1 + followers(target)).
        let damping = if cfg.popularity_damping > 0.0 {
            cfg.popularity_damping * (1.0 + graph.follower_count(c.target) as f64).ln()
        } else {
            0.0
        };
        strength * freshness - damping
    }

    /// Ranks candidates descending by score (stable: ties keep input
    /// order). Returns `(candidate, score)` pairs.
    pub fn rank(
        &self,
        candidates: Vec<Candidate>,
        graph: &FollowGraph,
        now: Timestamp,
    ) -> Vec<(Candidate, f64)> {
        let mut scored: Vec<(Candidate, f64)> = candidates
            .into_iter()
            .map(|c| {
                let s = self.score(&c, graph, now);
                (c, s)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored
    }

    /// Keeps only the best candidate per user (the push budget is per
    /// user, so only the top one matters per evaluation round).
    pub fn best_per_user(
        &self,
        candidates: Vec<Candidate>,
        graph: &FollowGraph,
        now: Timestamp,
    ) -> Vec<(Candidate, f64)> {
        let ranked = self.rank(candidates, graph, now);
        let mut seen = magicrecs_types::FxHashSet::default();
        ranked
            .into_iter()
            .filter(|(c, _)| seen.insert(c.user))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magicrecs_graph::GraphBuilder;
    use magicrecs_types::UserId;

    fn u(n: u64) -> UserId {
        UserId(n)
    }

    fn cand(user: u64, target: u64, witnesses: usize, at_secs: u64) -> Candidate {
        Candidate {
            user: u(user),
            target: u(target),
            witnesses: (0..witnesses as u64).map(|i| u(100 + i)).collect(),
            triggered_at: Timestamp::from_secs(at_secs),
        }
    }

    fn graph_with_popular_target() -> FollowGraph {
        let mut b = GraphBuilder::new();
        // Target 500 has 100 followers; target 501 has 1.
        for a in 0..100u64 {
            b.add_edge(u(2_000 + a), u(500));
        }
        b.add_edge(u(2_000), u(501));
        b.build()
    }

    #[test]
    fn more_witnesses_scores_higher() {
        let g = graph_with_popular_target();
        let s = Scorer::new(ScoringConfig::production());
        let now = Timestamp::from_secs(100);
        let weak = s.score(&cand(1, 501, 2, 100), &g, now);
        let strong = s.score(&cand(1, 501, 6, 100), &g, now);
        assert!(strong > weak, "{strong} <= {weak}");
    }

    #[test]
    fn staler_scores_lower_with_half_life() {
        let g = graph_with_popular_target();
        let s = Scorer::new(ScoringConfig {
            half_life: Duration::from_secs(60),
            popularity_damping: 0.0,
            ..ScoringConfig::production()
        });
        let fresh = s.score(&cand(1, 501, 3, 100), &g, Timestamp::from_secs(100));
        let aged = s.score(&cand(1, 501, 3, 100), &g, Timestamp::from_secs(160));
        assert!((aged / fresh - 0.5).abs() < 0.01, "one half-life ⇒ ½ score");
    }

    #[test]
    fn popular_targets_damped() {
        let g = graph_with_popular_target();
        let s = Scorer::new(ScoringConfig::production());
        let now = Timestamp::from_secs(100);
        let celebrity = s.score(&cand(1, 500, 3, 100), &g, now);
        let niche = s.score(&cand(1, 501, 3, 100), &g, now);
        assert!(niche > celebrity, "{niche} <= {celebrity}");
    }

    #[test]
    fn zero_damping_ignores_popularity() {
        let g = graph_with_popular_target();
        let s = Scorer::new(ScoringConfig {
            popularity_damping: 0.0,
            ..ScoringConfig::production()
        });
        let now = Timestamp::from_secs(100);
        let a = s.score(&cand(1, 500, 3, 100), &g, now);
        let b = s.score(&cand(1, 501, 3, 100), &g, now);
        assert_eq!(a, b);
    }

    #[test]
    fn rank_orders_descending() {
        let g = graph_with_popular_target();
        let s = Scorer::new(ScoringConfig::production());
        let now = Timestamp::from_secs(200);
        let ranked = s.rank(
            vec![
                cand(1, 501, 2, 100), // old, weak
                cand(2, 501, 6, 200), // fresh, strong
                cand(3, 501, 3, 200), // fresh, medium
            ],
            &g,
            now,
        );
        assert_eq!(ranked[0].0.user, u(2));
        assert_eq!(ranked[1].0.user, u(3));
        assert_eq!(ranked[2].0.user, u(1));
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn best_per_user_keeps_top_only() {
        let g = graph_with_popular_target();
        let s = Scorer::new(ScoringConfig::production());
        let now = Timestamp::from_secs(200);
        let out = s.best_per_user(
            vec![
                cand(1, 501, 2, 200),
                cand(1, 500, 6, 200), // same user, stronger but damped
                cand(2, 501, 3, 200),
            ],
            &g,
            now,
        );
        assert_eq!(out.len(), 2);
        let users: Vec<UserId> = out.iter().map(|(c, _)| c.user).collect();
        assert!(users.contains(&u(1)) && users.contains(&u(2)));
    }
}
