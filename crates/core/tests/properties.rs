//! Property tests for the detection core beyond what the unit tests and
//! the facade's cross-implementation suites cover: scratch-buffer hygiene,
//! scoring invariants, and algorithm-choice independence.

use magicrecs_core::{Engine, Scorer, ScoringConfig, ThresholdAlgo};
use magicrecs_graph::GraphBuilder;
use magicrecs_types::{Candidate, DetectorConfig, Duration, EdgeEvent, Timestamp, UserId};
use proptest::prelude::*;

fn u(n: u64) -> UserId {
    UserId(n)
}

fn build_graph(edges: &[(u64, u64)]) -> magicrecs_graph::FollowGraph {
    let mut b = GraphBuilder::new();
    b.extend(edges.iter().map(|&(a, bb)| (u(a), u(bb))));
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The three threshold algorithms produce identical engine output on
    /// arbitrary graphs and traces (algorithm choice is purely a
    /// performance knob).
    #[test]
    fn threshold_algo_is_transparent(
        edges in proptest::collection::vec((0u64..20, 20u64..32), 1..80),
        actions in proptest::collection::vec((20u64..32, 32u64..40, 0u64..1_000), 1..60),
    ) {
        let graph = build_graph(&edges);
        let mut events: Vec<EdgeEvent> = actions
            .iter()
            .map(|&(src, dst, at)| EdgeEvent::follow(u(src), u(dst), Timestamp::from_secs(at)))
            .collect();
        events.sort_by_key(|e| e.created_at);
        let cfg = DetectorConfig::example().with_tau(Duration::from_secs(300));

        let mut outputs: Vec<Vec<Candidate>> = Vec::new();
        for algo in [
            ThresholdAlgo::ScanCount,
            ThresholdAlgo::HeapMerge,
            ThresholdAlgo::PivotSkip,
            ThresholdAlgo::PivotTree,
            ThresholdAlgo::Adaptive,
        ] {
            let mut engine = Engine::with_algo(graph.clone(), cfg, algo).unwrap();
            outputs.push(engine.process_trace(events.iter().copied()));
        }
        for pair in outputs.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1]);
        }
    }

    /// Processing events one-by-one equals processing them as a trace
    /// (scratch buffers carry no state across events).
    #[test]
    fn per_event_equals_trace(
        edges in proptest::collection::vec((0u64..15, 15u64..25), 1..50),
        actions in proptest::collection::vec((15u64..25, 25u64..30, 0u64..500), 1..40),
    ) {
        let graph = build_graph(&edges);
        let mut events: Vec<EdgeEvent> = actions
            .iter()
            .map(|&(src, dst, at)| EdgeEvent::follow(u(src), u(dst), Timestamp::from_secs(at)))
            .collect();
        events.sort_by_key(|e| e.created_at);
        let cfg = DetectorConfig::example().with_tau(Duration::from_secs(300));

        let mut e1 = Engine::new(graph.clone(), cfg).unwrap();
        let batch = e1.process_trace(events.iter().copied());

        let mut e2 = Engine::new(graph, cfg).unwrap();
        let mut single = Vec::new();
        for &e in &events {
            single.extend(e2.on_event(e));
        }
        prop_assert_eq!(batch, single);
    }

    /// Scoring: strictly more witnesses never scores lower (same target,
    /// same age); fresher never scores lower (same witnesses).
    #[test]
    fn scoring_monotonicity(
        w1 in 2usize..10,
        extra in 1usize..5,
        age1 in 0u64..1_000,
        dage in 1u64..1_000,
    ) {
        let graph = build_graph(&[(1, 50)]);
        let scorer = Scorer::new(ScoringConfig::production());
        let now = Timestamp::from_secs(2_000);
        let mk = |wit: usize, age: u64| Candidate {
            user: u(1),
            target: u(60),
            witnesses: (0..wit as u64).map(|i| u(100 + i)).collect(),
            triggered_at: now.saturating_sub(Duration::from_secs(age)),
        };
        let base = scorer.score(&mk(w1, age1), &graph, now);
        let more_wit = scorer.score(&mk(w1 + extra, age1), &graph, now);
        let older = scorer.score(&mk(w1, age1 + dage), &graph, now);
        prop_assert!(more_wit >= base, "{more_wit} < {base}");
        prop_assert!(older <= base, "{older} > {base}");
    }

    /// Engine candidate output is invariant to the store's entry cap as
    /// long as the cap comfortably exceeds the distinct in-window sources
    /// (the regime property tests run in).
    #[test]
    fn entry_cap_transparent_at_test_scale(
        edges in proptest::collection::vec((0u64..15, 15u64..25), 1..50),
        actions in proptest::collection::vec((15u64..25, 25u64..28, 0u64..300), 1..50),
    ) {
        let graph = build_graph(&edges);
        let mut events: Vec<EdgeEvent> = actions
            .iter()
            .map(|&(src, dst, at)| EdgeEvent::follow(u(src), u(dst), Timestamp::from_secs(at)))
            .collect();
        events.sort_by_key(|e| e.created_at);

        // Uncapped store (max_witnesses None) vs capped (Some(64) ⇒ entry
        // cap 1024): at ≤ 10 distinct sources per target both see all
        // witnesses.
        let uncapped = DetectorConfig::example().with_tau(Duration::from_secs(300));
        let capped = DetectorConfig {
            max_witnesses: Some(64),
            ..uncapped
        };
        let mut e1 = Engine::new(graph.clone(), uncapped).unwrap();
        let mut e2 = Engine::new(graph, capped).unwrap();
        prop_assert_eq!(
            e1.process_trace(events.iter().copied()),
            e2.process_trace(events.iter().copied())
        );
    }
}
