//! Self-cleaning scratch directories for tests and benches.
//!
//! The workspace is hermetic (no `tempfile` crate); this is the minimal
//! equivalent: a uniquely-named directory under the OS temp dir, removed
//! on drop (best effort — a leaked directory under `/tmp` is annoying,
//! not incorrect).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely-named scratch directory, recursively deleted on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `<os tmp>/magicrecs-<tag>-<pid>-<n>`.
    pub fn new(tag: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("magicrecs-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_cleans_up() {
        let kept;
        {
            let t = TempDir::new("t");
            kept = t.path().to_path_buf();
            std::fs::write(t.path().join("x"), b"y").unwrap();
            assert!(kept.exists());
        }
        assert!(!kept.exists(), "dropped TempDir must remove its directory");
    }

    #[test]
    fn two_dirs_are_distinct() {
        let a = TempDir::new("t");
        let b = TempDir::new("t");
        assert_ne!(a.path(), b.path());
    }
}
