//! # magicrecs-persist
//!
//! Persistence & recovery for the paper's two state halves. The design
//! splits state into an offline-computed follow graph `S` "loaded into the
//! system periodically" and an in-memory recent-edge store `D` — which
//! means a naïve deployment loses `D` (and every in-flight recommendation
//! window) on any restart, and pays a full interner+CSR rebuild on every
//! `S` refresh. This crate supplies the missing durability primitives:
//!
//! * **Delta-loaded `S` snapshots** ([`snapshot::SnapshotStore`]) — a
//!   directory of full-graph bases (`magicrecs_graph::io`, `MGRS`) plus
//!   [`magicrecs_graph::GraphDelta`] chain files (`MGRD`); startup loads
//!   the newest base and folds the chain with
//!   `FollowGraph::apply_delta`, so the periodic refresh costs its
//!   touched rows, not the world.
//! * **Write-ahead-logged `D`** ([`wal`]) — an append-only segmented log
//!   of stream events with CRC-32-checked records, a batched fsync policy,
//!   epoch-aligned [`checkpoint`]s of the temporal store, and segment
//!   reclamation once the store's own window pruning passes a segment's
//!   max timestamp.
//! * **Crash recovery** ([`recovery`]) — [`recovery::PersistentEngine`]
//!   (sequential) and [`recovery::PersistentConcurrentEngine`] (shared
//!   `S` + sharded `D`, per-partition WALs keyed by the hash route)
//!   restore the snapshot chain and the latest checkpoint chain, replay
//!   the WAL tail with notification emission suppressed (no duplicate
//!   deliveries), then hand off to live ingest. After a crash at *any*
//!   record boundary, the recovered candidate stream is byte-identical to
//!   an uninterrupted run's (test-enforced by the kill-point matrix).
//! * **Non-quiescent checkpoints** — the shared engine checkpoints `D`
//!   *while ingest runs*: each WAL partition is cut behind its own brief
//!   fence (appends to that route stall for the export, every other
//!   partition keeps ingesting) and the file records a **fence vector**;
//!   recovery replays each partition's tail from its own fence. With a
//!   non-disabled [`RebasePolicy`], checkpoints are **incremental**
//!   ([`checkpoint::DeltaCheckpoint`], `MGCI`): only targets dirtied
//!   since the previous cut are written, chained onto the last full
//!   checkpoint and rebased per the policy — mirroring the `S`
//!   base+delta chain.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/
//!   s-base-00000000000000000007.mgrs        full S snapshot, epoch 7
//!   s-delta-…0007-…0008.mgrd                GraphDelta 7 → 8
//!   d-ckpt-00000000000000004096.mgck        full D checkpoint through seq 4096
//!   d-ckpt-00000000000000005120.mgci        incremental delta, base 4096
//!   wal-00000000000000000000.wal            sequential WAL segments …
//!   wal-p3-00000000000000001042.wal         … or per-partition (route 3)
//! ```
//!
//! WAL segment format (`MGWL`):
//!
//! ```text
//! magic "MGWL"  4 bytes | version u32 LE | first_seq u64 LE
//! per record:
//!   len   u32 LE        payload byte count
//!   crc32 u32 LE        CRC-32 (IEEE) of the payload
//!   payload:
//!     seq  varint u64   strictly ascending within a segment
//!     kind u8           0 follow · 1 unfollow · 2 retweet · 3 favorite
//!     src  varint u64
//!     dst  varint u64
//!     at   varint u64   event timestamp, µs
//! ```
//!
//! A torn tail (crash mid-write) is detected by length/CRC and repaired at
//! open; torn bytes in the *middle* of the log are refused as
//! [`magicrecs_types::Error::Corrupt`]. `D` checkpoint format (`MGCK`,
//! full):
//!
//! ```text
//! magic "MGCK" | version u32 LE (=2) | last_seq u64 LE
//! fences  u64 LE count, then count × u64 LE   per-partition replay fences
//! targets u64 LE
//! per target (ascending dst):
//!   dst     varint u64, delta-encoded across targets
//!   count   varint u64
//!   entries count × (src varint u64, at varint u64 delta from previous)
//! checksum u64 LE (FxHash of all decoded values)
//! ```
//!
//! (Version-1 files — no fence block — still load, with a uniform fence
//! at `last_seq + 1`.) Incremental checkpoints (`MGCI`) share the group
//! encoding, add `id`/`base_id` linking the file to the chain below it,
//! and write a zero entry-count as a **tombstone** (the target vanished
//! from `D` since the base). Chain rules: a delta is only valid atop the
//! exact checkpoint `base_id` names; loading merges the newest full plus
//! its strictly-ascending linked deltas (delta lists replace the base's
//! per-target lists; tombstones remove them). Only a *full* checkpoint
//! prunes — writing one deletes every older full and every delta at or
//! below its id, so a delta's predecessors stay on disk (load-bearing)
//! until the next full supersedes the chain. WAL reclamation is
//! authorized by the chain tip's fence vector: partition `p` may drop
//! segments strictly below `fences[p]`.
//!
//! ## Crash-consistency contract
//!
//! Every mutation of the persistence directory flows through a swappable
//! I/O backend ([`vfs::Vfs`]; production uses the zero-cost [`StdVfs`],
//! tests inject failures with [`FaultVfs`]). Under *any* interleaving of
//! crashes, failed writes/fsyncs/renames, and torn writes at those call
//! sites, the crate guarantees:
//!
//! 1. **Typed failure or poison — never a panic, never silent loss.** An
//!    I/O fault surfaces to the caller as [`magicrecs_types::Error::Io`]
//!    (or `Corrupt`/`Invariant` on the consuming side). If a WAL append
//!    fails after bytes may have partially landed, or an fsync the
//!    [`FsyncPolicy`] promised cannot be delivered, the WAL **poisons**
//!    itself: every later append is refused with a typed error so an
//!    application can never acknowledge an event the log will not
//!    remember. What was durably appended *before* the poison point
//!    remains replayable.
//! 2. **Acknowledged means recoverable.** An event whose append (and
//!    policy-mandated fsync) returned `Ok` is replayed by
//!    [`recovery::PersistentEngine::open`] /
//!    [`recovery::PersistentConcurrentEngine::open`] after a crash, and
//!    the recovered candidate stream is byte-identical to an
//!    uninterrupted run's — no duplicates (replay suppresses emission up
//!    to the recovered sequence), no gaps (merged replay refuses
//!    sequence holes below the durable tail as `Corrupt`).
//! 3. **Publishes are atomic.** Checkpoints and snapshots land via
//!    write-temp → fsync → rename → dir-fsync; a fault at any step
//!    leaves at worst a `.tmp` orphan which recovery sweeps. Readers
//!    pick newest-valid, so a half-published file is never loaded.
//! 4. **Cleanup failures are loud, not lossy.** Checkpoint pruning and
//!    WAL segment reclamation propagate unlink/dir-fsync errors (except
//!    benign `NotFound`); the retained state is always a superset of
//!    what correctness requires, so a failed cleanup can only leak disk,
//!    never drop acknowledged data.
//!
//! These guarantees are enforced by the kill-point matrix
//! (`tests/recovery.rs`), fault-plan property tests (`tests/faults.rs`),
//! and the adversity harness (`magicrecs-bench`, `bin/adversity`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod crc;
mod fsutil;
mod metrics;
pub mod recovery;
pub mod replica;
pub mod snapshot;
pub mod tempdir;
pub mod vfs;
pub mod wal;

pub use checkpoint::{
    load_latest_chain, load_latest_checkpoint, write_checkpoint, Checkpoint, CheckpointChain,
    DeltaCheckpoint,
};
pub use recovery::{
    CheckpointDriver, PersistOptions, PersistentConcurrentEngine, PersistentEngine, RecoveryReport,
};
pub use replica::{segment_catalog, segment_containing, ShipDecoder, ShippableSegment};
pub use snapshot::{RebasePolicy, SnapshotStore};
pub use tempdir::TempDir;
pub use vfs::{std_vfs, FaultMode, FaultOp, FaultPlan, FaultSpec, FaultVfs, StdVfs, Vfs, VfsFile};
pub use wal::{FsyncPolicy, RecordBoundary, ReplayStats, SharedWal, Wal, WalOptions, WalRecord};
