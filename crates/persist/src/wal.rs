//! The write-ahead log for `D`: append-only segments of stream events.
//!
//! Every event is framed as `len | crc32 | payload` (see the crate docs
//! for the byte layout) and carries an explicit, strictly-ascending
//! sequence number, so the recovery replay can resume exactly after the
//! last checkpointed event. Segments roll at a byte threshold; fsync is
//! batched by policy; and segments whose every record is both past the
//! store's retention window **and** covered by a `D` checkpoint are
//! reclaimed — the log is bounded by `τ` + checkpoint cadence, not by
//! uptime.
//!
//! ## Group commit
//!
//! [`Wal::append_batch`] is the hot-path entry point: it encodes all N
//! frames of a micro-batch into the one reused buffer, assigns a dense
//! run of sequences, and lands them with a **single `write(2)`** —
//! [`Wal::append`] is the N = 1 special case of the same code path, so a
//! batch's segment bytes are byte-identical to N single appends. The
//! only places a batch's write splits are a segment roll or an interior
//! [`FsyncPolicy::EveryN`] `n`-record mark (huge batches only).
//!
//! Durability is what batching actually amortizes: **a batch is one
//! durability unit** — the [`FsyncPolicy`] ticks once per append *call*,
//! so `EveryN(n)` syncs every `n` batches instead of every `n` records
//! (per-event appends are one-record batches, keeping the historical
//! per-record cadence exactly). What a batch may never do is defer more
//! than `n` records inside one call: an `EveryN(n)` batch of `N ≥ n`
//! records syncs at every interior `n`-record boundary — `⌈N/n⌉` syncs
//! for an `n`-aligned batch, each on a record boundary, never mid-frame
//! (regression-tested). See [`FsyncPolicy`] for the exposure-bound
//! contract this trades.
//!
//! [`SharedWal::append_batch`] pre-partitions a batch by the hash route,
//! takes each partition lock **at most once**, and assigns each
//! partition's sub-batch a dense run of global sequences under that one
//! lock hold.
//!
//! Crash semantics: a torn record at the very end of the newest segment is
//! the expected signature of a crash mid-append — scanning stops there and
//! [`Wal::open`] truncates it away before appending resumes. Torn or
//! corrupt bytes anywhere *before* the tail mean lost history and are
//! refused as [`Error::Corrupt`].

use crate::crc::crc32;
use crate::metrics;
use crate::vfs::{std_vfs, Vfs, VfsFile};
use magicrecs_graph::io::{read_varint, write_varint};
use magicrecs_obs::{recorder, TraceKind};
use magicrecs_types::{EdgeEvent, EdgeKind, Error, Result, Timestamp, UserId};
use parking_lot::Mutex;
use std::fs::File;
use std::io::{Read, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub(crate) const MAGIC: &[u8; 4] = b"MGWL";
pub(crate) const VERSION: u32 = 1;
pub(crate) const HEADER_LEN: u64 = 16;
/// Sanity bound on a record's payload (real records are ~30 bytes); a
/// bigger length field is torn/corrupt framing, not a huge record.
pub(crate) const MAX_RECORD_LEN: u32 = 1 << 16;

/// When appended records are pushed to durable storage.
///
/// The policy counts **durability units**, not records: one
/// [`Wal::append`] is one unit, and one [`Wal::append_batch`] is one
/// unit no matter how many records it carries (group commit — the batch
/// succeeds or tears as a whole, so syncing inside it buys nothing).
/// With per-event appends this is exactly the historical per-record
/// behavior; with micro-batches the caller chooses its own exposure by
/// choosing the batch size. One cap keeps huge batches honest: a single
/// call never defers more than `n` records — an [`FsyncPolicy::EveryN`]
/// batch of `N ≥ n` records syncs at every interior `n`-record boundary
/// (`⌈N/n⌉` syncs for an `n`-aligned batch), always on a record
/// boundary, never mid-frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append call (a batch is one call — the
    /// classic group commit). Maximal durability, minimal throughput.
    Always,
    /// `fdatasync` every `n` durability units and on segment roll/close —
    /// the production default; at most `n` un-synced units (minus what
    /// the OS already wrote back) are exposed to power loss: `n` events
    /// under per-event appends, `n` micro-batches under batched ingest.
    EveryN(u64),
    /// Never sync explicitly; the OS flushes on its own schedule. For
    /// tests and benches.
    Never,
}

/// Tuning knobs for a [`Wal`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Durability policy.
    pub fsync: FsyncPolicy,
    /// Roll to a new segment once the active one exceeds this many bytes.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            fsync: FsyncPolicy::EveryN(256),
            segment_bytes: 1 << 20,
        }
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    /// Global sequence number.
    pub seq: u64,
    /// The logged event.
    pub event: EdgeEvent,
}

/// Outcome of a replay scan.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayStats {
    /// Complete records visited.
    pub records: u64,
    /// Sequence of the last complete record, if any.
    pub last_seq: Option<u64>,
    /// Whether the newest segment ended in a torn (incomplete) record.
    pub torn_tail: bool,
}

/// A record boundary: the file prefix length that ends exactly after the
/// record with sequence `seq` — the kill-point matrix truncates here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordBoundary {
    /// Segment file holding the record.
    pub path: PathBuf,
    /// Byte length of the file prefix ending at this record's end.
    pub offset_after: u64,
    /// The record's sequence number.
    pub seq: u64,
}

fn io_err(context: &str, e: std::io::Error) -> Error {
    Error::Io(format!("{context}: {e}"))
}

/// Appends a full `len | crc32 | payload` frame at `buf`'s current end
/// (the buffer is reused across appends and shared by a whole batch —
/// one buffer, one eventual `write(2)`, no per-event allocation).
fn encode_frame(buf: &mut Vec<u8>, seq: u64, event: EdgeEvent) {
    let base = buf.len();
    buf.extend_from_slice(&[0u8; 8]); // len + crc backfilled below
    write_varint(buf, seq).expect("vec write is infallible");
    let kind = match event.kind {
        EdgeKind::Follow => 0u8,
        EdgeKind::Unfollow => 1,
        EdgeKind::Retweet => 2,
        EdgeKind::Favorite => 3,
    };
    buf.push(kind);
    write_varint(buf, event.src.raw()).expect("vec write is infallible");
    write_varint(buf, event.dst.raw()).expect("vec write is infallible");
    write_varint(buf, event.created_at.as_micros()).expect("vec write is infallible");
    let len = (buf.len() - base - 8) as u32;
    let crc = crc32(&buf[base + 8..]);
    buf[base..base + 4].copy_from_slice(&len.to_le_bytes());
    buf[base + 4..base + 8].copy_from_slice(&crc.to_le_bytes());
}

pub(crate) fn decode_payload(mut payload: &[u8]) -> Option<WalRecord> {
    let r = &mut payload;
    let seq = read_varint(r).ok()?;
    let mut k = [0u8; 1];
    r.read_exact(&mut k).ok()?;
    let kind = match k[0] {
        0 => EdgeKind::Follow,
        1 => EdgeKind::Unfollow,
        2 => EdgeKind::Retweet,
        3 => EdgeKind::Favorite,
        _ => return None,
    };
    let src = read_varint(r).ok()?;
    let dst = read_varint(r).ok()?;
    let at = read_varint(r).ok()?;
    if !r.is_empty() {
        return None; // trailing garbage inside a crc-valid frame
    }
    Some(WalRecord {
        seq,
        event: EdgeEvent {
            src: UserId(src),
            dst: UserId(dst),
            created_at: Timestamp::from_micros(at),
            kind,
        },
    })
}

/// Everything a scan learns about one segment file.
#[derive(Debug)]
struct SegmentScan {
    last_seq: Option<u64>,
    max_ts: Timestamp,
    /// File length up to (and including) the last complete record.
    valid_bytes: u64,
    /// Whether bytes past `valid_bytes` exist (torn tail / corruption).
    torn: bool,
}

/// Reads `buf.len()` bytes if available; returns how many were read
/// (short only at EOF).
fn read_fully<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut n = 0;
    while n < buf.len() {
        let got = r.read(&mut buf[n..])?;
        if got == 0 {
            break;
        }
        n += got;
    }
    Ok(n)
}

/// Scans one segment, calling `on_record` for every complete record.
fn scan_segment(path: &Path, mut on_record: impl FnMut(WalRecord, u64)) -> Result<SegmentScan> {
    let ctx = || format!("wal segment {}", path.display());
    let file = File::open(path).map_err(|e| io_err(&ctx(), e))?;
    let mut r = std::io::BufReader::new(file);

    let mut header = [0u8; HEADER_LEN as usize];
    let got = read_fully(&mut r, &mut header).map_err(|e| io_err(&ctx(), e))?;
    if got < header.len() {
        // A crash can tear even the header of a freshly-rolled segment.
        return Ok(SegmentScan {
            last_seq: None,
            max_ts: Timestamp::ZERO,
            valid_bytes: 0,
            torn: true,
        });
    }
    if &header[0..4] != MAGIC {
        return Err(Error::Corrupt(format!("{}: bad segment magic", ctx())));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(Error::Corrupt(format!(
            "{}: unsupported segment version {version}",
            ctx()
        )));
    }
    let first_seq = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));

    let mut offset = HEADER_LEN;
    let mut last_seq: Option<u64> = None;
    let mut max_ts = Timestamp::ZERO;
    let mut payload = Vec::new();
    loop {
        let mut frame = [0u8; 8];
        let got = read_fully(&mut r, &mut frame).map_err(|e| io_err(&ctx(), e))?;
        if got == 0 {
            // Clean end on a record boundary.
            return Ok(SegmentScan {
                last_seq,
                max_ts,
                valid_bytes: offset,
                torn: false,
            });
        }
        let torn = |offset| {
            Ok(SegmentScan {
                last_seq,
                max_ts,
                valid_bytes: offset,
                torn: true,
            })
        };
        if got < frame.len() {
            return torn(offset);
        }
        let len = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            return torn(offset);
        }
        payload.resize(len as usize, 0);
        let got = read_fully(&mut r, &mut payload).map_err(|e| io_err(&ctx(), e))?;
        if got < payload.len() || crc32(&payload) != crc {
            return torn(offset);
        }
        let Some(record) = decode_payload(&payload) else {
            return torn(offset);
        };
        // A crc-valid record with out-of-order sequencing is not a torn
        // write — it is lost or reordered history.
        if record.seq < first_seq || last_seq.is_some_and(|l| record.seq <= l) {
            return Err(Error::Corrupt(format!(
                "{}: non-monotone sequence {} after {:?}",
                ctx(),
                record.seq,
                last_seq
            )));
        }
        offset += 8 + len as u64;
        last_seq = Some(record.seq);
        max_ts = max_ts.max(record.event.created_at);
        on_record(record, offset);
    }
}

/// Lists the segment files for `prefix` in `dir`, sorted by first
/// sequence (encoded zero-padded in the name). The match is anchored to
/// the exact segment-name shape — `<prefix><20 digits>.wal` — so the
/// sequential prefix `wal-` does not swallow a `SharedWal`'s `wal-p3-`
/// partition files living in the same directory.
pub(crate) fn list_segments(dir: &Path, prefix: &str) -> Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("wal dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("wal dir", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let is_segment = name
            .strip_prefix(prefix)
            .and_then(|rest| rest.strip_suffix(".wal"))
            .is_some_and(|digits| digits.len() == 20 && digits.bytes().all(|b| b.is_ascii_digit()));
        if is_segment {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

/// Partition indices for which `SharedWal`-shaped segment files
/// (`wal-p<i>-…`) exist in `dir`.
fn existing_wal_partitions(dir: &Path) -> Result<Vec<usize>> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("wal dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("wal dir", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(i) = name
            .strip_prefix("wal-p")
            .and_then(|rest| rest.split_once('-'))
            .and_then(|(idx, rest)| rest.ends_with(".wal").then(|| idx.parse::<usize>().ok())?)
        {
            out.push(i);
        }
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// Whether `dir` holds any WAL segment files at all — sequential
/// (`wal-…`) or partitioned (`wal-p<i>-…`). Creation paths refuse such
/// directories before publishing anything into them.
pub(crate) fn any_segments(dir: &Path) -> Result<bool> {
    Ok(!list_segments(dir, "wal-")?.is_empty() || !existing_wal_partitions(dir)?.is_empty())
}

/// Replays every complete record with `seq >= min_seq` for one WAL
/// prefix in sequence order, tolerating (and reporting) a torn tail on
/// the newest segment only. A checkpoint covering through sequence `c`
/// resumes with `min_seq = c + 1`; a fresh recovery passes 0.
pub fn replay(
    dir: &Path,
    prefix: &str,
    min_seq: u64,
    mut f: impl FnMut(WalRecord),
) -> Result<ReplayStats> {
    let segments = list_segments(dir, prefix)?;
    let mut stats = ReplayStats::default();
    for (i, path) in segments.iter().enumerate() {
        let scan = scan_segment(path, |record, _| {
            if record.seq >= min_seq {
                f(record);
                stats.records += 1;
            }
            stats.last_seq = Some(record.seq);
        })?;
        if scan.torn {
            if i + 1 != segments.len() {
                return Err(Error::Corrupt(format!(
                    "wal segment {} has a torn tail but is not the newest segment — \
                     history after it would be lost",
                    path.display()
                )));
            }
            stats.torn_tail = true;
        }
    }
    Ok(stats)
}

/// [`replay`] for a **dense-sequence** WAL (the sequential engine's,
/// where every sequence from 0 was appended to this one prefix):
/// additionally enforces that the replayed records are exactly
/// `min_seq, min_seq+1, …` with no holes. A hole means a lost or deleted
/// middle segment — silently rebuilding `D` without those events would
/// break the recovery parity contract, so it is refused as
/// [`Error::Corrupt`]. (Reclaimed segments never create holes here: they
/// are only deleted up to a checkpoint, i.e. strictly below `min_seq`.)
pub fn replay_contiguous(
    dir: &Path,
    prefix: &str,
    min_seq: u64,
    mut f: impl FnMut(WalRecord),
) -> Result<ReplayStats> {
    let mut expected = min_seq;
    let stats = replay(dir, prefix, min_seq, |record| {
        // Defer the error: replay's callback is infallible, so flag via
        // the closure and re-check after. Records are seq-sorted, so the
        // first mismatch is the smallest hole.
        if record.seq == expected {
            expected += 1;
        }
        f(record);
    })?;
    if let Some(last) = stats.last_seq {
        if last >= min_seq && expected != last + 1 {
            return Err(Error::Corrupt(format!(
                "wal gap: expected contiguous sequences from {min_seq}, but replay jumped \
                 at {expected} (log ends at {last}) — a middle segment is missing"
            )));
        }
    }
    Ok(stats)
}

/// Every record boundary for one WAL prefix, in sequence order — the
/// kill-point matrix truncates the file(s) at each of these.
pub fn record_boundaries(dir: &Path, prefix: &str) -> Result<Vec<RecordBoundary>> {
    let mut out = Vec::new();
    for path in list_segments(dir, prefix)? {
        scan_segment(&path, |record, offset_after| {
            out.push(RecordBoundary {
                path: path.clone(),
                offset_after,
                seq: record.seq,
            });
        })?;
    }
    out.sort_by_key(|b| b.seq);
    Ok(out)
}

/// Metadata for a closed (no longer written) segment.
#[derive(Debug, Clone)]
struct ClosedSegment {
    path: PathBuf,
    last_seq: u64,
    max_ts: Timestamp,
}

struct ActiveSegment {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    bytes: u64,
    last_seq: u64,
    max_ts: Timestamp,
}

/// A single-writer write-ahead log over one segment prefix.
pub struct Wal {
    dir: PathBuf,
    prefix: String,
    opts: WalOptions,
    vfs: Arc<dyn Vfs>,
    active: Option<ActiveSegment>,
    closed: Vec<ClosedSegment>,
    next_seq: u64,
    appends_since_sync: u64,
    syncs: u64,
    scratch: Vec<u8>,
    /// Set when a failed append left the active segment in a state this
    /// process cannot repair (garbage bytes past the last record
    /// boundary, or a sequence that was assigned but never landed).
    /// Further appends are refused: writing a valid record *after* the
    /// damage would make every later record — even acknowledged, fsynced
    /// ones — unrecoverable, because the replay scan stops at the first
    /// bad frame and treats the rest as a torn tail.
    poisoned: bool,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("prefix", &self.prefix)
            .field("next_seq", &self.next_seq)
            .field("closed_segments", &self.closed.len())
            .finish_non_exhaustive()
    }
}

impl Wal {
    /// Creates a fresh WAL in `dir` (created if missing). Refuses to
    /// create over existing segments of the same prefix — recovering into
    /// an existing log goes through [`Wal::open`].
    pub fn create(dir: &Path, prefix: &str, opts: WalOptions) -> Result<Wal> {
        Self::create_with_vfs(dir, prefix, opts, std_vfs())
    }

    /// [`Wal::create`] on an explicit I/O backend (see [`Vfs`]); the
    /// default constructor threads [`crate::StdVfs`].
    pub fn create_with_vfs(
        dir: &Path,
        prefix: &str,
        opts: WalOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Wal> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("wal dir create", e))?;
        if !list_segments(dir, prefix)?.is_empty() {
            return Err(Error::Invariant(format!(
                "wal segments with prefix {prefix:?} already exist in {} — use Wal::open",
                dir.display()
            )));
        }
        Ok(Wal {
            dir: dir.to_path_buf(),
            prefix: prefix.to_string(),
            opts,
            vfs,
            active: None,
            closed: Vec::new(),
            next_seq: 0,
            appends_since_sync: 0,
            syncs: 0,
            scratch: Vec::new(),
            poisoned: false,
        })
    }

    /// Opens an existing WAL for appending: scans the segments, **repairs
    /// the torn tail** of the newest one (truncating incomplete trailing
    /// bytes — the crash signature recovery already accounted for), and
    /// positions `next_seq` after the last surviving record.
    ///
    /// Callers replay first ([`replay`]), then open; the torn bytes the
    /// replay skipped are the same bytes this truncates.
    pub fn open(dir: &Path, prefix: &str, opts: WalOptions) -> Result<Wal> {
        Self::open_with_floor(dir, prefix, opts, 0)
    }

    /// [`Wal::open`] with a lower bound on the resumed sequence. Recovery
    /// passes `checkpoint.last_seq + 1`: if every segment the checkpoint
    /// covered has been reclaimed (an idle, fully-checkpointed log can
    /// legitimately hold zero files), a plain scan would restart at 0 —
    /// and new appends below the checkpoint's `last_seq` would be
    /// silently skipped by the *next* recovery's `min_seq` filter. The
    /// floor pins `next_seq` at or above what on-disk checkpoints claim
    /// to cover, so sequences never regress.
    pub fn open_with_floor(dir: &Path, prefix: &str, opts: WalOptions, floor: u64) -> Result<Wal> {
        Self::open_with_floor_vfs(dir, prefix, opts, floor, std_vfs())
    }

    /// [`Wal::open_with_floor`] on an explicit I/O backend (see [`Vfs`]).
    /// Tail repair (truncation + fsync of the torn newest segment) runs
    /// through the backend, so injected repair failures surface typed
    /// here instead of panicking later.
    pub fn open_with_floor_vfs(
        dir: &Path,
        prefix: &str,
        opts: WalOptions,
        floor: u64,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Wal> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("wal dir create", e))?;
        let segments = list_segments(dir, prefix)?;
        let mut closed = Vec::new();
        let mut next_seq = 0u64;
        for (i, path) in segments.iter().enumerate() {
            let scan = scan_segment(path, |_, _| {})?;
            let newest = i + 1 == segments.len();
            if scan.torn && !newest {
                return Err(Error::Corrupt(format!(
                    "wal segment {} has a torn tail but is not the newest segment",
                    path.display()
                )));
            }
            if scan.torn {
                if scan.valid_bytes == 0 {
                    // Even the header was torn: drop the file entirely.
                    vfs.remove_file(path).map_err(|e| io_err("wal repair", e))?;
                    continue;
                }
                recorder::record(
                    TraceKind::WalRewind,
                    "tail repair",
                    scan.valid_bytes,
                    scan.last_seq.map_or(0, |s| s + 1),
                );
                let mut f = vfs.open_write(path).map_err(|e| io_err("wal repair", e))?;
                f.set_len(scan.valid_bytes)
                    .map_err(|e| io_err("wal repair", e))?;
                f.sync_all().map_err(|e| io_err("wal repair", e))?;
            }
            match scan.last_seq {
                Some(last) => {
                    next_seq = next_seq.max(last + 1);
                    closed.push(ClosedSegment {
                        path: path.clone(),
                        last_seq: last,
                        max_ts: scan.max_ts,
                    });
                }
                None => {
                    // Header-only segment: no records to keep.
                    vfs.remove_file(path).map_err(|e| io_err("wal repair", e))?;
                }
            }
        }
        Ok(Wal {
            dir: dir.to_path_buf(),
            prefix: prefix.to_string(),
            opts,
            vfs,
            active: None,
            closed,
            next_seq: next_seq.max(floor),
            appends_since_sync: 0,
            syncs: 0,
            scratch: Vec::new(),
            poisoned: false,
        })
    }

    /// The sequence the next append will receive (also: 1 + the last
    /// appended sequence, or 0 on a fresh log).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends `event` with the next sequence number, returning it.
    pub fn append(&mut self, event: EdgeEvent) -> Result<u64> {
        let seq = self.next_seq;
        self.append_with_seq(seq, event)?;
        Ok(seq)
    }

    /// Group commit: appends a whole micro-batch under dense sequences
    /// `first..first+N`, returning the first. The batch's frames are
    /// encoded back-to-back into the one reused buffer and land with a
    /// **single `write(2)`**, splitting only where a single-append stream
    /// would have acted anyway (a segment roll, or an
    /// [`FsyncPolicy::EveryN`] sync point — see the module docs): the
    /// on-disk bytes are identical to N [`Wal::append`] calls, for ~1/N
    /// of the syscall and policy-bookkeeping cost.
    ///
    /// Error contract: a failure before anything landed leaves the log
    /// at the prior record boundary and is safely retryable, exactly
    /// like a failed single append. A failure *after* part of the batch
    /// landed **poisons the WAL** — the call is then half-committed, and
    /// a retried slice would re-append the landed prefix under fresh
    /// sequences (recovery would double-apply those events); restart
    /// through recovery instead, which replays the landed prefix exactly
    /// once. The fsync-failure poison rules of [`Wal::append_with_seq`]
    /// apply unchanged.
    pub fn append_batch(&mut self, events: &[EdgeEvent]) -> Result<u64> {
        let first = self.next_seq;
        self.append_batch_with_first_seq(first, events)?;
        Ok(first)
    }

    /// Appends `event` under an externally-assigned sequence (the shared
    /// engine's global counter). Sequences must be strictly ascending per
    /// WAL.
    ///
    /// A failed *write* leaves the log positioned back at the last
    /// record boundary, so retrying with the same sequence is safe. If
    /// the boundary cannot be restored (the rewind itself fails), the
    /// WAL poisons itself and refuses all further appends — appending
    /// valid records after garbage bytes would strand everything behind
    /// a mid-log tear the replay scan cannot cross. A failed *fsync*
    /// after a successful write also poisons (see [`Wal::sync`]): the
    /// record's durability is then indeterminate — it may resurface at
    /// recovery even though the caller saw an error — and the only safe
    /// continuation is a restart through recovery, which reconciles
    /// against what the disk actually holds.
    pub fn append_with_seq(&mut self, seq: u64, event: EdgeEvent) -> Result<()> {
        self.append_batch_with_first_seq(seq, std::slice::from_ref(&event))
    }

    /// [`Wal::append_batch`] under externally-assigned dense sequences
    /// `first_seq..first_seq+N` (the shared engine's global counter —
    /// [`SharedWal::append_batch`] grabs one dense run per partition
    /// under that partition's lock). This is also the single-append code
    /// path (`N = 1`), which is what guarantees batch-vs-single byte
    /// parity of the segment files.
    ///
    /// The batch is written in maximal chunks: a chunk ends only where a
    /// segment roll is due or where a huge batch crosses an interior
    /// [`FsyncPolicy::EveryN`] `n`-record mark (a single call never
    /// defers more than `n` records; the interior sync lands on that
    /// record boundary — never mid-frame). With batch ≤ n and no roll,
    /// that is one `write(2)` for the whole batch, and the whole call
    /// counts as **one** fsync-policy durability unit (see
    /// [`FsyncPolicy`]).
    pub fn append_batch_with_first_seq(
        &mut self,
        first_seq: u64,
        events: &[EdgeEvent],
    ) -> Result<()> {
        // Poison check FIRST, even for an empty slice: `SharedWal`'s
        // once-retry re-submits the un-landed remainder of a failed
        // batch, which is empty exactly when everything landed but the
        // batch-end fsync failed (a poisoning error). An Ok on that
        // empty retry would swallow the sync failure and acknowledge a
        // batch whose durability is indeterminate.
        if self.poisoned {
            return Err(Error::Invariant(
                "wal is poisoned by an earlier failed append — reopen to repair".into(),
            ));
        }
        if events.is_empty() {
            return Ok(());
        }
        if first_seq < self.next_seq {
            return Err(Error::Invariant(format!(
                "wal sequence must ascend: got {first_seq}, expected >= {}",
                self.next_seq
            )));
        }
        let m = metrics::wal();
        m.append_calls.incr();
        m.records.add(events.len() as u64);
        m.batch_events.record(events.len() as u64);
        let period = match self.opts.fsync {
            FsyncPolicy::EveryN(n) => n.max(1),
            _ => u64::MAX,
        };
        let mut i = 0usize;
        let mut synced_at_mark = false;
        while i < events.len() {
            if self
                .active
                .as_ref()
                .is_none_or(|a| a.bytes >= self.opts.segment_bytes)
            {
                if let Err(e) = self.roll(first_seq + i as u64) {
                    // Same partial-commit rule as the write path below: a
                    // roll failure *between* landed chunks leaves the call
                    // half-committed, which a retry would duplicate.
                    if i > 0 {
                        self.mark_poisoned("roll between landed chunks", first_seq + i as u64);
                    }
                    return Err(e);
                }
            }
            // Records this chunk may hold before the call's next interior
            // n-record mark (counted from the call start).
            let until_mark = period - (i as u64 % period);
            let active = self.active.as_mut().expect("rolled above");
            let frame = &mut self.scratch;
            frame.clear();
            let mut count = 0usize;
            let mut max_ts = Timestamp::ZERO;
            while i + count < events.len()
                && (count as u64) < until_mark
                && (count == 0 || active.bytes + (frame.len() as u64) < self.opts.segment_bytes)
            {
                let event = events[i + count];
                encode_frame(frame, first_seq + (i + count) as u64, event);
                max_ts = max_ts.max(event.created_at);
                count += 1;
            }
            if let Err(e) = active.file.write_all(frame) {
                // A short write left partial frame bytes after the last
                // record; rewind to the boundary so the next append does
                // not bury them under a valid frame.
                let rewound = active.file.set_len(active.bytes).is_ok()
                    && active.file.seek(SeekFrom::Start(active.bytes)).is_ok();
                // Partial-commit rule: if *earlier chunks of this call*
                // already landed, the call is half-committed — a caller
                // retrying the same slice (safe for single appends, whose
                // failure leaves nothing behind) would re-append the
                // landed prefix under fresh sequences, and recovery would
                // replay those events twice. Poisoning makes the
                // half-committed state unrepresentable: the caller must
                // restart through recovery, which replays the landed
                // prefix exactly once. A first-chunk failure keeps the
                // single-append contract — nothing landed, retry is safe.
                if !rewound || i > 0 {
                    self.mark_poisoned("short write", first_seq + i as u64);
                }
                return Err(io_err("wal append", e));
            }
            active.bytes += frame.len() as u64;
            active.last_seq = first_seq + (i + count - 1) as u64;
            active.max_ts = active.max_ts.max(max_ts);
            self.next_seq = first_seq + (i + count) as u64;
            i += count;

            // Interior forced sync: a single call crossing an n-record
            // mark syncs there (⌈N/n⌉ syncs for an n-aligned batch).
            synced_at_mark = period != u64::MAX && (i as u64).is_multiple_of(period);
            if synced_at_mark {
                self.sync()?;
            }
        }
        // The call-end policy tick: the whole batch was one durability
        // unit (unless an interior mark just synced it).
        match self.opts.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if !synced_at_mark {
                    self.appends_since_sync += 1;
                    if self.appends_since_sync >= n.max(1) {
                        self.sync()?;
                    }
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Marks the log unusable for further appends (see
    /// [`Wal::append_with_seq`]); used by [`SharedWal`] when a globally
    /// assigned sequence could not be written even after a retry — the
    /// partition's durable tail must then end *below* the burned
    /// sequence, so [`SharedWal::replay_merged`]'s gap check classifies
    /// it as a tolerable tail loss instead of refusing recovery.
    fn poison(&mut self) {
        self.mark_poisoned("burned sequence", self.next_seq);
    }

    /// The single poison-entry point: sets the flag, bumps the
    /// process-wide poison counter, and drops a [`TraceKind::WalPoison`]
    /// event (label = why, `a` = the sequence involved) into the flight
    /// recorder so a post-mortem dump names the failing operation.
    fn mark_poisoned(&mut self, why: &'static str, seq: u64) {
        self.poisoned = true;
        metrics::wal().poisons.incr();
        recorder::record(TraceKind::WalPoison, why, seq, 0);
    }

    /// Forces an `fdatasync` of the active segment.
    ///
    /// A reported fsync failure poisons the log: the kernel consumes the
    /// error state, so whether already-written records reached disk is
    /// unknowable afterwards — continuing to append (and acknowledge)
    /// on top of maybe-lost bytes would silently break the recovery
    /// contract. The caller must treat in-flight events as indeterminate
    /// and restart through recovery, which trusts only what actually
    /// survives on disk.
    pub fn sync(&mut self) -> Result<()> {
        if let Some(active) = self.active.as_mut() {
            if let Err(e) = active.file.sync_data() {
                recorder::record(TraceKind::FsyncFail, "wal fsync", self.next_seq, 0);
                self.mark_poisoned("wal fsync", self.next_seq);
                return Err(io_err("wal fsync", e));
            }
            self.syncs += 1;
            metrics::wal().fsyncs.incr();
        }
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Number of `fdatasync` calls issued against active segments so far
    /// (policy-triggered and explicit alike) — the observable the group
    /// commit regression tests pin: [`FsyncPolicy::EveryN`] counts
    /// durability *units* (append calls), so batching may only make
    /// syncs rarer — per-event appends keep the historical per-record
    /// cadence exactly, a stream of batches syncs every `n` batches, and
    /// a batched log never syncs more often than its single-append twin.
    pub fn sync_count(&self) -> u64 {
        self.syncs
    }

    fn roll(&mut self, first_seq: u64) -> Result<()> {
        self.close_active()?;
        let path = self
            .dir
            .join(format!("{}{:020}.wal", self.prefix, first_seq));
        let mut file = self
            .vfs
            .create_new(&path)
            .map_err(|e| io_err("wal segment create", e))?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&first_seq.to_le_bytes());
        if let Err(e) = file.write_all(&header) {
            // Remove the half-headered shell so a retried roll can
            // create_new the same path instead of hitting EEXIST forever.
            let _ = self.vfs.remove_file(&path);
            return Err(io_err("wal header", e));
        }
        // The new segment's *name* must survive power loss too — fsyncing
        // record bytes into a file the directory forgot is lost history.
        if !matches!(self.opts.fsync, FsyncPolicy::Never) {
            if let Err(e) = self.vfs.sync_dir(&self.dir) {
                // Same retryability contract as the header-write branch:
                // leave no orphan shell behind, or the retried roll hits
                // create_new EEXIST forever.
                let _ = self.vfs.remove_file(&path);
                return Err(io_err("wal dir fsync", e));
            }
        }
        self.active = Some(ActiveSegment {
            file,
            path,
            bytes: HEADER_LEN,
            last_seq: first_seq,
            max_ts: Timestamp::ZERO,
        });
        Ok(())
    }

    fn close_active(&mut self) -> Result<()> {
        // Sync before taking: a failed sync must leave the segment
        // tracked as active (not silently dropped from both the active
        // slot and the closed list, where reclaim could never find it).
        if let Some(active) = self.active.as_mut() {
            if !matches!(self.opts.fsync, FsyncPolicy::Never) {
                if let Err(e) = active.file.sync_data() {
                    recorder::record(TraceKind::FsyncFail, "wal segment close", self.next_seq, 0);
                    self.mark_poisoned("wal segment close fsync", self.next_seq);
                    return Err(io_err("wal fsync", e));
                }
                metrics::wal().fsyncs.incr();
            }
        }
        if let Some(active) = self.active.take() {
            if active.bytes > HEADER_LEN {
                self.closed.push(ClosedSegment {
                    path: active.path,
                    last_seq: active.last_seq,
                    max_ts: active.max_ts,
                });
            } else {
                // Never received a record: drop the empty shell. A
                // failed unlink here is deliberately swallowed — the
                // header-only leftover carries no history and the next
                // open() removes it (audited under fault injection).
                let _ = self.vfs.remove_file(&active.path);
            }
        }
        Ok(())
    }

    /// Deletes closed segments that are fully reclaimable: every record
    /// is older than `cutoff` (the store's own window pruning has already
    /// discarded those entries) **and** covered by the checkpoint at
    /// `checkpoint_seq` (replay will never need them). Returns how many
    /// segments were deleted.
    pub fn reclaim_before(&mut self, cutoff: Timestamp, checkpoint_seq: u64) -> Result<usize> {
        let mut removed = 0usize;
        // Retain-style so a failed unlink keeps every undeleted segment
        // tracked (an early return mid-drain would forget them all and
        // make them unreclaimable until reopen).
        let mut first_err: Option<Error> = None;
        self.closed.retain(|seg| {
            if first_err.is_some() || !(seg.max_ts < cutoff && seg.last_seq <= checkpoint_seq) {
                return true;
            }
            match self.vfs.remove_file(&seg.path) {
                Ok(()) => {
                    removed += 1;
                    false
                }
                // Already gone is already reclaimed.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    removed += 1;
                    false
                }
                Err(e) => {
                    first_err = Some(io_err("wal reclaim", e));
                    true
                }
            }
        });
        if removed > 0 && !matches!(self.opts.fsync, FsyncPolicy::Never) {
            // A failed directory fsync here is loud but not lossy: the
            // unlinked segments were all checkpoint-covered, so even a
            // power loss that resurrects their names replays nothing new
            // (records below `min_seq` are filtered). Propagating beats
            // swallowing — the caller learns reclamation durability is
            // unconfirmed — and takes precedence over a per-segment
            // unlink error, which the retained list already preserves
            // for the next reclaim pass to retry.
            self.vfs
                .sync_dir(&self.dir)
                .map_err(|e| io_err("wal reclaim dir fsync", e))?;
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(removed),
        }
    }

    /// Number of on-disk segments (closed + active).
    pub fn segment_count(&self) -> usize {
        self.closed.len() + usize::from(self.active.is_some())
    }

    /// Flushes and syncs (per policy) without consuming the WAL.
    pub fn close(mut self) -> Result<()> {
        self.close_active()
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        let _ = self.close_active();
    }
}

/// The partition an event for target `dst` routes to, out of `parts` —
/// the single definition shared by appends, fenced exports, and
/// fence-vector replay. **Not** the sharded store's shard function (that
/// one masks against a power of two); a checkpoint filters targets by
/// *this* function, because the WAL is what the fence vector cuts.
pub fn route_partition(dst: &UserId, parts: usize) -> usize {
    (magicrecs_types::route_mix(dst) as usize) % parts
}

/// Per-partition WALs behind one global sequence — the shared-engine
/// deployment's log. Events are routed to a partition by the same
/// [`magicrecs_types::route_mix`] hash the sharded store and worker pool
/// use, so each worker's appends land in "its" partition log and
/// contention stays within the route.
///
/// Sequence assignment happens **under the partition lock**, so each
/// partition's log is strictly ascending (the per-segment invariant) and
/// same-target events get sequence order matching their processing order.
///
/// ## Shard-epoch fencing
///
/// A non-quiescent checkpoint cuts the log one partition at a time with
/// [`SharedWal::with_partition_fenced`]: it holds partition `p`'s lock
/// (blocking only that partition's appends), drains the in-flight
/// store applies ticketed by [`SharedWal::append_tracked`] /
/// [`SharedWal::append_batch_tracked`], syncs, and hands the caller
/// `p`'s **fence** — the first sequence the cut does *not* cover. While
/// the callback exports partition `p`'s targets, every other partition
/// keeps ingesting.
pub struct SharedWal {
    parts: Vec<Mutex<Wal>>,
    seq: AtomicU64,
    /// Per-partition count of appends whose store apply has not finished
    /// yet. Incremented under the partition lock (so a fence holding
    /// that lock observes every ticket issued before it), decremented by
    /// [`ApplyTicket::drop`] after the caller's store apply.
    pending: Vec<AtomicU64>,
}

/// RAII ticket pairing a tracked WAL append with its store apply: the
/// fence waits for all tickets of a partition to drop before it trusts
/// the store to reflect everything the log holds. Hold it across the
/// store mutation, drop it after.
#[must_use = "dropping the ticket before the store apply completes lets a fence cut between the WAL append and the apply"]
pub struct ApplyTicket<'a> {
    pending: &'a [AtomicU64],
    parts: TicketParts,
}

enum TicketParts {
    One(usize),
    Many(Vec<usize>),
}

impl Drop for ApplyTicket<'_> {
    fn drop(&mut self) {
        match &self.parts {
            TicketParts::One(p) => {
                self.pending[*p].fetch_sub(1, Ordering::Release);
            }
            TicketParts::Many(ps) => {
                for &p in ps {
                    self.pending[p].fetch_sub(1, Ordering::Release);
                }
            }
        }
    }
}

impl SharedWal {
    /// Prefix for partition `i`.
    fn prefix(i: usize) -> String {
        format!("wal-p{i}-")
    }

    /// Creates `parts` fresh per-partition WALs in `dir`.
    pub fn create(dir: &Path, parts: usize, opts: WalOptions) -> Result<SharedWal> {
        Self::create_with_vfs(dir, parts, opts, std_vfs())
    }

    /// [`SharedWal::create`] on an explicit I/O backend shared by every
    /// partition WAL.
    pub fn create_with_vfs(
        dir: &Path,
        parts: usize,
        opts: WalOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<SharedWal> {
        assert!(parts >= 1, "need at least one wal partition");
        let parts = (0..parts)
            .map(|i| {
                Ok(Mutex::new(Wal::create_with_vfs(
                    dir,
                    &Self::prefix(i),
                    opts,
                    Arc::clone(&vfs),
                )?))
            })
            .collect::<Result<Vec<_>>>()?;
        let pending = (0..parts.len()).map(|_| AtomicU64::new(0)).collect();
        Ok(SharedWal {
            parts,
            seq: AtomicU64::new(0),
            pending,
        })
    }

    /// Opens `parts` existing per-partition WALs (repairing torn tails);
    /// the global sequence resumes after the maximum across partitions.
    ///
    /// The partition count is part of the log's identity (targets route
    /// by `hash % parts`): opening with fewer partitions than files
    /// exist for would silently drop the excess partitions' history, so
    /// it is refused.
    pub fn open(dir: &Path, parts: usize, opts: WalOptions) -> Result<SharedWal> {
        Self::open_with_floor(dir, parts, opts, 0)
    }

    /// [`SharedWal::open`] with a lower bound on the resumed global
    /// sequence — same contract as [`Wal::open_with_floor`]: recovery
    /// passes `checkpoint.last_seq + 1` so fully-reclaimed partition logs
    /// can never restart the sequence below what a checkpoint covers.
    pub fn open_with_floor(
        dir: &Path,
        parts: usize,
        opts: WalOptions,
        floor: u64,
    ) -> Result<SharedWal> {
        Self::open_with_floor_vfs(dir, parts, opts, floor, std_vfs())
    }

    /// [`SharedWal::open_with_floor`] on an explicit I/O backend shared
    /// by every partition WAL.
    pub fn open_with_floor_vfs(
        dir: &Path,
        parts: usize,
        opts: WalOptions,
        floor: u64,
        vfs: Arc<dyn Vfs>,
    ) -> Result<SharedWal> {
        assert!(parts >= 1, "need at least one wal partition");
        Self::check_partition_count(dir, parts)?;
        let parts = (0..parts)
            .map(|i| {
                Ok(Mutex::new(Wal::open_with_floor_vfs(
                    dir,
                    &Self::prefix(i),
                    opts,
                    0,
                    Arc::clone(&vfs),
                )?))
            })
            .collect::<Result<Vec<_>>>()?;
        let next = parts.iter().map(|p| p.lock().next_seq()).max().unwrap_or(0);
        let pending = (0..parts.len()).map(|_| AtomicU64::new(0)).collect();
        Ok(SharedWal {
            parts,
            seq: AtomicU64::new(next.max(floor)),
            pending,
        })
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Refuses a partition count smaller than what the directory's
    /// `wal-p<i>-` files imply.
    fn check_partition_count(dir: &Path, parts: usize) -> Result<()> {
        if let Some(&max_idx) = existing_wal_partitions(dir)?.last() {
            if max_idx >= parts {
                return Err(Error::Invariant(format!(
                    "wal directory {} holds segments for partition {max_idx} but only \
                     {parts} partition(s) were requested — opening would silently drop \
                     the excess partitions' history",
                    dir.display()
                )));
            }
        }
        Ok(())
    }

    /// Appends `event` to the partition its target routes to, returning
    /// the assigned global sequence.
    pub fn append(&self, event: EdgeEvent) -> Result<u64> {
        self.append_impl(event, false).map(|(seq, _)| seq)
    }

    /// [`SharedWal::append`] that additionally registers the caller's
    /// upcoming store apply with the partition's fence: hold the
    /// returned [`ApplyTicket`] across the store mutation. The ticket is
    /// issued under the same partition lock that assigned the sequence,
    /// so a fence can never observe the sequence as durable while
    /// missing the in-flight apply.
    pub fn append_tracked(&self, event: EdgeEvent) -> Result<(u64, ApplyTicket<'_>)> {
        let (seq, p) = self.append_impl(event, true)?;
        Ok((
            seq,
            ApplyTicket {
                pending: &self.pending,
                parts: TicketParts::One(p),
            },
        ))
    }

    fn append_impl(&self, event: EdgeEvent, track: bool) -> Result<(u64, usize)> {
        let p = route_partition(&event.dst, self.parts.len());
        let mut wal = self.parts[p].lock();
        // Assign inside the lock: this partition's sequences stay
        // ascending no matter how appends interleave across partitions.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let appended = match wal.append_with_seq(seq, event) {
            Ok(()) => Ok(()),
            Err(first) => {
                // The global sequence is already consumed (other
                // partitions may hold higher ones), so it must either
                // land or become this partition's *permanent tail*: one
                // retry against the rewound record boundary, and on a
                // second failure the partition is poisoned. A poisoned
                // partition's durable log ends below the burned
                // sequence, which `replay_merged`'s gap check tolerates
                // as a tail loss — without the poison, a later
                // successful append above the hole would make recovery
                // refuse the whole log as corrupt.
                match wal.append_with_seq(seq, event) {
                    Ok(()) => Ok(()),
                    Err(_) => {
                        wal.poison();
                        Err(first)
                    }
                }
            }
        };
        appended?;
        if track {
            // Still under the partition lock: a fence that later takes
            // this lock is guaranteed to see the pending apply.
            self.pending[p].fetch_add(1, Ordering::Relaxed);
        }
        Ok((seq, p))
    }

    /// Group commit across partitions: routes every event of `events` to
    /// its target's partition, takes each partition lock **at most
    /// once**, and appends each partition's sub-batch (in stream order)
    /// under a dense run of global sequences assigned under that one
    /// lock hold — one `write(2)` and one fsync-policy pass per touched
    /// partition instead of one per event. Returns the number of events
    /// appended.
    ///
    /// Per-target order is preserved (targets are route-sticky and each
    /// sub-batch keeps stream order), which is all `D` semantics need;
    /// *cross*-partition sequence interleaving differs from N single
    /// [`SharedWal::append`] calls — dense runs instead of round-robin —
    /// but [`SharedWal::replay_merged`] orders by global sequence, so
    /// replay is deterministic either way.
    ///
    /// A failed sub-batch is retried once from the exact record boundary
    /// it reached; on a second failure the partition is poisoned so its
    /// burned sequences read as that partition's tail loss at recovery
    /// (same rationale as [`SharedWal::append`]). Earlier partitions'
    /// sub-batches stay committed; like a failed single append, the
    /// caller must treat the batch as indeterminate and restart through
    /// recovery.
    pub fn append_batch(&self, events: &[EdgeEvent]) -> Result<u64> {
        self.append_batch_impl(events, false).map(|(n, _)| n)
    }

    /// [`SharedWal::append_batch`] that registers the caller's upcoming
    /// store apply with every touched partition's fence — hold the
    /// returned [`ApplyTicket`] across the store mutation (same contract
    /// as [`SharedWal::append_tracked`], one pending unit per touched
    /// partition). On error no ticket is issued and any partial
    /// registrations are withdrawn: the caller restarts through
    /// recovery, so there is no apply for a fence to wait on.
    pub fn append_batch_tracked(&self, events: &[EdgeEvent]) -> Result<(u64, ApplyTicket<'_>)> {
        let (n, touched) = self.append_batch_impl(events, true)?;
        Ok((
            n,
            ApplyTicket {
                pending: &self.pending,
                parts: TicketParts::Many(touched),
            },
        ))
    }

    fn append_batch_impl(&self, events: &[EdgeEvent], track: bool) -> Result<(u64, Vec<usize>)> {
        let mut touched: Vec<usize> = Vec::new();
        if events.is_empty() {
            return Ok((0, touched));
        }
        // Pre-partition by route, preserving stream order within each
        // bucket. One pass; bucket storage is per call (amortized over
        // the batch).
        let mut buckets: Vec<Vec<EdgeEvent>> = vec![Vec::new(); self.parts.len()];
        for &event in events {
            buckets[route_partition(&event.dst, self.parts.len())].push(event);
        }
        for (p, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut wal = self.parts[p].lock();
            // Assign the dense run inside the lock: this partition's
            // sequences stay ascending no matter how batches interleave
            // across partitions.
            let first = self.seq.fetch_add(bucket.len() as u64, Ordering::Relaxed);
            if let Err(first_err) = wal.append_batch_with_first_seq(first, bucket) {
                // If nothing landed the partition is unpoisoned and the
                // whole run retries once (the single-append contract). A
                // *partial* landing already poisoned the partition, so
                // the retry below fails immediately and the second
                // poison() is a no-op — either way a still-failing run's
                // burned tail becomes this partition's permanent durable
                // end, which recovery tolerates (see `SharedWal::append`).
                let landed = (wal.next_seq().saturating_sub(first) as usize).min(bucket.len());
                if wal
                    .append_batch_with_first_seq(first + landed as u64, &bucket[landed..])
                    .is_err()
                {
                    wal.poison();
                    // Withdraw partial registrations: no apply will
                    // follow a failed batch, so leaving them would hang
                    // every future fence on the touched partitions.
                    for &t in &touched {
                        self.pending[t].fetch_sub(1, Ordering::Release);
                    }
                    return Err(first_err);
                }
            }
            if track {
                // Under the partition lock, same rationale as
                // `append_tracked`.
                self.pending[p].fetch_add(1, Ordering::Relaxed);
                touched.push(p);
            }
        }
        Ok((events.len() as u64, touched))
    }

    /// The next global sequence to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Syncs every partition.
    pub fn sync_all(&self) -> Result<()> {
        for p in &self.parts {
            p.lock().sync()?;
        }
        Ok(())
    }

    /// Cuts partition `p` at a consistent fence and runs `f(fence)`
    /// while holding the cut: takes `p`'s lock (stalling only appends
    /// routed to `p`), waits for every in-flight tracked apply on `p` to
    /// finish, syncs the partition, and calls `f` with the fence — the
    /// first sequence the cut does **not** cover. While `f` runs, no new
    /// `p`-routed event can be logged or applied, so a store export
    /// taken inside `f` reflects *exactly* the events below the fence
    /// for `p`-routed targets; every other partition ingests
    /// undisturbed.
    ///
    /// `f` must not append to this `SharedWal` (self-deadlock on `p`'s
    /// lock) and should touch only `p`-routed state; store shard locks
    /// taken inside `f` are fine because ingest never holds a shard lock
    /// while acquiring a partition lock.
    pub fn with_partition_fenced<R>(
        &self,
        p: usize,
        f: impl FnOnce(u64) -> Result<R>,
    ) -> Result<R> {
        let mut wal = self.parts[p].lock();
        // Ticket holders never block on this partition's lock (they
        // already released it) — they finish their store apply and drop,
        // so this wait is bounded by one apply, not by ingest rate.
        let mut spins = 0u32;
        while self.pending[p].load(Ordering::Acquire) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // Durability before coverage: the fence authorizes recovery to
        // skip everything below it, so everything below it must be on
        // disk first. Under `FsyncPolicy::Never` the operator opted out
        // of that promise (matching roll/close/reclaim, which skip their
        // fsyncs too) and coverage rides on the checkpoint file's own
        // fsync-then-rename publish — skipping the flush here keeps the
        // fenced window (and the one stalled partition) short.
        if !matches!(wal.opts.fsync, FsyncPolicy::Never) {
            wal.sync()?;
        }
        let fence = wal.next_seq();
        recorder::record(
            TraceKind::CkptFenceEnter,
            "partition fence",
            p as u64,
            fence,
        );
        let out = f(fence);
        recorder::record(TraceKind::CkptFenceExit, "partition fence", p as u64, fence);
        out
    }

    /// Each partition's next sequence — the fence vector a cut "right
    /// now, with nothing in flight" would record. Used by the sealing
    /// checkpoint at open, where the engine is provably quiescent.
    pub fn partition_next_seqs(&self) -> Vec<u64> {
        self.parts.iter().map(|p| p.lock().next_seq()).collect()
    }

    /// Reclaims fully-pruned, fully-checkpointed segments on every
    /// partition. Returns segments deleted.
    pub fn reclaim_before(&self, cutoff: Timestamp, checkpoint_seq: u64) -> Result<usize> {
        let mut removed = 0;
        for p in &self.parts {
            removed += p.lock().reclaim_before(cutoff, checkpoint_seq)?;
        }
        Ok(removed)
    }

    /// [`SharedWal::reclaim_before`] against a per-partition fence
    /// vector: partition `i`'s segments are covered through
    /// `fences[i] - 1`, so each partition reclaims against its *own*
    /// fence instead of one global covered sequence. A zero fence means
    /// the chain covers nothing of that partition — nothing reclaims.
    pub fn reclaim_before_fenced(&self, cutoff: Timestamp, fences: &[u64]) -> Result<usize> {
        assert_eq!(fences.len(), self.parts.len(), "fence vector length");
        let mut removed = 0;
        for (p, &fence) in self.parts.iter().zip(fences) {
            if fence == 0 {
                continue;
            }
            removed += p.lock().reclaim_before(cutoff, fence - 1)?;
        }
        Ok(removed)
    }

    /// Replays all partitions' records with `seq >= min_seq`, merged into
    /// global sequence order. Per-target order is what `D` semantics need
    /// and per-partition order already provides it (targets are
    /// partition-sticky); the global sort additionally makes replay
    /// deterministic.
    ///
    /// Gap detection: global sequences are assigned densely across
    /// partitions, so after merging, every sequence in
    /// `[min_seq, min-over-partitions(last durable seq)]` must be
    /// present. A sequence missing from that range cannot be any
    /// partition's torn/unsynced tail (every partition's log provably
    /// extends past it), so it means a lost or deleted middle segment —
    /// refused as [`Error::Corrupt`] rather than silently rebuilding `D`
    /// without that history. Gaps *above* the minimum tail are tolerated:
    /// they are exactly the crash signature of independently-synced
    /// partition tails. The check only runs when every partition holds at
    /// least one surviving record — a record-less partition's losses are
    /// indistinguishable from never-routed silence, so any hole could be
    /// its lost tail.
    ///
    /// Memory: the merge materializes every replayed record before
    /// sorting, so peak memory is O(records past the checkpoint) —
    /// bounded by the checkpoint cadence in any reclaiming deployment.
    /// With checkpoints disabled (`checkpoint_every = 0`) it is the whole
    /// history; a streaming k-way merge is the upgrade path if that
    /// configuration ever needs large logs.
    pub fn replay_merged(
        dir: &Path,
        parts: usize,
        min_seq: u64,
        f: impl FnMut(WalRecord),
    ) -> Result<ReplayStats> {
        Self::replay_merged_fenced(dir, parts, &vec![min_seq; parts], f)
    }

    /// [`SharedWal::replay_merged`] against a per-partition fence
    /// vector, as recorded by a non-quiescent checkpoint: partition
    /// `i` replays records with `seq >= fences[i]`.
    ///
    /// The density check adapts to the cut's shape: sequences below
    /// `max(fences)` are legitimately absent from the merge (each is
    /// either covered by its own partition's fence or belongs to another
    /// partition entirely), so density is demanded only on
    /// `[max(fences), min-over-partitions(last durable seq)]`, where
    /// every surviving sequence must appear regardless of routing. With
    /// a uniform fence vector this degenerates to exactly the
    /// single-`min_seq` check.
    pub fn replay_merged_fenced(
        dir: &Path,
        parts: usize,
        fences: &[u64],
        mut f: impl FnMut(WalRecord),
    ) -> Result<ReplayStats> {
        assert_eq!(fences.len(), parts, "fence vector length");
        Self::check_partition_count(dir, parts)?;
        let mut records: Vec<WalRecord> = Vec::new();
        let mut merged = ReplayStats::default();
        let mut min_tail: Option<u64> = None;
        let mut all_partitions_have_records = true;
        for (i, &fence) in fences.iter().enumerate() {
            let stats = replay(dir, &Self::prefix(i), fence, |r| records.push(r))?;
            merged.torn_tail |= stats.torn_tail;
            merged.last_seq = merged.last_seq.max(stats.last_seq);
            match stats.last_seq {
                Some(last) => min_tail = Some(min_tail.map_or(last, |t: u64| t.min(last))),
                // A record-less partition disables the check entirely: its
                // durable floor is unknowable, so *any* missing sequence
                // could be its lost tail (e.g. a burned first append on a
                // cold partition) — refusing would brick an undamaged
                // directory. The post-recovery sealing checkpoint restores
                // full checking for everything after this open.
                None => all_partitions_have_records = false,
            }
        }
        records.sort_by_key(|r| r.seq);
        let lo = fences.iter().copied().max().unwrap_or(0);
        if let Some(min_tail) = min_tail.filter(|_| all_partitions_have_records) {
            let above = records.iter().skip_while(|r| r.seq < lo);
            for (expected, r) in (lo..).zip(above.take_while(|r| r.seq <= min_tail)) {
                if r.seq != expected {
                    return Err(Error::Corrupt(format!(
                        "shared wal gap: sequence {expected} is missing but every \
                         partition's log extends through {min_tail} — a middle segment \
                         was lost"
                    )));
                }
            }
        }
        merged.records = records.len() as u64;
        for r in records {
            f(r);
        }
        Ok(merged)
    }

    /// Record boundaries across all partitions, sorted by global
    /// sequence.
    pub fn record_boundaries(dir: &Path, parts: usize) -> Result<Vec<RecordBoundary>> {
        let mut out = Vec::new();
        for i in 0..parts {
            out.extend(record_boundaries(dir, &Self::prefix(i))?);
        }
        out.sort_by_key(|b| b.seq);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use std::fs::OpenOptions;

    fn u(n: u64) -> UserId {
        UserId(n)
    }

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn ev(i: u64) -> EdgeEvent {
        EdgeEvent::follow(u(i), u(1000 + i % 7), ts(i))
    }

    fn collect(dir: &Path, prefix: &str, from: u64) -> (Vec<WalRecord>, ReplayStats) {
        let mut out = Vec::new();
        let stats = replay(dir, prefix, from, |r| out.push(r)).unwrap();
        (out, stats)
    }

    #[test]
    fn append_replay_roundtrip() {
        let t = TempDir::new("wal");
        let mut wal = Wal::create(t.path(), "wal-", WalOptions::default()).unwrap();
        for i in 0..100 {
            assert_eq!(wal.append(ev(i)).unwrap(), i);
        }
        wal.close().unwrap();
        let (records, stats) = collect(t.path(), "wal-", 0);
        assert_eq!(records.len(), 100);
        assert_eq!(stats.last_seq, Some(99));
        assert!(!stats.torn_tail);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.event, ev(i as u64));
        }
        // min_seq is inclusive: resuming after checkpoint c passes c+1.
        let (tail, _) = collect(t.path(), "wal-", 60);
        assert_eq!(tail.len(), 40);
        assert_eq!(tail[0].seq, 60);
        let (none, _) = collect(t.path(), "wal-", u64::MAX);
        assert!(none.is_empty());
    }

    #[test]
    fn segments_roll_and_replay_in_order() {
        let t = TempDir::new("wal");
        let opts = WalOptions {
            segment_bytes: 256,
            ..WalOptions::default()
        };
        let mut wal = Wal::create(t.path(), "wal-", opts).unwrap();
        for i in 0..200 {
            wal.append(ev(i)).unwrap();
        }
        assert!(wal.segment_count() > 1, "should have rolled");
        wal.close().unwrap();
        let mut seqs = Vec::new();
        replay(t.path(), "wal-", 0, |r| seqs.push(r.seq)).unwrap();
        assert_eq!(seqs, (0..200).collect::<Vec<u64>>());
    }

    #[test]
    fn truncated_tail_is_detected_and_repaired_on_open() {
        let t = TempDir::new("wal");
        let mut wal = Wal::create(t.path(), "wal-", WalOptions::default()).unwrap();
        for i in 0..10 {
            wal.append(ev(i)).unwrap();
        }
        wal.close().unwrap();
        let seg = list_segments(t.path(), "wal-").unwrap().pop().unwrap();
        let len = std::fs::metadata(&seg).unwrap().len();
        // Chop 3 bytes off the last record.
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let (records, stats) = collect(t.path(), "wal-", u64::MAX);
        assert!(records.is_empty());
        assert!(stats.torn_tail);
        assert_eq!(stats.last_seq, Some(8), "only 9 complete records remain");

        let mut reopened = Wal::open(t.path(), "wal-", WalOptions::default()).unwrap();
        assert_eq!(reopened.next_seq(), 9);
        reopened.append(ev(100)).unwrap();
        reopened.close().unwrap();
        let (_, stats) = collect(t.path(), "wal-", 0);
        assert!(!stats.torn_tail, "open must have repaired the tear");
        assert_eq!(stats.last_seq, Some(9));
    }

    #[test]
    fn corrupt_middle_segment_is_refused() {
        let t = TempDir::new("wal");
        let opts = WalOptions {
            segment_bytes: 128,
            ..WalOptions::default()
        };
        let mut wal = Wal::create(t.path(), "wal-", opts).unwrap();
        for i in 0..100 {
            wal.append(ev(i)).unwrap();
        }
        wal.close().unwrap();
        let segments = list_segments(t.path(), "wal-").unwrap();
        assert!(segments.len() >= 3);
        // Flip one payload byte in a middle segment.
        let victim = &segments[1];
        let mut bytes = std::fs::read(victim).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0xFF;
        std::fs::write(victim, bytes).unwrap();
        let err = replay(t.path(), "wal-", 0, |_| {}).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
        assert!(Wal::open(t.path(), "wal-", opts).is_err());
    }

    #[test]
    fn reclaim_respects_window_and_checkpoint() {
        let t = TempDir::new("wal");
        let opts = WalOptions {
            segment_bytes: 128,
            ..WalOptions::default()
        };
        let mut wal = Wal::create(t.path(), "wal-", opts).unwrap();
        for i in 0..100 {
            wal.append(ev(i)).unwrap(); // timestamps 0..100 s
        }
        let before = wal.segment_count();
        // Not checkpointed: nothing reclaimable even when far past τ.
        assert_eq!(wal.reclaim_before(ts(1_000), 0).unwrap(), 0);
        // Checkpointed through seq 50: only segments fully before both
        // bounds go.
        let removed = wal.reclaim_before(ts(1_000), 50).unwrap();
        assert!(removed > 0);
        assert!(wal.segment_count() < before);
        // Everything past the checkpoint still replays.
        wal.close().unwrap();
        let mut seqs = Vec::new();
        replay(t.path(), "wal-", 51, |r| seqs.push(r.seq)).unwrap();
        assert_eq!(seqs, (51..100).collect::<Vec<u64>>());
    }

    #[test]
    fn create_refuses_existing_segments() {
        let t = TempDir::new("wal");
        let mut wal = Wal::create(t.path(), "wal-", WalOptions::default()).unwrap();
        wal.append(ev(0)).unwrap();
        wal.close().unwrap();
        assert!(Wal::create(t.path(), "wal-", WalOptions::default()).is_err());
        // A different prefix is fine.
        assert!(Wal::create(t.path(), "other-", WalOptions::default()).is_ok());
    }

    #[test]
    fn record_boundaries_cover_every_record() {
        let t = TempDir::new("wal");
        let opts = WalOptions {
            segment_bytes: 200,
            ..WalOptions::default()
        };
        let mut wal = Wal::create(t.path(), "wal-", opts).unwrap();
        for i in 0..50 {
            wal.append(ev(i)).unwrap();
        }
        wal.close().unwrap();
        let bounds = record_boundaries(t.path(), "wal-").unwrap();
        assert_eq!(bounds.len(), 50);
        let seqs: Vec<u64> = bounds.iter().map(|b| b.seq).collect();
        assert_eq!(seqs, (0..50).collect::<Vec<u64>>());
        assert!(bounds
            .windows(2)
            .all(|w| w[0].path != w[1].path || w[0].offset_after < w[1].offset_after));
    }

    #[test]
    fn shared_wal_routes_and_merges() {
        let t = TempDir::new("wal");
        let shared = SharedWal::create(t.path(), 4, WalOptions::default()).unwrap();
        for i in 0..500 {
            shared.append(ev(i)).unwrap();
        }
        assert_eq!(shared.next_seq(), 500);
        shared.sync_all().unwrap();
        drop(shared);
        let mut records = Vec::new();
        let stats = SharedWal::replay_merged(t.path(), 4, 0, |r| records.push(r)).unwrap();
        assert_eq!(stats.records, 500);
        assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));
        // Per-target stickiness: each target's records live in one prefix.
        let bounds = SharedWal::record_boundaries(t.path(), 4).unwrap();
        assert_eq!(bounds.len(), 500);
        let reopened = SharedWal::open(t.path(), 4, WalOptions::default()).unwrap();
        assert_eq!(reopened.next_seq(), 500);
    }

    #[test]
    fn missing_middle_segment_is_a_gap_for_contiguous_replay() {
        let t = TempDir::new("wal");
        let opts = WalOptions {
            segment_bytes: 128,
            ..WalOptions::default()
        };
        let mut wal = Wal::create(t.path(), "wal-", opts).unwrap();
        for i in 0..100 {
            wal.append(ev(i)).unwrap();
        }
        wal.close().unwrap();
        let segments = list_segments(t.path(), "wal-").unwrap();
        assert!(segments.len() >= 3);
        std::fs::remove_file(&segments[1]).unwrap();
        // Plain replay (the sparse-sequence per-partition primitive)
        // cannot see the hole…
        assert!(replay(t.path(), "wal-", 0, |_| {}).is_ok());
        // …but the dense-sequence recovery path refuses it.
        let err = replay_contiguous(t.path(), "wal-", 0, |_| {}).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("gap"), "{err}");
    }

    #[test]
    fn open_floor_prevents_sequence_regression_after_full_reclaim() {
        let t = TempDir::new("wal");
        let opts = WalOptions {
            segment_bytes: 128,
            ..WalOptions::default()
        };
        let mut wal = Wal::create(t.path(), "wal-", opts).unwrap();
        for i in 0..50 {
            wal.append(ev(i)).unwrap();
        }
        wal.close().unwrap();
        // Checkpoint covered everything, window long passed: every
        // segment is reclaimable and the directory legitimately empties.
        let mut wal = Wal::open(t.path(), "wal-", opts).unwrap();
        assert!(wal.reclaim_before(ts(1_000), 49).unwrap() > 0);
        assert_eq!(wal.segment_count(), 0);
        drop(wal);
        assert!(list_segments(t.path(), "wal-").unwrap().is_empty());
        // A plain scan restarts at 0 — that is the hazard the floor
        // exists for: new appends below the checkpoint's coverage would
        // be skipped by the next recovery's min_seq filter.
        assert_eq!(Wal::open(t.path(), "wal-", opts).unwrap().next_seq(), 0);
        let mut wal = Wal::open_with_floor(t.path(), "wal-", opts, 50).unwrap();
        assert_eq!(wal.next_seq(), 50);
        assert_eq!(wal.append(ev(50)).unwrap(), 50);
        wal.close().unwrap();
        // The new record is visible to a replay resuming past the
        // checkpoint, and the floor is a no-op when the scan is ahead.
        let (records, _) = collect(t.path(), "wal-", 50);
        assert_eq!(records.len(), 1);
        let wal = Wal::open_with_floor(t.path(), "wal-", opts, 7).unwrap();
        assert_eq!(wal.next_seq(), 51);
    }

    #[test]
    fn merged_replay_refuses_lost_middle_partition_segment() {
        let t = TempDir::new("wal");
        let opts = WalOptions {
            segment_bytes: 128,
            ..WalOptions::default()
        };
        let shared = SharedWal::create(t.path(), 4, opts).unwrap();
        for i in 0..500 {
            shared.append(ev(i)).unwrap();
        }
        shared.sync_all().unwrap();
        drop(shared);
        // Delete a middle segment of one partition. Per-partition replay
        // cannot see the hole (its sequences are sparse by nature)…
        let victim = (0..4)
            .map(|i| list_segments(t.path(), &SharedWal::prefix(i)).unwrap())
            .find(|segs| segs.len() >= 3)
            .expect("some partition rolled at least thrice");
        std::fs::remove_file(&victim[1]).unwrap();
        // …but the merged view knows the lost records sit below every
        // partition's durable tail and refuses.
        let err = SharedWal::replay_merged(t.path(), 4, 0, |_| {}).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("gap"), "{err}");
    }

    #[test]
    fn merged_replay_tolerates_lost_partition_tail() {
        let t = TempDir::new("wal");
        let opts = WalOptions {
            segment_bytes: 128,
            ..WalOptions::default()
        };
        let shared = SharedWal::create(t.path(), 4, opts).unwrap();
        for i in 0..500 {
            shared.append(ev(i)).unwrap();
        }
        shared.sync_all().unwrap();
        drop(shared);
        // Losing the *newest* segment of one partition is exactly the
        // crash signature of an unsynced tail — replay must proceed with
        // the surviving records rather than refuse.
        let segs = list_segments(t.path(), &SharedWal::prefix(0)).unwrap();
        assert!(segs.len() >= 2);
        std::fs::remove_file(segs.last().unwrap()).unwrap();
        let mut n = 0u64;
        let stats = SharedWal::replay_merged(t.path(), 4, 0, |_| n += 1).unwrap();
        assert!(n < 500, "tail records are gone");
        assert_eq!(stats.records, n);
    }

    #[test]
    fn merged_replay_skips_gap_check_when_a_partition_has_no_records() {
        let t = TempDir::new("wal");
        let opts = WalOptions {
            segment_bytes: 128,
            ..WalOptions::default()
        };
        let shared = SharedWal::create(t.path(), 4, opts).unwrap();
        for i in 0..500 {
            shared.append(ev(i)).unwrap();
        }
        shared.sync_all().unwrap();
        drop(shared);
        // A partition with zero surviving records (all segments gone —
        // the extreme of a cold partition whose only assigned sequence
        // was burned) leaves every hole attributable to it, so the
        // contiguity check must stand down rather than refuse.
        for seg in list_segments(t.path(), &SharedWal::prefix(0)).unwrap() {
            std::fs::remove_file(seg).unwrap();
        }
        let mut n = 0u64;
        let stats = SharedWal::replay_merged(t.path(), 4, 0, |_| n += 1).unwrap();
        assert!(n > 0 && n < 500);
        assert_eq!(stats.records, n);
    }

    #[test]
    fn reclaim_failure_keeps_remaining_segments_tracked() {
        let t = TempDir::new("wal");
        let opts = WalOptions {
            segment_bytes: 128,
            ..WalOptions::default()
        };
        let mut wal = Wal::create(t.path(), "wal-", opts).unwrap();
        for i in 0..100 {
            wal.append(ev(i)).unwrap();
        }
        let before = wal.segment_count();
        assert!(before >= 3);
        // Sabotage one reclaimable segment so its unlink fails (a
        // directory cannot be removed as a file).
        let segs = list_segments(t.path(), "wal-").unwrap();
        std::fs::remove_file(&segs[1]).unwrap();
        std::fs::create_dir(&segs[1]).unwrap();
        assert!(wal.reclaim_before(ts(1_000), 99).is_err());
        // The failed segment (and everything after it) is still tracked:
        // once the obstruction clears, a second pass reclaims the rest
        // instead of leaking them into limbo until reopen.
        std::fs::remove_dir(&segs[1]).unwrap();
        assert!(wal.reclaim_before(ts(1_000), 99).unwrap() > 0);
        assert_eq!(wal.segment_count(), 1, "only the active segment survives");
    }

    #[test]
    fn sequential_prefix_does_not_swallow_partition_segments() {
        let t = TempDir::new("wal");
        let shared = SharedWal::create(t.path(), 2, WalOptions::default()).unwrap();
        for i in 0..20 {
            shared.append(ev(i)).unwrap();
        }
        drop(shared);
        // `wal-` must not match `wal-p0-…`: a sequential WAL can be
        // created beside partition logs and sees only its own records.
        let mut seq = Wal::create(t.path(), "wal-", WalOptions::default()).unwrap();
        seq.append(ev(0)).unwrap();
        seq.close().unwrap();
        let (records, _) = collect(t.path(), "wal-", 0);
        assert_eq!(records.len(), 1, "partition segments leaked into wal-");
    }

    #[test]
    fn shared_wal_refuses_shrunken_partition_count() {
        let t = TempDir::new("wal");
        let shared = SharedWal::create(t.path(), 4, WalOptions::default()).unwrap();
        for i in 0..100 {
            shared.append(ev(i)).unwrap();
        }
        drop(shared);
        // Fewer partitions than the directory holds: silently dropping
        // p2/p3's history is refused…
        assert!(SharedWal::open(t.path(), 2, WalOptions::default()).is_err());
        assert!(SharedWal::replay_merged(t.path(), 2, 0, |_| {}).is_err());
        // …while the true count (or a larger one) still opens.
        assert!(SharedWal::open(t.path(), 4, WalOptions::default()).is_ok());
        assert!(SharedWal::open(t.path(), 8, WalOptions::default()).is_ok());
    }

    /// Segment files (name, bytes) for a prefix, sorted by name.
    fn segment_bytes(dir: &Path, prefix: &str) -> Vec<(String, Vec<u8>)> {
        list_segments(dir, prefix)
            .unwrap()
            .into_iter()
            .map(|p| {
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read(&p).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn append_batch_matches_single_appends_byte_for_byte() {
        // Across fsync policies and segment rolls, a batched log must be
        // byte-identical to a single-append log: same segment names, same
        // bytes, same number of durability points.
        for policy in [
            FsyncPolicy::Never,
            FsyncPolicy::EveryN(5),
            FsyncPolicy::Always,
        ] {
            let opts = WalOptions {
                fsync: policy,
                segment_bytes: 200, // rolls every ~6 records
            };
            let events: Vec<EdgeEvent> = (0..100).map(ev).collect();

            let t_single = TempDir::new("wal-single");
            let mut single = Wal::create(t_single.path(), "wal-", opts).unwrap();
            for &e in &events {
                single.append(e).unwrap();
            }
            let single_syncs = single.sync_count();
            single.close().unwrap();

            let t_batch = TempDir::new("wal-batch");
            let mut batched = Wal::create(t_batch.path(), "wal-", opts).unwrap();
            // Uneven batch sizes, several straddling rolls and sync points.
            let mut rest: &[EdgeEvent] = &events;
            for size in [1usize, 7, 2, 13, 29, 3, 64, 100] {
                let take = size.min(rest.len());
                let (head, tail) = rest.split_at(take);
                let first = batched.next_seq();
                assert_eq!(batched.append_batch(head).unwrap(), first, "{policy:?}");
                rest = tail;
            }
            assert!(rest.is_empty());
            assert_eq!(batched.next_seq(), 100);
            // Group commit may only *reduce* durability points (a batch
            // is one unit); it never syncs more than the single path.
            assert!(batched.sync_count() <= single_syncs, "{policy:?}");
            batched.close().unwrap();

            assert_eq!(
                segment_bytes(t_single.path(), "wal-"),
                segment_bytes(t_batch.path(), "wal-"),
                "segments diverge under {policy:?}"
            );
        }
    }

    #[test]
    fn group_commit_syncs_at_policy_boundaries_only() {
        // EveryN(n) counts durability units (append calls): a batch is
        // ONE unit, so n *batches* — not n records — make a sync.
        let opts = WalOptions {
            fsync: FsyncPolicy::EveryN(8),
            segment_bytes: 1 << 20,
        };
        let t = TempDir::new("wal");
        let mut wal = Wal::create(t.path(), "wal-", opts).unwrap();
        for batch_no in 0..16u64 {
            let first = wal.next_seq();
            let events: Vec<EdgeEvent> = (first..first + 5).map(ev).collect();
            wal.append_batch(&events).unwrap();
            assert_eq!(
                wal.sync_count(),
                (batch_no + 1) / 8,
                "sync cadence must count batches"
            );
        }
        // 80 records over 16 batches: 2 syncs (units), where the
        // per-record reading would have made 10.
        assert_eq!(wal.sync_count(), 2);
        // Single appends are one-record batches: the historical
        // per-record cadence is unchanged.
        for i in 0..8u64 {
            wal.append(ev(80 + i)).unwrap();
        }
        assert_eq!(wal.sync_count(), 3);

        // A policy-aligned batch of N = 4n performs ⌈N/n⌉ syncs, each on
        // a record boundary inside the batched write sequence.
        let t = TempDir::new("wal");
        let mut wal = Wal::create(
            t.path(),
            "wal-",
            WalOptions {
                fsync: FsyncPolicy::EveryN(256),
                segment_bytes: 1 << 20,
            },
        )
        .unwrap();
        let events: Vec<EdgeEvent> = (0..1024).map(ev).collect();
        wal.append_batch(&events).unwrap();
        assert_eq!(wal.sync_count(), 4, "⌈1024/256⌉ syncs");
        // And the trailing partial group carries: 100 more events → no
        // sync until the next period fills.
        let more: Vec<EdgeEvent> = (1024..1124).map(ev).collect();
        wal.append_batch(&more).unwrap();
        assert_eq!(wal.sync_count(), 4);
        wal.close().unwrap();
        let (records, _) = collect(t.path(), "wal-", 0);
        assert_eq!(records.len(), 1124);
    }

    #[test]
    fn append_batch_straddles_segment_rolls() {
        let opts = WalOptions {
            segment_bytes: 256,
            ..WalOptions::default()
        };
        let t = TempDir::new("wal");
        let mut wal = Wal::create(t.path(), "wal-", opts).unwrap();
        let events: Vec<EdgeEvent> = (0..200).map(ev).collect();
        assert_eq!(wal.append_batch(&events).unwrap(), 0);
        assert!(wal.segment_count() > 1, "batch must roll segments");
        wal.close().unwrap();
        let mut seqs = Vec::new();
        let stats = replay(t.path(), "wal-", 0, |r| seqs.push(r.seq)).unwrap();
        assert_eq!(seqs, (0..200).collect::<Vec<u64>>());
        assert!(!stats.torn_tail);
        // Empty batch is a no-op at the current sequence.
        assert_eq!(Wal::open(t.path(), "wal-", opts).unwrap().next_seq(), 200);
    }

    #[test]
    fn shared_wal_append_batch_routes_and_replays() {
        let opts = WalOptions {
            segment_bytes: 512,
            ..WalOptions::default()
        };
        let events: Vec<EdgeEvent> = (0..500).map(ev).collect();

        let t_single = TempDir::new("wal-s");
        let single = SharedWal::create(t_single.path(), 4, opts).unwrap();
        for &e in &events {
            single.append(e).unwrap();
        }
        single.sync_all().unwrap();
        drop(single);

        let t_batch = TempDir::new("wal-b");
        let batched = SharedWal::create(t_batch.path(), 4, opts).unwrap();
        for chunk in events.chunks(37) {
            assert_eq!(batched.append_batch(chunk).unwrap(), chunk.len() as u64);
        }
        assert_eq!(batched.next_seq(), 500);
        batched.sync_all().unwrap();
        drop(batched);

        // Global sequence runs differ (dense per-partition runs vs
        // round-robin), but each partition must hold the same events in
        // the same stream order — per-target order is the contract.
        for p in 0..4 {
            let mut single_events = Vec::new();
            replay(t_single.path(), &SharedWal::prefix(p), 0, |r| {
                single_events.push(r.event)
            })
            .unwrap();
            let mut batch_events = Vec::new();
            replay(t_batch.path(), &SharedWal::prefix(p), 0, |r| {
                batch_events.push(r.event)
            })
            .unwrap();
            assert_eq!(single_events, batch_events, "partition {p}");
        }
        // Merged replay is gap-free and complete.
        let mut n = 0u64;
        let stats = SharedWal::replay_merged(t_batch.path(), 4, 0, |_| n += 1).unwrap();
        assert_eq!(n, 500);
        assert!(!stats.torn_tail);
        let reopened = SharedWal::open(t_batch.path(), 4, opts).unwrap();
        assert_eq!(reopened.next_seq(), 500);
    }

    #[test]
    fn tracked_appends_gate_the_fence_until_applied() {
        let t = TempDir::new("wal");
        let shared = SharedWal::create(t.path(), 4, WalOptions::default()).unwrap();
        let (seq, ticket) = shared.append_tracked(ev(0)).unwrap();
        let p = route_partition(&ev(0).dst, 4);
        assert_eq!(seq, 0);
        assert_eq!(shared.pending[p].load(Ordering::Relaxed), 1);
        // The fence on any *other* partition is unaffected by p's ticket.
        let q = (p + 1) % 4;
        shared
            .with_partition_fenced(q, |fence| {
                assert_eq!(fence, 0);
                Ok(())
            })
            .unwrap();
        drop(ticket);
        assert_eq!(shared.pending[p].load(Ordering::Relaxed), 0);
        // With the apply finished, p's fence covers the appended event.
        shared
            .with_partition_fenced(p, |fence| {
                assert_eq!(fence, 1);
                Ok(())
            })
            .unwrap();

        // Batch tickets register once per touched partition and all
        // withdraw on drop.
        let events: Vec<EdgeEvent> = (0..50).map(ev).collect();
        let (n, ticket) = shared.append_batch_tracked(&events).unwrap();
        assert_eq!(n, 50);
        let touched: u64 = shared
            .pending
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        assert!(touched >= 1);
        drop(ticket);
        for c in &shared.pending {
            assert_eq!(c.load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn fence_blocks_until_inflight_apply_drops() {
        use std::sync::atomic::AtomicBool;
        let t = TempDir::new("wal");
        let shared = Arc::new(SharedWal::create(t.path(), 1, WalOptions::default()).unwrap());
        let (_, ticket) = shared.append_tracked(ev(0)).unwrap();
        let fenced = Arc::new(AtomicBool::new(false));
        let handle = {
            let shared = Arc::clone(&shared);
            let fenced = Arc::clone(&fenced);
            std::thread::spawn(move || {
                shared
                    .with_partition_fenced(0, |fence| {
                        fenced.store(true, Ordering::SeqCst);
                        Ok(fence)
                    })
                    .unwrap()
            })
        };
        // The fence must not cut while the apply is in flight.
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!fenced.load(Ordering::SeqCst));
        drop(ticket);
        assert_eq!(handle.join().unwrap(), 1);
        assert!(fenced.load(Ordering::SeqCst));
    }

    #[test]
    fn fenced_replay_honors_per_partition_fences() {
        let t = TempDir::new("wal");
        let shared = SharedWal::create(t.path(), 2, WalOptions::default()).unwrap();
        for i in 0..200 {
            shared.append(ev(i)).unwrap();
        }
        shared.sync_all().unwrap();
        // Cut partition 0 at its current tail, then keep ingesting into
        // both partitions — the staggered-fence shape a non-quiescent
        // checkpoint produces.
        let f0 = shared.with_partition_fenced(0, Ok).unwrap();
        for i in 200..400 {
            shared.append(ev(i)).unwrap();
        }
        shared.sync_all().unwrap();
        let fences = [f0, 0];
        drop(shared);
        let mut seqs = Vec::new();
        let stats =
            SharedWal::replay_merged_fenced(t.path(), 2, &fences, |r| seqs.push(r.seq)).unwrap();
        assert!(!stats.torn_tail);
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        // Every replayed sequence below partition 0's fence must belong
        // to partition 1 (partition 0's were cut away by its fence).
        let mut p1_seqs = Vec::new();
        replay(t.path(), &SharedWal::prefix(1), 0, |r| p1_seqs.push(r.seq)).unwrap();
        for &s in seqs.iter().filter(|&&s| s < f0) {
            assert!(
                p1_seqs.contains(&s),
                "seq {s} below fence must be partition 1's"
            );
        }
        // And nothing of partition 1 was dropped.
        assert_eq!(
            seqs.iter().filter(|&&s| s < f0).count(),
            p1_seqs.iter().filter(|&&s| s < f0).count()
        );
        // Everything at/above max(fences) is dense through the minimum
        // durable tail — the uniform-replay guarantee, preserved.
        let uniform: Vec<u64> = {
            let mut v = Vec::new();
            SharedWal::replay_merged(t.path(), 2, f0, |r| v.push(r.seq)).unwrap();
            v
        };
        let fenced_above: Vec<u64> = seqs.iter().copied().filter(|&s| s >= f0).collect();
        assert_eq!(fenced_above, uniform);
    }

    #[test]
    fn fenced_reclaim_uses_each_partitions_own_fence() {
        let t = TempDir::new("wal");
        let opts = WalOptions {
            segment_bytes: 128,
            ..WalOptions::default()
        };
        let shared = SharedWal::create(t.path(), 2, opts).unwrap();
        for i in 0..300 {
            shared.append(ev(i)).unwrap();
        }
        shared.sync_all().unwrap();
        let tails = shared.partition_next_seqs();
        // A zero fence reclaims nothing on that partition.
        let before: usize = (0..2)
            .map(|i| {
                list_segments(t.path(), &SharedWal::prefix(i))
                    .unwrap()
                    .len()
            })
            .sum();
        shared
            .reclaim_before_fenced(Timestamp::from_secs(10_000), &[0, 0])
            .unwrap();
        let after_zero: usize = (0..2)
            .map(|i| {
                list_segments(t.path(), &SharedWal::prefix(i))
                    .unwrap()
                    .len()
            })
            .sum();
        assert_eq!(before, after_zero);
        // Fencing partition 0 at its tail reclaims its closed segments
        // while partition 1 (fence 0) keeps everything.
        let p1_before = list_segments(t.path(), &SharedWal::prefix(1))
            .unwrap()
            .len();
        let removed = shared
            .reclaim_before_fenced(Timestamp::from_secs(10_000), &[tails[0], 0])
            .unwrap();
        assert!(removed > 0);
        assert_eq!(
            list_segments(t.path(), &SharedWal::prefix(1))
                .unwrap()
                .len(),
            p1_before
        );
        // Full fence vector reclaims everything closed, matching the
        // uniform path's outcome.
        shared
            .reclaim_before_fenced(Timestamp::from_secs(10_000), &tails)
            .unwrap();
        let left: usize = (0..2)
            .map(|i| {
                list_segments(t.path(), &SharedWal::prefix(i))
                    .unwrap()
                    .len()
            })
            .sum();
        assert_eq!(left, 2, "only the active segment per partition remains");
    }

    #[test]
    fn fsync_policies_accept_appends() {
        for policy in [
            FsyncPolicy::Always,
            FsyncPolicy::EveryN(8),
            FsyncPolicy::Never,
        ] {
            let t = TempDir::new("wal");
            let mut wal = Wal::create(
                t.path(),
                "wal-",
                WalOptions {
                    fsync: policy,
                    ..WalOptions::default()
                },
            )
            .unwrap();
            for i in 0..30 {
                wal.append(ev(i)).unwrap();
            }
            wal.close().unwrap();
            let (records, _) = collect(t.path(), "wal-", 0);
            assert_eq!(records.len(), 30, "{policy:?}");
        }
    }
}
