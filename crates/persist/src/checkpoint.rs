//! Epoch-aligned checkpoints of the temporal store `D` — full (`MGCK`)
//! and incremental delta (`MGCI`).
//!
//! A **full** checkpoint captures every resident `(dst, src, created_at)`
//! entry — per-target lists in stored time order, targets sorted
//! ascending for determinism — plus the WAL **fence vector** it is
//! consistent through: for each WAL partition `p`, `fences[p]` is the
//! first sequence the checkpoint does *not* cover, so recovery replays
//! partition `p` from `fences[p]`. A length-1 fence vector is uniform
//! (the sequential engine, and legacy v1 files whose single `last_seq`
//! reads as fence `last_seq + 1` everywhere).
//!
//! A **delta** checkpoint (`MGCI`) layers over a predecessor: it records
//! only the targets whose lists changed since the predecessor's fence
//! vector — each as its *complete current* list (or a tombstone when the
//! target aged out entirely) — plus the new fence vector and the
//! predecessor's id it chains to. The chain mirrors the `S` snapshot's
//! base+delta design: restore loads the newest decodable full, then
//! applies each strictly-linked delta in id order (a delta's target list
//! replaces the base's; a tombstone deletes it), after which each WAL
//! partition's tail above the *tip's* fence finishes the job.
//!
//! Restore is replay-shaped: re-inserting the merged entries in file
//! order reproduces each target list byte for byte (the store's insert
//! path is deterministic for in-order batches).
//!
//! Files are written to a temp name, fsynced, and atomically renamed, so
//! a crash mid-checkpoint leaves the previous chain intact. Writing a
//! full prunes **everything** older (fulls and deltas — the new full
//! supersedes the whole chain); writing a delta prunes *nothing*,
//! because every predecessor in its chain is still load-bearing.

use magicrecs_graph::io::{
    read_ascending_step, read_exact_checked, read_varint_checked, write_varint, Check,
};
use magicrecs_types::{Error, Result, Timestamp, UserId};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"MGCK";
const DELTA_MAGIC: &[u8; 4] = b"MGCI";
const VERSION_V1: u32 = 1;
const VERSION: u32 = 2;
const DELTA_VERSION: u32 = 1;

/// A decoded checkpoint: the store's entries plus the WAL positions they
/// are consistent through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The last WAL sequence this checkpoint's cut assigned — the file's
    /// id. Replay resumes from the fence vector, not from here; this is
    /// the chain-ordering key.
    pub last_seq: u64,
    /// Per-partition fences: partition `p` replays from `fences[p]`.
    /// Length 1 means uniform (sequential engine / legacy v1 file);
    /// [`Checkpoint::fence_vector`] broadcasts it.
    pub fences: Vec<u64>,
    /// `(dst, src, created_at)` entries; per-target in stored time order.
    pub entries: Vec<(UserId, UserId, Timestamp)>,
}

impl Checkpoint {
    /// The fence vector broadcast to `parts` partitions. A stored vector
    /// of matching length is used as-is; a length-1 vector is uniform
    /// semantics and broadcasts; any other mismatch is refused — the
    /// partition count is part of the log's identity.
    pub fn fence_vector(&self, parts: usize) -> Result<Vec<u64>> {
        broadcast_fences(&self.fences, parts)
    }
}

/// Broadcasts a stored fence vector to `parts` partitions (see
/// [`Checkpoint::fence_vector`]).
pub fn broadcast_fences(fences: &[u64], parts: usize) -> Result<Vec<u64>> {
    if fences.len() == parts {
        Ok(fences.to_vec())
    } else if fences.len() == 1 {
        Ok(vec![fences[0]; parts])
    } else {
        Err(Error::Invariant(format!(
            "checkpoint fence vector has {} partition(s) but the wal has {parts} — \
             the partition count is part of the log's identity",
            fences.len()
        )))
    }
}

/// A decoded delta checkpoint: the changed targets since its chain
/// predecessor, each as its complete current list or a tombstone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaCheckpoint {
    /// Chain-ordering key (same id space as [`Checkpoint::last_seq`]).
    pub id: u64,
    /// The id of the chain predecessor this delta layers over — either a
    /// full checkpoint or an earlier delta. The chain loader refuses a
    /// delta whose `base_id` is not exactly the current tip.
    pub base_id: u64,
    /// Per-partition fences as of this delta's cut (length-1 = uniform).
    pub fences: Vec<u64>,
    /// Complete current lists of the changed targets.
    pub entries: Vec<(UserId, UserId, Timestamp)>,
    /// Targets that existed in the predecessor's view but no longer hold
    /// any resident entry.
    pub tombstones: Vec<UserId>,
}

fn ckpt_path(dir: &Path, last_seq: u64) -> PathBuf {
    dir.join(format!("d-ckpt-{last_seq:020}.mgck"))
}

fn delta_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("d-ckpt-{id:020}.mgci"))
}

fn io_err(e: std::io::Error) -> Error {
    Error::Io(format!("checkpoint write failed: {e}"))
}

/// Writes the sorted target groups (and interleaved tombstones) shared
/// by the full-v2 and delta encodings: targets strictly ascending,
/// delta-stepped; per group a count varint (0 = tombstone, only legal
/// when `tombstones` is in play) then `(src, at-delta)` pairs.
fn write_groups<W: Write>(
    w: &mut W,
    check: &mut Check,
    entries: &mut [(UserId, UserId, Timestamp)],
    tombstones: &mut Vec<UserId>,
) -> Result<()> {
    // Stable by target: per-target time order (export order) survives.
    entries.sort_by_key(|&(dst, _, _)| dst);
    tombstones.sort_unstable();
    tombstones.dedup();
    let groups: Vec<&[(UserId, UserId, Timestamp)]> = entries.chunk_by(|a, b| a.0 == b.0).collect();
    if let Some(t) = tombstones.iter().find(|t| {
        groups
            .binary_search_by_key(&t.raw(), |g| g[0].0.raw())
            .is_ok()
    }) {
        return Err(Error::Invariant(format!(
            "target {} is both exported and tombstoned in one checkpoint",
            t.raw()
        )));
    }
    w.write_all(&((groups.len() + tombstones.len()) as u64).to_le_bytes())
        .map_err(io_err)?;
    // Merge the two ascending streams so the on-disk targets stay
    // strictly ascending (the decoder's integrity check).
    let mut gi = 0usize;
    let mut ti = 0usize;
    let mut prev_dst = 0u64;
    let mut first = true;
    while gi < groups.len() || ti < tombstones.len() {
        let take_group = match (groups.get(gi), tombstones.get(ti)) {
            (Some(g), Some(t)) => g[0].0 < *t,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!(),
        };
        let dst = if take_group {
            groups[gi][0].0.raw()
        } else {
            tombstones[ti].raw()
        };
        check.mix(dst);
        write_varint(w, if first { dst } else { dst - prev_dst }).map_err(io_err)?;
        first = false;
        prev_dst = dst;
        if take_group {
            let group = groups[gi];
            gi += 1;
            write_varint(w, group.len() as u64).map_err(io_err)?;
            let mut prev_at = 0u64;
            for (i, &(_, src, at)) in group.iter().enumerate() {
                check.mix(src.raw());
                check.mix(at.as_micros());
                write_varint(w, src.raw()).map_err(io_err)?;
                // Time-ordered within a list: non-negative deltas.
                let at = at.as_micros();
                write_varint(w, if i == 0 { at } else { at - prev_at }).map_err(io_err)?;
                prev_at = at;
            }
        } else {
            ti += 1;
            write_varint(w, 0).map_err(io_err)?; // tombstone marker
            check.mix(u64::MAX); // distinguish "count 0" from absence
        }
    }
    Ok(())
}

/// Decoded groups: live `(dst, src, at)` entries plus tombstoned targets.
type DecodedGroups = (Vec<(UserId, UserId, Timestamp)>, Vec<UserId>);

/// Reads the groups written by [`write_groups`]. `allow_tombstones`
/// distinguishes the delta encoding (count 0 = tombstone) from the full
/// encoding (count 0 = corrupt).
fn read_groups<R: std::io::Read>(
    r: &mut R,
    check: &mut Check,
    targets: u64,
    allow_tombstones: bool,
    ctx: &str,
) -> Result<DecodedGroups> {
    let mut entries = Vec::new();
    let mut tombstones = Vec::new();
    let mut prev_dst = 0u64;
    for t in 0..targets {
        let dst = read_ascending_step(r, t == 0, prev_dst, ctx, "target")?;
        check.mix(dst);
        prev_dst = dst;
        let count = read_varint_checked(r, ctx)?;
        if count == 0 {
            if !allow_tombstones {
                return Err(Error::Corrupt(format!(
                    "{ctx}: empty target list for {dst}"
                )));
            }
            check.mix(u64::MAX);
            tombstones.push(UserId(dst));
            continue;
        }
        let mut prev_at = 0u64;
        for i in 0..count {
            let src = read_varint_checked(r, ctx)?;
            let at_delta = read_varint_checked(r, ctx)?;
            let at = if i == 0 {
                at_delta
            } else {
                prev_at.checked_add(at_delta).ok_or_else(|| {
                    Error::Corrupt(format!("{ctx}: timestamp overflows past {prev_at}"))
                })?
            };
            check.mix(src);
            check.mix(at);
            entries.push((UserId(dst), UserId(src), Timestamp::from_micros(at)));
            prev_at = at;
        }
    }
    Ok((entries, tombstones))
}

fn write_fences<W: Write>(w: &mut W, check: &mut Check, fences: &[u64]) -> Result<()> {
    w.write_all(&(fences.len() as u64).to_le_bytes())
        .map_err(io_err)?;
    check.mix(fences.len() as u64);
    for &f in fences {
        w.write_all(&f.to_le_bytes()).map_err(io_err)?;
        check.mix(f);
    }
    Ok(())
}

fn read_fences<R: std::io::Read>(r: &mut R, check: &mut Check, ctx: &str) -> Result<Vec<u64>> {
    let mut n8 = [0u8; 8];
    read_exact_checked(r, &mut n8, ctx)?;
    let parts = u64::from_le_bytes(n8);
    if parts == 0 || parts > 1 << 20 {
        return Err(Error::Corrupt(format!(
            "{ctx}: implausible fence vector length {parts}"
        )));
    }
    check.mix(parts);
    let mut fences = Vec::with_capacity(parts as usize);
    for _ in 0..parts {
        read_exact_checked(r, &mut n8, ctx)?;
        let f = u64::from_le_bytes(n8);
        check.mix(f);
        fences.push(f);
    }
    Ok(fences)
}

/// Serializes a full checkpoint with a uniform fence (`last_seq + 1`
/// everywhere) into `w` — the sequential engine's shape.
pub fn save_checkpoint<W: Write>(
    entries: Vec<(UserId, UserId, Timestamp)>,
    last_seq: u64,
    w: &mut W,
) -> Result<()> {
    save_checkpoint_fenced(entries, last_seq, &[last_seq.saturating_add(1)], w)
}

/// Serializes a full checkpoint (`entries` in any order; sorted here)
/// with an explicit per-partition fence vector into `w`.
pub fn save_checkpoint_fenced<W: Write>(
    mut entries: Vec<(UserId, UserId, Timestamp)>,
    last_seq: u64,
    fences: &[u64],
    w: &mut W,
) -> Result<()> {
    w.write_all(MAGIC).map_err(io_err)?;
    w.write_all(&VERSION.to_le_bytes()).map_err(io_err)?;
    w.write_all(&last_seq.to_le_bytes()).map_err(io_err)?;
    let mut check = Check::new();
    check.mix(last_seq);
    write_fences(w, &mut check, fences)?;
    write_groups(w, &mut check, &mut entries, &mut Vec::new())?;
    w.write_all(&check.finish().to_le_bytes()).map_err(io_err)?;
    Ok(())
}

/// Serializes a delta checkpoint into `w`: the changed targets' complete
/// current lists plus tombstones, chained to `base_id`.
pub fn save_delta_checkpoint<W: Write>(
    mut entries: Vec<(UserId, UserId, Timestamp)>,
    mut tombstones: Vec<UserId>,
    id: u64,
    base_id: u64,
    fences: &[u64],
    w: &mut W,
) -> Result<()> {
    w.write_all(DELTA_MAGIC).map_err(io_err)?;
    w.write_all(&DELTA_VERSION.to_le_bytes()).map_err(io_err)?;
    w.write_all(&id.to_le_bytes()).map_err(io_err)?;
    w.write_all(&base_id.to_le_bytes()).map_err(io_err)?;
    let mut check = Check::new();
    check.mix(id);
    check.mix(base_id);
    write_fences(w, &mut check, fences)?;
    write_groups(w, &mut check, &mut entries, &mut tombstones)?;
    w.write_all(&check.finish().to_le_bytes()).map_err(io_err)?;
    Ok(())
}

/// Decodes a checkpoint written by [`save_checkpoint`] /
/// [`save_checkpoint_fenced`] (or a legacy v1 file, whose single
/// `last_seq` becomes the uniform fence `last_seq + 1`). Any malformed
/// shape is [`Error::Corrupt`].
pub fn load_checkpoint<R: std::io::Read>(r: &mut R) -> Result<Checkpoint> {
    let ctx = "checkpoint load";
    let mut magic = [0u8; 4];
    read_exact_checked(r, &mut magic, ctx)?;
    if &magic != MAGIC {
        return Err(Error::Corrupt(
            "bad magic: not a magicrecs checkpoint".into(),
        ));
    }
    let mut v4 = [0u8; 4];
    read_exact_checked(r, &mut v4, ctx)?;
    let version = u32::from_le_bytes(v4);
    if version != VERSION_V1 && version != VERSION {
        return Err(Error::Corrupt(format!(
            "unsupported checkpoint version {version} (expected {VERSION_V1} or {VERSION})"
        )));
    }
    let mut n8 = [0u8; 8];
    read_exact_checked(r, &mut n8, ctx)?;
    let last_seq = u64::from_le_bytes(n8);
    let mut check = Check::new();
    check.mix(last_seq);
    let fences = if version == VERSION {
        read_fences(r, &mut check, ctx)?
    } else {
        // v1 stored one global covered seq: uniform fence everywhere.
        vec![last_seq.saturating_add(1)]
    };
    read_exact_checked(r, &mut n8, ctx)?;
    let targets = u64::from_le_bytes(n8);
    let (entries, _) = read_groups(r, &mut check, targets, false, ctx)?;
    let mut c8 = [0u8; 8];
    read_exact_checked(r, &mut c8, ctx)?;
    if u64::from_le_bytes(c8) != check.finish() {
        return Err(Error::Corrupt("checkpoint checksum mismatch".into()));
    }
    Ok(Checkpoint {
        last_seq,
        fences,
        entries,
    })
}

/// Decodes a delta checkpoint written by [`save_delta_checkpoint`].
pub fn load_delta_checkpoint<R: std::io::Read>(r: &mut R) -> Result<DeltaCheckpoint> {
    let ctx = "delta checkpoint load";
    let mut magic = [0u8; 4];
    read_exact_checked(r, &mut magic, ctx)?;
    if &magic != DELTA_MAGIC {
        return Err(Error::Corrupt(
            "bad magic: not a magicrecs delta checkpoint".into(),
        ));
    }
    let mut v4 = [0u8; 4];
    read_exact_checked(r, &mut v4, ctx)?;
    let version = u32::from_le_bytes(v4);
    if version != DELTA_VERSION {
        return Err(Error::Corrupt(format!(
            "unsupported delta checkpoint version {version} (expected {DELTA_VERSION})"
        )));
    }
    let mut n8 = [0u8; 8];
    read_exact_checked(r, &mut n8, ctx)?;
    let id = u64::from_le_bytes(n8);
    read_exact_checked(r, &mut n8, ctx)?;
    let base_id = u64::from_le_bytes(n8);
    if base_id >= id {
        return Err(Error::Corrupt(format!(
            "{ctx}: base id {base_id} not below id {id}"
        )));
    }
    let mut check = Check::new();
    check.mix(id);
    check.mix(base_id);
    let fences = read_fences(r, &mut check, ctx)?;
    read_exact_checked(r, &mut n8, ctx)?;
    let targets = u64::from_le_bytes(n8);
    let (entries, tombstones) = read_groups(r, &mut check, targets, true, ctx)?;
    let mut c8 = [0u8; 8];
    read_exact_checked(r, &mut c8, ctx)?;
    if u64::from_le_bytes(c8) != check.finish() {
        return Err(Error::Corrupt("delta checkpoint checksum mismatch".into()));
    }
    Ok(DeltaCheckpoint {
        id,
        base_id,
        fences,
        entries,
        tombstones,
    })
}

/// Writes a checkpoint file into `dir` (temp-file, **fsync**, atomic
/// rename — a checkpoint authorizes deleting its predecessor and
/// reclaiming WAL segments, so it must actually be on disk before it
/// supersedes anything), then deletes any older checkpoint files.
/// Returns the final path.
pub fn write_checkpoint(
    dir: &Path,
    entries: Vec<(UserId, UserId, Timestamp)>,
    last_seq: u64,
) -> Result<PathBuf> {
    write_checkpoint_with(dir, entries, last_seq, &crate::vfs::StdVfs)
}

/// [`write_checkpoint`] on an explicit I/O backend (see [`crate::Vfs`]).
pub fn write_checkpoint_with(
    dir: &Path,
    entries: Vec<(UserId, UserId, Timestamp)>,
    last_seq: u64,
    vfs: &dyn crate::vfs::Vfs,
) -> Result<PathBuf> {
    let fences = [last_seq.saturating_add(1)];
    write_checkpoint_fenced_with(dir, entries, last_seq, &fences, vfs).map(|(p, _)| p)
}

/// Writes a full fenced checkpoint file into `dir` (temp-file,
/// **fsync**, atomic rename — a checkpoint authorizes deleting its
/// predecessors and reclaiming WAL segments, so it must actually be on
/// disk before it supersedes anything), then deletes every older
/// checkpoint file — fulls *and* deltas: the new full replaces the whole
/// chain. Returns the final path and the file's size in bytes (the
/// rebase policy's denominator).
///
/// A failed *pruning* unlink propagates as [`Error::Io`] even though the
/// new checkpoint is already durable at that point: the newest-wins
/// loader keeps recovery correct either way, but swallowing the error
/// would silently leak one stale file per cadence tick forever.
/// Retrying the checkpoint (the caller's natural response) re-attempts
/// the same pruning, so transient failures self-heal. `NotFound` is
/// tolerated — already gone is already pruned.
pub fn write_checkpoint_fenced_with(
    dir: &Path,
    entries: Vec<(UserId, UserId, Timestamp)>,
    last_seq: u64,
    fences: &[u64],
    vfs: &dyn crate::vfs::Vfs,
) -> Result<(PathBuf, u64)> {
    let final_path = ckpt_path(dir, last_seq);
    let tmp_path = final_path.with_extension("mgck.tmp");
    let mut buf = Vec::new();
    save_checkpoint_fenced(entries, last_seq, fences, &mut buf)?;
    crate::fsutil::publish_durably(vfs, &tmp_path, &final_path, &buf)?;
    let mut stale: Vec<PathBuf> = Vec::new();
    stale.extend(
        list_checkpoints(dir)?
            .into_iter()
            .filter(|&(_, seq)| seq < last_seq)
            .map(|(p, _)| p),
    );
    // Deltas at or below the new full's id are superseded by it; deltas
    // *above* it cannot exist (ids come from one monotone sequence and a
    // full is only written at the current tip).
    stale.extend(
        list_delta_checkpoints(dir)?
            .into_iter()
            .filter(|&(_, id)| id <= last_seq)
            .map(|(p, _)| p),
    );
    for path in stale {
        match vfs.remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(Error::Io(format!(
                    "checkpoint prune {}: {e}",
                    path.display()
                )))
            }
        }
    }
    let m = crate::metrics::ckpt();
    m.full_writes.incr();
    m.full_bytes.add(buf.len() as u64);
    // A published full resets the chain — nothing dirty rides above it.
    m.dirty_ratio_pct.set(0);
    Ok((final_path, buf.len() as u64))
}

/// Writes a delta checkpoint file into `dir` (same temp-file + fsync +
/// atomic rename discipline). Prunes **nothing**: every predecessor in
/// the chain is still load-bearing. Returns the final path and the
/// file's size in bytes.
pub fn write_delta_checkpoint_with(
    dir: &Path,
    entries: Vec<(UserId, UserId, Timestamp)>,
    tombstones: Vec<UserId>,
    id: u64,
    base_id: u64,
    fences: &[u64],
    vfs: &dyn crate::vfs::Vfs,
) -> Result<(PathBuf, u64)> {
    let final_path = delta_path(dir, id);
    let tmp_path = final_path.with_extension("mgci.tmp");
    let mut buf = Vec::new();
    save_delta_checkpoint(entries, tombstones, id, base_id, fences, &mut buf)?;
    crate::fsutil::publish_durably(vfs, &tmp_path, &final_path, &buf)?;
    let m = crate::metrics::ckpt();
    m.delta_writes.incr();
    m.delta_bytes.add(buf.len() as u64);
    Ok((final_path, buf.len() as u64))
}

/// Full checkpoint files in `dir`, sorted ascending by id.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(PathBuf, u64)>> {
    list_by_suffix(dir, ".mgck")
}

/// Delta checkpoint files in `dir`, sorted ascending by id.
pub fn list_delta_checkpoints(dir: &Path) -> Result<Vec<(PathBuf, u64)>> {
    list_by_suffix(dir, ".mgci")
}

fn list_by_suffix(dir: &Path, suffix: &str) -> Result<Vec<(PathBuf, u64)>> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| Error::Io(format!("checkpoint dir: {e}")))?;
    for entry in entries {
        let entry = entry.map_err(|e| Error::Io(format!("checkpoint dir: {e}")))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("d-ckpt-")
            .and_then(|s| s.strip_suffix(suffix))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((entry.path(), seq));
        }
    }
    out.sort_by_key(|&(_, seq)| seq);
    Ok(out)
}

/// Loads the newest **full** checkpoint in `dir` that decodes cleanly,
/// skipping corrupt ones (a crash can only tear the newest, which the
/// atomic rename already guards; skipping is defense in depth). `None`
/// when no usable checkpoint exists — recovery then replays the whole
/// WAL. Deltas are ignored; recovery uses [`load_latest_chain`].
pub fn load_latest_checkpoint(dir: &Path) -> Result<Option<Checkpoint>> {
    for (path, _) in list_checkpoints(dir)?.into_iter().rev() {
        let bytes = std::fs::read(&path).map_err(|e| Error::Io(format!("checkpoint read: {e}")))?;
        match load_checkpoint(&mut bytes.as_slice()) {
            Ok(ck) => return Ok(Some(ck)),
            Err(Error::Corrupt(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

/// A resolved checkpoint chain: the newest decodable full plus every
/// strictly-linked delta above it, merged into one restorable view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointChain {
    /// The tip's id — the chain's position in the id space.
    pub last_seq: u64,
    /// The tip's fence vector (length-1 = uniform): partition `p`
    /// replays from `fences[p]`.
    pub fences: Vec<u64>,
    /// Merged entries, targets ascending, per-target stored time order —
    /// same restore shape as a full checkpoint's entries.
    pub entries: Vec<(UserId, UserId, Timestamp)>,
    /// Deltas applied on top of the full.
    pub chain_len: u64,
    /// Size of the full checkpoint file.
    pub full_bytes: u64,
    /// Total size of the applied delta files.
    pub delta_bytes: u64,
}

/// Resolves the checkpoint chain in `dir`: walks full checkpoints newest
/// → oldest until one decodes, then applies every delta above it in
/// ascending id order, requiring each `base_id` to equal the current tip
/// (a delta's target lists replace the base's; tombstones delete).
///
/// Stale deltas at or below the full's id are ignored (a failed prune
/// can leave them behind). A delta *above* the full that is corrupt or
/// does not link is [`Error::Corrupt`], not skipped: deltas are
/// published atomically (temp + fsync + rename), so an undecodable or
/// unchained delta means real damage, and the WAL segments its fences
/// authorized reclaiming may already be gone — restoring without it
/// would silently lose its targets' history.
pub fn load_latest_chain(dir: &Path) -> Result<Option<CheckpointChain>> {
    let read = |path: &Path| -> Result<Vec<u8>> {
        std::fs::read(path).map_err(|e| Error::Io(format!("checkpoint read: {e}")))
    };
    let mut base: Option<(Checkpoint, u64)> = None;
    for (path, _) in list_checkpoints(dir)?.into_iter().rev() {
        let bytes = read(&path)?;
        match load_checkpoint(&mut bytes.as_slice()) {
            Ok(ck) => {
                base = Some((ck, bytes.len() as u64));
                break;
            }
            Err(Error::Corrupt(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    let Some((base, full_bytes)) = base else {
        // No usable full: deltas alone cannot restore (they hold only
        // changed targets). If deltas exist this is damage, surfaced so
        // the operator knows history was lost rather than silently
        // rebuilding from the WAL alone.
        if let Some((path, _)) = list_delta_checkpoints(dir)?.first() {
            return Err(Error::Corrupt(format!(
                "delta checkpoint {} has no usable full checkpoint beneath it",
                path.display()
            )));
        }
        return Ok(None);
    };
    // Merge: target -> complete list. BTreeMap keeps targets ascending
    // for the deterministic restore order fulls already guarantee.
    let mut lists: BTreeMap<UserId, Vec<(UserId, Timestamp)>> = BTreeMap::new();
    for &(dst, src, at) in &base.entries {
        lists.entry(dst).or_default().push((src, at));
    }
    let mut tip_id = base.last_seq;
    let mut fences = base.fences.clone();
    let mut chain_len = 0u64;
    let mut delta_bytes = 0u64;
    for (path, id) in list_delta_checkpoints(dir)? {
        if id <= base.last_seq {
            continue; // superseded leftover of a failed prune
        }
        let bytes = read(&path)?;
        let delta = load_delta_checkpoint(&mut bytes.as_slice()).map_err(|e| match e {
            Error::Corrupt(msg) => Error::Corrupt(format!(
                "delta checkpoint {} is damaged ({msg}) — the chain above the last \
                 full checkpoint cannot be trusted",
                path.display()
            )),
            other => other,
        })?;
        if delta.base_id != tip_id {
            return Err(Error::Corrupt(format!(
                "delta checkpoint {} chains to {} but the tip is {tip_id} — a link \
                 of the chain is missing",
                path.display(),
                delta.base_id
            )));
        }
        for tomb in &delta.tombstones {
            lists.remove(tomb);
        }
        let mut it = delta.entries.into_iter().peekable();
        while let Some(&(dst, _, _)) = it.peek() {
            let mut list: Vec<(UserId, Timestamp)> = Vec::new();
            while let Some(&(d, src, at)) = it.peek() {
                if d != dst {
                    break;
                }
                list.push((src, at));
                it.next();
            }
            lists.insert(dst, list);
        }
        tip_id = delta.id;
        fences = delta.fences;
        chain_len += 1;
        delta_bytes += bytes.len() as u64;
    }
    let entries = lists
        .into_iter()
        .flat_map(|(dst, list)| list.into_iter().map(move |(src, at)| (dst, src, at)))
        .collect();
    Ok(Some(CheckpointChain {
        last_seq: tip_id,
        fences,
        entries,
        chain_len,
        full_bytes,
        delta_bytes,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use magicrecs_temporal::TemporalEdgeStore;
    use magicrecs_types::Duration;

    fn u(n: u64) -> UserId {
        UserId(n)
    }

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn store_with_entries() -> TemporalEdgeStore {
        let mut d = TemporalEdgeStore::with_window(Duration::from_mins(30));
        for i in 0..200u64 {
            d.insert(u(i % 17), u(1000 + i % 9), ts(10 + i));
        }
        d.insert(u(3), u(1000), ts(5)); // out-of-order arrival
        d
    }

    #[test]
    fn store_roundtrips_through_checkpoint() {
        let d = store_with_entries();
        let mut dump = Vec::new();
        d.export_entries(&mut dump);
        let mut buf = Vec::new();
        save_checkpoint(dump, 123, &mut buf).unwrap();
        let ck = load_checkpoint(&mut buf.as_slice()).unwrap();
        assert_eq!(ck.last_seq, 123);
        assert_eq!(ck.entries.len() as u64, d.resident_entries());

        let mut restored = TemporalEdgeStore::with_window(Duration::from_mins(30));
        for &(dst, src, at) in &ck.entries {
            restored.insert(src, dst, at);
        }
        let mut d = d;
        assert_eq!(restored.resident_entries(), d.resident_entries());
        assert_eq!(restored.resident_targets(), d.resident_targets());
        for target in 1000..1009u64 {
            assert_eq!(
                restored.witnesses(u(target), ts(300)),
                d.witnesses(u(target), ts(300)),
                "target {target}"
            );
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        let d = store_with_entries();
        let mut a = Vec::new();
        d.export_entries(&mut a);
        let mut b = a.clone();
        // Different input order (export order is unspecified): same bytes.
        b.reverse();
        // Reversal breaks per-target time order, so restrict the shuffle
        // to whole target groups: sort both stably by target and compare.
        let mut buf_a = Vec::new();
        save_checkpoint(a, 7, &mut buf_a).unwrap();
        let mut groups: Vec<Vec<(UserId, UserId, Timestamp)>> = Vec::new();
        b.reverse(); // back to export order
        for e in b {
            match groups.last_mut() {
                Some(g) if g[0].0 == e.0 => g.push(e),
                _ => groups.push(vec![e]),
            }
        }
        groups.reverse(); // permute target groups only
        let shuffled: Vec<_> = groups.into_iter().flatten().collect();
        let mut buf_b = Vec::new();
        save_checkpoint(shuffled, 7, &mut buf_b).unwrap();
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn corruption_and_truncation_rejected() {
        let d = store_with_entries();
        let mut dump = Vec::new();
        d.export_entries(&mut dump);
        let mut buf = Vec::new();
        save_checkpoint(dump, 9, &mut buf).unwrap();
        for len in 0..buf.len() {
            let r = load_checkpoint(&mut &buf[..len]);
            assert!(
                matches!(r, Err(Error::Corrupt(_))),
                "truncation at {len}: {r:?}"
            );
        }
        let reference = load_checkpoint(&mut buf.as_slice()).unwrap();
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x20;
            if let Ok(loaded) = load_checkpoint(&mut bad.as_slice()) {
                assert_eq!(loaded, reference, "silent corruption at byte {i}");
            }
        }
    }

    #[test]
    fn write_load_latest_and_pruning() {
        let t = TempDir::new("ckpt");
        write_checkpoint(t.path(), vec![(u(1), u(2), ts(3))], 10).unwrap();
        write_checkpoint(t.path(), vec![(u(1), u(2), ts(3)), (u(1), u(4), ts(5))], 20).unwrap();
        // Older checkpoint pruned after the newer landed.
        assert_eq!(list_checkpoints(t.path()).unwrap().len(), 1);
        let ck = load_latest_checkpoint(t.path()).unwrap().unwrap();
        assert_eq!(ck.last_seq, 20);
        assert_eq!(ck.entries.len(), 2);
    }

    #[test]
    fn corrupt_latest_falls_back_to_older() {
        let t = TempDir::new("ckpt");
        write_checkpoint(t.path(), vec![(u(1), u(2), ts(3))], 10).unwrap();
        // Hand-write a corrupt "newer" checkpoint.
        std::fs::write(t.path().join("d-ckpt-00000000000000000099.mgck"), b"junk").unwrap();
        let ck = load_latest_checkpoint(t.path()).unwrap().unwrap();
        assert_eq!(ck.last_seq, 10);
    }

    #[test]
    fn empty_dir_has_no_checkpoint() {
        let t = TempDir::new("ckpt");
        assert!(load_latest_checkpoint(t.path()).unwrap().is_none());
        assert!(load_latest_chain(t.path()).unwrap().is_none());
    }

    #[test]
    fn fenced_checkpoint_roundtrips_fence_vector() {
        let fences = [7u64, 0, 12, 3];
        let mut buf = Vec::new();
        save_checkpoint_fenced(vec![(u(1), u(2), ts(3))], 11, &fences, &mut buf).unwrap();
        let ck = load_checkpoint(&mut buf.as_slice()).unwrap();
        assert_eq!(ck.last_seq, 11);
        assert_eq!(ck.fences, fences);
        assert_eq!(ck.fence_vector(4).unwrap(), fences);
        // Length mismatch refused; uniform length-1 broadcasts.
        assert!(ck.fence_vector(2).is_err());
        let mut buf = Vec::new();
        save_checkpoint(vec![(u(1), u(2), ts(3))], 11, &mut buf).unwrap();
        let ck = load_checkpoint(&mut buf.as_slice()).unwrap();
        assert_eq!(ck.fence_vector(4).unwrap(), vec![12; 4]);
    }

    #[test]
    fn delta_checkpoint_roundtrips_entries_and_tombstones() {
        let entries = vec![
            (u(5), u(100), ts(1)),
            (u(5), u(101), ts(2)),
            (u(9), u(50), ts(3)),
        ];
        let mut buf = Vec::new();
        save_delta_checkpoint(
            entries.clone(),
            vec![u(7), u(2)],
            30,
            20,
            &[31, 14],
            &mut buf,
        )
        .unwrap();
        let d = load_delta_checkpoint(&mut buf.as_slice()).unwrap();
        assert_eq!(d.id, 30);
        assert_eq!(d.base_id, 20);
        assert_eq!(d.fences, vec![31, 14]);
        assert_eq!(d.entries, entries);
        assert_eq!(d.tombstones, vec![u(2), u(7)]);
        // Every truncation and every byte flip is detected or harmless.
        for len in 0..buf.len() {
            assert!(matches!(
                load_delta_checkpoint(&mut &buf[..len]),
                Err(Error::Corrupt(_))
            ));
        }
        let reference = load_delta_checkpoint(&mut buf.as_slice()).unwrap();
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x20;
            if let Ok(loaded) = load_delta_checkpoint(&mut bad.as_slice()) {
                assert_eq!(loaded, reference, "silent corruption at byte {i}");
            }
        }
    }

    #[test]
    fn overlapping_export_and_tombstone_refused() {
        let mut buf = Vec::new();
        let r = save_delta_checkpoint(
            vec![(u(5), u(100), ts(1))],
            vec![u(5)],
            30,
            20,
            &[31],
            &mut buf,
        );
        assert!(matches!(r, Err(Error::Invariant(_))));
    }

    #[test]
    fn chain_merges_full_plus_deltas() {
        let t = TempDir::new("ckpt");
        let vfs = crate::vfs::StdVfs;
        // Full at id 10: targets 1 and 2.
        write_checkpoint_fenced_with(
            t.path(),
            vec![(u(1), u(100), ts(1)), (u(2), u(200), ts(2))],
            10,
            &[11, 5],
            &vfs,
        )
        .unwrap();
        // Delta at 20: target 2 grew, target 3 appeared.
        write_delta_checkpoint_with(
            t.path(),
            vec![
                (u(2), u(200), ts(2)),
                (u(2), u(201), ts(4)),
                (u(3), u(300), ts(5)),
            ],
            vec![],
            20,
            10,
            &[21, 15],
            &vfs,
        )
        .unwrap();
        // Delta at 25: target 1 aged out entirely.
        write_delta_checkpoint_with(t.path(), vec![], vec![u(1)], 25, 20, &[26, 15], &vfs).unwrap();
        let chain = load_latest_chain(t.path()).unwrap().unwrap();
        assert_eq!(chain.last_seq, 25);
        assert_eq!(chain.fences, vec![26, 15]);
        assert_eq!(chain.chain_len, 2);
        assert!(chain.full_bytes > 0 && chain.delta_bytes > 0);
        assert_eq!(
            chain.entries,
            vec![
                (u(2), u(200), ts(2)),
                (u(2), u(201), ts(4)),
                (u(3), u(300), ts(5))
            ]
        );
    }

    #[test]
    fn chain_equals_equivalent_full() {
        // Build the same end state as one full and as full+delta; the
        // merged chain must restore identically.
        let t_full = TempDir::new("ckpt");
        let t_chain = TempDir::new("ckpt");
        let vfs = crate::vfs::StdVfs;
        let end_state = vec![
            (u(1), u(100), ts(1)),
            (u(4), u(400), ts(3)),
            (u(4), u(401), ts(6)),
        ];
        write_checkpoint_fenced_with(t_full.path(), end_state.clone(), 40, &[41], &vfs).unwrap();
        write_checkpoint_fenced_with(
            t_chain.path(),
            vec![
                (u(1), u(100), ts(1)),
                (u(4), u(400), ts(3)),
                (u(9), u(900), ts(2)),
            ],
            30,
            &[31],
            &vfs,
        )
        .unwrap();
        write_delta_checkpoint_with(
            t_chain.path(),
            vec![(u(4), u(400), ts(3)), (u(4), u(401), ts(6))],
            vec![u(9)],
            40,
            30,
            &[41],
            &vfs,
        )
        .unwrap();
        let full = load_latest_chain(t_full.path()).unwrap().unwrap();
        let chain = load_latest_chain(t_chain.path()).unwrap().unwrap();
        assert_eq!(full.entries, chain.entries);
        assert_eq!(full.last_seq, chain.last_seq);
        assert_eq!(full.fences, chain.fences);
    }

    #[test]
    fn new_full_prunes_whole_chain_and_stale_deltas_are_ignored() {
        let t = TempDir::new("ckpt");
        let vfs = crate::vfs::StdVfs;
        write_checkpoint_fenced_with(t.path(), vec![(u(1), u(2), ts(3))], 10, &[11], &vfs).unwrap();
        write_delta_checkpoint_with(
            t.path(),
            vec![(u(1), u(2), ts(3))],
            vec![],
            20,
            10,
            &[21],
            &vfs,
        )
        .unwrap();
        // A stale delta below the next full survives pruning only if the
        // unlink failed; simulate the leftover by hand after the prune.
        write_checkpoint_fenced_with(t.path(), vec![(u(5), u(6), ts(7))], 30, &[31], &vfs).unwrap();
        assert_eq!(list_checkpoints(t.path()).unwrap().len(), 1);
        assert!(list_delta_checkpoints(t.path()).unwrap().is_empty());
        // Hand-plant a stale (pre-full) delta: ignored, not corrupt.
        let mut buf = Vec::new();
        save_delta_checkpoint(vec![(u(9), u(9), ts(9))], vec![], 25, 10, &[26], &mut buf).unwrap();
        std::fs::write(t.path().join("d-ckpt-00000000000000000025.mgci"), &buf).unwrap();
        let chain = load_latest_chain(t.path()).unwrap().unwrap();
        assert_eq!(chain.last_seq, 30);
        assert_eq!(chain.chain_len, 0);
        assert_eq!(chain.entries, vec![(u(5), u(6), ts(7))]);
    }

    #[test]
    fn broken_chain_links_are_refused() {
        let t = TempDir::new("ckpt");
        let vfs = crate::vfs::StdVfs;
        write_checkpoint_fenced_with(t.path(), vec![(u(1), u(2), ts(3))], 10, &[11], &vfs).unwrap();
        // A delta chaining to an id that is not the tip: missing link.
        write_delta_checkpoint_with(
            t.path(),
            vec![(u(1), u(2), ts(3))],
            vec![],
            30,
            20,
            &[31],
            &vfs,
        )
        .unwrap();
        assert!(matches!(
            load_latest_chain(t.path()),
            Err(Error::Corrupt(_))
        ));
        std::fs::remove_file(t.path().join("d-ckpt-00000000000000000030.mgci")).unwrap();
        // A correctly-linked but damaged delta: also refused.
        write_delta_checkpoint_with(
            t.path(),
            vec![(u(1), u(2), ts(3))],
            vec![],
            20,
            10,
            &[21],
            &vfs,
        )
        .unwrap();
        let p = t.path().join("d-ckpt-00000000000000000020.mgci");
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        bytes.truncate(mid + 1);
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(
            load_latest_chain(t.path()),
            Err(Error::Corrupt(_))
        ));
        // A delta with no full beneath it at all: refused too.
        let t2 = TempDir::new("ckpt");
        write_delta_checkpoint_with(
            t2.path(),
            vec![(u(1), u(2), ts(3))],
            vec![],
            20,
            10,
            &[21],
            &vfs,
        )
        .unwrap();
        assert!(matches!(
            load_latest_chain(t2.path()),
            Err(Error::Corrupt(_))
        ));
    }
}
