//! Epoch-aligned checkpoints of the temporal store `D`.
//!
//! A checkpoint captures every resident `(dst, src, created_at)` entry —
//! per-target lists in stored time order, targets sorted ascending for
//! determinism — plus the WAL sequence it is consistent **through**.
//! Restore is replay-shaped: re-inserting the entries in file order
//! reproduces each target list byte for byte (the store's insert path is
//! deterministic for in-order batches), after which the WAL tail with
//! `seq > last_seq` finishes the job.
//!
//! Files are written to a temp name and atomically renamed, so a crash
//! mid-checkpoint leaves the previous checkpoint intact; the loader walks
//! newest → oldest and skips corrupt files.

use magicrecs_graph::io::{
    read_ascending_step, read_exact_checked, read_varint_checked, write_varint, Check,
};
use magicrecs_types::{Error, Result, Timestamp, UserId};
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"MGCK";
const VERSION: u32 = 1;

/// A decoded checkpoint: the store's entries plus the WAL position they
/// are consistent through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The WAL sequence this checkpoint covers (replay resumes after it).
    pub last_seq: u64,
    /// `(dst, src, created_at)` entries; per-target in stored time order.
    pub entries: Vec<(UserId, UserId, Timestamp)>,
}

fn ckpt_path(dir: &Path, last_seq: u64) -> PathBuf {
    dir.join(format!("d-ckpt-{last_seq:020}.mgck"))
}

/// Serializes `entries` (any order; sorted here) into `w`.
pub fn save_checkpoint<W: Write>(
    mut entries: Vec<(UserId, UserId, Timestamp)>,
    last_seq: u64,
    w: &mut W,
) -> Result<()> {
    let io_err = |e: std::io::Error| Error::Io(format!("checkpoint write failed: {e}"));
    // Stable by target: per-target time order (export order) survives.
    entries.sort_by_key(|&(dst, _, _)| dst);
    w.write_all(MAGIC).map_err(io_err)?;
    w.write_all(&VERSION.to_le_bytes()).map_err(io_err)?;
    w.write_all(&last_seq.to_le_bytes()).map_err(io_err)?;
    let mut check = Check::new();
    check.mix(last_seq);
    let groups = entries.chunk_by(|a, b| a.0 == b.0);
    w.write_all(&(groups.clone().count() as u64).to_le_bytes())
        .map_err(io_err)?;
    let mut prev_dst = 0u64;
    let mut first = true;
    for group in groups {
        let dst = group[0].0.raw();
        check.mix(dst);
        write_varint(w, if first { dst } else { dst - prev_dst }).map_err(io_err)?;
        first = false;
        prev_dst = dst;
        write_varint(w, group.len() as u64).map_err(io_err)?;
        let mut prev_at = 0u64;
        for (i, &(_, src, at)) in group.iter().enumerate() {
            check.mix(src.raw());
            check.mix(at.as_micros());
            write_varint(w, src.raw()).map_err(io_err)?;
            // Time-ordered within a list: non-negative deltas.
            let at = at.as_micros();
            write_varint(w, if i == 0 { at } else { at - prev_at }).map_err(io_err)?;
            prev_at = at;
        }
    }
    w.write_all(&check.finish().to_le_bytes()).map_err(io_err)?;
    Ok(())
}

/// Decodes a checkpoint written by [`save_checkpoint`]. Any malformed
/// shape is [`Error::Corrupt`].
pub fn load_checkpoint<R: std::io::Read>(r: &mut R) -> Result<Checkpoint> {
    let ctx = "checkpoint load";
    let mut magic = [0u8; 4];
    read_exact_checked(r, &mut magic, ctx)?;
    if &magic != MAGIC {
        return Err(Error::Corrupt(
            "bad magic: not a magicrecs checkpoint".into(),
        ));
    }
    let mut v4 = [0u8; 4];
    read_exact_checked(r, &mut v4, ctx)?;
    let version = u32::from_le_bytes(v4);
    if version != VERSION {
        return Err(Error::Corrupt(format!(
            "unsupported checkpoint version {version} (expected {VERSION})"
        )));
    }
    let mut n8 = [0u8; 8];
    read_exact_checked(r, &mut n8, ctx)?;
    let last_seq = u64::from_le_bytes(n8);
    let mut check = Check::new();
    check.mix(last_seq);
    read_exact_checked(r, &mut n8, ctx)?;
    let targets = u64::from_le_bytes(n8);
    let mut entries = Vec::new();
    let mut prev_dst = 0u64;
    for t in 0..targets {
        let dst = read_ascending_step(r, t == 0, prev_dst, ctx, "target")?;
        check.mix(dst);
        prev_dst = dst;
        let count = read_varint_checked(r, ctx)?;
        if count == 0 {
            return Err(Error::Corrupt(format!(
                "{ctx}: empty target list for {dst}"
            )));
        }
        let mut prev_at = 0u64;
        for i in 0..count {
            let src = read_varint_checked(r, ctx)?;
            let at_delta = read_varint_checked(r, ctx)?;
            let at = if i == 0 {
                at_delta
            } else {
                prev_at.checked_add(at_delta).ok_or_else(|| {
                    Error::Corrupt(format!("{ctx}: timestamp overflows past {prev_at}"))
                })?
            };
            check.mix(src);
            check.mix(at);
            entries.push((UserId(dst), UserId(src), Timestamp::from_micros(at)));
            prev_at = at;
        }
    }
    let mut c8 = [0u8; 8];
    read_exact_checked(r, &mut c8, ctx)?;
    if u64::from_le_bytes(c8) != check.finish() {
        return Err(Error::Corrupt("checkpoint checksum mismatch".into()));
    }
    Ok(Checkpoint { last_seq, entries })
}

/// Writes a checkpoint file into `dir` (temp-file, **fsync**, atomic
/// rename — a checkpoint authorizes deleting its predecessor and
/// reclaiming WAL segments, so it must actually be on disk before it
/// supersedes anything), then deletes any older checkpoint files.
/// Returns the final path.
pub fn write_checkpoint(
    dir: &Path,
    entries: Vec<(UserId, UserId, Timestamp)>,
    last_seq: u64,
) -> Result<PathBuf> {
    write_checkpoint_with(dir, entries, last_seq, &crate::vfs::StdVfs)
}

/// [`write_checkpoint`] on an explicit I/O backend (see [`crate::Vfs`]).
///
/// A failed *pruning* unlink propagates as [`Error::Io`] even though the
/// new checkpoint is already durable at that point: the newest-wins
/// loader keeps recovery correct either way, but swallowing the error
/// would silently leak one stale file per cadence tick forever.
/// Retrying the checkpoint (the caller's natural response) re-attempts
/// the same pruning, so transient failures self-heal. `NotFound` is
/// tolerated — already gone is already pruned.
pub fn write_checkpoint_with(
    dir: &Path,
    entries: Vec<(UserId, UserId, Timestamp)>,
    last_seq: u64,
    vfs: &dyn crate::vfs::Vfs,
) -> Result<PathBuf> {
    let final_path = ckpt_path(dir, last_seq);
    let tmp_path = final_path.with_extension("mgck.tmp");
    let mut buf = Vec::new();
    save_checkpoint(entries, last_seq, &mut buf)?;
    crate::fsutil::publish_durably(vfs, &tmp_path, &final_path, &buf)?;
    for (path, seq) in list_checkpoints(dir)? {
        if seq < last_seq {
            match vfs.remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(Error::Io(format!(
                        "checkpoint prune {}: {e}",
                        path.display()
                    )))
                }
            }
        }
    }
    Ok(final_path)
}

/// Checkpoint files in `dir`, sorted ascending by covered sequence.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(PathBuf, u64)>> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| Error::Io(format!("checkpoint dir: {e}")))?;
    for entry in entries {
        let entry = entry.map_err(|e| Error::Io(format!("checkpoint dir: {e}")))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("d-ckpt-")
            .and_then(|s| s.strip_suffix(".mgck"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((entry.path(), seq));
        }
    }
    out.sort_by_key(|&(_, seq)| seq);
    Ok(out)
}

/// Loads the newest checkpoint in `dir` that decodes cleanly, skipping
/// corrupt ones (a crash can only tear the newest, which the atomic
/// rename already guards; skipping is defense in depth). `None` when no
/// usable checkpoint exists — recovery then replays the whole WAL.
pub fn load_latest_checkpoint(dir: &Path) -> Result<Option<Checkpoint>> {
    for (path, _) in list_checkpoints(dir)?.into_iter().rev() {
        let bytes = std::fs::read(&path).map_err(|e| Error::Io(format!("checkpoint read: {e}")))?;
        match load_checkpoint(&mut bytes.as_slice()) {
            Ok(ck) => return Ok(Some(ck)),
            Err(Error::Corrupt(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use magicrecs_temporal::TemporalEdgeStore;
    use magicrecs_types::Duration;

    fn u(n: u64) -> UserId {
        UserId(n)
    }

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn store_with_entries() -> TemporalEdgeStore {
        let mut d = TemporalEdgeStore::with_window(Duration::from_mins(30));
        for i in 0..200u64 {
            d.insert(u(i % 17), u(1000 + i % 9), ts(10 + i));
        }
        d.insert(u(3), u(1000), ts(5)); // out-of-order arrival
        d
    }

    #[test]
    fn store_roundtrips_through_checkpoint() {
        let d = store_with_entries();
        let mut dump = Vec::new();
        d.export_entries(&mut dump);
        let mut buf = Vec::new();
        save_checkpoint(dump, 123, &mut buf).unwrap();
        let ck = load_checkpoint(&mut buf.as_slice()).unwrap();
        assert_eq!(ck.last_seq, 123);
        assert_eq!(ck.entries.len() as u64, d.resident_entries());

        let mut restored = TemporalEdgeStore::with_window(Duration::from_mins(30));
        for &(dst, src, at) in &ck.entries {
            restored.insert(src, dst, at);
        }
        let mut d = d;
        assert_eq!(restored.resident_entries(), d.resident_entries());
        assert_eq!(restored.resident_targets(), d.resident_targets());
        for target in 1000..1009u64 {
            assert_eq!(
                restored.witnesses(u(target), ts(300)),
                d.witnesses(u(target), ts(300)),
                "target {target}"
            );
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        let d = store_with_entries();
        let mut a = Vec::new();
        d.export_entries(&mut a);
        let mut b = a.clone();
        // Different input order (export order is unspecified): same bytes.
        b.reverse();
        // Reversal breaks per-target time order, so restrict the shuffle
        // to whole target groups: sort both stably by target and compare.
        let mut buf_a = Vec::new();
        save_checkpoint(a, 7, &mut buf_a).unwrap();
        let mut groups: Vec<Vec<(UserId, UserId, Timestamp)>> = Vec::new();
        b.reverse(); // back to export order
        for e in b {
            match groups.last_mut() {
                Some(g) if g[0].0 == e.0 => g.push(e),
                _ => groups.push(vec![e]),
            }
        }
        groups.reverse(); // permute target groups only
        let shuffled: Vec<_> = groups.into_iter().flatten().collect();
        let mut buf_b = Vec::new();
        save_checkpoint(shuffled, 7, &mut buf_b).unwrap();
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn corruption_and_truncation_rejected() {
        let d = store_with_entries();
        let mut dump = Vec::new();
        d.export_entries(&mut dump);
        let mut buf = Vec::new();
        save_checkpoint(dump, 9, &mut buf).unwrap();
        for len in 0..buf.len() {
            let r = load_checkpoint(&mut &buf[..len]);
            assert!(
                matches!(r, Err(Error::Corrupt(_))),
                "truncation at {len}: {r:?}"
            );
        }
        let reference = load_checkpoint(&mut buf.as_slice()).unwrap();
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x20;
            if let Ok(loaded) = load_checkpoint(&mut bad.as_slice()) {
                assert_eq!(loaded, reference, "silent corruption at byte {i}");
            }
        }
    }

    #[test]
    fn write_load_latest_and_pruning() {
        let t = TempDir::new("ckpt");
        write_checkpoint(t.path(), vec![(u(1), u(2), ts(3))], 10).unwrap();
        write_checkpoint(t.path(), vec![(u(1), u(2), ts(3)), (u(1), u(4), ts(5))], 20).unwrap();
        // Older checkpoint pruned after the newer landed.
        assert_eq!(list_checkpoints(t.path()).unwrap().len(), 1);
        let ck = load_latest_checkpoint(t.path()).unwrap().unwrap();
        assert_eq!(ck.last_seq, 20);
        assert_eq!(ck.entries.len(), 2);
    }

    #[test]
    fn corrupt_latest_falls_back_to_older() {
        let t = TempDir::new("ckpt");
        write_checkpoint(t.path(), vec![(u(1), u(2), ts(3))], 10).unwrap();
        // Hand-write a corrupt "newer" checkpoint.
        std::fs::write(t.path().join("d-ckpt-00000000000000000099.mgck"), b"junk").unwrap();
        let ck = load_latest_checkpoint(t.path()).unwrap().unwrap();
        assert_eq!(ck.last_seq, 10);
    }

    #[test]
    fn empty_dir_has_no_checkpoint() {
        let t = TempDir::new("ckpt");
        assert!(load_latest_checkpoint(t.path()).unwrap().is_none());
    }
}
