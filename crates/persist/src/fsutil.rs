//! Shared filesystem plumbing: durable publish (write → fsync → rename)
//! and crash-artifact cleanup.

use magicrecs_types::{Error, Result};
use std::io::Write;
use std::path::Path;

/// Publishes `bytes` at `final_path` durably: write to `tmp_path`,
/// `fsync` the file, atomically rename over the final name, then `fsync`
/// the parent directory.
///
/// The fsync **before** the rename is load-bearing: checkpoints and
/// snapshots immediately authorize deleting their predecessors (and, for
/// checkpoints, reclaiming WAL segments), so a rename that lands before
/// the data blocks reach disk could survive a power loss as an empty
/// file while everything it superseded is already gone. The directory
/// fsync **after** the rename is equally load-bearing: POSIX only makes
/// a rename durable once the containing directory's entry reaches disk,
/// and the same authorize-deletions argument applies to the name itself.
pub(crate) fn publish_durably(tmp_path: &Path, final_path: &Path, bytes: &[u8]) -> Result<()> {
    let io_err = |stage: &str, e: std::io::Error| Error::Io(format!("{stage}: {e}"));
    let mut f = std::fs::File::create(tmp_path).map_err(|e| io_err("durable write create", e))?;
    f.write_all(bytes).map_err(|e| io_err("durable write", e))?;
    f.sync_all().map_err(|e| io_err("durable write fsync", e))?;
    drop(f);
    std::fs::rename(tmp_path, final_path).map_err(|e| io_err("durable write rename", e))?;
    if let Some(parent) = final_path.parent() {
        fsync_dir(parent)?;
    }
    Ok(())
}

/// Fsyncs a directory so entry mutations inside it (create, rename,
/// unlink) survive power loss. No-op on platforms where directories
/// cannot be opened for syncing.
pub(crate) fn fsync_dir(dir: &Path) -> Result<()> {
    #[cfg(unix)]
    {
        let d = std::fs::File::open(dir)
            .map_err(|e| Error::Io(format!("dir open for fsync {}: {e}", dir.display())))?;
        d.sync_all()
            .map_err(|e| Error::Io(format!("dir fsync {}: {e}", dir.display())))?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Removes orphaned `*.tmp` files — the leftovers of a crash between a
/// durable write and its rename. Called from recovery/creation paths,
/// which own crash-artifact cleanup (single-writer directories by
/// design, so a live publish can never race this).
pub(crate) fn sweep_tmp_files(dir: &Path) -> Result<()> {
    let entries = std::fs::read_dir(dir).map_err(|e| Error::Io(format!("tmp sweep: {e}")))?;
    for entry in entries {
        let entry = entry.map_err(|e| Error::Io(format!("tmp sweep: {e}")))?;
        if entry.file_name().to_string_lossy().ends_with(".tmp") {
            std::fs::remove_file(entry.path()).map_err(|e| Error::Io(format!("tmp sweep: {e}")))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    #[test]
    fn publish_lands_atomically_and_sweep_cleans_orphans() {
        let t = TempDir::new("fsutil");
        let final_path = t.path().join("out.bin");
        publish_durably(&t.path().join("out.bin.tmp"), &final_path, b"payload").unwrap();
        assert_eq!(std::fs::read(&final_path).unwrap(), b"payload");
        assert!(!t.path().join("out.bin.tmp").exists());

        std::fs::write(t.path().join("orphan.mgck.tmp"), b"junk").unwrap();
        sweep_tmp_files(t.path()).unwrap();
        assert!(!t.path().join("orphan.mgck.tmp").exists());
        assert!(final_path.exists(), "sweep must not touch published files");
    }
}
