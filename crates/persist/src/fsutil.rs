//! Shared filesystem plumbing: durable publish (write → fsync → rename)
//! and crash-artifact cleanup. All mutations go through the caller's
//! [`Vfs`] so fault injection sees every step.

use crate::vfs::Vfs;
use magicrecs_types::{Error, Result};
use std::path::Path;

/// Publishes `bytes` at `final_path` durably: write to `tmp_path`,
/// `fsync` the file, atomically rename over the final name, then `fsync`
/// the parent directory.
///
/// The fsync **before** the rename is load-bearing: checkpoints and
/// snapshots immediately authorize deleting their predecessors (and, for
/// checkpoints, reclaiming WAL segments), so a rename that lands before
/// the data blocks reach disk could survive a power loss as an empty
/// file while everything it superseded is already gone. The directory
/// fsync **after** the rename is equally load-bearing: POSIX only makes
/// a rename durable once the containing directory's entry reaches disk,
/// and the same authorize-deletions argument applies to the name itself.
///
/// Failure at any step surfaces as a typed [`Error::Io`] with nothing
/// published: the worst leftover is the `.tmp` file, which the recovery
/// paths' [`sweep_tmp_files`] deletes.
pub(crate) fn publish_durably(
    vfs: &dyn Vfs,
    tmp_path: &Path,
    final_path: &Path,
    bytes: &[u8],
) -> Result<()> {
    let io_err = |stage: &str, e: std::io::Error| Error::Io(format!("{stage}: {e}"));
    let mut f = vfs
        .create(tmp_path)
        .map_err(|e| io_err("durable write create", e))?;
    f.write_all(bytes).map_err(|e| io_err("durable write", e))?;
    f.sync_all().map_err(|e| io_err("durable write fsync", e))?;
    drop(f);
    vfs.rename(tmp_path, final_path)
        .map_err(|e| io_err("durable write rename", e))?;
    if let Some(parent) = final_path.parent() {
        vfs.sync_dir(parent)
            .map_err(|e| io_err(&format!("dir fsync {}", parent.display()), e))?;
    }
    Ok(())
}

/// Removes orphaned `*.tmp` files — the leftovers of a crash between a
/// durable write and its rename. Called from recovery/creation paths,
/// which own crash-artifact cleanup (single-writer directories by
/// design, so a live publish can never race this).
pub(crate) fn sweep_tmp_files(vfs: &dyn Vfs, dir: &Path) -> Result<()> {
    let entries = std::fs::read_dir(dir).map_err(|e| Error::Io(format!("tmp sweep: {e}")))?;
    for entry in entries {
        let entry = entry.map_err(|e| Error::Io(format!("tmp sweep: {e}")))?;
        if entry.file_name().to_string_lossy().ends_with(".tmp") {
            vfs.remove_file(&entry.path())
                .map_err(|e| Error::Io(format!("tmp sweep: {e}")))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use crate::vfs::{FaultPlan, FaultVfs, StdVfs};

    #[test]
    fn publish_lands_atomically_and_sweep_cleans_orphans() {
        let t = TempDir::new("fsutil");
        let final_path = t.path().join("out.bin");
        publish_durably(
            &StdVfs,
            &t.path().join("out.bin.tmp"),
            &final_path,
            b"payload",
        )
        .unwrap();
        assert_eq!(std::fs::read(&final_path).unwrap(), b"payload");
        assert!(!t.path().join("out.bin.tmp").exists());

        std::fs::write(t.path().join("orphan.mgck.tmp"), b"junk").unwrap();
        sweep_tmp_files(&StdVfs, t.path()).unwrap();
        assert!(!t.path().join("orphan.mgck.tmp").exists());
        assert!(final_path.exists(), "sweep must not touch published files");
    }

    #[test]
    fn failed_publish_steps_surface_typed_and_publish_nothing() {
        // Each injected failure point: typed error, no final file.
        for (plan, stage) in [
            (FaultPlan::fail_nth_write(1), "write"),
            (FaultPlan::fail_nth_sync(1), "fsync"),
            (FaultPlan::fail_nth_rename(1), "rename"),
            (FaultPlan::fail_nth_sync_dir(1), "dir fsync"),
        ] {
            let t = TempDir::new("fsutil");
            let final_path = t.path().join("out.bin");
            let fv = FaultVfs::new(plan);
            let err = publish_durably(&fv, &t.path().join("out.bin.tmp"), &final_path, b"payload")
                .unwrap_err();
            assert!(
                matches!(err, Error::Io(_)),
                "stage {stage} must fail typed: {err:?}"
            );
            assert_eq!(fv.fired_count(), 1, "stage {stage} fault did not fire");
            // A failed dir fsync is the only stage past the commit point.
            if stage != "dir fsync" {
                assert!(!final_path.exists(), "stage {stage} published anyway");
            }
        }
    }
}
