//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) for WAL record
//! framing.
//!
//! The graph/checkpoint codecs checksum with the workspace FxHash — fine
//! for whole-file validation, where the checksum sits after a
//! known-complete payload. WAL records need the opposite property:
//! deciding whether the *tail* of a file is a complete record, where a
//! torn write leaves arbitrary prefixes. CRC-32 is the standard,
//! byte-order-free answer, and a table-driven implementation is dependency
//! free.

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let data = b"the quick brown fox".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {i}.{bit} undetected");
            }
        }
    }
}
