//! WAL shipping: the leader-side segment catalog and the follower-side
//! stream decoder that replication is built from.
//!
//! The `MGWL` segment format already *is* a replication stream — every
//! record is CRC-framed, carries an explicit strictly-ascending
//! sequence, and a segment's header names the first sequence it holds —
//! so shipping a partition is nothing more than copying segment byte
//! ranges in order. What this module adds is the two ends of that copy:
//!
//! * [`segment_catalog`] — what a leader advertises: its segment files
//!   (including the active one; a concurrent reader only ever sees a
//!   clean record prefix, which [`ShipDecoder`] treats as "wait for more
//!   bytes") keyed by first sequence, with current byte sizes.
//! * [`ShipDecoder`] — what a follower runs the fetched bytes through:
//!   an incremental frame parser that re-validates every CRC, **skips
//!   duplicates** (a resend after reconnect replays a prefix — records
//!   below the follower's expected sequence are dropped, never
//!   re-applied), and **refuses gaps** with a typed
//!   [`Error::ReplicaGap`] (a jumped sequence means a lost or reclaimed
//!   middle segment — resuming would silently diverge the follower, so
//!   it must re-seed from a checkpoint instead).
//!
//! The decoder is prefix-closed like the wire codec: bytes cut at *any*
//! boundary (mid-header, mid-frame, mid-payload) decode to a clean
//! record prefix and an internal "incomplete" tail that the next feed
//! continues — the follower kill-point matrix in `magicrecs-replica`
//! cuts at every record boundary and byte offset to enforce exactly
//! this.

use crate::metrics;
use crate::wal::{
    decode_payload, list_segments, WalRecord, HEADER_LEN, MAGIC, MAX_RECORD_LEN, VERSION,
};
use magicrecs_obs::{recorder, TraceKind};
use magicrecs_types::{Error, Result};
use std::path::{Path, PathBuf};

/// Computes the CRC the segment frames carry (re-exported recipe so the
/// decoder and the writer can never drift).
use crate::crc::crc32;

/// One shippable segment file as a leader advertises it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShippableSegment {
    /// First sequence the segment holds (encoded in its file name and
    /// repeated in its header).
    pub first_seq: u64,
    /// The segment file.
    pub path: PathBuf,
    /// Current byte length. For the active (still-written) segment this
    /// is a moving lower bound; bytes past it arrive in later catalogs.
    pub bytes: u64,
}

/// Lists the shippable segments for one WAL prefix in `dir`, sorted by
/// first sequence. Includes the active segment — a shipped prefix of it
/// is always a clean record prefix (appends are single `write(2)`s of
/// whole frames), and [`ShipDecoder`] holds any torn tail until more
/// bytes arrive.
pub fn segment_catalog(dir: &Path, prefix: &str) -> Result<Vec<ShippableSegment>> {
    let mut out = Vec::new();
    for path in list_segments(dir, prefix)? {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| Error::Invariant(format!("wal segment path {}", path.display())))?;
        let digits = &name[prefix.len()..name.len() - ".wal".len()];
        let first_seq = digits
            .parse::<u64>()
            .map_err(|_| Error::Corrupt(format!("wal segment name {name}: bad sequence")))?;
        let bytes = std::fs::metadata(&path)
            .map_err(|e| Error::Io(format!("wal segment {}: {e}", path.display())))?
            .len();
        out.push(ShippableSegment {
            first_seq,
            path,
            bytes,
        });
    }
    Ok(out)
}

/// The segment that contains `seq` (the last whose `first_seq` is at or
/// below it), or a typed [`Error::ReplicaGap`] if every cataloged
/// segment starts above `seq` — the history a resuming follower needs
/// has been reclaimed.
pub fn segment_containing(
    catalog: &[ShippableSegment],
    partition: u32,
    seq: u64,
) -> Result<Option<usize>> {
    if catalog.is_empty() {
        return Ok(None);
    }
    match catalog.iter().rposition(|s| s.first_seq <= seq) {
        Some(i) => Ok(Some(i)),
        None => Err(gap(partition, seq, catalog[0].first_seq)),
    }
}

fn gap(partition: u32, expected: u64, got: u64) -> Error {
    metrics::replica().gaps.incr();
    recorder::record(TraceKind::ReplicaGap, "ship gap", expected, got);
    Error::ReplicaGap {
        partition,
        expected,
        got,
    }
}

/// Incremental decoder for one partition's shipped segment stream.
///
/// Drive it with [`ShipDecoder::begin_segment`] each time fetching moves
/// to a new segment file (chunks always start at byte 0 of a segment),
/// then [`ShipDecoder::feed`] with each fetched byte range. Decoded
/// records come out exactly once, densely sequenced from the expected
/// floor; duplicates are skipped and counted; a sequence jump is a
/// typed, unrecoverable [`Error::ReplicaGap`].
#[derive(Debug)]
pub struct ShipDecoder {
    partition: u32,
    expect: u64,
    buf: Vec<u8>,
    /// Set between `begin_segment` and the header's arrival.
    awaiting_header: bool,
    /// Last sequence decoded from the current segment (monotonicity
    /// guard within one file, independent of duplicate skipping).
    last_in_segment: Option<u64>,
    segment_first_seq: u64,
}

impl ShipDecoder {
    /// A decoder expecting the stream to continue at `expect` (the
    /// follower's next sequence: its durable tail + 1, or the checkpoint
    /// fence it re-seeded from).
    pub fn new(partition: u32, expect: u64) -> ShipDecoder {
        ShipDecoder {
            partition,
            expect,
            buf: Vec::new(),
            awaiting_header: true,
            last_in_segment: None,
            segment_first_seq: 0,
        }
    }

    /// The next sequence the decoder will emit.
    pub fn expected(&self) -> u64 {
        self.expect
    }

    /// Bytes buffered as an incomplete frame tail.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Starts a fresh segment (fetch offset back to 0). Refuses if the
    /// previous segment ended mid-frame: a *sealed* segment always ends
    /// on a record boundary, so leftover bytes mean the ship lost the
    /// tail of a middle segment.
    pub fn begin_segment(&mut self) -> Result<()> {
        if !self.buf.is_empty() {
            return Err(Error::Corrupt(format!(
                "ship p{}: {} dangling bytes at sealed-segment boundary",
                self.partition,
                self.buf.len()
            )));
        }
        self.awaiting_header = true;
        self.last_in_segment = None;
        Ok(())
    }

    /// Feeds fetched bytes, appending newly-completed records (densely
    /// sequenced at the expected floor) to `out`. Incomplete tails are
    /// buffered for the next feed; duplicates are skipped; corruption
    /// and gaps are typed errors (the decoder is then unusable — the
    /// follower must refuse the stream, not resume past damage).
    pub fn feed(&mut self, bytes: &[u8], out: &mut Vec<WalRecord>) -> Result<()> {
        let m = metrics::replica();
        m.ship_bytes.add(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
        loop {
            if self.awaiting_header {
                if self.buf.len() < HEADER_LEN as usize {
                    return Ok(());
                }
                if &self.buf[0..4] != MAGIC {
                    return Err(Error::Corrupt(format!(
                        "ship p{}: bad segment magic",
                        self.partition
                    )));
                }
                let version = u32::from_le_bytes(self.buf[4..8].try_into().expect("4 bytes"));
                if version != VERSION {
                    return Err(Error::Corrupt(format!(
                        "ship p{}: unsupported segment version {version}",
                        self.partition
                    )));
                }
                let first_seq = u64::from_le_bytes(self.buf[8..16].try_into().expect("8 bytes"));
                if first_seq > self.expect {
                    return Err(gap(self.partition, self.expect, first_seq));
                }
                self.segment_first_seq = first_seq;
                self.buf.drain(..HEADER_LEN as usize);
                self.awaiting_header = false;
                continue;
            }
            if self.buf.len() < 8 {
                return Ok(());
            }
            let len = u32::from_le_bytes(self.buf[0..4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(self.buf[4..8].try_into().expect("4 bytes"));
            if len > MAX_RECORD_LEN {
                // On the leader's own disk this would be a torn tail; on a
                // shipped stream the bytes came out of a CRC-framed file,
                // so oversize framing is damage, not a crash signature.
                return Err(Error::Corrupt(format!(
                    "ship p{}: frame length {len} exceeds record bound",
                    self.partition
                )));
            }
            let total = 8 + len as usize;
            if self.buf.len() < total {
                return Ok(());
            }
            let payload = &self.buf[8..total];
            if crc32(payload) != crc {
                return Err(Error::Corrupt(format!(
                    "ship p{}: record crc mismatch",
                    self.partition
                )));
            }
            let Some(record) = decode_payload(payload) else {
                return Err(Error::Corrupt(format!(
                    "ship p{}: undecodable record payload",
                    self.partition
                )));
            };
            if record.seq < self.segment_first_seq
                || self.last_in_segment.is_some_and(|l| record.seq <= l)
            {
                return Err(Error::Corrupt(format!(
                    "ship p{}: non-monotone sequence {} within segment",
                    self.partition, record.seq
                )));
            }
            self.last_in_segment = Some(record.seq);
            if record.seq > self.expect {
                return Err(gap(self.partition, self.expect, record.seq));
            }
            if record.seq == self.expect {
                self.expect += 1;
                m.ship_records.incr();
                out.push(record);
            } else {
                m.dup_skipped.incr();
            }
            self.buf.drain(..total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{replay, FsyncPolicy, Wal, WalOptions};
    use crate::TempDir;
    use magicrecs_types::{EdgeEvent, Timestamp, UserId};

    fn opts(segment_bytes: u64) -> WalOptions {
        WalOptions {
            fsync: FsyncPolicy::Never,
            segment_bytes,
        }
    }

    fn build_wal(dir: &Path, n: u64, segment_bytes: u64) -> Vec<WalRecord> {
        let mut wal = Wal::create(dir, "wal-", opts(segment_bytes)).unwrap();
        for i in 0..n {
            wal.append(EdgeEvent::follow(
                UserId(i),
                UserId(1000 + i),
                Timestamp::from_secs(i),
            ))
            .unwrap();
        }
        wal.close().unwrap();
        let mut records = Vec::new();
        replay(dir, "wal-", 0, |r| records.push(r)).unwrap();
        records
    }

    fn ship_all(catalog: &[ShippableSegment], dec: &mut ShipDecoder) -> Result<Vec<WalRecord>> {
        let mut out = Vec::new();
        for (i, seg) in catalog.iter().enumerate() {
            if i > 0 {
                dec.begin_segment()?;
            }
            let bytes = std::fs::read(&seg.path).unwrap();
            dec.feed(&bytes, &mut out)?;
        }
        Ok(out)
    }

    #[test]
    fn catalog_lists_segments_in_order() {
        let dir = TempDir::new("ship-catalog");
        build_wal(dir.path(), 200, 256);
        let catalog = segment_catalog(dir.path(), "wal-").unwrap();
        assert!(catalog.len() > 1, "want multiple segments");
        assert_eq!(catalog[0].first_seq, 0);
        for w in catalog.windows(2) {
            assert!(w[0].first_seq < w[1].first_seq);
        }
        for seg in &catalog {
            assert_eq!(seg.bytes, std::fs::metadata(&seg.path).unwrap().len());
        }
    }

    #[test]
    fn whole_stream_roundtrips() {
        let dir = TempDir::new("ship-roundtrip");
        let want = build_wal(dir.path(), 150, 512);
        let catalog = segment_catalog(dir.path(), "wal-").unwrap();
        let mut dec = ShipDecoder::new(0, 0);
        let got = ship_all(&catalog, &mut dec).unwrap();
        assert_eq!(got, want);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn every_byte_cut_is_prefix_closed() {
        let dir = TempDir::new("ship-cuts");
        let want = build_wal(dir.path(), 40, 1 << 20);
        let catalog = segment_catalog(dir.path(), "wal-").unwrap();
        assert_eq!(catalog.len(), 1);
        let bytes = std::fs::read(&catalog[0].path).unwrap();
        for cut in 0..=bytes.len() {
            let mut dec = ShipDecoder::new(0, 0);
            let mut out = Vec::new();
            dec.feed(&bytes[..cut], &mut out).unwrap();
            assert_eq!(out, want[..out.len()], "cut {cut}: wrong prefix");
            dec.feed(&bytes[cut..], &mut out).unwrap();
            assert_eq!(out, want, "cut {cut}: resume diverged");
        }
    }

    #[test]
    fn duplicate_resend_is_skipped_not_reapplied() {
        let dir = TempDir::new("ship-dup");
        let want = build_wal(dir.path(), 30, 1 << 20);
        let catalog = segment_catalog(dir.path(), "wal-").unwrap();
        let bytes = std::fs::read(&catalog[0].path).unwrap();
        let mut dec = ShipDecoder::new(0, 0);
        let mut out = Vec::new();
        dec.feed(&bytes, &mut out).unwrap();
        // Reconnect replays the whole segment from byte 0.
        dec.begin_segment().unwrap();
        dec.feed(&bytes, &mut out).unwrap();
        assert_eq!(out, want, "duplicate resend must be absorbed");
    }

    #[test]
    fn skipped_segment_is_a_typed_gap() {
        let dir = TempDir::new("ship-gap");
        build_wal(dir.path(), 200, 256);
        let catalog = segment_catalog(dir.path(), "wal-").unwrap();
        assert!(catalog.len() > 2);
        let mut dec = ShipDecoder::new(7, 0);
        let mut out = Vec::new();
        let first = std::fs::read(&catalog[0].path).unwrap();
        dec.feed(&first, &mut out).unwrap();
        dec.begin_segment().unwrap();
        // Skip catalog[1]: the next fed segment starts past the floor.
        let third = std::fs::read(&catalog[2].path).unwrap();
        let err = dec.feed(&third, &mut out).unwrap_err();
        assert!(
            matches!(err, Error::ReplicaGap { partition: 7, .. }),
            "want ReplicaGap, got {err:?}"
        );
    }

    #[test]
    fn reclaimed_history_is_a_typed_gap() {
        let dir = TempDir::new("ship-reclaimed");
        build_wal(dir.path(), 200, 256);
        let catalog = segment_catalog(dir.path(), "wal-").unwrap();
        // A follower at seq 0 against a catalog that starts later.
        let err = segment_containing(&catalog[1..], 3, 0).unwrap_err();
        assert!(matches!(err, Error::ReplicaGap { partition: 3, .. }));
        // A follower inside the catalog finds its segment.
        let idx = segment_containing(&catalog, 3, catalog[1].first_seq + 1)
            .unwrap()
            .unwrap();
        assert_eq!(idx, 1);
    }

    #[test]
    fn corrupt_shipped_byte_is_typed_corrupt() {
        let dir = TempDir::new("ship-corrupt");
        build_wal(dir.path(), 20, 1 << 20);
        let catalog = segment_catalog(dir.path(), "wal-").unwrap();
        let mut bytes = std::fs::read(&catalog[0].path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let mut dec = ShipDecoder::new(0, 0);
        let mut out = Vec::new();
        let err = dec.feed(&bytes, &mut out).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
    }
}
