//! Crash recovery: snapshot chain + `D` checkpoint + WAL tail replay.
//!
//! [`PersistentEngine`] wraps the sequential [`Engine`];
//! [`PersistentConcurrentEngine`] wraps the shared-state
//! [`ConcurrentEngine`] with per-partition WALs keyed by the hash route.
//! Both follow the same lifecycle:
//!
//! 1. **create** — publish the base `S` snapshot, start an empty WAL;
//! 2. **ingest** — every event is appended to the WAL *before* the engine
//!    applies it (write-ahead), checkpoints of `D` land every
//!    `checkpoint_every` events, and [`advance`](PersistentEngine::advance)
//!    reclaims WAL segments the window pruning + checkpoint have both
//!    passed;
//! 3. **open** (after a crash or restart) — reload base + delta chain,
//!    restore the newest `D` checkpoint **chain** (full + incremental
//!    deltas), replay each WAL partition's tail above its fence through
//!    the store with **notification emission suppressed** (replay mutates
//!    `D` only — no candidate is ever delivered twice), then hand off to
//!    live ingest at the exact sequence the log ends.
//!
//! ## The parity contract
//!
//! After a crash at *any* WAL record boundary, the recovered engine's
//! candidate stream for subsequent events is byte-identical to an
//! uninterrupted run's (enforced by the kill-point matrix test), provided
//! the stream's timestamp skew never reaches back past an expiry horizon
//! the engine has already advanced over — the same out-of-order trade the
//! engines themselves document for `advance`. Replay applies `D`
//! mutations without re-running detection: in-window witness sets depend
//! only on the per-target insert/remove sequence, which the WAL preserves
//! per target (globally for the sequential engine; per hash-route
//! partition — and targets are route-sticky — for the shared engine).
//!
//! ## The fence-vector consistency contract
//!
//! Checkpoints never require quiescing ingest. A checkpoint is assembled
//! one WAL partition at a time: partition `p` is briefly fenced (its
//! appends stall, every in-flight store apply drains, the log syncs),
//! its targets are exported at that instant, and the cut records
//! `fences[p]` — the first sequence the export does **not** reflect —
//! while every other partition keeps ingesting. The resulting file is
//! *not* a moment-in-time photograph of the whole store; it is a vector
//! of per-partition photographs taken at different sequences. That is
//! sufficient because targets are partition-sticky: restoring the
//! exported lists and then replaying each partition's WAL tail from its
//! own fence reproduces exactly the per-target insert/remove sequence
//! the live run applied, which is all `D` semantics depend on.
//!
//! ## Incremental checkpoint chain rules
//!
//! With a non-disabled [`RebasePolicy`], checkpoints after the first are
//! **deltas** (`.mgci`): only targets whose list changed since the
//! previous cut are written (complete current lists, or tombstones for
//! targets that aged out), chained to the previous checkpoint's id. The
//! chain rebases to a fresh full (`.mgck`) when it outgrows the policy's
//! length or byte-ratio bound. Reclamation authority belongs to the
//! *chain tip*, but only a **full** prunes files: every delta's
//! predecessors stay load-bearing until the next full supersedes the
//! whole chain, and WAL segments reclaim against the tip's fence vector
//! (partition `p`'s segments are disposable below `fences[p]`, wherever
//! the other partitions' fences sit).

use crate::checkpoint::{
    broadcast_fences, load_latest_chain, write_checkpoint_fenced_with, write_delta_checkpoint_with,
    CheckpointChain,
};
use crate::snapshot::{RebasePolicy, SnapshotStore};
use crate::vfs::{std_vfs, Vfs};
use crate::wal::{self, route_partition, FsyncPolicy, SharedWal, Wal, WalOptions};
use magicrecs_core::{ConcurrentEngine, Engine};
use magicrecs_graph::{CapStrategy, FollowGraph, GraphDelta};
use magicrecs_types::{Candidate, DetectorConfig, EdgeEvent, Error, Result, Timestamp, UserId};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning for the persistence subsystem.
#[derive(Debug, Clone, Copy)]
pub struct PersistOptions {
    /// WAL durability policy.
    pub fsync: FsyncPolicy,
    /// WAL segment roll threshold, bytes.
    pub segment_bytes: u64,
    /// Events between automatic `D` checkpoints (0 disables — the WAL
    /// then replays from its beginning and is never reclaimed).
    ///
    /// The sequential engine checkpoints inline from its ingest path.
    /// [`PersistentConcurrentEngine`] keeps ingest wait-free and leaves
    /// the cadence to a [`CheckpointDriver`] (or explicit
    /// [`PersistentConcurrentEngine::checkpoint`] calls) — checkpoints
    /// there never require quiescing, see the fence-vector contract in
    /// the module docs.
    pub checkpoint_every: u64,
    /// When `publish_graph_delta` folds the snapshot delta chain into a
    /// fresh base automatically (see [`RebasePolicy`]), **and** when the
    /// `D` checkpoint chain rebases an incremental run onto a fresh full
    /// checkpoint. [`RebasePolicy::DISABLED`] leaves snapshot compaction
    /// to the operator and makes every `D` checkpoint a full one
    /// (incremental dirty-tracking is then never enabled, so the
    /// steady-state ingest path carries zero tracking overhead).
    pub rebase: RebasePolicy,
}

impl Default for PersistOptions {
    fn default() -> Self {
        PersistOptions {
            fsync: FsyncPolicy::EveryN(256),
            segment_bytes: 1 << 20,
            checkpoint_every: 4096,
            rebase: RebasePolicy::default(),
        }
    }
}

impl PersistOptions {
    fn wal(&self) -> WalOptions {
        WalOptions {
            fsync: self.fsync,
            segment_bytes: self.segment_bytes,
        }
    }
}

/// What recovery found and did.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// Epoch of the reconstructed `S` snapshot (base + chain).
    pub snapshot_epoch: u64,
    /// Delta chain links folded onto the base.
    pub deltas_applied: usize,
    /// WAL sequence the restored checkpoint covered (`None`: no usable
    /// checkpoint, replay started from the log's beginning).
    pub checkpoint_seq: Option<u64>,
    /// WAL records replayed with emission suppressed.
    pub replayed: u64,
    /// Number of checkpoint entries re-inserted into `D`.
    pub checkpoint_entries: u64,
    /// First sequence live ingest will append.
    pub next_seq: u64,
    /// Whether the newest WAL segment ended in a torn record (the crash
    /// signature; the tear is repaired before live ingest resumes).
    pub torn_tail: bool,
}

const SEQ_WAL_PREFIX: &str = "wal-";

/// How many replayed events accumulate before a batched store apply —
/// bounds the replay buffer while still amortizing shard locking.
const REPLAY_APPLY_CHUNK: usize = 4096;

/// In-memory view of the on-disk `D` checkpoint chain — what the next
/// checkpoint call needs to pick full vs delta and what `advance` needs
/// to reclaim WAL segments.
#[derive(Debug, Clone)]
struct ChainState {
    /// Id (= covered sequence) of the chain tip.
    tip_id: u64,
    /// The tip's per-partition fence vector (length = WAL partitions;
    /// `[tip_id + 1]` for the sequential engine).
    fences: Vec<u64>,
    /// Deltas stacked on the newest full.
    chain_len: usize,
    /// Byte size of the newest full checkpoint.
    full_bytes: u64,
    /// Cumulative byte size of the deltas above it.
    delta_bytes: u64,
}

impl ChainState {
    fn from_chain(chain: &CheckpointChain) -> ChainState {
        ChainState {
            tip_id: chain.last_seq,
            fences: chain.fences.clone(),
            chain_len: chain.chain_len as usize,
            full_bytes: chain.full_bytes,
            delta_bytes: chain.delta_bytes,
        }
    }

    /// Whether the next checkpoint must rebase to a full — the same
    /// length/byte-ratio shape [`RebasePolicy`] applies to snapshot
    /// chains, here over checkpoint files.
    fn wants_full(&self, policy: RebasePolicy) -> bool {
        if policy.max_chain_len == 0 {
            return true; // incremental mode disabled entirely
        }
        if self.chain_len >= policy.max_chain_len {
            return true;
        }
        policy.max_delta_bytes_ratio > 0.0
            && self.chain_len > 0
            && self.delta_bytes as f64 >= policy.max_delta_bytes_ratio * self.full_bytes as f64
    }

    /// Exposes the chain's delta-to-full byte ratio (percent) on the
    /// registry — the very quantity [`ChainState::wants_full`] rebases
    /// on, so an operator watching the gauge sees the rebase coming.
    fn publish_dirty_ratio(&self) {
        let pct = self
            .delta_bytes
            .saturating_mul(100)
            .checked_div(self.full_bytes)
            .unwrap_or(0);
        crate::metrics::ckpt().dirty_ratio_pct.set(pct);
    }
}

/// Whether this policy wants per-target dirty tracking enabled in `D`
/// (the prerequisite for writing delta checkpoints).
fn incremental(policy: RebasePolicy) -> bool {
    policy.max_chain_len > 0
}

/// Restores the newest `D` checkpoint **chain** (full + linked deltas,
/// merged by [`load_latest_chain`]) through `apply_batch` in
/// [`REPLAY_APPLY_CHUNK`]-bounded batches (merged chain entries are all
/// insertions, so each chunk is one
/// [`magicrecs_temporal::EdgeStore::insert_batch`]-shaped apply without
/// ever materializing a second full copy of the checkpoint), returning
/// `(fences, chain_state, entries_restored)` — the per-partition WAL
/// replay bounds shared by both engines' recovery paths. `parts` is the
/// WAL partition count the fence vector must match (a stored
/// single-fence vector broadcasts — v1 checkpoints and sequential-engine
/// files carry one fence).
fn restore_checkpoint(
    dir: &Path,
    parts: usize,
    mut apply_batch: impl FnMut(&[EdgeEvent]),
) -> Result<(Vec<u64>, Option<ChainState>, u64)> {
    Ok(match load_latest_chain(dir)? {
        Some(chain) => {
            let n = chain.entries.len() as u64;
            let mut buf: Vec<EdgeEvent> =
                Vec::with_capacity(REPLAY_APPLY_CHUNK.min(chain.entries.len()));
            for chunk in chain.entries.chunks(REPLAY_APPLY_CHUNK) {
                buf.clear();
                buf.extend(
                    chunk
                        .iter()
                        .map(|&(dst, src, at)| EdgeEvent::follow(src, dst, at)),
                );
                apply_batch(&buf);
            }
            let fences = broadcast_fences(&chain.fences, parts)?;
            let mut state = ChainState::from_chain(&chain);
            state.fences = fences.clone();
            (fences, Some(state), n)
        }
        None => (vec![0; parts], None, 0),
    })
}

/// Refuses to create a fresh engine over a directory that already holds
/// persistence state. A fully-reclaimed directory legitimately holds
/// *zero* WAL segments while its checkpoint still covers sequence `N`:
/// creating there would restart sequences at 0, new checkpoints at
/// `covered < N` would never displace the stale one (pruning only
/// deletes *older* files), and the next recovery would restore the
/// previous incarnation's `D` and silently filter out every new record.
/// Same hazard for a stale higher-epoch snapshot base shadowing the new
/// one. WAL segments are checked here too — before anything is
/// published — so create() never mutates a directory it is about to
/// refuse.
fn ensure_no_stale_state(dir: &Path, snapshots: &SnapshotStore) -> Result<()> {
    if !crate::checkpoint::list_checkpoints(dir)?.is_empty()
        || !crate::checkpoint::list_delta_checkpoints(dir)?.is_empty()
        || snapshots.has_artifacts()?
        || wal::any_segments(dir)?
    {
        return Err(Error::Invariant(format!(
            "{} already holds persistence state (WAL segments, checkpoints, or \
             snapshots) — a fresh engine created over it would be shadowed by the \
             stale files on the next recovery; recover with open() or start in an \
             empty directory",
            dir.display()
        )));
    }
    Ok(())
}

/// The sequential engine with durability: `Engine` + snapshot store +
/// write-ahead log + checkpoints.
#[derive(Debug)]
pub struct PersistentEngine {
    engine: Engine,
    wal: Wal,
    snapshots: SnapshotStore,
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    epoch: u64,
    checkpoint_every: u64,
    since_checkpoint: u64,
    rebase: RebasePolicy,
    /// The on-disk checkpoint chain (tip id, fences, rebase accounting).
    chain: Option<ChainState>,
}

impl PersistentEngine {
    /// Creates a fresh persistent engine in `dir`: publishes `graph` as
    /// the base snapshot for `epoch` and starts an empty WAL. Refuses a
    /// directory that already holds any persistence state (WAL segments,
    /// checkpoints, or snapshots).
    pub fn create(
        dir: &Path,
        graph: FollowGraph,
        epoch: u64,
        config: DetectorConfig,
        opts: PersistOptions,
    ) -> Result<Self> {
        Self::create_with_vfs(dir, graph, epoch, config, opts, std_vfs())
    }

    /// [`PersistentEngine::create`] on an explicit I/O backend: every
    /// durable mutation (WAL appends, checkpoints, snapshot publishes,
    /// reclamation) goes through `vfs`. The default constructor threads
    /// the [`crate::StdVfs`] passthrough.
    pub fn create_with_vfs(
        dir: &Path,
        graph: FollowGraph,
        epoch: u64,
        config: DetectorConfig,
        opts: PersistOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self> {
        let snapshots = SnapshotStore::with_vfs(dir, Arc::clone(&vfs))?;
        // Refuse before sweeping: a refused directory keeps even its
        // .tmp crash artifacts for open()-based recovery or inspection.
        ensure_no_stale_state(dir, &snapshots)?;
        crate::fsutil::sweep_tmp_files(vfs.as_ref(), dir)?;
        snapshots.publish_base(epoch, &graph)?;
        let wal = Wal::create_with_vfs(dir, SEQ_WAL_PREFIX, opts.wal(), Arc::clone(&vfs))?;
        let mut engine = Engine::new(graph, config)?;
        if incremental(opts.rebase) {
            engine.store_mut().enable_dirty_tracking();
        }
        Ok(PersistentEngine {
            engine,
            wal,
            snapshots,
            vfs,
            dir: dir.to_path_buf(),
            epoch,
            checkpoint_every: opts.checkpoint_every,
            since_checkpoint: 0,
            rebase: opts.rebase,
            chain: None,
        })
    }

    /// Recovers from `dir`: snapshot chain → checkpoint → WAL tail replay
    /// (emission suppressed) → ready for live ingest.
    pub fn open(
        dir: &Path,
        config: DetectorConfig,
        cap: CapStrategy,
        opts: PersistOptions,
    ) -> Result<(Self, RecoveryReport)> {
        Self::open_with_vfs(dir, config, cap, opts, std_vfs())
    }

    /// [`PersistentEngine::open`] on an explicit I/O backend (recovery
    /// repairs — tail truncation, tmp sweeps — go through it too).
    pub fn open_with_vfs(
        dir: &Path,
        config: DetectorConfig,
        cap: CapStrategy,
        opts: PersistOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<(Self, RecoveryReport)> {
        let snapshots = SnapshotStore::with_vfs(dir, Arc::clone(&vfs))?;
        // Crash artifacts (interrupted durable publishes) die here, at
        // the point that owns recovery cleanup.
        crate::fsutil::sweep_tmp_files(vfs.as_ref(), dir)?;
        let loaded = snapshots.load_latest(cap)?;
        let mut engine = Engine::new(loaded.graph, config)?;

        let (fences, chain, checkpoint_entries) =
            restore_checkpoint(dir, 1, |events| engine.apply_to_store_batch(events))?;
        let min_seq = fences[0];
        let checkpoint_seq = chain.as_ref().map(|c| c.tip_id);
        // Tracking must be live *before* tail replay: replayed mutations
        // are exactly what the next delta checkpoint has to export.
        if incremental(opts.rebase) {
            engine.store_mut().enable_dirty_tracking();
        }

        let mut replayed = 0u64;
        // Contiguity-checked: the sequential log is dense from seq 0, so
        // a hole (lost middle segment) must refuse recovery rather than
        // silently rebuild `D` without those events. Applies land in
        // bounded batches (the replay fast path — no per-event store
        // round trip).
        let mut replay_buf: Vec<EdgeEvent> = Vec::with_capacity(REPLAY_APPLY_CHUNK);
        let stats = wal::replay_contiguous(dir, SEQ_WAL_PREFIX, min_seq, |record| {
            replay_buf.push(record.event);
            replayed += 1;
            if replay_buf.len() >= REPLAY_APPLY_CHUNK {
                engine.apply_to_store_batch(&replay_buf);
                replay_buf.clear();
            }
        })?;
        engine.apply_to_store_batch(&replay_buf);
        // Floor at the checkpoint's coverage: a fully-reclaimed log must
        // not restart sequences at 0 below what the checkpoint claims —
        // a later recovery's `min_seq` filter would silently skip them.
        let wal =
            Wal::open_with_floor_vfs(dir, SEQ_WAL_PREFIX, opts.wal(), min_seq, Arc::clone(&vfs))?;
        let report = RecoveryReport {
            snapshot_epoch: loaded.epoch,
            deltas_applied: loaded.deltas_applied,
            checkpoint_seq,
            replayed,
            checkpoint_entries,
            next_seq: wal.next_seq(),
            torn_tail: stats.torn_tail,
        };
        Ok((
            PersistentEngine {
                engine,
                wal,
                snapshots,
                vfs,
                dir: dir.to_path_buf(),
                epoch: loaded.epoch,
                checkpoint_every: opts.checkpoint_every,
                since_checkpoint: 0,
                rebase: opts.rebase,
                chain,
            },
            report,
        ))
    }

    /// Processes one event durably: WAL append first (write-ahead), then
    /// detection; an automatic checkpoint lands every `checkpoint_every`
    /// events. The single-event wrapper over
    /// [`PersistentEngine::on_events_into`].
    pub fn on_event(&mut self, event: EdgeEvent) -> Result<Vec<Candidate>> {
        let mut out = Vec::new();
        self.on_events_into(std::slice::from_ref(&event), &mut out)?;
        Ok(out)
    }

    /// Processes a micro-batch durably: the **whole batch is
    /// written ahead with one group commit** ([`Wal::append_batch`] — one
    /// `write(2)`, one fsync-policy pass) before any detection runs, so
    /// the batch is a single durability point; then the engine detects
    /// the slice ([`Engine::on_events_into`], identical candidates to N
    /// single events). Checkpoint cadence is counted in *events*, not
    /// batches — a batch that crosses the cadence boundary checkpoints at
    /// its end (the cadence is a replay-cost bound, not a semantic
    /// boundary; the kill-point matrix covers batches straddling it).
    pub fn on_events_into(
        &mut self,
        events: &[EdgeEvent],
        out: &mut Vec<Candidate>,
    ) -> Result<usize> {
        self.wal.append_batch(events)?;
        let emitted = self.engine.on_events_into(events, out);
        self.since_checkpoint += events.len() as u64;
        if self.checkpoint_every > 0 && self.since_checkpoint >= self.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(emitted)
    }

    /// [`PersistentEngine::on_events_into`] collecting into a fresh
    /// vector.
    pub fn on_events(&mut self, events: &[EdgeEvent]) -> Result<Vec<Candidate>> {
        let mut out = Vec::new();
        self.on_events_into(events, &mut out)?;
        Ok(out)
    }

    /// Writes a `D` checkpoint covering everything appended so far. With
    /// a non-disabled [`RebasePolicy`] the checkpoint is **incremental**
    /// where the chain allows: only targets dirtied since the previous
    /// cut are written (as a delta chained on the last full), rebasing to
    /// a fresh full per the policy. Restoring the chain is equivalent to
    /// restoring one full checkpoint taken at the same cut.
    pub fn checkpoint(&mut self) -> Result<()> {
        let next = self.wal.next_seq();
        if next == 0 {
            return Ok(()); // nothing to cover
        }
        let covered = next - 1;
        if self.chain.as_ref().is_some_and(|c| c.tip_id == covered) {
            self.since_checkpoint = 0;
            return Ok(()); // tip already covers every assigned sequence
        }
        // Durability order: records must be on disk before a checkpoint
        // claims to cover them (else a crash could reclaim-then-lose).
        self.wal.sync()?;
        let fences = vec![next];
        let full = self
            .chain
            .as_ref()
            .is_none_or(|c| c.wants_full(self.rebase));
        if full {
            let mut entries = Vec::new();
            self.engine.store().export_entries(&mut entries);
            // A full covers every target, so standing dirty marks are
            // consumed here; kept as an undo log in case the write fails
            // (losing marks would silently drop targets from the next
            // delta).
            let drained = self.engine.store_mut().clear_dirty_where(|_| true);
            match write_checkpoint_fenced_with(
                &self.dir,
                entries,
                covered,
                &fences,
                self.vfs.as_ref(),
            ) {
                Ok((_, bytes)) => {
                    self.chain = Some(ChainState {
                        tip_id: covered,
                        fences,
                        chain_len: 0,
                        full_bytes: bytes,
                        delta_bytes: 0,
                    });
                }
                Err(e) => {
                    self.engine.store_mut().mark_dirty_many(drained);
                    return Err(e);
                }
            }
        } else {
            let mut entries = Vec::new();
            let mut tombstones = Vec::new();
            let mut drained = Vec::new();
            self.engine.store_mut().drain_dirty_exports(
                |_| true,
                &mut entries,
                &mut tombstones,
                &mut drained,
            );
            let base_id = self.chain.as_ref().expect("delta requires a chain").tip_id;
            match write_delta_checkpoint_with(
                &self.dir,
                entries,
                tombstones,
                covered,
                base_id,
                &fences,
                self.vfs.as_ref(),
            ) {
                Ok((_, bytes)) => {
                    let c = self.chain.as_mut().expect("delta requires a chain");
                    c.tip_id = covered;
                    c.fences = fences;
                    c.chain_len += 1;
                    c.delta_bytes += bytes;
                    c.publish_dirty_ratio();
                }
                Err(e) => {
                    self.engine.store_mut().mark_dirty_many(drained);
                    return Err(e);
                }
            }
        }
        self.since_checkpoint = 0;
        Ok(())
    }

    /// Advances window expiry and reclaims WAL segments that are both
    /// past the retention window and covered by the checkpoint chain tip.
    pub fn advance(&mut self, now: Timestamp) -> Result<usize> {
        self.engine.advance(now);
        match &self.chain {
            Some(c) => {
                let cutoff = now.saturating_sub(self.engine.store().window());
                self.wal.reclaim_before(cutoff, c.tip_id)
            }
            None => Ok(0),
        }
    }

    /// Applies and durably publishes a snapshot delta: the delta file
    /// joins the chain on disk, then the in-memory `S` refreshes via
    /// [`Engine::swap_graph_delta`]. The delta must extend the current
    /// epoch.
    ///
    /// When the chain outgrows the configured [`RebasePolicy`], the
    /// current graph is republished as a fresh base at the new epoch and
    /// the superseded files are compacted — recovery cost stays bounded
    /// by the policy, and orphaned (delta-removed) vertices leave the
    /// on-disk interner with the rebase.
    pub fn publish_graph_delta(&mut self, delta: &GraphDelta) -> Result<()> {
        if delta.base_epoch != self.epoch {
            return Err(Error::Invariant(format!(
                "delta base epoch {} does not extend current epoch {}",
                delta.base_epoch, self.epoch
            )));
        }
        self.snapshots.publish_delta(delta)?;
        self.engine.swap_graph_delta(delta)?;
        self.epoch = delta.target_epoch;
        if self.snapshots.should_rebase(self.rebase)? {
            self.snapshots
                .publish_base(self.epoch, self.engine.graph())?;
            self.snapshots.compact()?;
        }
        Ok(())
    }

    /// The current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The WAL sequence the next event will receive.
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Id (covered sequence) of the checkpoint chain tip, if any.
    pub fn checkpoint_tip(&self) -> Option<u64> {
        self.chain.as_ref().map(|c| c.tip_id)
    }

    /// On-disk WAL segment count (bounded by τ + checkpoint cadence once
    /// reclamation runs).
    pub fn wal_segments(&self) -> usize {
        self.wal.segment_count()
    }

    /// Flushes and closes the WAL (also happens on drop).
    pub fn close(self) -> Result<()> {
        self.wal.close()
    }
}

/// The shared-state engine with durability: [`ConcurrentEngine`] +
/// snapshot store + **per-partition** WALs keyed by the hash route (the
/// same `route_mix` the sharded store and worker pools use), so N workers
/// appending through `&self` contend only within their own route.
///
/// Checkpointing is **non-quiescent**: ingest keeps running while
/// [`PersistentConcurrentEngine::checkpoint`] cuts one WAL partition at a
/// time behind a short per-partition fence, recording a fence vector
/// instead of a single covered sequence (see the fence-vector contract in
/// the module docs). Recovery replays each partition's tail from its own
/// fence. A [`CheckpointDriver`] runs the cadence on a background thread;
/// the maintenance thread only needs [`advance`] and
/// [`publish_graph_delta`](PersistentConcurrentEngine::publish_graph_delta).
///
/// [`advance`]: PersistentConcurrentEngine::advance
pub struct PersistentConcurrentEngine {
    engine: ConcurrentEngine,
    wal: SharedWal,
    snapshots: SnapshotStore,
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    rebase: RebasePolicy,
    state: Mutex<ConcurrentPersistState>,
    /// Checkpoint chain state, serialized separately from the snapshot
    /// epoch lock so a long fenced export never blocks delta publishes.
    ckpt: Mutex<Option<ChainState>>,
}

#[derive(Debug, Clone, Copy)]
struct ConcurrentPersistState {
    epoch: u64,
}

impl PersistentConcurrentEngine {
    /// Creates a fresh persistent shared engine with `parts` WAL
    /// partitions (typically the worker count).
    pub fn create(
        dir: &Path,
        graph: FollowGraph,
        epoch: u64,
        config: DetectorConfig,
        parts: usize,
        opts: PersistOptions,
    ) -> Result<Self> {
        Self::create_with_vfs(dir, graph, epoch, config, parts, opts, std_vfs())
    }

    /// [`PersistentConcurrentEngine::create`] on an explicit I/O backend
    /// shared by every partition WAL, checkpoint, and snapshot publish.
    pub fn create_with_vfs(
        dir: &Path,
        graph: FollowGraph,
        epoch: u64,
        config: DetectorConfig,
        parts: usize,
        opts: PersistOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self> {
        let snapshots = SnapshotStore::with_vfs(dir, Arc::clone(&vfs))?;
        ensure_no_stale_state(dir, &snapshots)?;
        crate::fsutil::sweep_tmp_files(vfs.as_ref(), dir)?;
        snapshots.publish_base(epoch, &graph)?;
        let wal = SharedWal::create_with_vfs(dir, parts, opts.wal(), Arc::clone(&vfs))?;
        let engine = ConcurrentEngine::new(graph, config)?;
        if incremental(opts.rebase) {
            engine.store().enable_dirty_tracking();
        }
        Ok(PersistentConcurrentEngine {
            engine,
            wal,
            snapshots,
            vfs,
            dir: dir.to_path_buf(),
            rebase: opts.rebase,
            state: Mutex::new(ConcurrentPersistState { epoch }),
            ckpt: Mutex::new(None),
        })
    }

    /// Recovers from `dir`: snapshot chain, checkpoint, then all
    /// partitions' WAL tails replayed in merged sequence order with
    /// emission suppressed.
    pub fn open(
        dir: &Path,
        config: DetectorConfig,
        cap: CapStrategy,
        parts: usize,
        opts: PersistOptions,
    ) -> Result<(Self, RecoveryReport)> {
        Self::open_with_vfs(dir, config, cap, parts, opts, std_vfs())
    }

    /// [`PersistentConcurrentEngine::open`] on an explicit I/O backend.
    pub fn open_with_vfs(
        dir: &Path,
        config: DetectorConfig,
        cap: CapStrategy,
        parts: usize,
        opts: PersistOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<(Self, RecoveryReport)> {
        let snapshots = SnapshotStore::with_vfs(dir, Arc::clone(&vfs))?;
        crate::fsutil::sweep_tmp_files(vfs.as_ref(), dir)?;
        let loaded = snapshots.load_latest(cap)?;
        let engine = ConcurrentEngine::new(loaded.graph, config)?;

        let (fences, mut chain, checkpoint_entries) =
            restore_checkpoint(dir, parts, |events| engine.apply_to_store_batch(events))?;
        let checkpoint_seq = chain.as_ref().map(|c| c.tip_id);
        // Tracking must be live *before* tail replay: replayed mutations
        // are exactly what the next delta checkpoint has to export.
        if incremental(opts.rebase) {
            engine.store().enable_dirty_tracking();
        }
        // The replay floor below is global (for the sequence counter);
        // per-partition filtering honors each partition's own fence.
        let min_seq = fences.iter().copied().max().unwrap_or(0);

        let mut replayed = 0u64;
        let mut replay_buf: Vec<EdgeEvent> = Vec::with_capacity(REPLAY_APPLY_CHUNK);
        let stats = SharedWal::replay_merged_fenced(dir, parts, &fences, |record| {
            replay_buf.push(record.event);
            replayed += 1;
            if replay_buf.len() >= REPLAY_APPLY_CHUNK {
                engine.apply_to_store_batch(&replay_buf);
                replay_buf.clear();
            }
        })?;
        engine.apply_to_store_batch(&replay_buf);
        // Same floor rationale as the sequential path: never resume the
        // global sequence below what the checkpoint covers.
        let wal =
            SharedWal::open_with_floor_vfs(dir, parts, opts.wal(), min_seq, Arc::clone(&vfs))?;
        // Seal the recovered state behind a fresh checkpoint before any
        // live append *when replay tolerated damage*. A tolerated hole
        // (a partition's unsynced tail lost in the crash, or a sequence
        // burned by a failed append) is benign now, but once ingest
        // grows that partition's log past it, the next recovery would
        // read it as an interior gap and refuse the whole directory;
        // covering everything assigned so far moves the fences past
        // every hole. Clean restarts skip the O(|D|) durable write: a
        // dense replayed range with no torn tail has nothing to seal
        // (holes above the newest surviving record need no seal either —
        // those sequences are simply reassigned to new events). The seal
        // is always a *full* checkpoint — it restarts the chain, with
        // each partition fenced at its own recovered tail.
        let dense_span = stats
            .last_seq
            .map_or(0, |last| (last + 1).saturating_sub(min_seq));
        let tolerated_damage = stats.torn_tail || replayed < dense_span;
        match wal.next_seq() {
            0 => {}
            next if !tolerated_damage || checkpoint_seq == Some(next - 1) => {}
            next => {
                let seal_fences = wal.partition_next_seqs();
                let mut entries = Vec::new();
                engine.store().export_entries(&mut entries);
                let (_, bytes) = write_checkpoint_fenced_with(
                    dir,
                    entries,
                    next - 1,
                    &seal_fences,
                    vfs.as_ref(),
                )?;
                // Everything the seal exported is clean now; replay's
                // dirty marks would only re-export it in the next delta.
                engine.store().clear_dirty_where(|_| true);
                chain = Some(ChainState {
                    tip_id: next - 1,
                    fences: seal_fences,
                    chain_len: 0,
                    full_bytes: bytes,
                    delta_bytes: 0,
                });
            }
        }
        let report = RecoveryReport {
            snapshot_epoch: loaded.epoch,
            deltas_applied: loaded.deltas_applied,
            checkpoint_seq,
            replayed,
            checkpoint_entries,
            next_seq: wal.next_seq(),
            torn_tail: stats.torn_tail,
        };
        Ok((
            PersistentConcurrentEngine {
                engine,
                wal,
                snapshots,
                vfs,
                dir: dir.to_path_buf(),
                rebase: opts.rebase,
                state: Mutex::new(ConcurrentPersistState {
                    epoch: loaded.epoch,
                }),
                ckpt: Mutex::new(chain),
            },
            report,
        ))
    }

    /// Processes one event durably through `&self` (callable from any
    /// number of worker threads): WAL append to the target's route
    /// partition first, then detection. Returns candidates appended.
    ///
    /// **Per-target submission must be single-threaded** — the same
    /// precondition the parity contract states (see the module docs):
    /// the WAL sequence is assigned under the partition lock, but the
    /// store apply happens after it is released, so two threads racing
    /// events *for the same target* could log one order and apply the
    /// other, and a post-crash replay would then rebuild a different
    /// `D` than the live run held. A route-sticky transport (the
    /// cluster's hash routing, where each target's events land on one
    /// worker) provides this by construction; events for *different*
    /// targets may race freely.
    pub fn on_event_into(&self, event: EdgeEvent, out: &mut Vec<Candidate>) -> Result<usize> {
        // The ticket keeps the event's partition fence from cutting
        // between the WAL append and the store apply — a cut in that
        // window would claim coverage of a sequence whose mutation the
        // export can't yet see.
        let (_, ticket) = self.wal.append_tracked(event)?;
        let emitted = self.engine.on_event_into(event, out);
        drop(ticket);
        Ok(emitted)
    }

    /// Convenience wrapper returning a fresh vector.
    pub fn on_event(&self, event: EdgeEvent) -> Result<Vec<Candidate>> {
        let mut out = Vec::new();
        self.on_event_into(event, &mut out)?;
        Ok(out)
    }

    /// Processes a micro-batch durably through `&self`: the whole batch
    /// is **written ahead with one group commit**
    /// ([`SharedWal::append_batch`] — each touched partition lock taken
    /// once, one `write(2)` and a dense global-sequence run per
    /// partition) before any detection runs, then the engine detects the
    /// slice against one pinned `S` snapshot
    /// ([`ConcurrentEngine::on_events_into`]).
    ///
    /// Same precondition as [`PersistentConcurrentEngine::on_event_into`]:
    /// per-target submission must be single-threaded (a route-sticky
    /// transport gives this by construction — and batches drained from
    /// one route's queue trivially preserve it).
    pub fn on_events_into(&self, events: &[EdgeEvent], out: &mut Vec<Candidate>) -> Result<usize> {
        // Same fence-gating as the single-event path: the ticket covers
        // every partition the batch touched until the store apply lands.
        let (_, ticket) = self.wal.append_batch_tracked(events)?;
        let emitted = self.engine.on_events_into(events, out);
        drop(ticket);
        Ok(emitted)
    }

    /// [`PersistentConcurrentEngine::on_events_into`] collecting into a
    /// fresh vector.
    pub fn on_events(&self, events: &[EdgeEvent]) -> Result<Vec<Candidate>> {
        let mut out = Vec::new();
        self.on_events_into(events, &mut out)?;
        Ok(out)
    }

    /// Writes a `D` checkpoint **without quiescing ingest**. Partitions
    /// are cut one at a time: partition `p`'s appends stall behind its
    /// lock while in-flight store applies drain and `p`-routed targets
    /// are exported at `p`'s fence — every other partition keeps
    /// ingesting throughout. The file records the resulting fence vector
    /// (see the module docs' fence-vector contract). With a non-disabled
    /// [`RebasePolicy`] the cut is **incremental** where the chain
    /// allows: only targets dirtied since the previous cut are written,
    /// rebasing to a fresh full per the policy.
    ///
    /// Concurrent `checkpoint` calls serialize on the chain lock.
    pub fn checkpoint(&self) -> Result<()> {
        self.checkpoint_with_fence_observer(|_, _| {})
    }

    /// [`PersistentConcurrentEngine::checkpoint`] with a hook invoked
    /// right after each partition's fence is released (`(partition,
    /// fence)`), while later partitions are still uncut. The
    /// crash-recovery matrix uses it to ingest *between* shard fences and
    /// to kill mid-checkpoint; production code wants plain `checkpoint`.
    pub fn checkpoint_with_fence_observer(
        &self,
        mut observe: impl FnMut(usize, u64),
    ) -> Result<()> {
        let mut chain = self.ckpt.lock();
        let parts = self.wal.partitions();
        let store = self.engine.store();
        if let Some(c) = &*chain {
            if self.wal.next_seq() == c.tip_id + 1 {
                return Ok(()); // tip already covers every assigned sequence
            }
        }
        let full = chain.as_ref().is_none_or(|c| c.wants_full(self.rebase));
        let tracking = incremental(self.rebase);
        let mut fences = vec![0u64; parts];
        let mut entries: Vec<(UserId, UserId, Timestamp)> = Vec::new();
        let mut tombstones: Vec<UserId> = Vec::new();
        // Undo log: dirty marks consumed by the cut, re-marked if the
        // file write fails so the next delta still covers those targets.
        let mut drained: Vec<UserId> = Vec::new();
        for (p, slot) in fences.iter_mut().enumerate() {
            let cut = self.wal.with_partition_fenced(p, |fence| {
                *slot = fence;
                let pred = move |t: UserId| route_partition(&t, parts) == p;
                if full {
                    store.export_entries_where(pred, &mut entries);
                    if tracking {
                        drained.extend(store.clear_dirty_where(pred));
                    }
                } else {
                    store.drain_dirty_exports(pred, &mut entries, &mut tombstones, &mut drained);
                }
                Ok(())
            });
            if let Err(e) = cut {
                store.mark_dirty_many(drained);
                return Err(e);
            }
            // Outside the fence: an observer that ingests to `p` must
            // not deadlock against `p`'s own lock.
            observe(p, *slot);
        }
        // The youngest fence names the cut; fence 0 partitions have no
        // assigned sequences at all.
        let id = match fences.iter().copied().max().unwrap_or(0) {
            0 => {
                store.mark_dirty_many(drained);
                return Ok(()); // nothing ever assigned, nothing to cover
            }
            max => max - 1,
        };
        if chain.as_ref().is_some_and(|c| id <= c.tip_id) {
            // Raced with a concurrent tip to the same cut; deterministic
            // re-exports make the returned marks redundant, not lost.
            store.mark_dirty_many(drained);
            return Ok(());
        }
        if full {
            match write_checkpoint_fenced_with(&self.dir, entries, id, &fences, self.vfs.as_ref()) {
                Ok((_, bytes)) => {
                    *chain = Some(ChainState {
                        tip_id: id,
                        fences,
                        chain_len: 0,
                        full_bytes: bytes,
                        delta_bytes: 0,
                    });
                    Ok(())
                }
                Err(e) => {
                    store.mark_dirty_many(drained);
                    Err(e)
                }
            }
        } else {
            let base_id = chain.as_ref().expect("delta requires a chain").tip_id;
            match write_delta_checkpoint_with(
                &self.dir,
                entries,
                tombstones,
                id,
                base_id,
                &fences,
                self.vfs.as_ref(),
            ) {
                Ok((_, bytes)) => {
                    let c = chain.as_mut().expect("delta requires a chain");
                    c.tip_id = id;
                    c.fences = fences;
                    c.chain_len += 1;
                    c.delta_bytes += bytes;
                    c.publish_dirty_ratio();
                    Ok(())
                }
                Err(e) => {
                    store.mark_dirty_many(drained);
                    Err(e)
                }
            }
        }
    }

    /// Id (covered sequence) of the checkpoint chain tip, if any.
    pub fn checkpoint_tip(&self) -> Option<u64> {
        self.ckpt.lock().as_ref().map(|c| c.tip_id)
    }

    /// Advances window expiry and reclaims WAL segments on every
    /// partition — partition `p` reclaims below the chain tip's
    /// `fences[p]`, so a fence cut early in a checkpoint never holds
    /// other partitions' segments hostage.
    pub fn advance(&self, now: Timestamp) -> Result<usize> {
        self.engine.advance(now);
        let fences = self.ckpt.lock().as_ref().map(|c| c.fences.clone());
        match fences {
            Some(fences) => {
                let cutoff = now.saturating_sub(self.engine.store().window());
                self.wal.reclaim_before_fenced(cutoff, &fences)
            }
            None => Ok(0),
        }
    }

    /// Applies and durably publishes a snapshot delta (see
    /// [`PersistentEngine::publish_graph_delta`], including the automatic
    /// rebase when the chain outgrows the configured [`RebasePolicy`];
    /// publication is serialized on the internal state lock).
    pub fn publish_graph_delta(&self, delta: &GraphDelta) -> Result<()> {
        let mut state = self.state.lock();
        if delta.base_epoch != state.epoch {
            return Err(Error::Invariant(format!(
                "delta base epoch {} does not extend current epoch {}",
                delta.base_epoch, state.epoch
            )));
        }
        self.snapshots.publish_delta(delta)?;
        self.engine.swap_graph_delta(delta)?;
        state.epoch = delta.target_epoch;
        if self.snapshots.should_rebase(self.rebase)? {
            self.snapshots
                .publish_base(state.epoch, &self.engine.graph())?;
            self.snapshots.compact()?;
        }
        Ok(())
    }

    /// The current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &ConcurrentEngine {
        &self.engine
    }

    /// The next global WAL sequence.
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Syncs all WAL partitions (also useful before a planned shutdown).
    pub fn sync(&self) -> Result<()> {
        self.wal.sync_all()
    }
}

/// Background checkpoint cadence for [`PersistentConcurrentEngine`]:
/// polls the engine's sequence and takes a (non-quiescent) checkpoint
/// whenever at least `every` events have been assigned past the chain
/// tip — the shared-engine analogue of the sequential engine's inline
/// `checkpoint_every`, kept off the ingest path entirely so workers
/// never pay for a cut they didn't cause.
///
/// Failures are counted, not fatal: a failed cut leaves the previous
/// chain tip (and the store's dirty marks) intact, and the next poll
/// retries.
pub struct CheckpointDriver {
    stop: Arc<AtomicBool>,
    completed: Arc<AtomicU64>,
    failures: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl CheckpointDriver {
    /// Spawns the driver thread. `every` is the event cadence (> 0);
    /// `poll` bounds how stale the cadence check may run.
    pub fn spawn(
        engine: Arc<PersistentConcurrentEngine>,
        every: u64,
        poll: std::time::Duration,
    ) -> CheckpointDriver {
        assert!(every > 0, "checkpoint cadence must be positive");
        let stop = Arc::new(AtomicBool::new(false));
        let completed = Arc::new(AtomicU64::new(0));
        let failures = Arc::new(AtomicU64::new(0));
        let handle = {
            let (stop, completed, failures) = (
                Arc::clone(&stop),
                Arc::clone(&completed),
                Arc::clone(&failures),
            );
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let assigned_past_tip = match engine.checkpoint_tip() {
                        Some(tip) => engine.next_seq().saturating_sub(tip + 1),
                        None => engine.next_seq(),
                    };
                    if assigned_past_tip >= every {
                        match engine.checkpoint() {
                            Ok(()) => completed.fetch_add(1, Ordering::Relaxed),
                            Err(_) => failures.fetch_add(1, Ordering::Relaxed),
                        };
                    }
                    std::thread::park_timeout(poll);
                }
            })
        };
        CheckpointDriver {
            stop,
            completed,
            failures,
            handle: Some(handle),
        }
    }

    /// Checkpoints the driver has completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Checkpoint attempts that returned an error.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Signals the thread and joins it, returning `(completed,
    /// failures)`.
    pub fn stop(mut self) -> (u64, u64) {
        self.shutdown();
        (self.completed(), self.failures())
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl Drop for CheckpointDriver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use magicrecs_graph::GraphBuilder;
    use magicrecs_types::UserId;

    fn u(n: u64) -> UserId {
        UserId(n)
    }

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn small_graph() -> FollowGraph {
        let mut g = GraphBuilder::new();
        g.extend([
            (u(1), u(11)),
            (u(1), u(12)),
            (u(2), u(11)),
            (u(2), u(12)),
            (u(3), u(12)),
        ]);
        g.build()
    }

    fn opts() -> PersistOptions {
        PersistOptions {
            fsync: FsyncPolicy::Never,
            segment_bytes: 4096,
            checkpoint_every: 64,
            rebase: RebasePolicy::DISABLED,
        }
    }

    /// A deterministic motif-heavy trace with monotone timestamps.
    fn trace(n: u64) -> Vec<EdgeEvent> {
        let mut events = Vec::new();
        for i in 0..n {
            let b = u(11 + i % 3); // 13 is unknown to S
            let c = u(900 + i % 5);
            events.push(EdgeEvent::follow(b, c, ts(10 + i)));
            if i % 23 == 0 {
                events.push(EdgeEvent::unfollow(u(11), c, ts(10 + i)));
            }
        }
        events
    }

    #[test]
    fn create_run_reopen_continues_sequence() {
        let t = TempDir::new("pe");
        let mut pe = PersistentEngine::create(
            t.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            opts(),
        )
        .unwrap();
        let events = trace(200);
        let mut live: Vec<Vec<Candidate>> = Vec::new();
        for &e in &events {
            live.push(pe.on_event(e).unwrap());
        }
        let n = pe.next_seq();
        pe.close().unwrap();

        let (mut reopened, report) = PersistentEngine::open(
            t.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            opts(),
        )
        .unwrap();
        assert_eq!(report.next_seq, n);
        assert_eq!(report.snapshot_epoch, 0);
        assert!(report.checkpoint_seq.is_some(), "auto checkpoints ran");
        assert!(!report.torn_tail);
        // The recovered engine continues with the same candidates an
        // uninterrupted engine produces.
        let mut reference = Engine::new(small_graph(), DetectorConfig::example()).unwrap();
        for &e in &events {
            reference.on_event(e);
        }
        let next = EdgeEvent::follow(u(12), u(900), ts(100_000 / 60));
        assert_eq!(
            reopened.on_event(next).unwrap(),
            reference.on_event(next),
            "post-recovery candidates diverge"
        );
    }

    #[test]
    fn replay_suppresses_emission() {
        let t = TempDir::new("pe");
        let mut pe = PersistentEngine::create(
            t.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            PersistOptions {
                checkpoint_every: 0, // force full-log replay
                ..opts()
            },
        )
        .unwrap();
        let mut fired = 0usize;
        for &e in &trace(150) {
            fired += pe.on_event(e).unwrap().len();
        }
        assert!(fired > 0, "fixture must fire candidates");
        pe.close().unwrap();
        let (reopened, report) = PersistentEngine::open(
            t.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            opts(),
        )
        .unwrap();
        assert!(report.replayed > 0);
        // Replay mutated D only: engine-level candidate stats untouched.
        assert_eq!(reopened.engine().stats().candidates.get(), 0);
        assert_eq!(reopened.engine().stats().events.get(), 0);
        assert!(reopened.engine().store().resident_entries() > 0);
    }

    #[test]
    fn checkpoint_bounds_replay_and_enables_reclaim() {
        let t = TempDir::new("pe");
        let mut pe = PersistentEngine::create(
            t.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            PersistOptions {
                segment_bytes: 512,
                checkpoint_every: 50,
                ..opts()
            },
        )
        .unwrap();
        for &e in &trace(500) {
            pe.on_event(e).unwrap();
        }
        let segments_before = pe.wal_segments();
        // Far future: everything is outside the window and checkpointed.
        let removed = pe.advance(ts(10_000_000)).unwrap();
        assert!(removed > 0, "reclaim should delete covered segments");
        assert!(pe.wal_segments() < segments_before);
        pe.close().unwrap();

        let (_, report) = PersistentEngine::open(
            t.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            opts(),
        )
        .unwrap();
        // Replay is bounded by the checkpoint, not the whole history.
        assert!(report.replayed < 500, "replayed {}", report.replayed);
    }

    #[test]
    fn create_refuses_stale_persistence_state() {
        // A reclaimed-empty WAL directory still holds a checkpoint: a
        // fresh engine created there would restart sequences at 0 and
        // the stale checkpoint would shadow its state on recovery.
        let t = TempDir::new("pe");
        crate::checkpoint::write_checkpoint(t.path(), vec![(u(1), u(2), ts(3))], 100).unwrap();
        assert!(PersistentEngine::create(
            t.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            opts()
        )
        .is_err());
        assert!(PersistentConcurrentEngine::create(
            t.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            2,
            opts()
        )
        .is_err());

        // Same for a leftover snapshot base (a stale higher epoch would
        // win the newest-base scan over the freshly published one).
        let t = TempDir::new("pe");
        SnapshotStore::new(t.path())
            .unwrap()
            .publish_base(5, &small_graph())
            .unwrap();
        assert!(PersistentEngine::create(
            t.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            opts()
        )
        .is_err());

        // And for leftover WAL segments alone: create must refuse
        // *before* publishing anything (a base published first would
        // make open() merge the old WAL into a fresh graph).
        let t = TempDir::new("pe");
        {
            let shared = crate::wal::SharedWal::create(t.path(), 2, opts().wal()).unwrap();
            shared.append(EdgeEvent::follow(u(1), u(2), ts(3))).unwrap();
        }
        assert!(PersistentEngine::create(
            t.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            opts()
        )
        .is_err());
        let published: Vec<_> = std::fs::read_dir(t.path())
            .unwrap()
            .filter_map(|e| {
                let name = e.unwrap().file_name().to_string_lossy().into_owned();
                (!name.ends_with(".wal")).then_some(name)
            })
            .collect();
        assert!(
            published.is_empty(),
            "refusal must not publish: {published:?}"
        );
    }

    #[test]
    fn sequence_survives_full_wal_reclamation() {
        let t = TempDir::new("pe");
        let o = PersistOptions {
            segment_bytes: 512,
            checkpoint_every: 50,
            ..opts()
        };
        let mut pe =
            PersistentEngine::create(t.path(), small_graph(), 0, DetectorConfig::example(), o)
                .unwrap();
        for &e in &trace(200) {
            pe.on_event(e).unwrap();
        }
        pe.checkpoint().unwrap();
        let n = pe.next_seq();
        pe.close().unwrap();

        // Idle period, then advance: the checkpoint covers every record
        // and the window has passed, so reclamation empties the log.
        let (mut pe, _) =
            PersistentEngine::open(t.path(), DetectorConfig::example(), CapStrategy::None, o)
                .unwrap();
        pe.advance(ts(10_000_000)).unwrap();
        assert_eq!(pe.wal_segments(), 0, "fully reclaimed");
        assert_eq!(pe.next_seq(), n);
        pe.close().unwrap();

        // Zero segment files on disk: the checkpoint floor must keep the
        // sequence from restarting at 0 below what the checkpoint covers.
        let (mut pe, report) =
            PersistentEngine::open(t.path(), DetectorConfig::example(), CapStrategy::None, o)
                .unwrap();
        assert_eq!(report.next_seq, n, "sequence regressed below checkpoint");
        let extra: Vec<EdgeEvent> = (0..40)
            .map(|i| EdgeEvent::follow(u(11 + i % 2), u(700 + i % 7), ts(10_000_100 + i)))
            .collect();
        for &e in &extra {
            pe.on_event(e).unwrap();
        }
        pe.close().unwrap();

        // Post-reclaim ingest landed above the checkpoint, so the next
        // recovery replays all of it (a regressed sequence would have
        // filtered every record out as "already covered").
        let (_, report) =
            PersistentEngine::open(t.path(), DetectorConfig::example(), CapStrategy::None, o)
                .unwrap();
        assert_eq!(report.replayed, extra.len() as u64);
        assert_eq!(report.next_seq, n + extra.len() as u64);
    }

    #[test]
    fn graph_delta_publishes_and_survives_recovery() {
        let t = TempDir::new("pe");
        let g0 = {
            let mut b = GraphBuilder::new();
            b.add_edge(u(1), u(11));
            b.build()
        };
        let mut pe =
            PersistentEngine::create(t.path(), g0.clone(), 7, DetectorConfig::example(), opts())
                .unwrap();
        let delta = GraphDelta::between(&g0, &small_graph(), 7, 8).unwrap();
        pe.on_event(EdgeEvent::follow(u(11), u(99), ts(10)))
            .unwrap();
        pe.publish_graph_delta(&delta).unwrap();
        assert_eq!(pe.epoch(), 8);
        // Stale delta refused.
        assert!(pe.publish_graph_delta(&delta).is_err());
        let r = pe
            .on_event(EdgeEvent::follow(u(12), u(99), ts(11)))
            .unwrap();
        assert_eq!(r.len(), 2, "refreshed S enables the motif");
        pe.close().unwrap();

        let (reopened, report) = PersistentEngine::open(
            t.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            opts(),
        )
        .unwrap();
        assert_eq!(report.snapshot_epoch, 8);
        assert_eq!(report.deltas_applied, 1);
        assert_eq!(
            reopened.engine().graph().num_follow_edges(),
            small_graph().num_follow_edges()
        );
    }

    /// Edge list of a graph, as raw id pairs.
    fn edges_of(g: &FollowGraph) -> Vec<(u64, u64)> {
        g.iter_forward()
            .flat_map(|(a, ts)| {
                ts.into_iter()
                    .map(move |b| (a.raw(), b.raw()))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    fn build(edges: &[(u64, u64)]) -> FollowGraph {
        let mut b = GraphBuilder::new();
        b.extend(edges.iter().map(|&(a, bb)| (u(a), u(bb))));
        b.build()
    }

    #[test]
    fn long_delta_chain_triggers_rebase_and_drops_orphans() {
        let t = TempDir::new("pe");
        let o = PersistOptions {
            rebase: RebasePolicy {
                max_chain_len: 3,
                max_delta_bytes_ratio: 0.0,
            },
            ..opts()
        };
        // Vertex 9 → 99 exists only in the base; the first delta removes
        // it, orphaning both endpoints in the interner until a rebase.
        let g0 = build(&[(1, 11), (1, 12), (9, 99)]);
        let mut pe =
            PersistentEngine::create(t.path(), g0.clone(), 0, DetectorConfig::example(), o)
                .unwrap();
        let mut current = g0;
        for epoch in 0..3u64 {
            let mut edges = edges_of(&current);
            if epoch == 0 {
                edges.retain(|&(a, _)| a != 9);
            }
            edges.push((10 + epoch, 500 + epoch));
            let next = build(&edges);
            let delta = GraphDelta::between(&current, &next, epoch, epoch + 1).unwrap();
            pe.publish_graph_delta(&delta).unwrap();
            current = next;
        }
        assert_eq!(pe.epoch(), 3);
        // In memory the orphan stays interned (dense ids must not move
        // mid-flight) …
        assert!(pe.engine().graph().dense_of(u(9)).is_some());

        // … but the third publish crossed the chain-length threshold, so
        // the chain was folded into a fresh base and compacted: exactly
        // one base, no deltas, and the orphan is gone from the on-disk
        // interner.
        let store = SnapshotStore::new(t.path()).unwrap();
        assert!(!store
            .should_rebase(RebasePolicy {
                max_chain_len: 1,
                max_delta_bytes_ratio: 0.0,
            })
            .unwrap());
        let loaded = store.load_latest(CapStrategy::None).unwrap();
        assert_eq!(loaded.epoch, 3);
        assert_eq!(loaded.deltas_applied, 0, "chain must be folded away");
        assert!(loaded.graph.dense_of(u(9)).is_none(), "orphan interned");
        assert!(loaded.graph.dense_of(u(99)).is_none(), "orphan interned");
        assert_eq!(loaded.graph.num_follow_edges(), current.num_follow_edges());
        pe.close().unwrap();

        // Recovery picks up the rebased base and continues.
        let (reopened, report) =
            PersistentEngine::open(t.path(), DetectorConfig::example(), CapStrategy::None, o)
                .unwrap();
        assert_eq!(report.snapshot_epoch, 3);
        assert_eq!(report.deltas_applied, 0);
        assert!(reopened.engine().graph().dense_of(u(9)).is_none());
    }

    #[test]
    fn on_events_batch_is_one_durability_unit_with_candidate_parity() {
        let t_single = TempDir::new("pe-s");
        let t_batch = TempDir::new("pe-b");
        let o = PersistOptions {
            segment_bytes: 2048,  // batches straddle segment rolls
            checkpoint_every: 70, // and checkpoint cadence boundaries
            ..opts()
        };
        let events = trace(400);
        let mut single = PersistentEngine::create(
            t_single.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            o,
        )
        .unwrap();
        let mut batched = PersistentEngine::create(
            t_batch.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            o,
        )
        .unwrap();
        let mut want = Vec::new();
        for &e in &events {
            want.extend(single.on_event(e).unwrap());
        }
        let mut got = Vec::new();
        for chunk in events.chunks(33) {
            batched.on_events_into(chunk, &mut got).unwrap();
        }
        assert_eq!(got, want, "batched candidate stream diverges");
        assert_eq!(single.next_seq(), batched.next_seq());
        single.close().unwrap();
        batched.close().unwrap();

        // Both logs recover to identical continuations.
        let (mut rs, rep_s) = PersistentEngine::open(
            t_single.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            o,
        )
        .unwrap();
        let (mut rb, rep_b) = PersistentEngine::open(
            t_batch.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            o,
        )
        .unwrap();
        assert_eq!(rep_s.next_seq, rep_b.next_seq);
        let next = EdgeEvent::follow(u(12), u(900), ts(2_000));
        assert_eq!(rs.on_event(next).unwrap(), rb.on_event(next).unwrap());
    }

    #[test]
    fn concurrent_on_events_matches_single_and_recovers() {
        let o = opts();
        let events = trace(300);
        let t_single = TempDir::new("pce-s");
        let t_batch = TempDir::new("pce-b");
        let single = PersistentConcurrentEngine::create(
            t_single.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            4,
            o,
        )
        .unwrap();
        let batched = PersistentConcurrentEngine::create(
            t_batch.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            4,
            o,
        )
        .unwrap();
        let mut want = Vec::new();
        for &e in &events {
            single.on_event_into(e, &mut want).unwrap();
        }
        let mut got = Vec::new();
        for chunk in events.chunks(29) {
            batched.on_events_into(chunk, &mut got).unwrap();
        }
        assert_eq!(got, want);
        assert_eq!(single.next_seq(), batched.next_seq());
        single.sync().unwrap();
        batched.sync().unwrap();
        drop(single);
        drop(batched);

        // The batched log replays to the same store state.
        let (rs, rep_s) = PersistentConcurrentEngine::open(
            t_single.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            4,
            o,
        )
        .unwrap();
        let (rb, rep_b) = PersistentConcurrentEngine::open(
            t_batch.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            4,
            o,
        )
        .unwrap();
        assert_eq!(rep_s.replayed, rep_b.replayed);
        assert_eq!(
            rs.engine().store().resident_entries(),
            rb.engine().store().resident_entries()
        );
        let next = EdgeEvent::follow(u(12), u(901), ts(2_000));
        assert_eq!(rs.on_event(next).unwrap(), rb.on_event(next).unwrap());
    }

    #[test]
    fn concurrent_engine_round_trip() {
        let t = TempDir::new("pce");
        let pe = PersistentConcurrentEngine::create(
            t.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            4,
            opts(),
        )
        .unwrap();
        let events = trace(300);
        let mut fired = 0usize;
        for &e in &events {
            fired += pe.on_event(e).unwrap().len();
        }
        assert!(fired > 0);
        pe.checkpoint().unwrap();
        let n = pe.next_seq();
        drop(pe);

        let (recovered, report) = PersistentConcurrentEngine::open(
            t.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            4,
            opts(),
        )
        .unwrap();
        assert_eq!(report.next_seq, n);
        assert_eq!(report.replayed, 0, "checkpoint covered everything");
        assert!(report.checkpoint_entries > 0);

        // Continues identically to an uninterrupted concurrent engine.
        let reference = ConcurrentEngine::new(small_graph(), DetectorConfig::example()).unwrap();
        for &e in &events {
            reference.on_event(e);
        }
        let next = EdgeEvent::follow(u(12), u(901), ts(5_000));
        assert_eq!(recovered.on_event(next).unwrap(), reference.on_event(next));
    }

    #[test]
    fn concurrent_ingest_from_many_threads_then_recover() {
        let t = TempDir::new("pce");
        let pe = std::sync::Arc::new(
            PersistentConcurrentEngine::create(
                t.path(),
                small_graph(),
                0,
                DetectorConfig::example(),
                4,
                opts(),
            )
            .unwrap(),
        );
        let handles: Vec<_> = (0..4u64)
            .map(|w| {
                let pe = std::sync::Arc::clone(&pe);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        // Distinct targets per thread keep per-target order
                        // trivially intact without a routing transport.
                        let c = u(10_000 + w * 1_000 + i % 20);
                        pe.on_event(EdgeEvent::follow(u(11 + i % 2), c, ts(50 + i)))
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pe.next_seq(), 800);
        pe.sync().unwrap();
        drop(std::sync::Arc::try_unwrap(pe).ok().expect("sole owner"));

        let (recovered, report) = PersistentConcurrentEngine::open(
            t.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            4,
            opts(),
        )
        .unwrap();
        assert_eq!(report.replayed, 800);
        assert_eq!(report.next_seq, 800);
        assert_eq!(recovered.engine().store().stats().inserted, 800);
    }

    /// An incremental-checkpoint policy: deltas allowed, rebase after 8.
    fn inc_opts() -> PersistOptions {
        PersistOptions {
            checkpoint_every: 0, // cadence driven explicitly by the tests
            rebase: RebasePolicy {
                max_chain_len: 8,
                max_delta_bytes_ratio: 0.0,
            },
            ..opts()
        }
    }

    /// A wide trace touching `targets` distinct recommendation targets —
    /// `trace()` only exercises five, too few for delta-vs-full sizing.
    fn wide_trace(n: u64, targets: u64) -> Vec<EdgeEvent> {
        (0..n)
            .map(|i| EdgeEvent::follow(u(11 + i % 3), u(1_000 + i % targets), ts(10 + i)))
            .collect()
    }

    fn sorted_entries(
        out: &mut Vec<(UserId, UserId, Timestamp)>,
    ) -> &mut Vec<(UserId, UserId, Timestamp)> {
        out.sort_unstable();
        out
    }

    #[test]
    fn sequential_incremental_restore_matches_full() {
        let (ti, tf) = (TempDir::new("pe-inc"), TempDir::new("pe-full"));
        let full_opts = PersistOptions {
            checkpoint_every: 0,
            ..opts()
        };
        let mut pi = PersistentEngine::create(
            ti.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            inc_opts(),
        )
        .unwrap();
        let mut pf = PersistentEngine::create(
            tf.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            full_opts,
        )
        .unwrap();
        for (i, &e) in trace(300).iter().enumerate() {
            assert_eq!(pi.on_event(e).unwrap(), pf.on_event(e).unwrap());
            if i % 60 == 59 {
                pi.checkpoint().unwrap();
                pf.checkpoint().unwrap();
            }
        }
        assert!(
            !crate::checkpoint::list_delta_checkpoints(ti.path())
                .unwrap()
                .is_empty(),
            "incremental run must actually write deltas"
        );
        assert!(
            crate::checkpoint::list_delta_checkpoints(tf.path())
                .unwrap()
                .is_empty(),
            "disabled policy must stay full-only"
        );
        pi.close().unwrap();
        pf.close().unwrap();

        let (ri, _) = PersistentEngine::open(
            ti.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            inc_opts(),
        )
        .unwrap();
        let (rf, _) = PersistentEngine::open(
            tf.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            opts(),
        )
        .unwrap();
        let (mut ei, mut ef) = (Vec::new(), Vec::new());
        ri.engine().store().export_entries(&mut ei);
        rf.engine().store().export_entries(&mut ef);
        assert_eq!(
            sorted_entries(&mut ei),
            sorted_entries(&mut ef),
            "chain restore must equal full-checkpoint restore"
        );
    }

    #[test]
    fn sequential_chain_rebases_per_policy_and_prunes() {
        let t = TempDir::new("pe-chain");
        let o = PersistOptions {
            rebase: RebasePolicy {
                max_chain_len: 2,
                max_delta_bytes_ratio: 0.0,
            },
            ..inc_opts()
        };
        let mut pe =
            PersistentEngine::create(t.path(), small_graph(), 0, DetectorConfig::example(), o)
                .unwrap();
        let deltas = |dir: &Path| {
            crate::checkpoint::list_delta_checkpoints(dir)
                .unwrap()
                .len()
        };
        let fulls = |dir: &Path| crate::checkpoint::list_checkpoints(dir).unwrap().len();
        let feed = |pe: &mut PersistentEngine, lo: u64| {
            for i in lo..lo + 20 {
                pe.on_event(EdgeEvent::follow(u(11), u(2_000 + i), ts(10 + i)))
                    .unwrap();
            }
        };
        feed(&mut pe, 0);
        pe.checkpoint().unwrap(); // no chain yet → full
        assert_eq!((fulls(t.path()), deltas(t.path())), (1, 0));
        feed(&mut pe, 20);
        pe.checkpoint().unwrap(); // delta 1
        feed(&mut pe, 40);
        pe.checkpoint().unwrap(); // delta 2 — chain now at the policy cap
        assert_eq!((fulls(t.path()), deltas(t.path())), (1, 2));
        feed(&mut pe, 60);
        pe.checkpoint().unwrap(); // rebase: fresh full, whole chain pruned
        assert_eq!((fulls(t.path()), deltas(t.path())), (1, 0));
        assert_eq!(pe.checkpoint_tip(), Some(pe.next_seq() - 1));
    }

    #[test]
    fn delta_checkpoint_is_fraction_of_full_at_sparse_dirt() {
        let t = TempDir::new("pe-frac");
        let mut pe = PersistentEngine::create(
            t.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            inc_opts(),
        )
        .unwrap();
        // 500 resident targets, then dirty ~1% of them.
        for &e in &wide_trace(2_000, 500) {
            pe.on_event(e).unwrap();
        }
        pe.checkpoint().unwrap();
        let full_path = crate::checkpoint::list_checkpoints(t.path())
            .unwrap()
            .pop()
            .unwrap()
            .0;
        let full_bytes = std::fs::metadata(&full_path).unwrap().len();
        for i in 0..5u64 {
            pe.on_event(EdgeEvent::follow(u(12), u(1_000 + i), ts(5_000 + i)))
                .unwrap();
        }
        pe.checkpoint().unwrap();
        let delta_path = crate::checkpoint::list_delta_checkpoints(t.path())
            .unwrap()
            .pop()
            .unwrap()
            .0;
        let delta_bytes = std::fs::metadata(&delta_path).unwrap().len();
        assert!(
            delta_bytes * 10 < full_bytes,
            "1%-dirty delta must be <10% of the full: {delta_bytes} vs {full_bytes}"
        );
        pe.close().unwrap();
        // And the chain still restores the exact store.
        let (re, report) = PersistentEngine::open(
            t.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            inc_opts(),
        )
        .unwrap();
        assert_eq!(report.replayed, 0, "tip covers everything");
        let mut twin = Engine::new(small_graph(), DetectorConfig::example()).unwrap();
        for &e in &wide_trace(2_000, 500) {
            twin.on_event(e);
        }
        for i in 0..5u64 {
            twin.on_event(EdgeEvent::follow(u(12), u(1_000 + i), ts(5_000 + i)));
        }
        let (mut er, mut et) = (Vec::new(), Vec::new());
        re.engine().store().export_entries(&mut er);
        twin.store().export_entries(&mut et);
        assert_eq!(sorted_entries(&mut er), sorted_entries(&mut et));
    }

    #[test]
    fn concurrent_checkpoint_ingests_between_fences_and_recovers() {
        let t = TempDir::new("pce-fence");
        let parts = 2;
        let pe = PersistentConcurrentEngine::create(
            t.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            parts,
            inc_opts(),
        )
        .unwrap();
        let warm = trace(100);
        for &e in &warm {
            pe.on_event(e).unwrap();
        }
        // Cut a checkpoint while ingesting *between* the shard fences:
        // events landing after partition p's cut are above p's fence
        // (replayed at recovery) while events to still-uncut partitions
        // land below theirs (covered by the export) — the exact skew the
        // fence-vector contract exists for.
        let mid = std::cell::RefCell::new(Vec::new());
        pe.checkpoint_with_fence_observer(|p, fence| {
            assert!(fence > 0, "warmed partitions have assigned sequences");
            for i in 0..10u64 {
                let e = EdgeEvent::follow(u(11), u(20_000 + p as u64 * 100 + i), ts(500 + i));
                pe.on_event(e).unwrap();
                mid.borrow_mut().push(e);
            }
        })
        .unwrap();
        let mid = mid.into_inner();
        let tip = pe.checkpoint_tip().expect("checkpoint landed");
        assert!(tip >= warm.len() as u64 - 1);
        pe.sync().unwrap();
        drop(pe);

        let (re, report) = PersistentConcurrentEngine::open(
            t.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            parts,
            inc_opts(),
        )
        .unwrap();
        assert!(
            report.replayed > 0,
            "between-fence events sit above their partition's fence"
        );
        assert_eq!(report.next_seq, (warm.len() + mid.len()) as u64);
        let twin = ConcurrentEngine::new(small_graph(), DetectorConfig::example()).unwrap();
        let mut sink = Vec::new();
        for &e in warm.iter().chain(&mid) {
            twin.on_event_into(e, &mut sink);
        }
        let (mut er, mut et) = (Vec::new(), Vec::new());
        re.engine().store().export_entries(&mut er);
        twin.store().export_entries(&mut et);
        assert_eq!(
            sorted_entries(&mut er),
            sorted_entries(&mut et),
            "live-checkpoint recovery must match the uninterrupted twin"
        );
    }

    #[test]
    fn checkpoint_driver_runs_cadence_without_quiescing_ingest() {
        let t = TempDir::new("pce-driver");
        let pe = std::sync::Arc::new(
            PersistentConcurrentEngine::create(
                t.path(),
                small_graph(),
                0,
                DetectorConfig::example(),
                2,
                inc_opts(),
            )
            .unwrap(),
        );
        let driver = CheckpointDriver::spawn(
            std::sync::Arc::clone(&pe),
            64,
            std::time::Duration::from_millis(1),
        );
        let events = trace(600);
        for &e in &events {
            pe.on_event(e).unwrap();
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while driver.completed() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let (completed, failures) = driver.stop();
        assert!(completed >= 1, "driver never checkpointed");
        assert_eq!(failures, 0);
        assert!(pe.checkpoint_tip().is_some());
        pe.sync().unwrap();
        drop(std::sync::Arc::try_unwrap(pe).ok().expect("sole owner"));

        let (re, report) = PersistentConcurrentEngine::open(
            t.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            2,
            inc_opts(),
        )
        .unwrap();
        assert!(
            report.replayed < events.len() as u64,
            "replay must be bounded by the driver's checkpoints"
        );
        let twin = ConcurrentEngine::new(small_graph(), DetectorConfig::example()).unwrap();
        let mut sink = Vec::new();
        for &e in &events {
            twin.on_event_into(e, &mut sink);
        }
        let (mut er, mut et) = (Vec::new(), Vec::new());
        re.engine().store().export_entries(&mut er);
        twin.store().export_entries(&mut et);
        assert_eq!(sorted_entries(&mut er), sorted_entries(&mut et));
    }
}
