//! Crash recovery: snapshot chain + `D` checkpoint + WAL tail replay.
//!
//! [`PersistentEngine`] wraps the sequential [`Engine`];
//! [`PersistentConcurrentEngine`] wraps the shared-state
//! [`ConcurrentEngine`] with per-partition WALs keyed by the hash route.
//! Both follow the same lifecycle:
//!
//! 1. **create** — publish the base `S` snapshot, start an empty WAL;
//! 2. **ingest** — every event is appended to the WAL *before* the engine
//!    applies it (write-ahead), checkpoints of `D` land every
//!    `checkpoint_every` events, and [`advance`](PersistentEngine::advance)
//!    reclaims WAL segments the window pruning + checkpoint have both
//!    passed;
//! 3. **open** (after a crash or restart) — reload base + delta chain,
//!    restore the newest `D` checkpoint, replay the WAL tail through the
//!    store with **notification emission suppressed** (replay mutates `D`
//!    only — no candidate is ever delivered twice), then hand off to live
//!    ingest at the exact sequence the log ends.
//!
//! ## The parity contract
//!
//! After a crash at *any* WAL record boundary, the recovered engine's
//! candidate stream for subsequent events is byte-identical to an
//! uninterrupted run's (enforced by the kill-point matrix test), provided
//! the stream's timestamp skew never reaches back past an expiry horizon
//! the engine has already advanced over — the same out-of-order trade the
//! engines themselves document for `advance`. Replay applies `D`
//! mutations without re-running detection: in-window witness sets depend
//! only on the per-target insert/remove sequence, which the WAL preserves
//! per target (globally for the sequential engine; per hash-route
//! partition — and targets are route-sticky — for the shared engine).

use crate::checkpoint::{load_latest_checkpoint, write_checkpoint_with};
use crate::snapshot::{RebasePolicy, SnapshotStore};
use crate::vfs::{std_vfs, Vfs};
use crate::wal::{self, FsyncPolicy, SharedWal, Wal, WalOptions};
use magicrecs_core::{ConcurrentEngine, Engine};
use magicrecs_graph::{CapStrategy, FollowGraph, GraphDelta};
use magicrecs_types::{Candidate, DetectorConfig, EdgeEvent, Error, Result, Timestamp};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Tuning for the persistence subsystem.
#[derive(Debug, Clone, Copy)]
pub struct PersistOptions {
    /// WAL durability policy.
    pub fsync: FsyncPolicy,
    /// WAL segment roll threshold, bytes.
    pub segment_bytes: u64,
    /// Events between automatic `D` checkpoints (0 disables — the WAL
    /// then replays from its beginning and is never reclaimed).
    ///
    /// **Sequential engine only.** [`PersistentConcurrentEngine`] cannot
    /// checkpoint mid-ingest (a checkpoint needs a quiescent moment, see
    /// its type docs), so there this knob is inert: call
    /// [`PersistentConcurrentEngine::checkpoint`] from the maintenance
    /// thread between drained batches, or segments are reclaimed only up
    /// to the sealing checkpoint recovery itself writes.
    pub checkpoint_every: u64,
    /// When `publish_graph_delta` folds the delta chain into a fresh
    /// base automatically (see [`RebasePolicy`]);
    /// [`RebasePolicy::DISABLED`] leaves compaction to the operator.
    pub rebase: RebasePolicy,
}

impl Default for PersistOptions {
    fn default() -> Self {
        PersistOptions {
            fsync: FsyncPolicy::EveryN(256),
            segment_bytes: 1 << 20,
            checkpoint_every: 4096,
            rebase: RebasePolicy::default(),
        }
    }
}

impl PersistOptions {
    fn wal(&self) -> WalOptions {
        WalOptions {
            fsync: self.fsync,
            segment_bytes: self.segment_bytes,
        }
    }
}

/// What recovery found and did.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// Epoch of the reconstructed `S` snapshot (base + chain).
    pub snapshot_epoch: u64,
    /// Delta chain links folded onto the base.
    pub deltas_applied: usize,
    /// WAL sequence the restored checkpoint covered (`None`: no usable
    /// checkpoint, replay started from the log's beginning).
    pub checkpoint_seq: Option<u64>,
    /// WAL records replayed with emission suppressed.
    pub replayed: u64,
    /// Number of checkpoint entries re-inserted into `D`.
    pub checkpoint_entries: u64,
    /// First sequence live ingest will append.
    pub next_seq: u64,
    /// Whether the newest WAL segment ended in a torn record (the crash
    /// signature; the tear is repaired before live ingest resumes).
    pub torn_tail: bool,
}

const SEQ_WAL_PREFIX: &str = "wal-";

/// How many replayed events accumulate before a batched store apply —
/// bounds the replay buffer while still amortizing shard locking.
const REPLAY_APPLY_CHUNK: usize = 4096;

/// Restores the newest `D` checkpoint through `apply_batch` in
/// [`REPLAY_APPLY_CHUNK`]-bounded batches (checkpoint entries are all
/// insertions, so each chunk is one
/// [`magicrecs_temporal::EdgeStore::insert_batch`]-shaped apply without
/// ever materializing a second full copy of the checkpoint), returning
/// `(min_seq, checkpoint_seq, entries_restored)` — the WAL replay bound
/// shared by both engines' recovery paths.
fn restore_checkpoint(
    dir: &Path,
    mut apply_batch: impl FnMut(&[EdgeEvent]),
) -> Result<(u64, Option<u64>, u64)> {
    Ok(match load_latest_checkpoint(dir)? {
        Some(ck) => {
            let n = ck.entries.len() as u64;
            let mut buf: Vec<EdgeEvent> =
                Vec::with_capacity(REPLAY_APPLY_CHUNK.min(ck.entries.len()));
            for chunk in ck.entries.chunks(REPLAY_APPLY_CHUNK) {
                buf.clear();
                buf.extend(
                    chunk
                        .iter()
                        .map(|&(dst, src, at)| EdgeEvent::follow(src, dst, at)),
                );
                apply_batch(&buf);
            }
            (ck.last_seq + 1, Some(ck.last_seq), n)
        }
        None => (0, None, 0),
    })
}

/// Refuses to create a fresh engine over a directory that already holds
/// persistence state. A fully-reclaimed directory legitimately holds
/// *zero* WAL segments while its checkpoint still covers sequence `N`:
/// creating there would restart sequences at 0, new checkpoints at
/// `covered < N` would never displace the stale one (pruning only
/// deletes *older* files), and the next recovery would restore the
/// previous incarnation's `D` and silently filter out every new record.
/// Same hazard for a stale higher-epoch snapshot base shadowing the new
/// one. WAL segments are checked here too — before anything is
/// published — so create() never mutates a directory it is about to
/// refuse.
fn ensure_no_stale_state(dir: &Path, snapshots: &SnapshotStore) -> Result<()> {
    if !crate::checkpoint::list_checkpoints(dir)?.is_empty()
        || snapshots.has_artifacts()?
        || wal::any_segments(dir)?
    {
        return Err(Error::Invariant(format!(
            "{} already holds persistence state (WAL segments, checkpoints, or \
             snapshots) — a fresh engine created over it would be shadowed by the \
             stale files on the next recovery; recover with open() or start in an \
             empty directory",
            dir.display()
        )));
    }
    Ok(())
}

/// The sequential engine with durability: `Engine` + snapshot store +
/// write-ahead log + checkpoints.
#[derive(Debug)]
pub struct PersistentEngine {
    engine: Engine,
    wal: Wal,
    snapshots: SnapshotStore,
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    epoch: u64,
    checkpoint_every: u64,
    since_checkpoint: u64,
    rebase: RebasePolicy,
    /// WAL sequence the newest on-disk checkpoint covers.
    checkpoint_seq: Option<u64>,
}

impl PersistentEngine {
    /// Creates a fresh persistent engine in `dir`: publishes `graph` as
    /// the base snapshot for `epoch` and starts an empty WAL. Refuses a
    /// directory that already holds any persistence state (WAL segments,
    /// checkpoints, or snapshots).
    pub fn create(
        dir: &Path,
        graph: FollowGraph,
        epoch: u64,
        config: DetectorConfig,
        opts: PersistOptions,
    ) -> Result<Self> {
        Self::create_with_vfs(dir, graph, epoch, config, opts, std_vfs())
    }

    /// [`PersistentEngine::create`] on an explicit I/O backend: every
    /// durable mutation (WAL appends, checkpoints, snapshot publishes,
    /// reclamation) goes through `vfs`. The default constructor threads
    /// the [`crate::StdVfs`] passthrough.
    pub fn create_with_vfs(
        dir: &Path,
        graph: FollowGraph,
        epoch: u64,
        config: DetectorConfig,
        opts: PersistOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self> {
        let snapshots = SnapshotStore::with_vfs(dir, Arc::clone(&vfs))?;
        // Refuse before sweeping: a refused directory keeps even its
        // .tmp crash artifacts for open()-based recovery or inspection.
        ensure_no_stale_state(dir, &snapshots)?;
        crate::fsutil::sweep_tmp_files(vfs.as_ref(), dir)?;
        snapshots.publish_base(epoch, &graph)?;
        let wal = Wal::create_with_vfs(dir, SEQ_WAL_PREFIX, opts.wal(), Arc::clone(&vfs))?;
        Ok(PersistentEngine {
            engine: Engine::new(graph, config)?,
            wal,
            snapshots,
            vfs,
            dir: dir.to_path_buf(),
            epoch,
            checkpoint_every: opts.checkpoint_every,
            since_checkpoint: 0,
            rebase: opts.rebase,
            checkpoint_seq: None,
        })
    }

    /// Recovers from `dir`: snapshot chain → checkpoint → WAL tail replay
    /// (emission suppressed) → ready for live ingest.
    pub fn open(
        dir: &Path,
        config: DetectorConfig,
        cap: CapStrategy,
        opts: PersistOptions,
    ) -> Result<(Self, RecoveryReport)> {
        Self::open_with_vfs(dir, config, cap, opts, std_vfs())
    }

    /// [`PersistentEngine::open`] on an explicit I/O backend (recovery
    /// repairs — tail truncation, tmp sweeps — go through it too).
    pub fn open_with_vfs(
        dir: &Path,
        config: DetectorConfig,
        cap: CapStrategy,
        opts: PersistOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<(Self, RecoveryReport)> {
        let snapshots = SnapshotStore::with_vfs(dir, Arc::clone(&vfs))?;
        // Crash artifacts (interrupted durable publishes) die here, at
        // the point that owns recovery cleanup.
        crate::fsutil::sweep_tmp_files(vfs.as_ref(), dir)?;
        let loaded = snapshots.load_latest(cap)?;
        let mut engine = Engine::new(loaded.graph, config)?;

        let (min_seq, checkpoint_seq, checkpoint_entries) =
            restore_checkpoint(dir, |events| engine.apply_to_store_batch(events))?;

        let mut replayed = 0u64;
        // Contiguity-checked: the sequential log is dense from seq 0, so
        // a hole (lost middle segment) must refuse recovery rather than
        // silently rebuild `D` without those events. Applies land in
        // bounded batches (the replay fast path — no per-event store
        // round trip).
        let mut replay_buf: Vec<EdgeEvent> = Vec::with_capacity(REPLAY_APPLY_CHUNK);
        let stats = wal::replay_contiguous(dir, SEQ_WAL_PREFIX, min_seq, |record| {
            replay_buf.push(record.event);
            replayed += 1;
            if replay_buf.len() >= REPLAY_APPLY_CHUNK {
                engine.apply_to_store_batch(&replay_buf);
                replay_buf.clear();
            }
        })?;
        engine.apply_to_store_batch(&replay_buf);
        // Floor at the checkpoint's coverage: a fully-reclaimed log must
        // not restart sequences at 0 below what the checkpoint claims —
        // a later recovery's `min_seq` filter would silently skip them.
        let wal =
            Wal::open_with_floor_vfs(dir, SEQ_WAL_PREFIX, opts.wal(), min_seq, Arc::clone(&vfs))?;
        let report = RecoveryReport {
            snapshot_epoch: loaded.epoch,
            deltas_applied: loaded.deltas_applied,
            checkpoint_seq,
            replayed,
            checkpoint_entries,
            next_seq: wal.next_seq(),
            torn_tail: stats.torn_tail,
        };
        Ok((
            PersistentEngine {
                engine,
                wal,
                snapshots,
                vfs,
                dir: dir.to_path_buf(),
                epoch: loaded.epoch,
                checkpoint_every: opts.checkpoint_every,
                since_checkpoint: 0,
                rebase: opts.rebase,
                checkpoint_seq,
            },
            report,
        ))
    }

    /// Processes one event durably: WAL append first (write-ahead), then
    /// detection; an automatic checkpoint lands every `checkpoint_every`
    /// events. The single-event wrapper over
    /// [`PersistentEngine::on_events_into`].
    pub fn on_event(&mut self, event: EdgeEvent) -> Result<Vec<Candidate>> {
        let mut out = Vec::new();
        self.on_events_into(std::slice::from_ref(&event), &mut out)?;
        Ok(out)
    }

    /// Processes a micro-batch durably: the **whole batch is
    /// written ahead with one group commit** ([`Wal::append_batch`] — one
    /// `write(2)`, one fsync-policy pass) before any detection runs, so
    /// the batch is a single durability point; then the engine detects
    /// the slice ([`Engine::on_events_into`], identical candidates to N
    /// single events). Checkpoint cadence is counted in *events*, not
    /// batches — a batch that crosses the cadence boundary checkpoints at
    /// its end (the cadence is a replay-cost bound, not a semantic
    /// boundary; the kill-point matrix covers batches straddling it).
    pub fn on_events_into(
        &mut self,
        events: &[EdgeEvent],
        out: &mut Vec<Candidate>,
    ) -> Result<usize> {
        self.wal.append_batch(events)?;
        let emitted = self.engine.on_events_into(events, out);
        self.since_checkpoint += events.len() as u64;
        if self.checkpoint_every > 0 && self.since_checkpoint >= self.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(emitted)
    }

    /// [`PersistentEngine::on_events_into`] collecting into a fresh
    /// vector.
    pub fn on_events(&mut self, events: &[EdgeEvent]) -> Result<Vec<Candidate>> {
        let mut out = Vec::new();
        self.on_events_into(events, &mut out)?;
        Ok(out)
    }

    /// Writes a `D` checkpoint covering everything appended so far.
    pub fn checkpoint(&mut self) -> Result<()> {
        let next = self.wal.next_seq();
        if next == 0 {
            return Ok(()); // nothing to cover
        }
        let covered = next - 1;
        // Durability order: records must be on disk before a checkpoint
        // claims to cover them (else a crash could reclaim-then-lose).
        self.wal.sync()?;
        let mut entries = Vec::new();
        self.engine.store().export_entries(&mut entries);
        write_checkpoint_with(&self.dir, entries, covered, self.vfs.as_ref())?;
        self.checkpoint_seq = Some(covered);
        self.since_checkpoint = 0;
        Ok(())
    }

    /// Advances window expiry and reclaims WAL segments that are both
    /// past the retention window and covered by a checkpoint.
    pub fn advance(&mut self, now: Timestamp) -> Result<usize> {
        self.engine.advance(now);
        match self.checkpoint_seq {
            Some(seq) => {
                let cutoff = now.saturating_sub(self.engine.store().window());
                self.wal.reclaim_before(cutoff, seq)
            }
            None => Ok(0),
        }
    }

    /// Applies and durably publishes a snapshot delta: the delta file
    /// joins the chain on disk, then the in-memory `S` refreshes via
    /// [`Engine::swap_graph_delta`]. The delta must extend the current
    /// epoch.
    ///
    /// When the chain outgrows the configured [`RebasePolicy`], the
    /// current graph is republished as a fresh base at the new epoch and
    /// the superseded files are compacted — recovery cost stays bounded
    /// by the policy, and orphaned (delta-removed) vertices leave the
    /// on-disk interner with the rebase.
    pub fn publish_graph_delta(&mut self, delta: &GraphDelta) -> Result<()> {
        if delta.base_epoch != self.epoch {
            return Err(Error::Invariant(format!(
                "delta base epoch {} does not extend current epoch {}",
                delta.base_epoch, self.epoch
            )));
        }
        self.snapshots.publish_delta(delta)?;
        self.engine.swap_graph_delta(delta)?;
        self.epoch = delta.target_epoch;
        if self.snapshots.should_rebase(self.rebase)? {
            self.snapshots
                .publish_base(self.epoch, self.engine.graph())?;
            self.snapshots.compact()?;
        }
        Ok(())
    }

    /// The current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The WAL sequence the next event will receive.
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// On-disk WAL segment count (bounded by τ + checkpoint cadence once
    /// reclamation runs).
    pub fn wal_segments(&self) -> usize {
        self.wal.segment_count()
    }

    /// Flushes and closes the WAL (also happens on drop).
    pub fn close(self) -> Result<()> {
        self.wal.close()
    }
}

/// The shared-state engine with durability: [`ConcurrentEngine`] +
/// snapshot store + **per-partition** WALs keyed by the hash route (the
/// same `route_mix` the sharded store and worker pools use), so N workers
/// appending through `&self` contend only within their own route.
///
/// Checkpointing requires a quiescent moment (no concurrent
/// [`PersistentConcurrentEngine::on_event_into`] in flight): the exported
/// store must be consistent with the recorded WAL position. The intended
/// deployment checkpoints from the maintenance thread between drained
/// batches — exactly where the paper's periodic `S` load also sits.
pub struct PersistentConcurrentEngine {
    engine: ConcurrentEngine,
    wal: SharedWal,
    snapshots: SnapshotStore,
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    rebase: RebasePolicy,
    state: Mutex<ConcurrentPersistState>,
}

#[derive(Debug, Clone, Copy)]
struct ConcurrentPersistState {
    epoch: u64,
    checkpoint_seq: Option<u64>,
}

impl PersistentConcurrentEngine {
    /// Creates a fresh persistent shared engine with `parts` WAL
    /// partitions (typically the worker count).
    pub fn create(
        dir: &Path,
        graph: FollowGraph,
        epoch: u64,
        config: DetectorConfig,
        parts: usize,
        opts: PersistOptions,
    ) -> Result<Self> {
        Self::create_with_vfs(dir, graph, epoch, config, parts, opts, std_vfs())
    }

    /// [`PersistentConcurrentEngine::create`] on an explicit I/O backend
    /// shared by every partition WAL, checkpoint, and snapshot publish.
    pub fn create_with_vfs(
        dir: &Path,
        graph: FollowGraph,
        epoch: u64,
        config: DetectorConfig,
        parts: usize,
        opts: PersistOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self> {
        let snapshots = SnapshotStore::with_vfs(dir, Arc::clone(&vfs))?;
        ensure_no_stale_state(dir, &snapshots)?;
        crate::fsutil::sweep_tmp_files(vfs.as_ref(), dir)?;
        snapshots.publish_base(epoch, &graph)?;
        let wal = SharedWal::create_with_vfs(dir, parts, opts.wal(), Arc::clone(&vfs))?;
        Ok(PersistentConcurrentEngine {
            engine: ConcurrentEngine::new(graph, config)?,
            wal,
            snapshots,
            vfs,
            dir: dir.to_path_buf(),
            rebase: opts.rebase,
            state: Mutex::new(ConcurrentPersistState {
                epoch,
                checkpoint_seq: None,
            }),
        })
    }

    /// Recovers from `dir`: snapshot chain, checkpoint, then all
    /// partitions' WAL tails replayed in merged sequence order with
    /// emission suppressed.
    pub fn open(
        dir: &Path,
        config: DetectorConfig,
        cap: CapStrategy,
        parts: usize,
        opts: PersistOptions,
    ) -> Result<(Self, RecoveryReport)> {
        Self::open_with_vfs(dir, config, cap, parts, opts, std_vfs())
    }

    /// [`PersistentConcurrentEngine::open`] on an explicit I/O backend.
    pub fn open_with_vfs(
        dir: &Path,
        config: DetectorConfig,
        cap: CapStrategy,
        parts: usize,
        opts: PersistOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<(Self, RecoveryReport)> {
        let snapshots = SnapshotStore::with_vfs(dir, Arc::clone(&vfs))?;
        crate::fsutil::sweep_tmp_files(vfs.as_ref(), dir)?;
        let loaded = snapshots.load_latest(cap)?;
        let engine = ConcurrentEngine::new(loaded.graph, config)?;

        let (min_seq, checkpoint_seq, checkpoint_entries) =
            restore_checkpoint(dir, |events| engine.apply_to_store_batch(events))?;

        let mut replayed = 0u64;
        let mut replay_buf: Vec<EdgeEvent> = Vec::with_capacity(REPLAY_APPLY_CHUNK);
        let stats = SharedWal::replay_merged(dir, parts, min_seq, |record| {
            replay_buf.push(record.event);
            replayed += 1;
            if replay_buf.len() >= REPLAY_APPLY_CHUNK {
                engine.apply_to_store_batch(&replay_buf);
                replay_buf.clear();
            }
        })?;
        engine.apply_to_store_batch(&replay_buf);
        // Same floor rationale as the sequential path: never resume the
        // global sequence below what the checkpoint covers.
        let wal =
            SharedWal::open_with_floor_vfs(dir, parts, opts.wal(), min_seq, Arc::clone(&vfs))?;
        // Seal the recovered state behind a fresh checkpoint before any
        // live append *when replay tolerated damage*. A tolerated hole
        // (a partition's unsynced tail lost in the crash, or a sequence
        // burned by a failed append) is benign now, but once ingest
        // grows that partition's log past it, the next recovery would
        // read it as an interior gap and refuse the whole directory;
        // covering everything assigned so far moves `min_seq` past every
        // hole. Clean restarts skip the O(|D|) durable write: a dense
        // replayed range with no torn tail has nothing to seal (holes
        // above the newest surviving record need no seal either — those
        // sequences are simply reassigned to new events).
        let dense_span = stats
            .last_seq
            .map_or(0, |last| (last + 1).saturating_sub(min_seq));
        let tolerated_damage = stats.torn_tail || replayed < dense_span;
        let sealed_seq = match wal.next_seq() {
            0 => None,
            next if !tolerated_damage || checkpoint_seq == Some(next - 1) => checkpoint_seq,
            next => {
                let mut entries = Vec::new();
                engine.store().export_entries(&mut entries);
                write_checkpoint_with(dir, entries, next - 1, vfs.as_ref())?;
                Some(next - 1)
            }
        };
        let report = RecoveryReport {
            snapshot_epoch: loaded.epoch,
            deltas_applied: loaded.deltas_applied,
            checkpoint_seq,
            replayed,
            checkpoint_entries,
            next_seq: wal.next_seq(),
            torn_tail: stats.torn_tail,
        };
        Ok((
            PersistentConcurrentEngine {
                engine,
                wal,
                snapshots,
                vfs,
                dir: dir.to_path_buf(),
                rebase: opts.rebase,
                state: Mutex::new(ConcurrentPersistState {
                    epoch: loaded.epoch,
                    checkpoint_seq: sealed_seq,
                }),
            },
            report,
        ))
    }

    /// Processes one event durably through `&self` (callable from any
    /// number of worker threads): WAL append to the target's route
    /// partition first, then detection. Returns candidates appended.
    ///
    /// **Per-target submission must be single-threaded** — the same
    /// precondition the parity contract states (see the module docs):
    /// the WAL sequence is assigned under the partition lock, but the
    /// store apply happens after it is released, so two threads racing
    /// events *for the same target* could log one order and apply the
    /// other, and a post-crash replay would then rebuild a different
    /// `D` than the live run held. A route-sticky transport (the
    /// cluster's hash routing, where each target's events land on one
    /// worker) provides this by construction; events for *different*
    /// targets may race freely.
    pub fn on_event_into(&self, event: EdgeEvent, out: &mut Vec<Candidate>) -> Result<usize> {
        self.wal.append(event)?;
        Ok(self.engine.on_event_into(event, out))
    }

    /// Convenience wrapper returning a fresh vector.
    pub fn on_event(&self, event: EdgeEvent) -> Result<Vec<Candidate>> {
        let mut out = Vec::new();
        self.on_event_into(event, &mut out)?;
        Ok(out)
    }

    /// Processes a micro-batch durably through `&self`: the whole batch
    /// is **written ahead with one group commit**
    /// ([`SharedWal::append_batch`] — each touched partition lock taken
    /// once, one `write(2)` and a dense global-sequence run per
    /// partition) before any detection runs, then the engine detects the
    /// slice against one pinned `S` snapshot
    /// ([`ConcurrentEngine::on_events_into`]).
    ///
    /// Same precondition as [`PersistentConcurrentEngine::on_event_into`]:
    /// per-target submission must be single-threaded (a route-sticky
    /// transport gives this by construction — and batches drained from
    /// one route's queue trivially preserve it).
    pub fn on_events_into(&self, events: &[EdgeEvent], out: &mut Vec<Candidate>) -> Result<usize> {
        self.wal.append_batch(events)?;
        Ok(self.engine.on_events_into(events, out))
    }

    /// [`PersistentConcurrentEngine::on_events_into`] collecting into a
    /// fresh vector.
    pub fn on_events(&self, events: &[EdgeEvent]) -> Result<Vec<Candidate>> {
        let mut out = Vec::new();
        self.on_events_into(events, &mut out)?;
        Ok(out)
    }

    /// Writes a `D` checkpoint. **Caller must quiesce ingest** — see the
    /// type docs; the checkpoint claims to cover every sequence assigned
    /// so far, which is only true once in-flight events have landed in
    /// both the WAL and the store.
    pub fn checkpoint(&self) -> Result<()> {
        let next = self.wal.next_seq();
        if next == 0 {
            return Ok(());
        }
        let covered = next - 1;
        self.wal.sync_all()?;
        let mut entries = Vec::new();
        self.engine.store().export_entries(&mut entries);
        write_checkpoint_with(&self.dir, entries, covered, self.vfs.as_ref())?;
        self.state.lock().checkpoint_seq = Some(covered);
        Ok(())
    }

    /// Advances window expiry and reclaims fully-covered WAL segments on
    /// every partition.
    pub fn advance(&self, now: Timestamp) -> Result<usize> {
        self.engine.advance(now);
        let checkpoint_seq = self.state.lock().checkpoint_seq;
        match checkpoint_seq {
            Some(seq) => {
                let cutoff = now.saturating_sub(self.engine.store().window());
                self.wal.reclaim_before(cutoff, seq)
            }
            None => Ok(0),
        }
    }

    /// Applies and durably publishes a snapshot delta (see
    /// [`PersistentEngine::publish_graph_delta`], including the automatic
    /// rebase when the chain outgrows the configured [`RebasePolicy`];
    /// publication is serialized on the internal state lock).
    pub fn publish_graph_delta(&self, delta: &GraphDelta) -> Result<()> {
        let mut state = self.state.lock();
        if delta.base_epoch != state.epoch {
            return Err(Error::Invariant(format!(
                "delta base epoch {} does not extend current epoch {}",
                delta.base_epoch, state.epoch
            )));
        }
        self.snapshots.publish_delta(delta)?;
        self.engine.swap_graph_delta(delta)?;
        state.epoch = delta.target_epoch;
        if self.snapshots.should_rebase(self.rebase)? {
            self.snapshots
                .publish_base(state.epoch, &self.engine.graph())?;
            self.snapshots.compact()?;
        }
        Ok(())
    }

    /// The current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &ConcurrentEngine {
        &self.engine
    }

    /// The next global WAL sequence.
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Syncs all WAL partitions (also useful before a planned shutdown).
    pub fn sync(&self) -> Result<()> {
        self.wal.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use magicrecs_graph::GraphBuilder;
    use magicrecs_types::UserId;

    fn u(n: u64) -> UserId {
        UserId(n)
    }

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn small_graph() -> FollowGraph {
        let mut g = GraphBuilder::new();
        g.extend([
            (u(1), u(11)),
            (u(1), u(12)),
            (u(2), u(11)),
            (u(2), u(12)),
            (u(3), u(12)),
        ]);
        g.build()
    }

    fn opts() -> PersistOptions {
        PersistOptions {
            fsync: FsyncPolicy::Never,
            segment_bytes: 4096,
            checkpoint_every: 64,
            rebase: RebasePolicy::DISABLED,
        }
    }

    /// A deterministic motif-heavy trace with monotone timestamps.
    fn trace(n: u64) -> Vec<EdgeEvent> {
        let mut events = Vec::new();
        for i in 0..n {
            let b = u(11 + i % 3); // 13 is unknown to S
            let c = u(900 + i % 5);
            events.push(EdgeEvent::follow(b, c, ts(10 + i)));
            if i % 23 == 0 {
                events.push(EdgeEvent::unfollow(u(11), c, ts(10 + i)));
            }
        }
        events
    }

    #[test]
    fn create_run_reopen_continues_sequence() {
        let t = TempDir::new("pe");
        let mut pe = PersistentEngine::create(
            t.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            opts(),
        )
        .unwrap();
        let events = trace(200);
        let mut live: Vec<Vec<Candidate>> = Vec::new();
        for &e in &events {
            live.push(pe.on_event(e).unwrap());
        }
        let n = pe.next_seq();
        pe.close().unwrap();

        let (mut reopened, report) = PersistentEngine::open(
            t.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            opts(),
        )
        .unwrap();
        assert_eq!(report.next_seq, n);
        assert_eq!(report.snapshot_epoch, 0);
        assert!(report.checkpoint_seq.is_some(), "auto checkpoints ran");
        assert!(!report.torn_tail);
        // The recovered engine continues with the same candidates an
        // uninterrupted engine produces.
        let mut reference = Engine::new(small_graph(), DetectorConfig::example()).unwrap();
        for &e in &events {
            reference.on_event(e);
        }
        let next = EdgeEvent::follow(u(12), u(900), ts(100_000 / 60));
        assert_eq!(
            reopened.on_event(next).unwrap(),
            reference.on_event(next),
            "post-recovery candidates diverge"
        );
    }

    #[test]
    fn replay_suppresses_emission() {
        let t = TempDir::new("pe");
        let mut pe = PersistentEngine::create(
            t.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            PersistOptions {
                checkpoint_every: 0, // force full-log replay
                ..opts()
            },
        )
        .unwrap();
        let mut fired = 0usize;
        for &e in &trace(150) {
            fired += pe.on_event(e).unwrap().len();
        }
        assert!(fired > 0, "fixture must fire candidates");
        pe.close().unwrap();
        let (reopened, report) = PersistentEngine::open(
            t.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            opts(),
        )
        .unwrap();
        assert!(report.replayed > 0);
        // Replay mutated D only: engine-level candidate stats untouched.
        assert_eq!(reopened.engine().stats().candidates.get(), 0);
        assert_eq!(reopened.engine().stats().events.get(), 0);
        assert!(reopened.engine().store().resident_entries() > 0);
    }

    #[test]
    fn checkpoint_bounds_replay_and_enables_reclaim() {
        let t = TempDir::new("pe");
        let mut pe = PersistentEngine::create(
            t.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            PersistOptions {
                segment_bytes: 512,
                checkpoint_every: 50,
                ..opts()
            },
        )
        .unwrap();
        for &e in &trace(500) {
            pe.on_event(e).unwrap();
        }
        let segments_before = pe.wal_segments();
        // Far future: everything is outside the window and checkpointed.
        let removed = pe.advance(ts(10_000_000)).unwrap();
        assert!(removed > 0, "reclaim should delete covered segments");
        assert!(pe.wal_segments() < segments_before);
        pe.close().unwrap();

        let (_, report) = PersistentEngine::open(
            t.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            opts(),
        )
        .unwrap();
        // Replay is bounded by the checkpoint, not the whole history.
        assert!(report.replayed < 500, "replayed {}", report.replayed);
    }

    #[test]
    fn create_refuses_stale_persistence_state() {
        // A reclaimed-empty WAL directory still holds a checkpoint: a
        // fresh engine created there would restart sequences at 0 and
        // the stale checkpoint would shadow its state on recovery.
        let t = TempDir::new("pe");
        crate::checkpoint::write_checkpoint(t.path(), vec![(u(1), u(2), ts(3))], 100).unwrap();
        assert!(PersistentEngine::create(
            t.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            opts()
        )
        .is_err());
        assert!(PersistentConcurrentEngine::create(
            t.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            2,
            opts()
        )
        .is_err());

        // Same for a leftover snapshot base (a stale higher epoch would
        // win the newest-base scan over the freshly published one).
        let t = TempDir::new("pe");
        SnapshotStore::new(t.path())
            .unwrap()
            .publish_base(5, &small_graph())
            .unwrap();
        assert!(PersistentEngine::create(
            t.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            opts()
        )
        .is_err());

        // And for leftover WAL segments alone: create must refuse
        // *before* publishing anything (a base published first would
        // make open() merge the old WAL into a fresh graph).
        let t = TempDir::new("pe");
        {
            let shared = crate::wal::SharedWal::create(t.path(), 2, opts().wal()).unwrap();
            shared.append(EdgeEvent::follow(u(1), u(2), ts(3))).unwrap();
        }
        assert!(PersistentEngine::create(
            t.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            opts()
        )
        .is_err());
        let published: Vec<_> = std::fs::read_dir(t.path())
            .unwrap()
            .filter_map(|e| {
                let name = e.unwrap().file_name().to_string_lossy().into_owned();
                (!name.ends_with(".wal")).then_some(name)
            })
            .collect();
        assert!(
            published.is_empty(),
            "refusal must not publish: {published:?}"
        );
    }

    #[test]
    fn sequence_survives_full_wal_reclamation() {
        let t = TempDir::new("pe");
        let o = PersistOptions {
            segment_bytes: 512,
            checkpoint_every: 50,
            ..opts()
        };
        let mut pe =
            PersistentEngine::create(t.path(), small_graph(), 0, DetectorConfig::example(), o)
                .unwrap();
        for &e in &trace(200) {
            pe.on_event(e).unwrap();
        }
        pe.checkpoint().unwrap();
        let n = pe.next_seq();
        pe.close().unwrap();

        // Idle period, then advance: the checkpoint covers every record
        // and the window has passed, so reclamation empties the log.
        let (mut pe, _) =
            PersistentEngine::open(t.path(), DetectorConfig::example(), CapStrategy::None, o)
                .unwrap();
        pe.advance(ts(10_000_000)).unwrap();
        assert_eq!(pe.wal_segments(), 0, "fully reclaimed");
        assert_eq!(pe.next_seq(), n);
        pe.close().unwrap();

        // Zero segment files on disk: the checkpoint floor must keep the
        // sequence from restarting at 0 below what the checkpoint covers.
        let (mut pe, report) =
            PersistentEngine::open(t.path(), DetectorConfig::example(), CapStrategy::None, o)
                .unwrap();
        assert_eq!(report.next_seq, n, "sequence regressed below checkpoint");
        let extra: Vec<EdgeEvent> = (0..40)
            .map(|i| EdgeEvent::follow(u(11 + i % 2), u(700 + i % 7), ts(10_000_100 + i)))
            .collect();
        for &e in &extra {
            pe.on_event(e).unwrap();
        }
        pe.close().unwrap();

        // Post-reclaim ingest landed above the checkpoint, so the next
        // recovery replays all of it (a regressed sequence would have
        // filtered every record out as "already covered").
        let (_, report) =
            PersistentEngine::open(t.path(), DetectorConfig::example(), CapStrategy::None, o)
                .unwrap();
        assert_eq!(report.replayed, extra.len() as u64);
        assert_eq!(report.next_seq, n + extra.len() as u64);
    }

    #[test]
    fn graph_delta_publishes_and_survives_recovery() {
        let t = TempDir::new("pe");
        let g0 = {
            let mut b = GraphBuilder::new();
            b.add_edge(u(1), u(11));
            b.build()
        };
        let mut pe =
            PersistentEngine::create(t.path(), g0.clone(), 7, DetectorConfig::example(), opts())
                .unwrap();
        let delta = GraphDelta::between(&g0, &small_graph(), 7, 8).unwrap();
        pe.on_event(EdgeEvent::follow(u(11), u(99), ts(10)))
            .unwrap();
        pe.publish_graph_delta(&delta).unwrap();
        assert_eq!(pe.epoch(), 8);
        // Stale delta refused.
        assert!(pe.publish_graph_delta(&delta).is_err());
        let r = pe
            .on_event(EdgeEvent::follow(u(12), u(99), ts(11)))
            .unwrap();
        assert_eq!(r.len(), 2, "refreshed S enables the motif");
        pe.close().unwrap();

        let (reopened, report) = PersistentEngine::open(
            t.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            opts(),
        )
        .unwrap();
        assert_eq!(report.snapshot_epoch, 8);
        assert_eq!(report.deltas_applied, 1);
        assert_eq!(
            reopened.engine().graph().num_follow_edges(),
            small_graph().num_follow_edges()
        );
    }

    /// Edge list of a graph, as raw id pairs.
    fn edges_of(g: &FollowGraph) -> Vec<(u64, u64)> {
        g.iter_forward()
            .flat_map(|(a, ts)| {
                ts.into_iter()
                    .map(move |b| (a.raw(), b.raw()))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    fn build(edges: &[(u64, u64)]) -> FollowGraph {
        let mut b = GraphBuilder::new();
        b.extend(edges.iter().map(|&(a, bb)| (u(a), u(bb))));
        b.build()
    }

    #[test]
    fn long_delta_chain_triggers_rebase_and_drops_orphans() {
        let t = TempDir::new("pe");
        let o = PersistOptions {
            rebase: RebasePolicy {
                max_chain_len: 3,
                max_delta_bytes_ratio: 0.0,
            },
            ..opts()
        };
        // Vertex 9 → 99 exists only in the base; the first delta removes
        // it, orphaning both endpoints in the interner until a rebase.
        let g0 = build(&[(1, 11), (1, 12), (9, 99)]);
        let mut pe =
            PersistentEngine::create(t.path(), g0.clone(), 0, DetectorConfig::example(), o)
                .unwrap();
        let mut current = g0;
        for epoch in 0..3u64 {
            let mut edges = edges_of(&current);
            if epoch == 0 {
                edges.retain(|&(a, _)| a != 9);
            }
            edges.push((10 + epoch, 500 + epoch));
            let next = build(&edges);
            let delta = GraphDelta::between(&current, &next, epoch, epoch + 1).unwrap();
            pe.publish_graph_delta(&delta).unwrap();
            current = next;
        }
        assert_eq!(pe.epoch(), 3);
        // In memory the orphan stays interned (dense ids must not move
        // mid-flight) …
        assert!(pe.engine().graph().dense_of(u(9)).is_some());

        // … but the third publish crossed the chain-length threshold, so
        // the chain was folded into a fresh base and compacted: exactly
        // one base, no deltas, and the orphan is gone from the on-disk
        // interner.
        let store = SnapshotStore::new(t.path()).unwrap();
        assert!(!store
            .should_rebase(RebasePolicy {
                max_chain_len: 1,
                max_delta_bytes_ratio: 0.0,
            })
            .unwrap());
        let loaded = store.load_latest(CapStrategy::None).unwrap();
        assert_eq!(loaded.epoch, 3);
        assert_eq!(loaded.deltas_applied, 0, "chain must be folded away");
        assert!(loaded.graph.dense_of(u(9)).is_none(), "orphan interned");
        assert!(loaded.graph.dense_of(u(99)).is_none(), "orphan interned");
        assert_eq!(loaded.graph.num_follow_edges(), current.num_follow_edges());
        pe.close().unwrap();

        // Recovery picks up the rebased base and continues.
        let (reopened, report) =
            PersistentEngine::open(t.path(), DetectorConfig::example(), CapStrategy::None, o)
                .unwrap();
        assert_eq!(report.snapshot_epoch, 3);
        assert_eq!(report.deltas_applied, 0);
        assert!(reopened.engine().graph().dense_of(u(9)).is_none());
    }

    #[test]
    fn on_events_batch_is_one_durability_unit_with_candidate_parity() {
        let t_single = TempDir::new("pe-s");
        let t_batch = TempDir::new("pe-b");
        let o = PersistOptions {
            segment_bytes: 2048,  // batches straddle segment rolls
            checkpoint_every: 70, // and checkpoint cadence boundaries
            ..opts()
        };
        let events = trace(400);
        let mut single = PersistentEngine::create(
            t_single.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            o,
        )
        .unwrap();
        let mut batched = PersistentEngine::create(
            t_batch.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            o,
        )
        .unwrap();
        let mut want = Vec::new();
        for &e in &events {
            want.extend(single.on_event(e).unwrap());
        }
        let mut got = Vec::new();
        for chunk in events.chunks(33) {
            batched.on_events_into(chunk, &mut got).unwrap();
        }
        assert_eq!(got, want, "batched candidate stream diverges");
        assert_eq!(single.next_seq(), batched.next_seq());
        single.close().unwrap();
        batched.close().unwrap();

        // Both logs recover to identical continuations.
        let (mut rs, rep_s) = PersistentEngine::open(
            t_single.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            o,
        )
        .unwrap();
        let (mut rb, rep_b) = PersistentEngine::open(
            t_batch.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            o,
        )
        .unwrap();
        assert_eq!(rep_s.next_seq, rep_b.next_seq);
        let next = EdgeEvent::follow(u(12), u(900), ts(2_000));
        assert_eq!(rs.on_event(next).unwrap(), rb.on_event(next).unwrap());
    }

    #[test]
    fn concurrent_on_events_matches_single_and_recovers() {
        let o = opts();
        let events = trace(300);
        let t_single = TempDir::new("pce-s");
        let t_batch = TempDir::new("pce-b");
        let single = PersistentConcurrentEngine::create(
            t_single.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            4,
            o,
        )
        .unwrap();
        let batched = PersistentConcurrentEngine::create(
            t_batch.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            4,
            o,
        )
        .unwrap();
        let mut want = Vec::new();
        for &e in &events {
            single.on_event_into(e, &mut want).unwrap();
        }
        let mut got = Vec::new();
        for chunk in events.chunks(29) {
            batched.on_events_into(chunk, &mut got).unwrap();
        }
        assert_eq!(got, want);
        assert_eq!(single.next_seq(), batched.next_seq());
        single.sync().unwrap();
        batched.sync().unwrap();
        drop(single);
        drop(batched);

        // The batched log replays to the same store state.
        let (rs, rep_s) = PersistentConcurrentEngine::open(
            t_single.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            4,
            o,
        )
        .unwrap();
        let (rb, rep_b) = PersistentConcurrentEngine::open(
            t_batch.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            4,
            o,
        )
        .unwrap();
        assert_eq!(rep_s.replayed, rep_b.replayed);
        assert_eq!(
            rs.engine().store().resident_entries(),
            rb.engine().store().resident_entries()
        );
        let next = EdgeEvent::follow(u(12), u(901), ts(2_000));
        assert_eq!(rs.on_event(next).unwrap(), rb.on_event(next).unwrap());
    }

    #[test]
    fn concurrent_engine_round_trip() {
        let t = TempDir::new("pce");
        let pe = PersistentConcurrentEngine::create(
            t.path(),
            small_graph(),
            0,
            DetectorConfig::example(),
            4,
            opts(),
        )
        .unwrap();
        let events = trace(300);
        let mut fired = 0usize;
        for &e in &events {
            fired += pe.on_event(e).unwrap().len();
        }
        assert!(fired > 0);
        pe.checkpoint().unwrap();
        let n = pe.next_seq();
        drop(pe);

        let (recovered, report) = PersistentConcurrentEngine::open(
            t.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            4,
            opts(),
        )
        .unwrap();
        assert_eq!(report.next_seq, n);
        assert_eq!(report.replayed, 0, "checkpoint covered everything");
        assert!(report.checkpoint_entries > 0);

        // Continues identically to an uninterrupted concurrent engine.
        let reference = ConcurrentEngine::new(small_graph(), DetectorConfig::example()).unwrap();
        for &e in &events {
            reference.on_event(e);
        }
        let next = EdgeEvent::follow(u(12), u(901), ts(5_000));
        assert_eq!(recovered.on_event(next).unwrap(), reference.on_event(next));
    }

    #[test]
    fn concurrent_ingest_from_many_threads_then_recover() {
        let t = TempDir::new("pce");
        let pe = std::sync::Arc::new(
            PersistentConcurrentEngine::create(
                t.path(),
                small_graph(),
                0,
                DetectorConfig::example(),
                4,
                opts(),
            )
            .unwrap(),
        );
        let handles: Vec<_> = (0..4u64)
            .map(|w| {
                let pe = std::sync::Arc::clone(&pe);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        // Distinct targets per thread keep per-target order
                        // trivially intact without a routing transport.
                        let c = u(10_000 + w * 1_000 + i % 20);
                        pe.on_event(EdgeEvent::follow(u(11 + i % 2), c, ts(50 + i)))
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pe.next_seq(), 800);
        pe.sync().unwrap();
        drop(std::sync::Arc::try_unwrap(pe).ok().expect("sole owner"));

        let (recovered, report) = PersistentConcurrentEngine::open(
            t.path(),
            DetectorConfig::example(),
            CapStrategy::None,
            4,
            opts(),
        )
        .unwrap();
        assert_eq!(report.replayed, 800);
        assert_eq!(report.next_seq, 800);
        assert_eq!(recovered.engine().store().stats().inserted, 800);
    }
}
