//! The swappable I/O backend every persist write path goes through.
//!
//! [`Vfs`] virtualizes exactly the mutating filesystem operations the
//! durability argument depends on — create/open-for-write, write, fsync
//! (file and directory), truncate, rename, remove — while read paths
//! (segment scans, checkpoint/snapshot loads) stay on `std::fs`: faults
//! of interest fire while *producing* state, and the corruption property
//! tests already cover arbitrary damage on the consuming side.
//!
//! [`StdVfs`] is the default passthrough (a unit struct forwarding to
//! `std::fs`; the virtual call is noise next to the syscall it wraps).
//! [`FaultVfs`] wraps any inner backend and fires a deterministic,
//! seed-keyable [`FaultPlan`] — fail the nth write, fail the nth fsync,
//! tear a write after `k` bytes then error, fail a rename or remove or
//! directory fsync, or just be slow — so every poison/rewind/retry branch
//! in the WAL and the durable-publish paths is reachable on demand
//! instead of only via post-hoc file truncation.

use magicrecs_obs::{recorder, TraceKind};
use parking_lot::Mutex;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// An open, writable file handle behind a [`Vfs`].
///
/// Only the operations the persist write paths use: buffered reads never
/// come through here (scans reopen files read-only via `std::fs`).
pub trait VfsFile: Send {
    /// Writes the whole buffer or fails.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// `fdatasync`-equivalent: flush data (not necessarily metadata).
    fn sync_data(&mut self) -> io::Result<()>;
    /// `fsync`-equivalent: flush data and metadata.
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncates (or extends) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Repositions the write cursor.
    fn seek(&mut self, pos: io::SeekFrom) -> io::Result<u64>;
}

impl VfsFile for std::fs::File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        std::fs::File::sync_data(self)
    }
    fn sync_all(&mut self) -> io::Result<()> {
        std::fs::File::sync_all(self)
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        std::fs::File::set_len(self, len)
    }
    fn seek(&mut self, pos: io::SeekFrom) -> io::Result<u64> {
        io::Seek::seek(self, pos)
    }
}

/// The mutating-filesystem surface of the persistence layer.
///
/// Implementations must be shareable across threads ([`SharedWal`]'s
/// partitions append concurrently behind one handle).
///
/// [`SharedWal`]: crate::SharedWal
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Creates a file that must not already exist (WAL segment roll —
    /// `create_new` is what makes a retried roll detect leftover shells).
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Creates or truncates a file (durable-publish temp files).
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing file for writing (torn-tail repair).
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Atomically renames `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Unlinks a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsyncs a directory so entry mutations inside it (create, rename,
    /// unlink) survive power loss. A no-op where directories cannot be
    /// opened for syncing.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The default backend: a zero-state passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

/// A ready-made `Arc<dyn Vfs>` over [`StdVfs`] — what every
/// non-`_with_vfs` constructor threads through.
pub fn std_vfs() -> Arc<dyn Vfs> {
    Arc::new(StdVfs)
}

impl Vfs for StdVfs {
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = std::fs::OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(path)?;
        Ok(Box::new(f))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(std::fs::File::create(path)?))
    }
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(
            std::fs::OpenOptions::new().write(true).open(path)?,
        ))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        #[cfg(unix)]
        {
            std::fs::File::open(dir)?.sync_all()?;
        }
        #[cfg(not(unix))]
        let _ = dir;
        Ok(())
    }
}

/// The operation classes a [`FaultSpec`] can target. File-handle syncs
/// (`sync_data` and `sync_all`) share one counter — callers choose
/// between them by durability policy, not by failure domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// A file write (`write_all`).
    Write,
    /// A file fsync (`sync_data` or `sync_all`).
    Sync,
    /// A file truncation (`set_len`) — the WAL's rewind-to-boundary.
    SetLen,
    /// Opening a file for writing (`create_new`, `create`, `open_write`).
    Open,
    /// A rename (the durable publish's commit point).
    Rename,
    /// A file unlink (reclaim, pruning, compaction).
    Remove,
    /// A directory fsync.
    SyncDir,
}

const FAULT_OPS: usize = 7;

fn op_index(op: FaultOp) -> usize {
    match op {
        FaultOp::Write => 0,
        FaultOp::Sync => 1,
        FaultOp::SetLen => 2,
        FaultOp::Open => 3,
        FaultOp::Rename => 4,
        FaultOp::Remove => 5,
        FaultOp::SyncDir => 6,
    }
}

fn op_name(op: FaultOp) -> &'static str {
    match op {
        FaultOp::Write => "write",
        FaultOp::Sync => "sync",
        FaultOp::SetLen => "set_len",
        FaultOp::Open => "open",
        FaultOp::Rename => "rename",
        FaultOp::Remove => "remove",
        FaultOp::SyncDir => "sync_dir",
    }
}

/// What happens when a [`FaultSpec`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The operation fails outright with an injected I/O error.
    Fail,
    /// (Writes only.) The first `keep` bytes land, then the write fails —
    /// the torn-write crash signature, mid-operation. Non-write ops
    /// treat this as [`FaultMode::Fail`].
    Torn {
        /// Bytes allowed to reach the file before the error.
        keep: u64,
    },
    /// The operation succeeds after sleeping — degraded, not broken.
    Slow {
        /// Stall length in microseconds.
        micros: u64,
    },
}

/// One scheduled fault: the `nth` (1-based, counted per [`FaultOp`]
/// across the whole [`FaultVfs`]) occurrence of `op` behaves as `mode`.
/// Each spec fires at most once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Operation class the spec targets.
    pub op: FaultOp,
    /// 1-based occurrence count at which it fires.
    pub nth: u64,
    /// What firing does.
    pub mode: FaultMode,
}

/// A deterministic schedule of injected faults.
///
/// Determinism is the point: the persist write paths issue a fixed
/// operation sequence for a fixed input stream, so "the 12th write
/// tears after 5 bytes" reproduces the identical failure every run —
/// and a plan derived from a recorded seed ([`FaultPlan::from_seed`])
/// replays an adversity cell bit for bit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults, in no particular order.
    pub specs: Vec<FaultSpec>,
}

/// Tiny deterministic generator for seed-keyed plans (xorshift64).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

impl FaultPlan {
    /// An empty plan (no faults — [`FaultVfs`] degenerates to its inner
    /// backend).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds `spec` to the plan (builder-style).
    pub fn and(mut self, spec: FaultSpec) -> FaultPlan {
        self.specs.push(spec);
        self
    }

    fn single(op: FaultOp, nth: u64, mode: FaultMode) -> FaultPlan {
        FaultPlan::default().and(FaultSpec { op, nth, mode })
    }

    /// Fail the `nth` file write.
    pub fn fail_nth_write(nth: u64) -> FaultPlan {
        Self::single(FaultOp::Write, nth, FaultMode::Fail)
    }

    /// Tear the `nth` file write after `keep` bytes, then fail it.
    pub fn torn_nth_write(nth: u64, keep: u64) -> FaultPlan {
        Self::single(FaultOp::Write, nth, FaultMode::Torn { keep })
    }

    /// Fail the `nth` file fsync (`sync_data`/`sync_all`).
    pub fn fail_nth_sync(nth: u64) -> FaultPlan {
        Self::single(FaultOp::Sync, nth, FaultMode::Fail)
    }

    /// Fail the `nth` rename.
    pub fn fail_nth_rename(nth: u64) -> FaultPlan {
        Self::single(FaultOp::Rename, nth, FaultMode::Fail)
    }

    /// Fail the `nth` file unlink.
    pub fn fail_nth_remove(nth: u64) -> FaultPlan {
        Self::single(FaultOp::Remove, nth, FaultMode::Fail)
    }

    /// Fail the `nth` directory fsync.
    pub fn fail_nth_sync_dir(nth: u64) -> FaultPlan {
        Self::single(FaultOp::SyncDir, nth, FaultMode::Fail)
    }

    /// Stall the `nth` file write by `micros` microseconds (slow I/O —
    /// succeeds, but late).
    pub fn slow_nth_write(nth: u64, micros: u64) -> FaultPlan {
        Self::single(FaultOp::Write, nth, FaultMode::Slow { micros })
    }

    /// Derives a random-looking but fully seed-determined plan of one or
    /// two faults whose trigger counts fall within `horizon` operations.
    /// The same `(seed, horizon)` always yields the same plan — record
    /// the seed and the run replays bit for bit.
    pub fn from_seed(seed: u64, horizon: u64) -> FaultPlan {
        let mut rng = XorShift(seed | 1);
        let horizon = horizon.max(1);
        let n_specs = 1 + (rng.next() % 2);
        let mut plan = FaultPlan::default();
        for _ in 0..n_specs {
            // Writes and syncs dominate the persist op stream, so weight
            // them to keep seeded plans likely to actually fire.
            let op = match rng.next() % 8 {
                0..=2 => FaultOp::Write,
                3..=4 => FaultOp::Sync,
                5 => FaultOp::Rename,
                6 => FaultOp::Remove,
                _ => FaultOp::SyncDir,
            };
            let nth = 1 + rng.next() % horizon;
            let mode = match (op, rng.next() % 4) {
                (FaultOp::Write, 0 | 1) => FaultMode::Torn {
                    keep: rng.next() % 48,
                },
                (FaultOp::Write, 2) => FaultMode::Slow {
                    micros: rng.next() % 500,
                },
                _ => FaultMode::Fail,
            };
            plan.specs.push(FaultSpec { op, nth, mode });
        }
        plan
    }
}

#[derive(Debug)]
struct FaultState {
    pending: Vec<FaultSpec>,
    counts: [u64; FAULT_OPS],
    fired: Vec<FaultSpec>,
    armed: bool,
}

/// A [`Vfs`] that forwards to [`StdVfs`] but fires a [`FaultPlan`].
///
/// Cloning shares the fault state (counters, pending specs, fired log):
/// hand one clone to the engine as its backend and keep another as the
/// control/inspection handle. A disarmed `FaultVfs`
/// ([`FaultVfs::set_armed`]) counts nothing and fires nothing — arm it
/// after setup I/O (snapshot publish, WAL creation) so the plan's
/// operation counts index into the ingest stream, not the preamble.
#[derive(Debug, Clone)]
pub struct FaultVfs {
    inner: StdVfs,
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// A fault backend over [`StdVfs`], armed from the start.
    pub fn new(plan: FaultPlan) -> FaultVfs {
        FaultVfs {
            inner: StdVfs,
            state: Arc::new(Mutex::new(FaultState {
                pending: plan.specs,
                counts: [0; FAULT_OPS],
                fired: Vec::new(),
                armed: true,
            })),
        }
    }

    /// Like [`FaultVfs::new`] but disarmed — arm with
    /// [`FaultVfs::set_armed`] once setup I/O is done.
    pub fn new_disarmed(plan: FaultPlan) -> FaultVfs {
        let v = FaultVfs::new(plan);
        v.set_armed(false);
        v
    }

    /// Arms or disarms fault checking (disarmed: pure passthrough, no
    /// counting).
    pub fn set_armed(&self, armed: bool) {
        self.state.lock().armed = armed;
    }

    /// The specs that have fired so far, in firing order.
    pub fn fired(&self) -> Vec<FaultSpec> {
        self.state.lock().fired.clone()
    }

    /// How many specs have fired so far.
    pub fn fired_count(&self) -> usize {
        self.state.lock().fired.len()
    }

    /// Scheduled specs that have not fired yet.
    pub fn pending_count(&self) -> usize {
        self.state.lock().pending.len()
    }

    /// Operations of class `op` observed while armed.
    pub fn ops_seen(&self, op: FaultOp) -> u64 {
        self.state.lock().counts[op_index(op)]
    }

    /// Counts one occurrence of `op` and returns the mode to apply if a
    /// pending spec fires on it.
    fn check(&self, op: FaultOp) -> Option<FaultMode> {
        let mut st = self.state.lock();
        if !st.armed {
            return None;
        }
        st.counts[op_index(op)] += 1;
        let n = st.counts[op_index(op)];
        let hit = st.pending.iter().position(|s| s.op == op && s.nth == n)?;
        let spec = st.pending.swap_remove(hit);
        st.fired.push(spec);
        // Name the failing operation in the flight recorder: a dump
        // taken after an adversity cell goes red should say *which*
        // injected fault it tripped over, not just that one fired.
        recorder::record(
            TraceKind::FaultInjected,
            op_name(op),
            n,
            st.fired.len() as u64,
        );
        Some(spec.mode)
    }

    fn injected(op: FaultOp, nth_hint: u64) -> io::Error {
        io::Error::other(format!("injected fault: {} #{nth_hint}", op_name(op)))
    }

    /// Applies `mode` to a non-write operation: `Fail` and `Torn` error,
    /// `Slow` stalls then lets the caller proceed. Returns `Err` when the
    /// operation must not run.
    fn gate(&self, op: FaultOp, mode: Option<FaultMode>) -> io::Result<()> {
        match mode {
            None => Ok(()),
            Some(FaultMode::Slow { micros }) => {
                std::thread::sleep(std::time::Duration::from_micros(micros));
                Ok(())
            }
            Some(FaultMode::Fail | FaultMode::Torn { .. }) => {
                Err(Self::injected(op, self.ops_seen(op)))
            }
        }
    }
}

struct FaultFile {
    inner: Box<dyn VfsFile>,
    ctl: FaultVfs,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.ctl.check(FaultOp::Write) {
            None => self.inner.write_all(buf),
            Some(FaultMode::Slow { micros }) => {
                std::thread::sleep(std::time::Duration::from_micros(micros));
                self.inner.write_all(buf)
            }
            Some(FaultMode::Torn { keep }) => {
                let keep = (keep as usize).min(buf.len());
                // Land the prefix through the real backend, then fail the
                // call: the file now holds a torn frame, exactly like a
                // short write cut off by power loss.
                self.inner.write_all(&buf[..keep])?;
                Err(FaultVfs::injected(
                    FaultOp::Write,
                    self.ctl.ops_seen(FaultOp::Write),
                ))
            }
            Some(FaultMode::Fail) => Err(FaultVfs::injected(
                FaultOp::Write,
                self.ctl.ops_seen(FaultOp::Write),
            )),
        }
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.ctl
            .gate(FaultOp::Sync, self.ctl.check(FaultOp::Sync))?;
        self.inner.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.ctl
            .gate(FaultOp::Sync, self.ctl.check(FaultOp::Sync))?;
        self.inner.sync_all()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.ctl
            .gate(FaultOp::SetLen, self.ctl.check(FaultOp::SetLen))?;
        self.inner.set_len(len)
    }
    fn seek(&mut self, pos: io::SeekFrom) -> io::Result<u64> {
        // Seeks pair with set_len in the rewind path; SetLen is the
        // injectable half.
        self.inner.seek(pos)
    }
}

impl Vfs for FaultVfs {
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.gate(FaultOp::Open, self.check(FaultOp::Open))?;
        Ok(Box::new(FaultFile {
            inner: self.inner.create_new(path)?,
            ctl: self.clone(),
        }))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.gate(FaultOp::Open, self.check(FaultOp::Open))?;
        Ok(Box::new(FaultFile {
            inner: self.inner.create(path)?,
            ctl: self.clone(),
        }))
    }
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.gate(FaultOp::Open, self.check(FaultOp::Open))?;
        Ok(Box::new(FaultFile {
            inner: self.inner.open_write(path)?,
            ctl: self.clone(),
        }))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate(FaultOp::Rename, self.check(FaultOp::Rename))?;
        self.inner.rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.gate(FaultOp::Remove, self.check(FaultOp::Remove))?;
        self.inner.remove_file(path)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.gate(FaultOp::SyncDir, self.check(FaultOp::SyncDir))?;
        self.inner.sync_dir(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    #[test]
    fn std_vfs_round_trips_and_create_new_refuses_existing() {
        let t = TempDir::new("vfs");
        let vfs = StdVfs;
        let p = t.path().join("a.bin");
        let mut f = vfs.create_new(&p).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(std::fs::read(&p).unwrap(), b"hello");
        assert!(vfs.create_new(&p).is_err(), "create_new over existing");
        let q = t.path().join("b.bin");
        vfs.rename(&p, &q).unwrap();
        vfs.sync_dir(t.path()).unwrap();
        vfs.remove_file(&q).unwrap();
        assert!(!q.exists());
    }

    #[test]
    fn fault_vfs_fires_each_spec_once_at_its_count() {
        let t = TempDir::new("vfs");
        let fv = FaultVfs::new(FaultPlan::fail_nth_write(2));
        let mut f = fv.create(&t.path().join("x")).unwrap();
        f.write_all(b"one").unwrap();
        let err = f.write_all(b"two").unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        // One-shot: the third write sails through.
        f.write_all(b"three").unwrap();
        assert_eq!(fv.fired_count(), 1);
        assert_eq!(fv.pending_count(), 0);
        assert_eq!(fv.ops_seen(FaultOp::Write), 3);
        assert_eq!(
            std::fs::read(t.path().join("x")).unwrap(),
            b"onethree",
            "failed write landed nothing"
        );
    }

    #[test]
    fn torn_write_lands_prefix_then_errors() {
        let t = TempDir::new("vfs");
        let fv = FaultVfs::new(FaultPlan::torn_nth_write(1, 4));
        let mut f = fv.create(&t.path().join("x")).unwrap();
        assert!(f.write_all(b"abcdefgh").is_err());
        assert_eq!(std::fs::read(t.path().join("x")).unwrap(), b"abcd");
    }

    #[test]
    fn disarmed_backend_neither_counts_nor_fires() {
        let t = TempDir::new("vfs");
        let fv = FaultVfs::new_disarmed(FaultPlan::fail_nth_write(1));
        let mut f = fv.create(&t.path().join("x")).unwrap();
        f.write_all(b"a").unwrap();
        assert_eq!(fv.ops_seen(FaultOp::Write), 0);
        fv.set_armed(true);
        assert!(f.write_all(b"b").is_err());
        assert_eq!(fv.fired_count(), 1);
    }

    #[test]
    fn sync_rename_remove_and_dir_faults_fire() {
        let t = TempDir::new("vfs");
        let plan = FaultPlan::fail_nth_sync(1)
            .and(FaultSpec {
                op: FaultOp::Rename,
                nth: 1,
                mode: FaultMode::Fail,
            })
            .and(FaultSpec {
                op: FaultOp::Remove,
                nth: 1,
                mode: FaultMode::Fail,
            })
            .and(FaultSpec {
                op: FaultOp::SyncDir,
                nth: 1,
                mode: FaultMode::Fail,
            });
        let fv = FaultVfs::new(plan);
        let p = t.path().join("x");
        let mut f = fv.create(&p).unwrap();
        f.write_all(b"v").unwrap();
        assert!(f.sync_data().is_err());
        f.sync_all().unwrap(); // spec consumed by the sync_data attempt
        assert!(fv.rename(&p, &t.path().join("y")).is_err());
        assert!(fv.remove_file(&p).is_err());
        assert!(fv.sync_dir(t.path()).is_err());
        assert!(p.exists(), "failed rename/remove must not mutate");
        assert_eq!(fv.fired_count(), 4);
    }

    #[test]
    fn slow_mode_succeeds() {
        let t = TempDir::new("vfs");
        let fv = FaultVfs::new(FaultPlan::slow_nth_write(1, 10));
        let mut f = fv.create(&t.path().join("x")).unwrap();
        f.write_all(b"late").unwrap();
        assert_eq!(std::fs::read(t.path().join("x")).unwrap(), b"late");
        assert_eq!(fv.fired_count(), 1);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_vary_by_seed() {
        let a = FaultPlan::from_seed(42, 100);
        let b = FaultPlan::from_seed(42, 100);
        assert_eq!(a, b);
        assert!(!a.specs.is_empty());
        assert!(a.specs.iter().all(|s| s.nth >= 1 && s.nth <= 100));
        let differs = (0..50u64).any(|s| FaultPlan::from_seed(s, 100) != a);
        assert!(differs, "seeds must actually vary the plan");
    }
}
