//! The on-disk home of `S`: full-graph bases plus delta chains.
//!
//! The offline pipeline publishes a **base** snapshot
//! (`s-base-<epoch>.mgrs`, the [`magicrecs_graph::io`] format)
//! occasionally and cheap **deltas** (`s-delta-<base>-<target>.mgrd`,
//! [`magicrecs_graph::GraphDelta`]) in between. Loading finds the newest
//! base and folds the contiguous delta chain on top with
//! [`magicrecs_graph::FollowGraph::apply_delta`] — each link costs its
//! touched rows, not a world rebuild. A delta whose base epoch has no
//! chain back to the loaded base is a gap (a missing file) and refuses to
//! load as [`Error::Corrupt`]; ambiguous chains (two deltas sharing a
//! base) are refused the same way.

use crate::vfs::{std_vfs, Vfs};
use magicrecs_graph::{load_delta, load_graph, save_delta, save_graph};
use magicrecs_graph::{CapStrategy, FollowGraph, GraphDelta};
use magicrecs_types::{Error, Result};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A delta file entry discovered by the directory scan.
type DeltaFile = (u64, u64, PathBuf);

/// When a delta chain should be folded into a fresh base (rebase
/// cadence). Nothing rebases while both thresholds hold; crossing either
/// one makes [`SnapshotStore::should_rebase`] answer `true`, and
/// `PersistentEngine::publish_graph_delta` then republishes the current
/// graph as a base and [`SnapshotStore::compact`]s the superseded files —
/// which is also the moment orphaned (delta-removed, edge-less) vertices
/// leave the on-disk interner: a base is saved from its edge rows, so a
/// reload after rebase no longer interns them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebasePolicy {
    /// Rebase once the chain holds this many delta links (`0` disables
    /// the length check). Each link is a startup-apply cost, so this
    /// bounds recovery time.
    pub max_chain_len: usize,
    /// Rebase once the chain's delta files total this fraction of the
    /// base file's size (`0.0` disables the size check). Past ~1× the
    /// chain costs more disk and apply time than the base it amends.
    pub max_delta_bytes_ratio: f64,
}

impl RebasePolicy {
    /// Never rebase automatically (the operator compacts by hand).
    pub const DISABLED: RebasePolicy = RebasePolicy {
        max_chain_len: 0,
        max_delta_bytes_ratio: 0.0,
    };
}

impl Default for RebasePolicy {
    fn default() -> Self {
        RebasePolicy {
            max_chain_len: 8,
            max_delta_bytes_ratio: 0.5,
        }
    }
}

/// A directory of `S` snapshot bases and deltas.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
}

/// What [`SnapshotStore::load_latest`] reconstructed.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The reconstructed graph (base + folded deltas).
    pub graph: FollowGraph,
    /// The epoch the graph represents (base epoch + chain).
    pub epoch: u64,
    /// How many chain links were applied on top of the base.
    pub deltas_applied: usize,
}

impl SnapshotStore {
    /// Opens (creating if missing) the snapshot directory.
    pub fn new(dir: &Path) -> Result<SnapshotStore> {
        Self::with_vfs(dir, std_vfs())
    }

    /// [`SnapshotStore::new`] on an explicit I/O backend: publishes and
    /// compaction go through it (loads are read-only and stay on
    /// `std::fs`).
    pub fn with_vfs(dir: &Path, vfs: Arc<dyn Vfs>) -> Result<SnapshotStore> {
        std::fs::create_dir_all(dir).map_err(|e| Error::Io(format!("snapshot dir: {e}")))?;
        Ok(SnapshotStore {
            dir: dir.to_path_buf(),
            vfs,
        })
    }

    fn base_path(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("s-base-{epoch:020}.mgrs"))
    }

    fn delta_path(&self, base: u64, target: u64) -> PathBuf {
        self.dir
            .join(format!("s-delta-{base:020}-{target:020}.mgrd"))
    }

    /// Publishes a full base snapshot for `epoch` (temp-file, fsync,
    /// atomic rename — a new base makes older bases and deltas eligible
    /// for [`SnapshotStore::compact`], so it must be durable before it
    /// supersedes them).
    pub fn publish_base(&self, epoch: u64, graph: &FollowGraph) -> Result<()> {
        let final_path = self.base_path(epoch);
        let tmp = final_path.with_extension("mgrs.tmp");
        let mut buf = Vec::new();
        save_graph(graph, &mut buf)?;
        crate::fsutil::publish_durably(self.vfs.as_ref(), &tmp, &final_path, &buf)
    }

    /// Publishes one delta link (temp-file, fsync, atomic rename).
    pub fn publish_delta(&self, delta: &GraphDelta) -> Result<()> {
        let final_path = self.delta_path(delta.base_epoch, delta.target_epoch);
        let tmp = final_path.with_extension("mgrd.tmp");
        let mut buf = Vec::new();
        save_delta(delta, &mut buf)?;
        crate::fsutil::publish_durably(self.vfs.as_ref(), &tmp, &final_path, &buf)
    }

    fn scan(&self) -> Result<(Vec<u64>, Vec<DeltaFile>)> {
        let mut bases = Vec::new();
        let mut deltas = Vec::new();
        let entries =
            std::fs::read_dir(&self.dir).map_err(|e| Error::Io(format!("snapshot dir: {e}")))?;
        for entry in entries {
            let entry = entry.map_err(|e| Error::Io(format!("snapshot dir: {e}")))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(epoch) = name
                .strip_prefix("s-base-")
                .and_then(|s| s.strip_suffix(".mgrs"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                bases.push(epoch);
            } else if let Some((base, target)) = name
                .strip_prefix("s-delta-")
                .and_then(|s| s.strip_suffix(".mgrd"))
                .and_then(|s| s.split_once('-'))
                .and_then(|(b, t)| Some((b.parse::<u64>().ok()?, t.parse::<u64>().ok()?)))
            {
                deltas.push((base, target, entry.path()));
            }
        }
        bases.sort_unstable();
        Ok((bases, deltas))
    }

    /// Whether the directory already holds any base or delta files —
    /// creation paths refuse such directories (a stale higher-epoch base
    /// would shadow a freshly published one on the next load).
    pub(crate) fn has_artifacts(&self) -> Result<bool> {
        let (bases, deltas) = self.scan()?;
        Ok(!bases.is_empty() || !deltas.is_empty())
    }

    /// Reconstructs the newest snapshot: load the highest-epoch base,
    /// then fold the delta chain rooted at it. `cap` is the load-time
    /// influencer cap for the base ([`magicrecs_graph::io::load_graph`]);
    /// deltas are produced against the already-capped graph upstream.
    pub fn load_latest(&self, cap: CapStrategy) -> Result<LoadedSnapshot> {
        let (bases, deltas) = self.scan()?;
        let Some(&base_epoch) = bases.last() else {
            return Err(Error::Corrupt(format!(
                "no base snapshot in {}",
                self.dir.display()
            )));
        };
        let bytes = std::fs::read(self.base_path(base_epoch))
            .map_err(|e| Error::Io(format!("snapshot read: {e}")))?;
        let mut graph = load_graph(&mut bytes.as_slice(), cap)?;

        // Index the chain: base epoch → delta file. Two deltas sharing a
        // base are ambiguous; refuse rather than guess.
        let mut by_base: BTreeMap<u64, (u64, PathBuf)> = BTreeMap::new();
        for (base, target, path) in deltas.iter().filter(|&&(b, _, _)| b >= base_epoch) {
            if by_base.insert(*base, (*target, path.clone())).is_some() {
                return Err(Error::Corrupt(format!(
                    "ambiguous delta chain: two deltas with base epoch {base}"
                )));
            }
        }

        let mut epoch = base_epoch;
        let mut applied = 0usize;
        while let Some((target, path)) = by_base.remove(&epoch) {
            let bytes = std::fs::read(&path).map_err(|e| Error::Io(format!("delta read: {e}")))?;
            let delta = load_delta(&mut bytes.as_slice())?;
            if delta.base_epoch != epoch || delta.target_epoch != target {
                return Err(Error::Corrupt(format!(
                    "delta {} carries epochs {}→{} but its name says {}→{}",
                    path.display(),
                    delta.base_epoch,
                    delta.target_epoch,
                    epoch,
                    target
                )));
            }
            graph = graph.apply_delta(&delta)?;
            epoch = target;
            applied += 1;
        }
        if let Some((&orphan_base, _)) = by_base.iter().next() {
            return Err(Error::Corrupt(format!(
                "gap in delta chain: no path from epoch {epoch} to the delta based at \
                 {orphan_base}"
            )));
        }
        Ok(LoadedSnapshot {
            graph,
            epoch,
            deltas_applied: applied,
        })
    }

    /// Whether the current delta chain has outgrown `policy` and should
    /// be folded into a fresh base (see [`RebasePolicy`]). Walks file
    /// names and sizes only — no snapshot bytes are decoded. A directory
    /// with no base (or no chain) never wants a rebase.
    pub fn should_rebase(&self, policy: RebasePolicy) -> Result<bool> {
        if policy == RebasePolicy::DISABLED {
            return Ok(false);
        }
        let (bases, deltas) = self.scan()?;
        let Some(&base_epoch) = bases.last() else {
            return Ok(false);
        };
        let file_len = |p: &Path| -> Result<u64> {
            Ok(std::fs::metadata(p)
                .map_err(|e| Error::Io(format!("snapshot stat: {e}")))?
                .len())
        };
        // Follow the chain rooted at the newest base, by name. Ambiguous
        // chains (two deltas off one epoch) are a load-time error; here
        // the first match is enough — the walk only sizes the chain.
        let mut by_base: BTreeMap<u64, (u64, PathBuf)> = BTreeMap::new();
        for (base, target, path) in deltas.into_iter().filter(|&(b, _, _)| b >= base_epoch) {
            by_base.entry(base).or_insert((target, path));
        }
        let mut epoch = base_epoch;
        let mut chain_len = 0usize;
        let mut delta_bytes = 0u64;
        while let Some((target, path)) = by_base.remove(&epoch) {
            chain_len += 1;
            delta_bytes += file_len(&path)?;
            epoch = target;
        }
        if policy.max_chain_len > 0 && chain_len >= policy.max_chain_len {
            return Ok(true);
        }
        if policy.max_delta_bytes_ratio > 0.0 && chain_len > 0 {
            let base_bytes = file_len(&self.base_path(base_epoch))?;
            if delta_bytes as f64 >= policy.max_delta_bytes_ratio * base_bytes as f64 {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Deletes bases older than the newest and deltas that can no longer
    /// participate in its chain. Returns files removed.
    pub fn compact(&self) -> Result<usize> {
        let (bases, deltas) = self.scan()?;
        let Some(&latest) = bases.last() else {
            return Ok(0);
        };
        let mut removed = 0;
        for &epoch in bases.iter().filter(|&&e| e < latest) {
            self.vfs
                .remove_file(&self.base_path(epoch))
                .map_err(|e| Error::Io(format!("snapshot compact: {e}")))?;
            removed += 1;
        }
        for (base, _, path) in deltas.iter().filter(|&&(b, _, _)| b < latest) {
            let _ = base;
            self.vfs
                .remove_file(path)
                .map_err(|e| Error::Io(format!("snapshot compact: {e}")))?;
            removed += 1;
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use magicrecs_graph::GraphBuilder;
    use magicrecs_types::UserId;

    fn u(n: u64) -> UserId {
        UserId(n)
    }

    fn build(edges: &[(u64, u64)]) -> FollowGraph {
        let mut b = GraphBuilder::new();
        b.extend(edges.iter().map(|&(a, bb)| (u(a), u(bb))));
        b.build()
    }

    fn rows(g: &FollowGraph) -> Vec<(UserId, Vec<UserId>)> {
        g.iter_forward().collect()
    }

    #[test]
    fn base_only_roundtrip() {
        let t = TempDir::new("snap");
        let store = SnapshotStore::new(t.path()).unwrap();
        let g = build(&[(1, 11), (2, 12)]);
        store.publish_base(5, &g).unwrap();
        let loaded = store.load_latest(CapStrategy::None).unwrap();
        assert_eq!(loaded.epoch, 5);
        assert_eq!(loaded.deltas_applied, 0);
        assert_eq!(rows(&loaded.graph), rows(&g));
    }

    #[test]
    fn chain_folds_in_order() {
        let t = TempDir::new("snap");
        let store = SnapshotStore::new(t.path()).unwrap();
        let g0 = build(&[(1, 11)]);
        let g1 = build(&[(1, 11), (2, 12)]);
        let g2 = build(&[(2, 12), (3, 13)]);
        store.publish_base(0, &g0).unwrap();
        store
            .publish_delta(&GraphDelta::between(&g0, &g1, 0, 1).unwrap())
            .unwrap();
        store
            .publish_delta(&GraphDelta::between(&g1, &g2, 1, 2).unwrap())
            .unwrap();
        let loaded = store.load_latest(CapStrategy::None).unwrap();
        assert_eq!(loaded.epoch, 2);
        assert_eq!(loaded.deltas_applied, 2);
        assert_eq!(rows(&loaded.graph), rows(&g2));
    }

    #[test]
    fn newest_base_wins_and_its_chain_applies() {
        let t = TempDir::new("snap");
        let store = SnapshotStore::new(t.path()).unwrap();
        let old = build(&[(9, 99)]);
        let g0 = build(&[(1, 11)]);
        let g1 = build(&[(1, 11), (1, 12)]);
        store.publish_base(3, &old).unwrap();
        store.publish_base(10, &g0).unwrap();
        store
            .publish_delta(&GraphDelta::between(&g0, &g1, 10, 11).unwrap())
            .unwrap();
        let loaded = store.load_latest(CapStrategy::None).unwrap();
        assert_eq!(loaded.epoch, 11);
        assert_eq!(rows(&loaded.graph), rows(&g1));
        // Compact removes the stale base.
        assert!(store.compact().unwrap() >= 1);
        let still = store.load_latest(CapStrategy::None).unwrap();
        assert_eq!(still.epoch, 11);
    }

    #[test]
    fn gap_in_chain_is_refused() {
        let t = TempDir::new("snap");
        let store = SnapshotStore::new(t.path()).unwrap();
        let g0 = build(&[(1, 11)]);
        let g1 = build(&[(1, 11), (2, 12)]);
        let g2 = build(&[(2, 12)]);
        store.publish_base(0, &g0).unwrap();
        // Chain link 0→1 is missing; only 1→2 exists.
        store
            .publish_delta(&GraphDelta::between(&g1, &g2, 1, 2).unwrap())
            .unwrap();
        let err = store.load_latest(CapStrategy::None).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("gap"), "{err}");
    }

    #[test]
    fn should_rebase_tracks_chain_length_and_bytes() {
        let t = TempDir::new("snap");
        let store = SnapshotStore::new(t.path()).unwrap();
        let len_only = RebasePolicy {
            max_chain_len: 3,
            max_delta_bytes_ratio: 0.0,
        };
        // No base, no chain: never.
        assert!(!store.should_rebase(len_only).unwrap());
        assert!(!store.should_rebase(RebasePolicy::default()).unwrap());

        let mut graphs = vec![build(&[(1, 11), (2, 12), (3, 13), (4, 14)])];
        store.publish_base(0, &graphs[0]).unwrap();
        assert!(!store.should_rebase(len_only).unwrap());
        for i in 1..=3u64 {
            let next = {
                let mut edges: Vec<(u64, u64)> = graphs[i as usize - 1]
                    .iter_forward()
                    .flat_map(|(a, ts)| {
                        ts.into_iter()
                            .map(move |b| (a.raw(), b.raw()))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                edges.push((100 + i, 200 + i));
                build(&edges)
            };
            store
                .publish_delta(
                    &GraphDelta::between(&graphs[i as usize - 1], &next, i - 1, i).unwrap(),
                )
                .unwrap();
            graphs.push(next);
            let want = i as usize >= 3;
            assert_eq!(
                store.should_rebase(len_only).unwrap(),
                want,
                "chain length {i}"
            );
        }
        // The bytes-ratio check fires for a chain whose files rival the
        // base: a tiny base with three deltas easily crosses 0.1×.
        let ratio_only = RebasePolicy {
            max_chain_len: 0,
            max_delta_bytes_ratio: 0.1,
        };
        assert!(store.should_rebase(ratio_only).unwrap());
        // DISABLED short-circuits no matter what the directory holds.
        assert!(!store.should_rebase(RebasePolicy::DISABLED).unwrap());
        // After compacting onto a fresh base the chain is gone.
        store.publish_base(3, &graphs[3]).unwrap();
        store.compact().unwrap();
        assert!(!store.should_rebase(len_only).unwrap());
        assert!(!store.should_rebase(ratio_only).unwrap());
    }

    #[test]
    fn empty_dir_is_an_error() {
        let t = TempDir::new("snap");
        let store = SnapshotStore::new(t.path()).unwrap();
        assert!(store.load_latest(CapStrategy::None).is_err());
    }

    #[test]
    fn corrupt_base_is_refused() {
        let t = TempDir::new("snap");
        let store = SnapshotStore::new(t.path()).unwrap();
        std::fs::write(t.path().join("s-base-00000000000000000001.mgrs"), b"junk").unwrap();
        let err = store.load_latest(CapStrategy::None).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
    }
}
