//! Process-wide registry handles for the persistence tier.
//!
//! All persist metrics live on the global [`magicrecs_obs`] registry
//! (WALs and checkpoint drivers are per-process infrastructure, not
//! per-engine state), lazily registered on first touch so a process
//! that never persists pays nothing. Handles are cached in
//! [`OnceLock`]s: the hot path (`append_batch_with_first_seq`) costs
//! one pointer load plus the striped-counter RMWs, never a registry
//! lookup.

use magicrecs_obs as obs;
use std::sync::OnceLock;

/// WAL hot-path handles: append/record/fsync counters plus the group
/// commit batch-size histogram the paper's group-commit story is
/// measured by.
pub(crate) struct WalMetrics {
    /// `append_batch_with_first_seq` invocations (durability units).
    pub append_calls: obs::Counter,
    /// Individual records appended across all calls.
    pub records: obs::Counter,
    /// Successful `fdatasync`s of active segments.
    pub fsyncs: obs::Counter,
    /// Times any WAL poisoned itself (half-committed batch, failed
    /// fsync, unrewindable short write).
    pub poisons: obs::Counter,
    /// Events per append call — the group-commit batch-size sketch.
    pub batch_events: obs::Histogram,
}

pub(crate) fn wal() -> &'static WalMetrics {
    static M: OnceLock<WalMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = obs::global();
        WalMetrics {
            append_calls: r.counter("wal_append_calls"),
            records: r.counter("wal_records"),
            fsyncs: r.counter("wal_fsyncs"),
            poisons: r.counter("wal_poisons"),
            batch_events: r.histogram("wal_batch_events"),
        }
    })
}

/// Checkpoint-writer handles: file counts, byte volumes, and the
/// chain's delta-to-full byte ratio (the same quantity
/// [`crate::snapshot::RebasePolicy`] rebases on).
pub(crate) struct CkptMetrics {
    /// Full checkpoints published.
    pub full_writes: obs::Counter,
    /// Bytes across all full checkpoints published.
    pub full_bytes: obs::Counter,
    /// Delta (incremental) checkpoints published.
    pub delta_writes: obs::Counter,
    /// Bytes across all delta checkpoints published.
    pub delta_bytes: obs::Counter,
    /// Current chain's delta-bytes / full-bytes ratio, in percent —
    /// the dirty ratio the rebase policy compares against. Reset to 0
    /// by every full checkpoint.
    pub dirty_ratio_pct: obs::Gauge,
}

pub(crate) fn ckpt() -> &'static CkptMetrics {
    static M: OnceLock<CkptMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = obs::global();
        CkptMetrics {
            full_writes: r.counter("checkpoint_full_writes"),
            full_bytes: r.counter("checkpoint_full_bytes"),
            delta_writes: r.counter("checkpoint_delta_writes"),
            delta_bytes: r.counter("checkpoint_delta_bytes"),
            dirty_ratio_pct: r.gauge("checkpoint_dirty_ratio_pct"),
        }
    })
}

/// Replication-shipping handles: the byte/record volume a follower has
/// pulled, duplicates its decoder absorbed on resends, and the gap
/// refusals that mark an unrecoverable ship stream.
pub(crate) struct ReplicaMetrics {
    /// Raw segment bytes fed through [`crate::replica::ShipDecoder`]s.
    pub ship_bytes: obs::Counter,
    /// Records the decoders delivered exactly once.
    pub ship_records: obs::Counter,
    /// Records skipped as duplicate resends (reconnect replays).
    pub dup_skipped: obs::Counter,
    /// Typed [`magicrecs_types::Error::ReplicaGap`] refusals.
    pub gaps: obs::Counter,
}

pub(crate) fn replica() -> &'static ReplicaMetrics {
    static M: OnceLock<ReplicaMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = obs::global();
        ReplicaMetrics {
            ship_bytes: r.counter("replica_ship_bytes"),
            ship_records: r.counter("replica_ship_records"),
            dup_skipped: r.counter("replica_ship_dup_skipped"),
            gaps: r.counter("replica_gaps"),
        }
    })
}
