//! Group-commit differential properties: the batched WAL and persistent
//! engines pinned to their single-event twins on arbitrary inputs.
//!
//! The load-bearing claims, each enforced here:
//!
//! * `Wal::append_batch` produces **byte-identical segment files** (same
//!   names, same bytes) as N single `append`s, across fsync policies,
//!   batch splits, and segment rolls — while issuing no *more* fsyncs
//!   than the single path (a batch is one durability unit).
//! * `SharedWal::append_batch` preserves each partition's event stream
//!   exactly (global sequence runs may differ — replay orders by
//!   sequence, and per-target order is the semantic contract).
//! * `PersistentEngine::on_events` emits the single-path candidate
//!   stream and recovers to the same continuation, including batches
//!   that straddle segment rolls and the checkpoint cadence.

use magicrecs_graph::{CapStrategy, FollowGraph, GraphBuilder};
use magicrecs_persist::wal::replay;
use magicrecs_persist::{
    FsyncPolicy, PersistOptions, PersistentEngine, RebasePolicy, SharedWal, TempDir, Wal,
    WalOptions,
};
use magicrecs_types::{DetectorConfig, EdgeEvent, Timestamp, UserId};
use proptest::prelude::*;
use std::path::Path;

fn u(n: u64) -> UserId {
    UserId(n)
}

fn events_from(actions: Vec<(u64, u64, u64, bool)>) -> Vec<EdgeEvent> {
    let mut events: Vec<EdgeEvent> = actions
        .into_iter()
        .map(|(src, dst, at, unf)| {
            let t = Timestamp::from_secs(at);
            if unf {
                EdgeEvent::unfollow(u(src), u(dst), t)
            } else {
                EdgeEvent::follow(u(src), u(dst), t)
            }
        })
        .collect();
    events.sort_by_key(|e| e.created_at);
    events
}

/// Segment files (name, bytes) under `dir` for `prefix`, sorted.
fn segment_bytes(dir: &Path, prefix: &str) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let e = e.unwrap();
            let name = e.file_name().to_string_lossy().into_owned();
            (name.starts_with(prefix) && name.ends_with(".wal"))
                .then(|| (name, std::fs::read(e.path()).unwrap()))
        })
        .collect();
    out.sort();
    out
}

fn apply_in_chunks(events: &[EdgeEvent], splits: &[usize], mut apply: impl FnMut(&[EdgeEvent])) {
    let mut i = 0;
    let mut s = 0;
    while i < events.len() {
        let take = splits[s % splits.len()].min(events.len() - i);
        apply(&events[i..i + take]);
        i += take;
        s += 1;
    }
}

fn small_graph() -> FollowGraph {
    let mut g = GraphBuilder::new();
    for a in 0..8u64 {
        for b in 0..4u64 {
            g.add_edge(u(a), u(25 + (a + b) % 8));
        }
    }
    g.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn wal_group_commit_byte_parity(
        actions in proptest::collection::vec((0u64..50, 0u64..50, 0u64..5_000, prop::bool::ANY), 1..250),
        splits in proptest::collection::vec(1usize..40, 1..12),
        segment_bytes_opt in 96u64..2_048,
        policy_pick in 0usize..4,
    ) {
        let events = events_from(actions);
        let opts = WalOptions {
            fsync: [
                FsyncPolicy::Never,
                FsyncPolicy::EveryN(3),
                FsyncPolicy::EveryN(64),
                FsyncPolicy::Always,
            ][policy_pick],
            segment_bytes: segment_bytes_opt,
        };

        let t_single = TempDir::new("wal-prop-s");
        let mut single = Wal::create(t_single.path(), "wal-", opts).unwrap();
        for &e in &events {
            single.append(e).unwrap();
        }
        let single_syncs = single.sync_count();
        single.close().unwrap();

        let t_batch = TempDir::new("wal-prop-b");
        let mut batched = Wal::create(t_batch.path(), "wal-", opts).unwrap();
        apply_in_chunks(&events, &splits, |chunk| {
            batched.append_batch(chunk).unwrap();
        });
        prop_assert_eq!(batched.next_seq(), events.len() as u64);
        // Group commit: a batch is one durability unit, so the batched
        // path never syncs more often than the single path.
        prop_assert!(batched.sync_count() <= single_syncs, "extra syncs appeared");
        batched.close().unwrap();

        prop_assert_eq!(
            segment_bytes(t_single.path(), "wal-"),
            segment_bytes(t_batch.path(), "wal-"),
            "segment files diverged"
        );
        // And the batched log replays every record in order.
        let mut seqs = Vec::new();
        replay(t_batch.path(), "wal-", 0, |r| seqs.push(r.seq)).unwrap();
        prop_assert_eq!(seqs, (0..events.len() as u64).collect::<Vec<u64>>());
    }

    #[test]
    fn shared_wal_group_commit_stream_parity(
        actions in proptest::collection::vec((0u64..50, 0u64..50, 0u64..5_000, prop::bool::ANY), 1..250),
        splits in proptest::collection::vec(1usize..40, 1..12),
        parts in 1usize..5,
    ) {
        let events = events_from(actions);
        let opts = WalOptions {
            fsync: FsyncPolicy::Never,
            segment_bytes: 512,
        };

        let t_single = TempDir::new("swal-prop-s");
        let single = SharedWal::create(t_single.path(), parts, opts).unwrap();
        for &e in &events {
            single.append(e).unwrap();
        }
        single.sync_all().unwrap();
        drop(single);

        let t_batch = TempDir::new("swal-prop-b");
        let batched = SharedWal::create(t_batch.path(), parts, opts).unwrap();
        apply_in_chunks(&events, &splits, |chunk| {
            batched.append_batch(chunk).unwrap();
        });
        prop_assert_eq!(batched.next_seq(), events.len() as u64);
        batched.sync_all().unwrap();
        drop(batched);

        // Per-partition event streams are identical; merged replay is
        // complete and sequence-ordered.
        for p in 0..parts {
            let prefix = format!("wal-p{p}-");
            let mut want = Vec::new();
            replay(t_single.path(), &prefix, 0, |r| want.push(r.event)).unwrap();
            let mut got = Vec::new();
            replay(t_batch.path(), &prefix, 0, |r| got.push(r.event)).unwrap();
            prop_assert_eq!(got, want, "partition {} stream diverged", p);
        }
        let mut n = 0u64;
        let mut last: Option<u64> = None;
        let stats = SharedWal::replay_merged(t_batch.path(), parts, 0, |r| {
            assert!(last.is_none_or(|l| l < r.seq), "merged replay out of order");
            last = Some(r.seq);
            n += 1;
        }).unwrap();
        prop_assert_eq!(n, events.len() as u64);
        prop_assert!(!stats.torn_tail);
    }

    #[test]
    fn persistent_engine_batch_parity_and_recovery(
        actions in proptest::collection::vec((25u64..33, 40u64..46, 0u64..500, prop::bool::ANY), 1..180),
        splits in proptest::collection::vec(1usize..30, 1..10),
        checkpoint_every in 1u64..60,
    ) {
        let events = events_from(actions);
        let cfg = DetectorConfig::example().with_tau(magicrecs_types::Duration::from_secs(200));
        let o = PersistOptions {
            fsync: FsyncPolicy::Never,
            segment_bytes: 1 << 10, // batches straddle rolls
            checkpoint_every,      // and the checkpoint cadence
            rebase: RebasePolicy::DISABLED,
        };

        let t_single = TempDir::new("pe-prop-s");
        let t_batch = TempDir::new("pe-prop-b");
        let mut single =
            PersistentEngine::create(t_single.path(), small_graph(), 0, cfg, o).unwrap();
        let mut batched =
            PersistentEngine::create(t_batch.path(), small_graph(), 0, cfg, o).unwrap();

        let mut want = Vec::new();
        for &e in &events {
            want.extend(single.on_event(e).unwrap());
        }
        let mut got = Vec::new();
        apply_in_chunks(&events, &splits, |chunk| {
            batched.on_events_into(chunk, &mut got).unwrap();
        });
        prop_assert_eq!(got, want, "candidate stream diverged");
        prop_assert_eq!(single.next_seq(), batched.next_seq());
        single.close().unwrap();
        batched.close().unwrap();

        // Both directories recover to the same continuation.
        let (mut rs, _) =
            PersistentEngine::open(t_single.path(), cfg, CapStrategy::None, o).unwrap();
        let (mut rb, rep) =
            PersistentEngine::open(t_batch.path(), cfg, CapStrategy::None, o).unwrap();
        prop_assert_eq!(rep.next_seq, events.len() as u64);
        for i in 0..3u64 {
            let probe = EdgeEvent::follow(u(25 + i), u(40 + i), Timestamp::from_secs(600 + i));
            prop_assert_eq!(rs.on_event(probe).unwrap(), rb.on_event(probe).unwrap());
        }
    }
}
