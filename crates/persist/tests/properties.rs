//! Property tests shared across the persistence codecs: round-trips for
//! arbitrary inputs, and corruption injection (bit flips + truncation at
//! arbitrary points) that must always surface as a typed
//! [`Error::Corrupt`] or decode to the identical value — never a panic,
//! never a silently different result.

use magicrecs_graph::{
    load_delta, load_graph, save_delta, save_graph, CapStrategy, FollowGraph, GraphBuilder,
    GraphDelta,
};
use magicrecs_persist::checkpoint::{load_checkpoint, save_checkpoint};
use magicrecs_persist::{FsyncPolicy, TempDir, Wal, WalOptions};
use magicrecs_types::{EdgeEvent, Error, Timestamp, UserId};
use proptest::prelude::*;

fn u(n: u64) -> UserId {
    UserId(n)
}

fn build(edges: &[(u64, u64)]) -> FollowGraph {
    let mut b = GraphBuilder::new();
    b.extend(edges.iter().map(|&(a, bb)| (u(a), u(bb))));
    b.build()
}

fn rows(g: &FollowGraph) -> Vec<(UserId, Vec<UserId>)> {
    g.iter_forward().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Graph codec: arbitrary graphs round-trip exactly.
    #[test]
    fn graph_codec_roundtrips(
        edges in proptest::collection::vec((0u64..60, 0u64..60), 0..200),
    ) {
        let g = build(&edges);
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        let g2 = load_graph(&mut buf.as_slice(), CapStrategy::None).unwrap();
        prop_assert_eq!(rows(&g2), rows(&g));
    }

    /// Graph codec: flipping any byte either fails typed or decodes to
    /// the identical graph; truncating anywhere fails typed. Never a
    /// panic, never a silently different graph.
    #[test]
    fn graph_codec_survives_corruption(
        edges in proptest::collection::vec((0u64..40, 0u64..40), 1..120),
        flip_at in 0usize..4096,
        flip_bit in 0u32..8,
        cut_at in 0usize..4096,
    ) {
        let g = build(&edges);
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();

        let mut flipped = buf.clone();
        let i = flip_at % flipped.len();
        flipped[i] ^= 1 << flip_bit;
        match load_graph(&mut flipped.as_slice(), CapStrategy::None) {
            Ok(g2) => prop_assert_eq!(rows(&g2), rows(&g), "silent corruption at byte {}", i),
            Err(Error::Corrupt(_)) => {}
            Err(e) => prop_assert!(false, "wrong error class: {e:?}"),
        }

        let cut = cut_at % buf.len();
        match load_graph(&mut &buf[..cut], CapStrategy::None) {
            Err(Error::Corrupt(_)) => {}
            r => prop_assert!(false, "truncation at {} gave {r:?}", cut),
        }
    }

    /// Delta codec: `between` → save → load → apply equals the target
    /// graph, for arbitrary old/new pairs.
    #[test]
    fn delta_codec_roundtrips_and_applies(
        old_edges in proptest::collection::vec((0u64..40, 0u64..40), 0..120),
        new_edges in proptest::collection::vec((0u64..50, 0u64..50), 0..120),
    ) {
        let old = build(&old_edges);
        let new = build(&new_edges);
        let delta = GraphDelta::between(&old, &new, 3, 4).unwrap();
        let mut buf = Vec::new();
        save_delta(&delta, &mut buf).unwrap();
        let loaded = load_delta(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(&loaded, &delta);
        let applied = old.apply_delta(&loaded).unwrap();
        prop_assert_eq!(rows(&applied), rows(&new));
        // Dense ids stay order-preserving (the detector's invariant).
        let ids: Vec<UserId> = applied.interner().iter().map(|(_, raw)| raw).collect();
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    /// Delta codec corruption: typed error or identical value.
    #[test]
    fn delta_codec_survives_corruption(
        old_edges in proptest::collection::vec((0u64..30, 0u64..30), 1..80),
        new_edges in proptest::collection::vec((0u64..35, 0u64..35), 1..80),
        flip_at in 0usize..4096,
        flip_bit in 0u32..8,
        cut_at in 0usize..4096,
    ) {
        let old = build(&old_edges);
        let new = build(&new_edges);
        let delta = GraphDelta::between(&old, &new, 0, 1).unwrap();
        let mut buf = Vec::new();
        save_delta(&delta, &mut buf).unwrap();

        let mut flipped = buf.clone();
        let i = flip_at % flipped.len();
        flipped[i] ^= 1 << flip_bit;
        match load_delta(&mut flipped.as_slice()) {
            Ok(d2) => prop_assert_eq!(d2, delta, "silent corruption at byte {}", i),
            Err(Error::Corrupt(_)) => {}
            Err(e) => prop_assert!(false, "wrong error class: {e:?}"),
        }

        let cut = cut_at % buf.len();
        match load_delta(&mut &buf[..cut]) {
            Err(Error::Corrupt(_)) => {}
            r => prop_assert!(false, "truncation at {} gave {r:?}", cut),
        }
    }

    /// Checkpoint codec corruption: typed error or identical value.
    #[test]
    fn checkpoint_codec_survives_corruption(
        entries in proptest::collection::vec(
            (0u64..32, 0u64..64, 0u64..100_000), 1..150,
        ),
        flip_at in 0usize..8192,
        flip_bit in 0u32..8,
        cut_at in 0usize..8192,
    ) {
        // Per-target time order, as export guarantees.
        let mut by_target: std::collections::BTreeMap<u64, Vec<(u64, u64)>> = Default::default();
        for &(dst, src, at) in &entries {
            by_target.entry(dst).or_default().push((src, at));
        }
        let mut flat = Vec::new();
        for (dst, mut list) in by_target {
            list.sort_by_key(|&(_, at)| at);
            flat.extend(list.into_iter().map(|(src, at)| {
                (u(dst), u(src), Timestamp::from_micros(at))
            }));
        }
        let mut buf = Vec::new();
        save_checkpoint(flat, 77, &mut buf).unwrap();
        let reference = load_checkpoint(&mut buf.as_slice()).unwrap();

        let mut flipped = buf.clone();
        let i = flip_at % flipped.len();
        flipped[i] ^= 1 << flip_bit;
        match load_checkpoint(&mut flipped.as_slice()) {
            Ok(ck) => prop_assert_eq!(ck, reference, "silent corruption at byte {}", i),
            Err(Error::Corrupt(_)) => {}
            Err(e) => prop_assert!(false, "wrong error class: {e:?}"),
        }

        let cut = cut_at % buf.len();
        match load_checkpoint(&mut &buf[..cut]) {
            Err(Error::Corrupt(_)) => {}
            r => prop_assert!(false, "truncation at {} gave {r:?}", cut),
        }
    }

    /// WAL: events round-trip; truncating the log anywhere yields a
    /// clean prefix (never an error, never a wrong event); flipping a
    /// byte yields a prefix or an identical stream — CRC framing means
    /// corruption can only cost the tail, not invent records.
    #[test]
    fn wal_replay_is_prefix_closed_under_damage(
        n in 1u64..120,
        cut_at in 0usize..16384,
        flip_at in 0usize..16384,
        flip_bit in 0u32..8,
    ) {
        let t = TempDir::new("wal-prop");
        let mut wal = Wal::create(
            t.path(),
            "wal-",
            WalOptions { fsync: FsyncPolicy::Never, segment_bytes: 1 << 20 },
        ).unwrap();
        let events: Vec<EdgeEvent> = (0..n)
            .map(|i| EdgeEvent::follow(u(i * 3 + 1), u(9_000 + i % 5), Timestamp::from_secs(i)))
            .collect();
        for &e in &events {
            wal.append(e).unwrap();
        }
        wal.close().unwrap();
        let seg = std::fs::read_dir(t.path())
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "wal"))
            .unwrap();
        let bytes = std::fs::read(&seg).unwrap();

        // Truncation at any point: a prefix of the stream, torn or not.
        let cut = cut_at % bytes.len();
        std::fs::write(&seg, &bytes[..cut]).unwrap();
        let mut got = Vec::new();
        magicrecs_persist::wal::replay(t.path(), "wal-", 0, |r| got.push(r.event)).unwrap();
        prop_assert!(got.len() <= events.len());
        prop_assert_eq!(&got[..], &events[..got.len()], "truncation must keep a prefix");

        // Single-bit flip: a prefix (possibly full) of the stream.
        let mut flipped = bytes.clone();
        let i = flip_at % flipped.len();
        flipped[i] ^= 1 << flip_bit;
        std::fs::write(&seg, &flipped).unwrap();
        let mut got = Vec::new();
        match magicrecs_persist::wal::replay(t.path(), "wal-", 0, |r| got.push(r.event)) {
            Ok(_) => {
                prop_assert!(got.len() <= events.len());
                prop_assert_eq!(&got[..], &events[..got.len()], "flip at {} must keep a prefix", i);
            }
            // Header damage is allowed to refuse the segment outright.
            Err(Error::Corrupt(_)) => {}
            Err(e) => prop_assert!(false, "wrong error class: {e:?}"),
        }
    }
}
