//! Fault-plan property tests: for **any** seed-keyed fault plan injected
//! into the persistent engine's I/O backend, at any arming point, under
//! any fsync policy and ingest batch size:
//!
//! * a fault surfaces as a **typed** error (`Io`/`Corrupt`/`Invariant`)
//!   or slows/swallows harmlessly — never a panic;
//! * recovery on a **clean** backend always succeeds, and its
//!   `next_seq` covers the acknowledged prefix (no acknowledged event
//!   is ever lost, none is ever re-emitted);
//! * resuming over the tail restores exact candidate parity with a
//!   fault-free twin — events that were durable but unacknowledged at
//!   the fault may drop their emissions (at-most-once on an
//!   unacknowledged append), everything else must match byte for byte.
//!
//! This is the randomized cousin of the deterministic kill-point matrix
//! in `recovery.rs`: the matrix probes every crash boundary; this file
//! probes the *error paths themselves* under seeded fault plans.

use magicrecs_core::Engine;
use magicrecs_graph::{CapStrategy, FollowGraph, GraphBuilder};
use magicrecs_persist::{
    FaultPlan, FaultVfs, FsyncPolicy, PersistOptions, PersistentEngine, RebasePolicy, TempDir,
};
use magicrecs_types::{Candidate, DetectorConfig, EdgeEvent, Error, Timestamp, UserId};
use proptest::prelude::*;
use std::sync::Arc;

fn u(n: u64) -> UserId {
    UserId(n)
}

fn ts(s: u64) -> Timestamp {
    Timestamp::from_secs(s)
}

/// Dense motif fixture: 20 As each following 5 of 8 Bs.
fn motif_graph() -> FollowGraph {
    let mut g = GraphBuilder::new();
    for a in 0..20u64 {
        for j in 0..5u64 {
            g.add_edge(u(a), u(100 + (a + j) % 8));
        }
    }
    g.build()
}

/// Monotone-timestamp trace with unfollows sprinkled in.
fn trace(n: u64) -> Vec<EdgeEvent> {
    (0..n)
        .map(|i| {
            let b = u(100 + i % 8);
            let c = u(1_000 + (i / 5) % 17);
            if i % 23 == 7 {
                EdgeEvent::unfollow(b, c, ts(10 + i / 3))
            } else {
                EdgeEvent::follow(b, c, ts(10 + i / 3))
            }
        })
        .collect()
}

fn config() -> DetectorConfig {
    DetectorConfig {
        max_witnesses: Some(6),
        ..DetectorConfig::example()
    }
}

fn typed(e: &Error) -> bool {
    matches!(e, Error::Io(_) | Error::Corrupt(_) | Error::Invariant(_))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn seeded_fault_plans_never_panic_and_recovery_restores_parity(
        plan_seed in 0u64..u64::MAX,
        n in 60u64..200,
        arm_at in 0usize..40,
        fsync_every in 1u64..8,
        batch in 1usize..8,
    ) {
        let events = trace(n);
        let cfg = config();
        let opts = PersistOptions {
            fsync: if fsync_every == 1 {
                FsyncPolicy::Always
            } else {
                FsyncPolicy::EveryN(fsync_every)
            },
            segment_bytes: 4 << 10,
            checkpoint_every: 32,
            rebase: RebasePolicy::DISABLED,
        };

        // Fault-free twin: per-event candidates.
        let mut twin = Engine::new(motif_graph(), cfg).unwrap();
        let per_event: Vec<Vec<Candidate>> =
            events.iter().map(|&e| twin.on_event(e)).collect();

        // Engine under fault: plan derived entirely from the seed, armed
        // only once setup I/O (base snapshot publish) is done.
        let plan = FaultPlan::from_seed(plan_seed, n / 2);
        let fv = FaultVfs::new_disarmed(plan);
        let dir = TempDir::new("faults-prop");
        let mut engine = PersistentEngine::create_with_vfs(
            dir.path(),
            motif_graph(),
            0,
            cfg,
            opts,
            Arc::new(fv.clone()),
        )
        .unwrap();

        let mut pre: Vec<Candidate> = Vec::new();
        let mut acked = 0usize;
        let mut fault_error: Option<Error> = None;
        for chunk in events.chunks(batch) {
            if acked >= arm_at {
                fv.set_armed(true);
            }
            match engine.on_events(chunk) {
                Ok(out) => {
                    pre.extend(out);
                    acked += chunk.len();
                }
                Err(e) => {
                    fault_error = Some(e);
                    break;
                }
            }
        }

        match &fault_error {
            Some(e) => {
                // Invariant: the injected failure is typed, and the plan
                // actually fired (errors can only come from injection —
                // the trace and directory are otherwise healthy).
                prop_assert!(typed(e), "untyped error under injection: {e:?}");
                prop_assert!(fv.fired_count() >= 1, "error without a fired fault: {e:?}");
            }
            None => {
                // Plan never hit an erroring op (swallowed-by-design op,
                // Slow mode, or trigger count beyond the op stream).
                prop_assert_eq!(acked, events.len());
            }
        }

        // Crash (ungraceful drop), then recover on a CLEAN backend.
        drop(engine);
        let (mut recovered, report) =
            PersistentEngine::open(dir.path(), cfg, CapStrategy::None, opts).unwrap();

        // No silent loss: everything acknowledged is covered by replay.
        prop_assert!(
            report.next_seq >= acked as u64,
            "acknowledged events lost: acked {} next_seq {}",
            acked,
            report.next_seq
        );

        // Resume over the tail; must run clean on the clean backend.
        let mut post: Vec<Candidate> = Vec::new();
        for &e in &events[report.next_seq as usize..] {
            post.extend(recovered.on_event(e).unwrap());
        }

        // Parity: acknowledged prefix + resumed tail, in order. Events
        // in [acked, next_seq) were durable but never acknowledged —
        // replay restores their state with emission suppressed.
        let mut expected: Vec<Candidate> = Vec::new();
        for per in per_event.iter().take(acked) {
            expected.extend(per.iter().cloned());
        }
        for per in per_event.iter().skip(report.next_seq as usize) {
            expected.extend(per.iter().cloned());
        }
        let mut got = pre;
        got.extend(post);
        prop_assert_eq!(got, expected);
    }

    /// A WAL that failed a policy-promised fsync (or half-committed a
    /// batch) must refuse every later append — an application can never
    /// acknowledge an event the log will not remember.
    #[test]
    fn poisoned_wal_refuses_all_later_appends(
        sync_nth in 1u64..6,
        n in 40u64..120,
    ) {
        let events = trace(n);
        let cfg = config();
        let opts = PersistOptions {
            fsync: FsyncPolicy::Always,
            segment_bytes: 8 << 10,
            checkpoint_every: 0, // isolate the WAL path from checkpoints
            rebase: RebasePolicy::DISABLED,
        };
        let fv = FaultVfs::new_disarmed(FaultPlan::fail_nth_sync(sync_nth));
        let dir = TempDir::new("faults-poison");
        let mut engine = PersistentEngine::create_with_vfs(
            dir.path(),
            motif_graph(),
            0,
            cfg,
            opts,
            Arc::new(fv.clone()),
        )
        .unwrap();
        fv.set_armed(true);

        let mut first_error_at = None;
        for (i, &e) in events.iter().enumerate() {
            if let Err(err) = engine.on_event(e) {
                prop_assert!(typed(&err), "untyped: {err:?}");
                first_error_at = Some(i);
                break;
            }
        }
        let failed_at = first_error_at.expect("Always-policy sync fault must surface");
        prop_assert_eq!(fv.fired_count(), 1);

        // Every subsequent append is refused: the WAL is poisoned.
        for &e in events.iter().skip(failed_at + 1).take(5) {
            prop_assert!(engine.on_event(e).is_err(), "poisoned WAL accepted an append");
        }

        // And clean recovery still lands on a consistent prefix.
        drop(engine);
        let (_, report) =
            PersistentEngine::open(dir.path(), cfg, CapStrategy::None, opts).unwrap();
        prop_assert!(report.next_seq >= failed_at as u64);
    }
}
