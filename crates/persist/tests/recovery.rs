//! Crash-recovery kill-point matrix: truncate the WAL at **every** record
//! boundary of a long replay, recover, and assert candidate-stream parity
//! with an uninterrupted run — for both the sequential [`Engine`] path
//! ([`PersistentEngine`]) and the shared-state [`ConcurrentEngine`] path
//! ([`PersistentConcurrentEngine`], per-partition WALs).
//!
//! Parity argument: recovery at boundary `k` must be semantically
//! identical to an uninterrupted engine that has processed exactly `k`
//! events. The matrix therefore probes every boundary with the next
//! event (`k`'s candidates must match the reference run's event-`k`
//! output byte for byte — any state divergence the next event can see is
//! caught at the boundary that introduces it), and additionally feeds the
//! **entire remaining suffix** at sampled boundaries. Checkpoints every
//! 512 events bound each recovery's replay, which keeps the full matrix
//! O(boundaries × checkpoint cadence) instead of O(boundaries × history).
//!
//! Crash modelling: a prefix of the log survives; the boundary cut is
//! made **mid-record** (not on the clean frame edge) for most `k`, so the
//! torn-tail repair path is exercised across the whole matrix too.
//!
//! Event count: 10k+ in release (the CI `persist-smoke` job runs this),
//! reduced in debug so tier-1 `cargo test` stays fast.
//! `MAGICRECS_KILLPOINT_FULL=1` forces the full matrix anywhere.

use magicrecs_core::{ConcurrentEngine, Engine};
use magicrecs_graph::{CapStrategy, FollowGraph, GraphBuilder};
use magicrecs_persist::wal::record_boundaries;
use magicrecs_persist::{
    FaultMode, FaultOp, FaultPlan, FaultSpec, FaultVfs, FsyncPolicy, PersistOptions,
    PersistentConcurrentEngine, PersistentEngine, RecordBoundary, SharedWal, TempDir,
};
use magicrecs_types::{Candidate, DetectorConfig, EdgeEvent, Error, Timestamp, UserId};
use std::fs::OpenOptions;
use std::path::Path;
use std::sync::Arc;

fn u(n: u64) -> UserId {
    UserId(n)
}

fn ts(s: u64) -> Timestamp {
    Timestamp::from_secs(s)
}

fn matrix_events() -> u64 {
    if std::env::var_os("MAGICRECS_KILLPOINT_FULL").is_some() || !cfg!(debug_assertions) {
        10_000
    } else {
        2_000
    }
}

/// A graph dense enough that a large fraction of events fire candidates:
/// 40 As each following 6 of 10 Bs.
fn motif_graph() -> FollowGraph {
    let mut g = GraphBuilder::new();
    for a in 0..40u64 {
        for j in 0..6u64 {
            g.add_edge(u(a), u(100 + (a + j) % 10));
        }
    }
    g.build()
}

/// Monotone-timestamp trace over a rotating set of targets, with
/// unfollows sprinkled in. Monotone time is the engines' own documented
/// parity condition for expiry under out-of-order streams; recovery
/// inherits exactly that contract.
fn matrix_trace(n: u64) -> Vec<EdgeEvent> {
    let mut events = Vec::with_capacity(n as usize);
    for i in 0..n {
        let b = u(100 + i % 10);
        let c = u(1_000 + (i / 7) % 31);
        if i % 41 == 13 {
            events.push(EdgeEvent::unfollow(b, c, ts(10 + i / 4)));
        } else {
            events.push(EdgeEvent::follow(b, c, ts(10 + i / 4)));
        }
    }
    events
}

fn config() -> DetectorConfig {
    DetectorConfig {
        max_witnesses: Some(6),
        ..DetectorConfig::example()
    }
}

fn opts() -> PersistOptions {
    PersistOptions {
        fsync: FsyncPolicy::Never, // crash = truncation; sync irrelevant
        segment_bytes: 16 << 10,
        checkpoint_every: 512,
        rebase: magicrecs_persist::RebasePolicy::DISABLED,
    }
}

/// Wipes `to` and re-copies every file from `from`.
fn resync_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(to).unwrap() {
        std::fs::remove_file(entry.unwrap().path()).unwrap();
    }
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

/// Simulates a crash at boundary `k` inside `scratch`: records with
/// sequence `>= k` are cut from their segment files, the cut lands
/// `tear` bytes *into* record `k` (0 = clean boundary cut), and the
/// checkpoint on disk becomes the one that actually existed at that
/// moment (the newest archived checkpoint covering `< k`).
fn crash_at(
    scratch: &Path,
    boundaries: &[RecordBoundary],
    k: usize,
    tear: u64,
    archive: &[(u64, std::path::PathBuf)],
) {
    use std::collections::HashMap;
    let mut keep: HashMap<&Path, u64> = HashMap::new();
    for b in &boundaries[k..] {
        keep.entry(b.path.as_path()).or_insert_with(|| {
            boundaries[..k]
                .iter()
                .rev()
                .find(|p| p.path == b.path)
                .map_or(0, |p| p.offset_after)
        });
    }
    if k < boundaries.len() && tear > 0 {
        let b = &boundaries[k];
        let base = keep[b.path.as_path()];
        let record_len = b.offset_after - base;
        // Strictly inside record k: a complete record would not be a
        // crash at this boundary.
        *keep.get_mut(b.path.as_path()).unwrap() = base + tear.min(record_len - 1);
    }
    for (path, len) in keep {
        let p = scratch.join(path.file_name().unwrap());
        if len == 0 {
            std::fs::remove_file(&p).unwrap();
        } else {
            OpenOptions::new()
                .write(true)
                .open(&p)
                .unwrap()
                .set_len(len)
                .unwrap();
        }
    }
    // Swap in the checkpoint that existed at crash time: the live run's
    // final checkpoint (copied by resync) covers sequences the crash has
    // not reached, and `write_checkpoint` prunes superseded files, so the
    // historically-correct one comes from the archive.
    for entry in std::fs::read_dir(scratch).unwrap() {
        let entry = entry.unwrap();
        if entry.file_name().to_string_lossy().ends_with(".mgck") {
            std::fs::remove_file(entry.path()).unwrap();
        }
    }
    if let Some((covered, path)) = archive
        .iter()
        .rev()
        .find(|&&(covered, _)| covered < k as u64)
    {
        std::fs::copy(path, scratch.join(format!("d-ckpt-{covered:020}.mgck"))).unwrap();
    }
}

/// Copies the (single, newest) checkpoint file out of `dir` into the
/// archive, recording the sequence it covers.
fn archive_checkpoint(
    dir: &Path,
    archive_dir: &Path,
    archive: &mut Vec<(u64, std::path::PathBuf)>,
) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(covered) = name
            .strip_prefix("d-ckpt-")
            .and_then(|s| s.strip_suffix(".mgck"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            if archive.iter().all(|&(c, _)| c != covered) {
                let dst = archive_dir.join(name);
                std::fs::copy(entry.path(), &dst).unwrap();
                archive.push((covered, dst));
            }
        }
    }
    archive.sort_by_key(|&(c, _)| c);
}

/// The sequential kill-point matrix: every boundary, next-event parity;
/// sampled boundaries, full-suffix parity.
#[test]
fn kill_point_matrix_sequential() {
    let n = matrix_events() as usize;
    let events = matrix_trace(n as u64);
    let cfg = config();

    // Uninterrupted reference run, per-event candidates recorded.
    let mut reference = Engine::new(motif_graph(), cfg).unwrap();
    let per_event: Vec<Vec<Candidate>> = events.iter().map(|&e| reference.on_event(e)).collect();
    let fired = per_event.iter().filter(|c| !c.is_empty()).count();
    assert!(
        fired * 5 > n,
        "fixture too sparse: only {fired}/{n} events fire"
    );

    // The persistent run whose directory the matrix will crash.
    // Checkpoints are manual so each can be archived the moment it
    // exists — `write_checkpoint` prunes superseded files, but the
    // matrix must reconstruct the exact on-disk state at every k.
    let live = TempDir::new("kp-seq");
    let manual = PersistOptions {
        checkpoint_every: 0,
        ..opts()
    };
    let archive_dir = TempDir::new("kp-seq-ckpts");
    let mut archive: Vec<(u64, std::path::PathBuf)> = Vec::new();
    let mut pe = PersistentEngine::create(live.path(), motif_graph(), 0, cfg, manual).unwrap();
    for (i, &e) in events.iter().enumerate() {
        let got = pe.on_event(e).unwrap();
        assert_eq!(got, per_event[i], "pre-crash divergence at event {i}");
        if (i + 1) % opts().checkpoint_every as usize == 0 {
            pe.checkpoint().unwrap();
            archive_checkpoint(live.path(), archive_dir.path(), &mut archive);
        }
    }
    pe.close().unwrap();

    let boundaries = record_boundaries(live.path(), "wal-").unwrap();
    assert_eq!(boundaries.len(), n, "every event logs one record");

    let scratch = TempDir::new("kp-seq-scratch");
    let suffix_stride = (n / 7).max(1);
    for k in 0..=n {
        resync_dir(live.path(), scratch.path());
        // Vary the tear offset across the matrix; every third boundary
        // cuts cleanly on the frame edge.
        let tear = if k % 3 == 0 {
            0
        } else {
            1 + (k as u64 * 7) % 20
        };
        crash_at(scratch.path(), &boundaries, k, tear, &archive);

        let (mut recovered, report) =
            PersistentEngine::open(scratch.path(), cfg, CapStrategy::None, manual).unwrap();
        assert_eq!(report.next_seq, k as u64, "k={k}: wrong resume point");
        let expect_replay = k as u64 - report.checkpoint_seq.map_or(0, |c| c + 1);
        assert_eq!(report.replayed, expect_replay, "k={k}: {report:?}");
        assert!(
            report.replayed <= opts().checkpoint_every,
            "k={k}: checkpoint failed to bound replay"
        );

        if k < n {
            // The single-event probe: recovery at k ≡ uninterrupted
            // prefix of k events, so event k's candidates must match.
            let got = recovered.on_event(events[k]).unwrap();
            assert_eq!(got, per_event[k], "post-recovery divergence at k={k}");
        }
        if k % suffix_stride == 0 || k + 1 >= n {
            let start = (k + usize::from(k < n)).min(n);
            for (i, &e) in events[start..].iter().enumerate() {
                let got = recovered.on_event(e).unwrap();
                assert_eq!(
                    got,
                    per_event[start + i],
                    "suffix divergence at k={k}, event {}",
                    start + i
                );
            }
        }
    }
}

/// The batched kill-point slice: the same crash model as the sequential
/// matrix, but the log is written by **group-committed `on_events`
/// batches** and the sampled cuts land *inside* batches (the boundary
/// stride is coprime to the batch size, so cuts hit every in-batch
/// offset, most of them tearing mid-record through a batch's single
/// `write(2)`). Recovery must treat a torn group commit exactly like a
/// torn single append: keep the batch's complete prefix records, repair
/// the tear, and continue with candidate parity.
#[test]
fn kill_point_slice_batched_group_commit() {
    let n = (matrix_events() / 2) as usize;
    let events = matrix_trace(n as u64);
    let cfg = config();
    const BATCH: usize = 7;

    let mut reference = Engine::new(motif_graph(), cfg).unwrap();
    let per_event: Vec<Vec<Candidate>> = events.iter().map(|&e| reference.on_event(e)).collect();

    let live = TempDir::new("kp-gc");
    let manual = PersistOptions {
        checkpoint_every: 0,
        ..opts()
    };
    let archive_dir = TempDir::new("kp-gc-ckpts");
    let mut archive: Vec<(u64, std::path::PathBuf)> = Vec::new();
    let mut pe = PersistentEngine::create(live.path(), motif_graph(), 0, cfg, manual).unwrap();
    let mut out = Vec::new();
    let mut done = 0usize;
    for chunk in events.chunks(BATCH) {
        out.clear();
        pe.on_events_into(chunk, &mut out).unwrap();
        let want: Vec<Candidate> = per_event[done..done + chunk.len()]
            .iter()
            .flat_map(|c| c.iter().cloned())
            .collect();
        assert_eq!(out, want, "pre-crash batch divergence at event {done}");
        done += chunk.len();
        // Manual cadence at chunk granularity, archived like the matrix.
        if done % (opts().checkpoint_every as usize) < BATCH {
            pe.checkpoint().unwrap();
            archive_checkpoint(live.path(), archive_dir.path(), &mut archive);
        }
    }
    pe.close().unwrap();

    // Group commit is byte-compatible with single appends, so the
    // boundary scan sees one record per event, exactly like the matrix.
    let boundaries = record_boundaries(live.path(), "wal-").unwrap();
    assert_eq!(boundaries.len(), n);

    let scratch = TempDir::new("kp-gc-scratch");
    let stride = 13; // coprime to BATCH: cuts sweep every in-batch offset
    let mut k = 0usize;
    while k <= n {
        resync_dir(live.path(), scratch.path());
        let tear = if k.is_multiple_of(3) {
            0
        } else {
            1 + (k as u64 * 11) % 24
        };
        crash_at(scratch.path(), &boundaries, k, tear, &archive);

        let (mut recovered, report) =
            PersistentEngine::open(scratch.path(), cfg, CapStrategy::None, manual).unwrap();
        assert_eq!(report.next_seq, k as u64, "k={k}: wrong resume point");

        if k < n {
            // Continue with a group-committed batch, not a single event:
            // the recovered log must accept batched appends at the exact
            // resume sequence and keep candidate parity.
            let end = (k + BATCH).min(n);
            let got = recovered.on_events(&events[k..end]).unwrap();
            let want: Vec<Candidate> = per_event[k..end]
                .iter()
                .flat_map(|c| c.iter().cloned())
                .collect();
            assert_eq!(got, want, "post-recovery batch divergence at k={k}");
        }
        k += stride;
    }
}

/// The concurrent (sharded `D`, per-partition WAL) kill-point matrix:
/// crash at global sequence `k`, full-suffix parity at every sampled
/// point, next-event parity at every point.
#[test]
fn kill_point_matrix_concurrent() {
    let n = (matrix_events() / 2) as usize; // two engines share the budget
    let events = matrix_trace(n as u64);
    let cfg = config();
    const PARTS: usize = 4;

    let reference = ConcurrentEngine::new(motif_graph(), cfg).unwrap();
    let per_event: Vec<Vec<Candidate>> = events.iter().map(|&e| reference.on_event(e)).collect();

    let live = TempDir::new("kp-conc");
    let archive_dir = TempDir::new("kp-conc-ckpts");
    let mut archive: Vec<(u64, std::path::PathBuf)> = Vec::new();
    let pe = PersistentConcurrentEngine::create(live.path(), motif_graph(), 0, cfg, PARTS, opts())
        .unwrap();
    // Single-threaded drive: a deterministic global sequence makes
    // "crash at k" well defined (thread-safety of the shared path is
    // covered by the crate's unit tests; candidates don't depend on the
    // thread count, only on per-target order).
    for (i, &e) in events.iter().enumerate() {
        let got = pe.on_event(e).unwrap();
        assert_eq!(got, per_event[i], "pre-crash divergence at event {i}");
        if (i + 1) % opts().checkpoint_every as usize == 0 {
            pe.checkpoint().unwrap();
            archive_checkpoint(live.path(), archive_dir.path(), &mut archive);
        }
    }
    drop(pe);

    let boundaries = SharedWal::record_boundaries(live.path(), PARTS).unwrap();
    assert_eq!(boundaries.len(), n);

    let scratch = TempDir::new("kp-conc-scratch");
    let suffix_stride = (n / 11).max(1);
    for k in 0..=n {
        resync_dir(live.path(), scratch.path());
        let tear = if k % 4 == 0 {
            0
        } else {
            1 + (k as u64 * 5) % 16
        };
        crash_at(scratch.path(), &boundaries, k, tear, &archive);

        let (recovered, report) =
            PersistentConcurrentEngine::open(scratch.path(), cfg, CapStrategy::None, PARTS, opts())
                .unwrap();
        assert_eq!(report.next_seq, k as u64, "k={k}");
        assert!(
            report.replayed <= opts().checkpoint_every,
            "k={k}: checkpoint failed to bound replay ({report:?})"
        );

        if k < n {
            let got = recovered.on_event(events[k]).unwrap();
            assert_eq!(got, per_event[k], "post-recovery divergence at k={k}");
        }
        if k % suffix_stride == 0 || k + 1 >= n {
            let start = (k + usize::from(k < n)).min(n);
            for (i, &e) in events[start..].iter().enumerate() {
                let got = recovered.on_event(e).unwrap();
                assert_eq!(
                    got,
                    per_event[start + i],
                    "concurrent suffix divergence at k={k}, event {}",
                    start + i
                );
            }
        }
    }
}

/// Mixed per-partition truncation: different partitions lose different
/// amounts of unsynced tail. Recovery must come back up cleanly on the
/// surviving per-partition prefixes (per-target history is
/// partition-sticky, so `D` stays per-target consistent) and resume live
/// ingest past the highest surviving sequence.
#[test]
fn concurrent_recovery_with_uneven_partition_loss() {
    let n = 1_000u64;
    let events = matrix_trace(n);
    let cfg = config();
    const PARTS: usize = 4;

    let live = TempDir::new("kp-uneven");
    let pe = PersistentConcurrentEngine::create(live.path(), motif_graph(), 0, cfg, PARTS, opts())
        .unwrap();
    for &e in &events {
        pe.on_event(e).unwrap();
    }
    drop(pe);

    // Chop a different number of tail records off each partition's
    // newest segment.
    let mut survivors = 0u64;
    let mut surviving_inserts = 0u64;
    let mut max_surviving_seq = 0u64;
    for part in 0..PARTS {
        let prefix = format!("wal-p{part}-");
        let bs = record_boundaries(live.path(), &prefix).unwrap();
        let cut = (part * 3) % 7; // 0, 3, 6, 2 records lost
        let keep_idx = bs.len().saturating_sub(cut);
        survivors += keep_idx as u64;
        surviving_inserts += bs[..keep_idx]
            .iter()
            .filter(|b| events[b.seq as usize].kind.is_insertion())
            .count() as u64;
        // Records in a partition file are ordered but carry sparse global
        // seqs; the surviving max is the last kept record's seq.
        if keep_idx > 0 {
            max_surviving_seq = max_surviving_seq.max(bs[keep_idx - 1].seq);
            if cut > 0 {
                // All cut records live in the newest (last) segment file
                // for these sizes; truncate it at the last kept boundary
                // that shares its file.
                let last_file = &bs[bs.len() - 1].path;
                let keep = bs[..keep_idx]
                    .iter()
                    .rev()
                    .find(|b| &b.path == last_file)
                    .map_or(0, |b| b.offset_after);
                let f = OpenOptions::new().write(true).open(last_file).unwrap();
                f.set_len(keep.max(16)).unwrap();
            }
        }
    }
    for entry in std::fs::read_dir(live.path()).unwrap() {
        let entry = entry.unwrap();
        if entry.file_name().to_string_lossy().ends_with(".mgck") {
            std::fs::remove_file(entry.path()).unwrap();
        }
    }

    let (recovered, report) =
        PersistentConcurrentEngine::open(live.path(), cfg, CapStrategy::None, PARTS, opts())
            .unwrap();
    assert_eq!(report.replayed, survivors);
    let stats = recovered.engine().store().stats();
    assert_eq!(
        stats.inserted, surviving_inserts,
        "every surviving insertion must reach the store"
    );
    assert_eq!(report.next_seq, max_surviving_seq + 1);
    recovered
        .on_event(EdgeEvent::follow(u(100), u(5_000), ts(10_000)))
        .unwrap();
}

/// Shared driver for the injected-fault kill points below: feeds the
/// matrix trace in group-committed batches of 10 through a
/// [`FaultVfs`], arms `plan` after `arm_after` events, and returns
/// `(acked, per_event_reference, pre_fault_candidates, dir, fault_vfs)`
/// once the injected fault has surfaced as a typed error and poisoned
/// the engine end-to-end.
fn drive_until_injected_fault(
    dir: &Path,
    plan: FaultPlan,
    arm_after: usize,
    events: &[EdgeEvent],
    per_event: &[Vec<Candidate>],
) -> (usize, Vec<Candidate>, FaultVfs) {
    const BATCH: usize = 10;
    // EveryN(4) puts an interior policy sync *inside* every batch: each
    // group commit lands as chunks of 4/4/2, so both a failed interior
    // sync and a torn second-chunk write hit AFTER a prefix of the call
    // has landed — the poison-after-landed-prefix shape.
    let opts = PersistOptions {
        fsync: FsyncPolicy::EveryN(4),
        segment_bytes: 16 << 10,
        checkpoint_every: 0, // isolate the WAL path from checkpoint I/O
        rebase: magicrecs_persist::RebasePolicy::DISABLED,
    };
    let fv = FaultVfs::new_disarmed(plan);
    let mut engine = PersistentEngine::create_with_vfs(
        dir,
        motif_graph(),
        0,
        config(),
        opts,
        Arc::new(fv.clone()),
    )
    .unwrap();

    let mut pre: Vec<Candidate> = Vec::new();
    let mut acked = 0usize;
    let mut fault_error: Option<Error> = None;
    for chunk in events.chunks(BATCH) {
        if acked >= arm_after {
            fv.set_armed(true);
        }
        match engine.on_events(chunk) {
            Ok(out) => {
                pre.extend(out);
                acked += chunk.len();
                assert_eq!(
                    pre.len(),
                    per_event[..acked].iter().map(Vec::len).sum::<usize>(),
                    "pre-fault divergence by event {acked}"
                );
            }
            Err(e) => {
                fault_error = Some(e);
                break;
            }
        }
    }
    let err = fault_error.expect("injected fault must surface before the trace ends");
    assert!(
        matches!(err, Error::Io(_) | Error::Corrupt(_) | Error::Invariant(_)),
        "injected fault must be typed: {err:?}"
    );
    assert!(fv.fired_count() >= 1, "error without a fired fault");

    // Poisoned end-to-end: the landed prefix makes the failed call
    // half-committed, so the engine must refuse everything afterwards —
    // acknowledging on top of it would double-replay the prefix.
    let refused = engine.on_event(events[acked]);
    assert!(
        matches!(refused, Err(Error::Invariant(_))),
        "poison must refuse later appends end-to-end: {refused:?}"
    );
    drop(engine); // the crash
    (acked, pre, fv)
}

/// Recovers `dir` on a clean backend, resumes over the tail, and
/// asserts candidate parity: acknowledged prefix + resumed tail, with
/// the durable-but-unacknowledged window `[acked, next_seq)` replayed
/// emission-suppressed.
fn assert_recovery_parity(
    dir: &Path,
    events: &[EdgeEvent],
    per_event: &[Vec<Candidate>],
    acked: usize,
    pre: Vec<Candidate>,
    expect_landed_prefix: u64,
    expect_torn_tail: bool,
) {
    let opts = PersistOptions {
        fsync: FsyncPolicy::EveryN(4),
        segment_bytes: 16 << 10,
        checkpoint_every: 0,
        rebase: magicrecs_persist::RebasePolicy::DISABLED,
    };
    let (mut recovered, report) =
        PersistentEngine::open(dir, config(), CapStrategy::None, opts).unwrap();
    assert_eq!(
        report.next_seq,
        acked as u64 + expect_landed_prefix,
        "recovery must land exactly on the durable prefix"
    );
    assert_eq!(report.torn_tail, expect_torn_tail);
    assert_eq!(
        report.replayed, report.next_seq,
        "no checkpoint: full replay"
    );

    let mut got = pre;
    for &e in &events[report.next_seq as usize..] {
        got.extend(recovered.on_event(e).unwrap());
    }
    let mut expected: Vec<Candidate> = Vec::new();
    for per in per_event.iter().take(acked) {
        expected.extend(per.iter().cloned());
    }
    for per in per_event.iter().skip(report.next_seq as usize) {
        expected.extend(per.iter().cloned());
    }
    assert_eq!(got, expected, "post-recovery candidate parity");
}

/// Kill point: the *interior policy fsync* of a group commit fails
/// after the batch's first chunk landed. The WAL must poison (the call
/// is half-committed), the error must be typed, and recovery must
/// replay exactly the landed 4-record chunk with emission suppressed.
#[test]
fn kill_point_fsync_failure_poisons_after_landed_prefix() {
    let events = matrix_trace(400);
    let mut reference = Engine::new(motif_graph(), config()).unwrap();
    let per_event: Vec<Vec<Candidate>> = events.iter().map(|&e| reference.on_event(e)).collect();

    let dir = TempDir::new("kp-fsync-fault");
    // First sync after arming = the interior EveryN(4) mark of the next
    // batch: 4 records land, then their promised fsync fails.
    let (acked, pre, fv) = drive_until_injected_fault(
        dir.path(),
        FaultPlan::fail_nth_sync(1),
        100,
        &events,
        &per_event,
    );
    assert_eq!(acked, 100, "fault fires inside the first armed batch");
    assert_eq!(fv.fired_count(), 1, "exactly the planned sync fault fires");
    assert!(fv.ops_seen(FaultOp::Sync) >= 1);
    // The bytes of the synced-then-failed chunk are still in the file
    // (no physical crash), so recovery replays them: a clean tail, 4
    // records past the acknowledged prefix.
    assert_recovery_parity(dir.path(), &events, &per_event, acked, pre, 4, false);
}

/// Kill point: the *second chunk* of a group commit tears — a prefix of
/// its frame bytes lands, then the device errors — and the WAL's
/// rewind-to-boundary truncation fails too (a sick device stays sick).
/// The first chunk is already durable (landed prefix ⇒ poison), the
/// torn bytes stay on disk, and recovery must repair the torn tail and
/// replay exactly the intact 4 records.
#[test]
fn kill_point_torn_write_poisons_after_landed_prefix() {
    let events = matrix_trace(400);
    let mut reference = Engine::new(motif_graph(), config()).unwrap();
    let per_event: Vec<Vec<Candidate>> = events.iter().map(|&e| reference.on_event(e)).collect();

    let dir = TempDir::new("kp-torn-fault");
    // Write #1 after arming = chunk 1 (4 records, lands clean, interior
    // sync passes); write #2 = chunk 2, torn 7 bytes in — strictly
    // inside chunk 2's first frame, so no record of it survives. The
    // paired
    // SetLen fault kills the in-process rewind, so the tear survives to
    // recovery instead of being truncated away by the error path.
    let plan = FaultPlan::torn_nth_write(2, 7).and(FaultSpec {
        op: FaultOp::SetLen,
        nth: 1,
        mode: FaultMode::Fail,
    });
    let (acked, pre, fv) = drive_until_injected_fault(dir.path(), plan, 100, &events, &per_event);
    assert_eq!(acked, 100, "fault fires inside the first armed batch");
    assert_eq!(
        fv.fired_count(),
        2,
        "torn write AND failed rewind both fire"
    );
    // Chunk 1's records survive; chunk 2's torn bytes are repaired at
    // open (the crash signature the report surfaces as `torn_tail`).
    assert_recovery_parity(dir.path(), &events, &per_event, acked, pre, 4, true);
}

/// An incremental-checkpoint policy for the live-checkpoint kill points.
fn inc_opts() -> PersistOptions {
    PersistOptions {
        checkpoint_every: 0,
        rebase: magicrecs_persist::RebasePolicy {
            max_chain_len: 8,
            max_delta_bytes_ratio: 0.0,
        },
        ..opts()
    }
}

/// Live-checkpoint kill point: the **`MGCI` delta file's write fails
/// mid-checkpoint** while ingest is live. The cut must fail typed
/// without moving the chain tip or poisoning the WAL, the dirty marks
/// it drained must be restored (so the *next* cut still covers those
/// targets), and a crash after the retried cut must lose nothing.
#[test]
fn kill_point_mid_delta_checkpoint_write() {
    let events = matrix_trace(600);
    let cfg = config();
    const PARTS: usize = 2;
    let reference = ConcurrentEngine::new(motif_graph(), cfg).unwrap();
    let per_event: Vec<Vec<Candidate>> = events.iter().map(|&e| reference.on_event(e)).collect();

    let dir = TempDir::new("kp-mgci");
    let fv = FaultVfs::new_disarmed(FaultPlan::fail_nth_write(1));
    let pe = PersistentConcurrentEngine::create_with_vfs(
        dir.path(),
        motif_graph(),
        0,
        cfg,
        PARTS,
        inc_opts(),
        Arc::new(fv.clone()),
    )
    .unwrap();
    for (i, &e) in events[..300].iter().enumerate() {
        assert_eq!(pe.on_event(e).unwrap(), per_event[i], "pre-fault event {i}");
    }
    pe.checkpoint().unwrap(); // full — starts the chain
    for (i, &e) in events[300..400].iter().enumerate() {
        assert_eq!(pe.on_event(e).unwrap(), per_event[300 + i]);
    }
    let tip_before = pe.checkpoint_tip();
    fv.set_armed(true);
    let err = pe.checkpoint(); // the delta's first file write dies
    assert!(err.is_err(), "injected checkpoint fault must surface");
    fv.set_armed(false);
    assert_eq!(fv.fired_count(), 1);
    assert_eq!(
        pe.checkpoint_tip(),
        tip_before,
        "failed cut must not move the chain tip"
    );
    // The WAL is untouched by a checkpoint fault: ingest keeps running…
    for (i, &e) in events[400..500].iter().enumerate() {
        assert_eq!(pe.on_event(e).unwrap(), per_event[400 + i]);
    }
    // …and the retried cut re-covers the targets whose dirty marks the
    // failed cut drained (the undo log), so this delta misses nothing.
    pe.checkpoint().unwrap();
    assert!(pe.checkpoint_tip() > tip_before);
    pe.sync().unwrap();
    drop(pe); // the crash

    let (recovered, report) =
        PersistentConcurrentEngine::open(dir.path(), cfg, CapStrategy::None, PARTS, inc_opts())
            .unwrap();
    assert_eq!(report.next_seq, 500);
    assert_eq!(
        report.replayed, 0,
        "the retried cut covers everything: {report:?}"
    );
    for (i, &e) in events[500..].iter().enumerate() {
        assert_eq!(
            recovered.on_event(e).unwrap(),
            per_event[500 + i],
            "post-recovery divergence at event {}",
            500 + i
        );
    }
}

/// Live-checkpoint kill point: crash **between two shard fences** of a
/// non-quiescent cut — partition 0 is already exported (and took fresh
/// ingest right after its fence), partition 1 is not yet cut, and the
/// checkpoint file never lands. The crash image must recover off the
/// *previous* chain with full candidate parity: a half-taken cut leaves
/// no artifact other than its per-partition WAL syncs.
#[test]
fn kill_point_between_shard_fences() {
    let events = matrix_trace(500);
    let cfg = config();
    const PARTS: usize = 2;
    let reference = ConcurrentEngine::new(motif_graph(), cfg).unwrap();
    let per_event: Vec<Vec<Candidate>> = events.iter().map(|&e| reference.on_event(e)).collect();

    let live = TempDir::new("kp-fence-live");
    let scratch = TempDir::new("kp-fence-crash");
    let pe =
        PersistentConcurrentEngine::create(live.path(), motif_graph(), 0, cfg, PARTS, inc_opts())
            .unwrap();
    for (i, &e) in events[..300].iter().enumerate() {
        assert_eq!(pe.on_event(e).unwrap(), per_event[i]);
    }
    pe.checkpoint().unwrap(); // the chain the crash image falls back to
    for (i, &e) in events[300..350].iter().enumerate() {
        assert_eq!(pe.on_event(e).unwrap(), per_event[300 + i]);
    }
    let mut crash_fed = 0usize;
    pe.checkpoint_with_fence_observer(|p, _fence| {
        if p == 0 {
            // Between the fences: partition 0 is cut, partition 1 is
            // not. Ingest live events (they straddle both routes), make
            // them durable, and take the crash image *now* — before the
            // checkpoint file can ever land.
            for (i, &e) in events[350..360].iter().enumerate() {
                assert_eq!(pe.on_event(e).unwrap(), per_event[350 + i]);
            }
            pe.sync().unwrap();
            resync_dir(live.path(), scratch.path());
            crash_fed = 360;
        }
    })
    .unwrap();
    assert_eq!(crash_fed, 360, "observer must have fired for partition 0");
    drop(pe);

    let (recovered, report) =
        PersistentConcurrentEngine::open(scratch.path(), cfg, CapStrategy::None, PARTS, inc_opts())
            .unwrap();
    assert_eq!(report.next_seq, 360, "crash image holds all synced events");
    assert_eq!(
        report.checkpoint_seq,
        Some(299),
        "the half-taken cut must leave no checkpoint artifact"
    );
    assert_eq!(report.replayed, 60, "replay from the previous cut's fence");
    for (i, &e) in events[360..].iter().enumerate() {
        assert_eq!(
            recovered.on_event(e).unwrap(),
            per_event[360 + i],
            "post-recovery divergence at event {}",
            360 + i
        );
    }
}

use proptest::prelude::{prop_assert_eq, ProptestConfig};

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary interleavings of ingest batches and incremental
    /// (non-quiescent) checkpoints — including cuts that take fresh
    /// ingest *between* their shard fences — crashed at an arbitrary
    /// step, recover to candidate-parity with a fault-free twin.
    ///
    /// Each plan step is `(batch_size, action)`: action 1 checkpoints
    /// after the batch, action 2 checkpoints with live ingest injected
    /// after partition 0's fence, action 0 just ingests. The crash image
    /// is a byte-copy of the directory at the chosen step (after a WAL
    /// sync — `FsyncPolicy::Never` crash modelling, same as the matrix).
    #[test]
    fn interleaved_incremental_checkpoints_recover_to_twin_parity(
        plan in proptest::collection::vec((1usize..16, 0u8..3), 3..12),
        crash_after in 0usize..12,
    ) {
        let cfg = config();
        const PARTS: usize = 2;
        let stream = matrix_trace(1_000);
        let cur = std::cell::Cell::new(0usize);
        let take = |k: usize| -> &[EdgeEvent] {
            let s = cur.get();
            cur.set(s + k);
            &stream[s..s + k]
        };

        let twin = ConcurrentEngine::new(motif_graph(), cfg).unwrap();
        let live = TempDir::new("prop-inc");
        let crash = TempDir::new("prop-inc-crash");
        let pe = PersistentConcurrentEngine::create(
            live.path(), motif_graph(), 0, cfg, PARTS, inc_opts(),
        ).unwrap();
        let crash_step = crash_after % plan.len();
        let mut crashed_fed = 0usize;
        for (step, &(batch, action)) in plan.iter().enumerate() {
            let events = take(batch);
            let (mut got, mut want) = (Vec::new(), Vec::new());
            pe.on_events_into(events, &mut got).unwrap();
            twin.on_events_into(events, &mut want);
            prop_assert_eq!(got, want, "live parity diverged at step {}", step);
            match action {
                1 => pe.checkpoint().unwrap(),
                2 => pe.checkpoint_with_fence_observer(|p, _| {
                    if p == 0 {
                        let mid = take(3);
                        let (mut g, mut w) = (Vec::new(), Vec::new());
                        pe.on_events_into(mid, &mut g).unwrap();
                        twin.on_events_into(mid, &mut w);
                        assert_eq!(g, w, "between-fence parity diverged at step {step}");
                    }
                }).unwrap(),
                _ => {}
            }
            if step == crash_step {
                pe.sync().unwrap();
                resync_dir(live.path(), crash.path());
                crashed_fed = cur.get();
            }
        }
        drop(pe);

        let (recovered, report) = PersistentConcurrentEngine::open(
            crash.path(), cfg, CapStrategy::None, PARTS, inc_opts(),
        ).unwrap();
        prop_assert_eq!(report.next_seq, crashed_fed as u64, "{:?}", report);

        // The fault-free twin of the crash image: same prefix, no
        // persistence, no checkpoints, no recovery.
        let fresh = ConcurrentEngine::new(motif_graph(), cfg).unwrap();
        let mut sink = Vec::new();
        fresh.on_events_into(&stream[..crashed_fed], &mut sink);
        let probe = &stream[crashed_fed..crashed_fed + 40];
        for (i, &e) in probe.iter().enumerate() {
            let (mut g, mut w) = (Vec::new(), Vec::new());
            recovered.on_event_into(e, &mut g).unwrap();
            fresh.on_event_into(e, &mut w);
            prop_assert_eq!(g, w, "post-crash candidate divergence at probe {}", i);
        }
    }
}
