//! # magicrecs-gen
//!
//! Synthetic-workload substrate. The paper evaluates on the real Twitter
//! follow graph (O(10⁸) vertices, O(10¹⁰) edges) and its live edge-creation
//! firehose — neither of which ships with a reproduction. This crate builds
//! the closest synthetic equivalents:
//!
//! * [`zipf::Zipf`] — a deterministic Zipf(α) sampler (inverse-CDF table),
//!   the building block for heavy-tailed popularity and activity.
//! * [`graph_gen::GraphGen`] — follow-graph generator whose in-degree
//!   (popularity) and out-degree (following count) distributions follow the
//!   power-law shapes reported for the real graph (Myers et al., WWW'14):
//!   most accounts have few followers, a tiny head has millions.
//! * [`arrivals::PoissonProcess`] — edge-creation arrival times at a target
//!   rate (the paper's design point is 10⁴ insertions/sec), with optional
//!   burst modulation.
//! * [`scenario`] — full event traces: steady-state background follows plus
//!   the motif-rich episodes that make recommendations fire (a celebrity
//!   joining, breaking news rippling through a community).
//! * [`adversity`] — declarative adversity specs: background traffic plus
//!   scheduled flash crowds, churn storms, and rate bursts, with
//!   engine-agnostic crash/fault injection points for robustness
//!   experiments.
//!
//! Everything takes an explicit seed; identical seeds give identical
//! workloads on every platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversity;
pub mod arrivals;
pub mod graph_gen;
pub mod scenario;
pub mod zipf;

pub use adversity::{AdversitySpec, Episode, Injection};
pub use arrivals::PoissonProcess;
pub use graph_gen::{GraphGen, GraphGenConfig};
pub use scenario::{Scenario, ScenarioConfig, Trace};
pub use zipf::Zipf;
