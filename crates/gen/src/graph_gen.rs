//! Synthetic follow-graph generation with Twitter-like degree shapes.
//!
//! Myers et al. (WWW'14, reference 7 of the paper) characterize the
//! Twitter follow graph: both in-degree (followers) and out-degree
//! (followings) are heavy-tailed; the median account has a handful of
//! followers while the head has tens of millions. The generator reproduces
//! that shape with two knobs:
//!
//! * **popularity_alpha** — Zipf exponent for *who gets followed*. Sampling
//!   followees by Zipf rank yields a power-law in-degree distribution.
//! * **activity** — each user's out-degree is drawn from a bounded Pareto
//!   via the same Zipf machinery (rank → degree mapping), so a few users
//!   follow thousands while most follow dozens.
//!
//! For detection workloads what matters is (a) the size distribution of the
//! `S` adjacency lists being intersected and (b) how often the same hot `C`
//! attracts temporally-close edges — both functions of these two shapes.

use crate::zipf::Zipf;
use magicrecs_graph::{CapStrategy, FollowGraph, GraphBuilder};
use magicrecs_types::UserId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for [`GraphGen`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphGenConfig {
    /// Number of users (vertex ids are `0..users`).
    pub users: u64,
    /// Mean out-degree (followings per user).
    pub mean_out_degree: f64,
    /// Maximum out-degree (bounded tail).
    pub max_out_degree: usize,
    /// Zipf exponent for followee popularity (in-degree skew). Twitter-like
    /// graphs sit near 1.0.
    pub popularity_alpha: f64,
    /// Zipf exponent for follower activity (out-degree skew).
    pub activity_alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GraphGenConfig {
    /// A small, quick config for tests: 1k users, ~20 followings each.
    pub fn small() -> Self {
        GraphGenConfig {
            users: 1_000,
            mean_out_degree: 20.0,
            max_out_degree: 200,
            popularity_alpha: 1.0,
            activity_alpha: 0.6,
            seed: 0xDECAF,
        }
    }

    /// A medium config for benches: 100k users, ~50 followings each
    /// (≈ 5M edges).
    pub fn medium() -> Self {
        GraphGenConfig {
            users: 100_000,
            mean_out_degree: 50.0,
            max_out_degree: 2_000,
            popularity_alpha: 1.0,
            activity_alpha: 0.6,
            seed: 0xDECAF,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different user count.
    pub fn with_users(mut self, users: u64) -> Self {
        self.users = users;
        self
    }
}

impl Default for GraphGenConfig {
    fn default() -> Self {
        GraphGenConfig::small()
    }
}

/// Follow-graph generator.
#[derive(Debug, Clone)]
pub struct GraphGen {
    config: GraphGenConfig,
}

impl GraphGen {
    /// Creates a generator.
    pub fn new(config: GraphGenConfig) -> Self {
        assert!(config.users >= 2, "need at least two users");
        assert!(config.mean_out_degree > 0.0, "mean out-degree must be > 0");
        GraphGen { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GraphGenConfig {
        &self.config
    }

    /// Generates the follow graph (uncapped).
    pub fn generate(&self) -> FollowGraph {
        self.generate_capped(CapStrategy::None)
    }

    /// Generates the follow graph with an influencer cap applied at build
    /// time (experiment E9).
    pub fn generate_capped(&self, cap: CapStrategy) -> FollowGraph {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let popularity = Zipf::new(cfg.users as usize, cfg.popularity_alpha);

        // Out-degree sampler: Zipf rank over users scaled so the mean lands
        // near `mean_out_degree`. Rank 0 (most active) gets max_out_degree;
        // degree decays as rank^-activity_alpha, floored at 1.
        let activity = Zipf::new(cfg.users as usize, cfg.activity_alpha);

        let mut builder =
            GraphBuilder::with_capacity((cfg.users as f64 * cfg.mean_out_degree) as usize);
        let est_total = cfg.users as f64 * cfg.mean_out_degree;

        for a in 0..cfg.users {
            let degree = self.sample_out_degree(&activity, est_total, &mut rng);
            for _ in 0..degree {
                // Followee by popularity rank; ranks map to ids via a fixed
                // multiplicative shuffle so "popular" ids are spread across
                // the id space (sequential hot ids would make partition
                // balance artificially easy).
                let rank = popularity.sample(&mut rng) as u64;
                let b = spread_rank(rank, cfg.users);
                if b != a {
                    builder.add_edge(UserId(a), UserId(b));
                }
            }
        }
        builder.build_capped(cap)
    }

    /// Draws one out-degree: expected degree of the activity rank, scaled to
    /// hit the configured mean, clamped to `[1, max_out_degree]`.
    fn sample_out_degree(&self, activity: &Zipf, est_total: f64, rng: &mut StdRng) -> usize {
        let cfg = &self.config;
        let rank = activity.sample(rng);
        // pmf(rank) * users ≈ relative activity share; scale so the overall
        // mean matches mean_out_degree.
        let share = activity.pmf(rank);
        let degree = share * est_total;
        (degree.round() as usize).clamp(1, cfg.max_out_degree)
    }

    /// The most-popular user ids in rank order (useful for scenarios that
    /// want to pick a "celebrity").
    pub fn popular_ids(&self, top: usize) -> Vec<UserId> {
        (0..top.min(self.config.users as usize) as u64)
            .map(|rank| UserId(spread_rank(rank, self.config.users)))
            .collect()
    }
}

/// Maps a popularity rank to a user id via multiplication by a constant
/// coprime to `users`, exact in u128 — a true permutation of `0..users`, so
/// distinct ranks keep distinct popularity masses.
pub(crate) fn spread_rank(rank: u64, users: u64) -> u64 {
    ((rank as u128 * spread_multiplier(users) as u128) % users as u128) as u64
}

/// Smallest multiplier ≥ (golden-ratio constant mod users) coprime to
/// `users`. Deterministic per `users`; the gcd loop runs a handful of steps.
fn spread_multiplier(users: u64) -> u64 {
    let mut g = 0x9E37_79B9_7F4A_7C15u64 % users;
    loop {
        if g != 0 && gcd(g, users) == 1 {
            return g;
        }
        g = (g + 1) % users.max(2);
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use magicrecs_graph::GraphStats;

    #[test]
    fn generates_requested_scale() {
        let g = GraphGen::new(GraphGenConfig::small()).generate();
        let stats = GraphStats::of(&g);
        assert!(stats.edges > 5_000, "too few edges: {}", stats.edges);
        // Mean out-degree within 2x of target (skew makes this loose).
        assert!(
            stats.out_degree.mean > 5.0 && stats.out_degree.mean < 80.0,
            "mean out-degree {}",
            stats.out_degree.mean
        );
    }

    #[test]
    fn in_degree_is_heavy_tailed() {
        let g = GraphGen::new(GraphGenConfig::small()).generate();
        let stats = GraphStats::of(&g);
        // Power-law: the head is far above both the mean and the median.
        assert!(
            stats.in_degree.skew() > 5.0,
            "in-degree skew {} too low for a power law",
            stats.in_degree.skew()
        );
        assert!(
            stats.in_degree.max >= stats.in_degree.median * 10,
            "max {} vs median {}",
            stats.in_degree.max,
            stats.in_degree.median
        );
    }

    #[test]
    fn out_degree_is_skewed_but_bounded() {
        let cfg = GraphGenConfig::small();
        let g = GraphGen::new(cfg).generate();
        let stats = GraphStats::of(&g);
        assert!(stats.out_degree.max <= cfg.max_out_degree);
        assert!(stats.out_degree.max > stats.out_degree.median);
    }

    #[test]
    fn deterministic_per_seed() {
        let g1 = GraphGen::new(GraphGenConfig::small()).generate();
        let g2 = GraphGen::new(GraphGenConfig::small()).generate();
        assert_eq!(g1.num_follow_edges(), g2.num_follow_edges());
        let different = GraphGen::new(GraphGenConfig::small().with_seed(99)).generate();
        // Same scale, different structure (edge counts may coincide, so
        // compare a specific adjacency).
        let probe = UserId(0);
        let same_row = g1.followings(probe) == different.followings(probe);
        assert!(
            !same_row || g1.num_follow_edges() != different.num_follow_edges(),
            "different seeds produced identical graphs"
        );
    }

    #[test]
    fn popular_ids_have_high_in_degree() {
        let gen = GraphGen::new(GraphGenConfig::small());
        let g = gen.generate();
        let stats = GraphStats::of(&g);
        let top = gen.popular_ids(5);
        for id in &top {
            assert!(
                g.follower_count(*id) as f64 >= stats.in_degree.mean,
                "rank-0..5 id {id} has below-average followers"
            );
        }
    }

    #[test]
    fn no_self_loops() {
        let g = GraphGen::new(GraphGenConfig::small()).generate();
        for (a, followings) in g.iter_forward() {
            assert!(!followings.contains(&a), "self-loop at {a:?}");
        }
    }

    #[test]
    fn capped_generation_limits_out_degree() {
        let gen = GraphGen::new(GraphGenConfig::small());
        let g = gen.generate_capped(CapStrategy::Oldest(5));
        let stats = GraphStats::of(&g);
        assert!(stats.out_degree.max <= 5);
    }

    #[test]
    fn spread_rank_is_injective_over_range() {
        let users = 1009u64; // prime, so the multiplier can't alias
        let mut seen = std::collections::HashSet::new();
        for rank in 0..users {
            seen.insert(spread_rank(rank, users));
        }
        assert_eq!(seen.len() as u64, users);
    }

    #[test]
    #[should_panic(expected = "two users")]
    fn one_user_rejected() {
        let _ = GraphGen::new(GraphGenConfig {
            users: 1,
            ..GraphGenConfig::small()
        });
    }
}
