//! A deterministic Zipf(α) sampler over ranks `0..n`.
//!
//! Implemented as an inverse-CDF table with binary search: exact, O(n) to
//! build, O(log n) to sample, and trivially deterministic given the caller's
//! RNG. The table costs 8 bytes per rank — fine for the ≤ 10⁷-rank
//! simulations this workspace runs. (`rand_distr` has a Zipf, but keeping to
//! the pre-approved dependency set costs only these ~60 lines.)

use rand::Rng;

/// Zipf distribution: `P(rank = i) ∝ 1 / (i+1)^alpha` for `i ∈ 0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n ≥ 1` ranks with exponent `alpha ≥ 0`.
    ///
    /// `alpha = 0` degenerates to uniform; Twitter-like popularity skews run
    /// `alpha ∈ [0.8, 1.2]`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(alpha >= 0.0 && alpha.is_finite(), "alpha must be ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point undershoot at the tail.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        false // n >= 1 by construction
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i >= self.cdf.len() {
            return 0.0;
        }
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_most_likely() {
        let z = Zipf::new(1000, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(100));
        assert!(z.pmf(100) > z.pmf(999));
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-12, "pmf({i}) = {}", z.pmf(i));
        }
    }

    #[test]
    fn samples_within_range_and_deterministic() {
        let z = Zipf::new(50, 1.1);
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let a = z.sample(&mut r1);
            let b = z.sample(&mut r2);
            assert_eq!(a, b);
            assert!(a < 50);
        }
    }

    #[test]
    fn empirical_frequency_matches_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 20];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for i in [0usize, 1, 5, 19] {
            let expected = z.pmf(i) * n as f64;
            let got = counts[i] as f64;
            assert!(
                (got - expected).abs() < expected.max(50.0) * 0.15,
                "rank {i}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn negative_alpha_rejected() {
        let _ = Zipf::new(10, -1.0);
    }
}
