//! Full event-trace scenarios.
//!
//! A trace is the synthetic stand-in for the paper's firehose: a
//! time-ordered sequence of [`EdgeEvent`]s. Three workload shapes cover the
//! evaluation:
//!
//! * **steady** — background follow traffic: sources uniform, destinations
//!   Zipf-popular. Motifs fire organically when a hot destination draws
//!   several follows inside the window.
//! * **celebrity join** — the paper's motivating flash crowd: a burst of
//!   follows converging on one account within a tight window. This is the
//!   motif-dense episode.
//! * **breaking news** — co-action (retweet) burst among a community: the
//!   followers of a seed account retweet the same author in quick
//!   succession.

use crate::arrivals::{Burst, PoissonProcess};
use crate::graph_gen::spread_rank;
use crate::zipf::Zipf;
use magicrecs_graph::FollowGraph;
use magicrecs_types::{Duration, EdgeEvent, EdgeKind, Timestamp, UserId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A time-ordered event trace with summary metadata.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<EdgeEvent>,
}

impl Trace {
    /// Wraps raw events, sorting them by creation time (stable).
    pub fn new(mut events: Vec<EdgeEvent>) -> Self {
        events.sort_by_key(|e| e.created_at);
        Trace { events }
    }

    /// The events in time order.
    pub fn events(&self) -> &[EdgeEvent] {
        &self.events
    }

    /// Consumes the trace, yielding the event vector.
    pub fn into_events(self) -> Vec<EdgeEvent> {
        self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the first event.
    pub fn start(&self) -> Option<Timestamp> {
        self.events.first().map(|e| e.created_at)
    }

    /// Time of the last event.
    pub fn end(&self) -> Option<Timestamp> {
        self.events.last().map(|e| e.created_at)
    }

    /// Merges two traces, preserving time order.
    pub fn merge(self, other: Trace) -> Trace {
        let mut events = self.events;
        events.extend(other.events);
        Trace::new(events)
    }
}

/// Parameters shared by the scenario constructors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Background arrival rate (events/sec). The paper's design point is
    /// 10⁴/s; tests use far less.
    pub rate_per_sec: f64,
    /// Trace length.
    pub duration: Duration,
    /// Trace start time.
    pub start: Timestamp,
    /// Zipf exponent for destination popularity.
    pub popularity_alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ScenarioConfig {
    /// Small config for tests: 100 ev/s for 60 s.
    pub fn small() -> Self {
        ScenarioConfig {
            rate_per_sec: 100.0,
            duration: Duration::from_secs(60),
            start: Timestamp::ZERO,
            popularity_alpha: 1.0,
            seed: 0xFEED,
        }
    }

    /// Returns a copy with a different rate.
    pub fn with_rate(mut self, r: f64) -> Self {
        self.rate_per_sec = r;
        self
    }

    /// Returns a copy with a different duration.
    pub fn with_duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig::small()
    }
}

/// Scenario constructors.
#[derive(Debug, Clone, Copy)]
pub struct Scenario;

impl Scenario {
    /// Steady-state background follows over `users` accounts: source
    /// uniform, destination Zipf(α)-popular.
    pub fn steady(users: u64, cfg: ScenarioConfig) -> Trace {
        assert!(users >= 2, "need at least two users");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let popularity = Zipf::new(users as usize, cfg.popularity_alpha);
        let mut proc = PoissonProcess::new(cfg.rate_per_sec, cfg.start, cfg.seed ^ 0x5151);
        let end = cfg.start + cfg.duration;
        let mut events = Vec::new();
        for t in proc.arrivals_until(end) {
            let src = UserId(rng.random_range(0..users));
            let dst = UserId(spread_rank(popularity.sample(&mut rng) as u64, users));
            if src != dst {
                events.push(EdgeEvent::follow(src, dst, t));
            }
        }
        Trace::new(events)
    }

    /// A celebrity joins at `cfg.start`: `follower_count` accounts (sampled
    /// from `graph`'s hosted users, biased toward active ones) follow
    /// `celebrity` within `burst_len`.
    ///
    /// The followers are drawn from the graph's *followed* accounts (`B`s
    /// with followers in `S`), so the resulting diamonds have non-empty
    /// intersections — the shape that makes this scenario motif-dense.
    pub fn celebrity_join(
        graph: &FollowGraph,
        celebrity: UserId,
        follower_count: usize,
        burst_len: Duration,
        cfg: ScenarioConfig,
    ) -> Trace {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Candidate Bs: accounts that have at least one follower.
        let mut bs: Vec<UserId> = graph
            .iter_inverse()
            .filter(|(b, followers)| !followers.is_empty() && *b != celebrity)
            .map(|(b, _)| b)
            .collect();
        bs.sort_unstable(); // iter order is hash-dependent; fix it for determinism
        bs.shuffle(&mut rng);
        bs.truncate(follower_count);

        let events: Vec<EdgeEvent> = bs
            .into_iter()
            .map(|b| {
                let offset =
                    Duration::from_micros(rng.random_range(0..burst_len.as_micros().max(1)));
                EdgeEvent::follow(b, celebrity, cfg.start + offset)
            })
            .collect();
        Trace::new(events)
    }

    /// Breaking news: followers of `author` retweet them in a burst.
    /// Produces `retweeter_count` retweet events within `burst_len`.
    pub fn breaking_news(
        graph: &FollowGraph,
        author: UserId,
        retweeter_count: usize,
        burst_len: Duration,
        cfg: ScenarioConfig,
    ) -> Trace {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut retweeters: Vec<UserId> = graph.followers(author).to_vec();
        retweeters.shuffle(&mut rng);
        retweeters.truncate(retweeter_count);
        let events: Vec<EdgeEvent> = retweeters
            .into_iter()
            .map(|b| {
                let offset =
                    Duration::from_micros(rng.random_range(0..burst_len.as_micros().max(1)));
                EdgeEvent {
                    src: b,
                    dst: author,
                    created_at: cfg.start + offset,
                    kind: EdgeKind::Retweet,
                }
            })
            .collect();
        Trace::new(events)
    }

    /// Steady background plus periodic celebrity bursts every
    /// `burst_period`, each converging on a fresh high-popularity account.
    pub fn mixed(
        graph: &FollowGraph,
        users: u64,
        burst_period: Duration,
        burst_size: usize,
        cfg: ScenarioConfig,
    ) -> Trace {
        let mut trace = Scenario::steady(users, cfg);
        let mut t = cfg.start + burst_period;
        let end = cfg.start + cfg.duration;
        let mut which = 0u64;
        while t < end {
            let celebrity = UserId(users + which); // fresh account each burst
            let burst = Scenario::celebrity_join(
                graph,
                celebrity,
                burst_size,
                Duration::from_secs(30),
                ScenarioConfig {
                    start: t,
                    seed: cfg.seed ^ (0xB00 + which),
                    ..cfg
                },
            );
            trace = trace.merge(burst);
            t += burst_period;
            which += 1;
        }
        trace
    }

    /// A flash crowd converges on a **dormant** vertex: `follower_count`
    /// distinct sources drawn uniformly from `0..users` follow `target`
    /// within `burst_len` starting at `cfg.start`. Unlike
    /// [`Scenario::celebrity_join`] this needs no pre-built graph — the
    /// point is a vertex with *zero* prior traffic suddenly receiving the
    /// densest fan-in in the trace, the paper's motivating overload case.
    pub fn flash_crowd(
        users: u64,
        target: UserId,
        follower_count: usize,
        burst_len: Duration,
        cfg: ScenarioConfig,
    ) -> Trace {
        assert!(users >= 2, "need at least two users");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut sources: Vec<UserId> = (0..users).map(UserId).filter(|u| *u != target).collect();
        sources.shuffle(&mut rng);
        sources.truncate(follower_count);
        let events: Vec<EdgeEvent> = sources
            .into_iter()
            .map(|b| {
                let offset =
                    Duration::from_micros(rng.random_range(0..burst_len.as_micros().max(1)));
                EdgeEvent::follow(b, target, cfg.start + offset)
            })
            .collect();
        Trace::new(events)
    }

    /// An unfollow/refollow churn storm: `churners` accounts each flip
    /// their edge to `target` `rounds` times (follow, unfollow, follow, …)
    /// at evenly spread instants across `len`. Exercises the engine's
    /// dynamic-edge removal path under maximal thrash — every other event
    /// retracts state the previous one created.
    pub fn churn_storm(
        users: u64,
        target: UserId,
        churners: usize,
        rounds: usize,
        len: Duration,
        cfg: ScenarioConfig,
    ) -> Trace {
        assert!(users >= 2, "need at least two users");
        assert!(rounds >= 1, "need at least one churn round");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut sources: Vec<UserId> = (0..users).map(UserId).filter(|u| *u != target).collect();
        sources.shuffle(&mut rng);
        sources.truncate(churners);
        let slot = Duration::from_micros(len.as_micros().max(1) / rounds as u64);
        let mut events = Vec::new();
        for b in sources {
            for r in 0..rounds {
                let jitter = Duration::from_micros(rng.random_range(0..slot.as_micros().max(1)));
                let at = cfg.start + Duration::from_micros(slot.as_micros() * r as u64) + jitter;
                if r % 2 == 0 {
                    events.push(EdgeEvent::follow(b, target, at));
                } else {
                    events.push(EdgeEvent::unfollow(b, target, at));
                }
            }
        }
        Trace::new(events)
    }

    /// Steady traffic with a mid-trace rate burst (for throughput stress):
    /// the burst multiplies the base rate by `factor` for `burst_len`.
    pub fn steady_with_burst(
        users: u64,
        cfg: ScenarioConfig,
        burst_at: Timestamp,
        burst_len: Duration,
        factor: f64,
    ) -> Trace {
        assert!(users >= 2, "need at least two users");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let popularity = Zipf::new(users as usize, cfg.popularity_alpha);
        let mut proc = PoissonProcess::new(cfg.rate_per_sec, cfg.start, cfg.seed ^ 0x5151)
            .with_burst(Burst {
                start: burst_at,
                len: burst_len,
                factor,
            });
        let end = cfg.start + cfg.duration;
        let mut events = Vec::new();
        for t in proc.arrivals_until(end) {
            let src = UserId(rng.random_range(0..users));
            let dst = UserId(spread_rank(popularity.sample(&mut rng) as u64, users));
            if src != dst {
                events.push(EdgeEvent::follow(src, dst, t));
            }
        }
        Trace::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_gen::{GraphGen, GraphGenConfig};

    fn small_graph() -> FollowGraph {
        GraphGen::new(GraphGenConfig::small()).generate()
    }

    #[test]
    fn steady_trace_is_time_ordered() {
        let t = Scenario::steady(1000, ScenarioConfig::small());
        assert!(t.len() > 1000);
        for w in t.events().windows(2) {
            assert!(w[0].created_at <= w[1].created_at);
        }
    }

    #[test]
    fn steady_respects_duration() {
        let cfg = ScenarioConfig::small().with_duration(Duration::from_secs(10));
        let t = Scenario::steady(100, cfg);
        assert!(t.end().unwrap() < cfg.start + Duration::from_secs(10));
    }

    #[test]
    fn steady_deterministic() {
        let a = Scenario::steady(500, ScenarioConfig::small());
        let b = Scenario::steady(500, ScenarioConfig::small());
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn steady_destinations_are_skewed() {
        let t = Scenario::steady(1000, ScenarioConfig::small());
        let mut counts: std::collections::HashMap<UserId, usize> = Default::default();
        for e in t.events() {
            *counts.entry(e.dst).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let mean = t.len() as f64 / counts.len() as f64;
        assert!(
            max as f64 > mean * 5.0,
            "destination skew too low: max {max}, mean {mean:.1}"
        );
    }

    #[test]
    fn celebrity_join_targets_one_account() {
        let g = small_graph();
        let celeb = UserId(999_999);
        let t = Scenario::celebrity_join(
            &g,
            celeb,
            50,
            Duration::from_secs(30),
            ScenarioConfig::small(),
        );
        assert_eq!(t.len(), 50);
        for e in t.events() {
            assert_eq!(e.dst, celeb);
            assert_eq!(e.kind, EdgeKind::Follow);
            assert!(e.created_at < Timestamp::ZERO + Duration::from_secs(30));
        }
        // All sources distinct (each B follows once).
        let mut srcs: Vec<_> = t.events().iter().map(|e| e.src).collect();
        srcs.sort_unstable();
        srcs.dedup();
        assert_eq!(srcs.len(), 50);
    }

    #[test]
    fn breaking_news_uses_authors_followers() {
        let g = small_graph();
        // Find a well-followed author.
        let author = g
            .iter_inverse()
            .max_by_key(|(_, f)| f.len())
            .map(|(b, _)| b)
            .unwrap();
        let t = Scenario::breaking_news(
            &g,
            author,
            10,
            Duration::from_secs(10),
            ScenarioConfig::small(),
        );
        assert!(t.len() <= 10);
        assert!(!t.is_empty());
        for e in t.events() {
            assert_eq!(e.kind, EdgeKind::Retweet);
            assert!(g.follows(e.src, author), "{} is not a follower", e.src);
        }
    }

    #[test]
    fn mixed_has_bursts_on_schedule() {
        let g = small_graph();
        let cfg = ScenarioConfig::small().with_duration(Duration::from_secs(120));
        let t = Scenario::mixed(&g, 1000, Duration::from_secs(40), 20, cfg);
        // Two bursts expected (t=40, t=80) on fresh accounts >= 1000.
        let burst_events = t.events().iter().filter(|e| e.dst.raw() >= 1000).count();
        assert_eq!(burst_events, 40);
    }

    #[test]
    fn merge_preserves_order() {
        let a = Scenario::steady(100, ScenarioConfig::small());
        let b = Scenario::steady(
            100,
            ScenarioConfig::small()
                .with_seed(9)
                .with_duration(Duration::from_secs(30)),
        );
        let merged = a.clone().merge(b);
        assert!(merged.len() > a.len());
        for w in merged.events().windows(2) {
            assert!(w[0].created_at <= w[1].created_at);
        }
    }

    #[test]
    fn flash_crowd_hits_only_the_dormant_target() {
        let target = UserId(42);
        let t = Scenario::flash_crowd(
            1000,
            target,
            80,
            Duration::from_secs(20),
            ScenarioConfig::small(),
        );
        assert_eq!(t.len(), 80);
        let mut srcs: Vec<_> = t.events().iter().map(|e| e.src).collect();
        for e in t.events() {
            assert_eq!(e.dst, target);
            assert_eq!(e.kind, EdgeKind::Follow);
            assert_ne!(e.src, target);
            assert!(e.created_at < Timestamp::ZERO + Duration::from_secs(20));
        }
        srcs.sort_unstable();
        srcs.dedup();
        assert_eq!(srcs.len(), 80, "sources must be distinct");
        // Determinism.
        let t2 = Scenario::flash_crowd(
            1000,
            target,
            80,
            Duration::from_secs(20),
            ScenarioConfig::small(),
        );
        assert_eq!(t.events(), t2.events());
    }

    #[test]
    fn churn_storm_alternates_follow_unfollow_per_churner() {
        let target = UserId(7);
        let t = Scenario::churn_storm(
            500,
            target,
            12,
            5,
            Duration::from_secs(50),
            ScenarioConfig::small(),
        );
        assert_eq!(t.len(), 12 * 5);
        let mut per_src: std::collections::HashMap<UserId, Vec<EdgeKind>> = Default::default();
        for e in t.events() {
            assert_eq!(e.dst, target);
            per_src.entry(e.src).or_default().push(e.kind);
        }
        assert_eq!(per_src.len(), 12);
        for (src, kinds) in per_src {
            assert_eq!(kinds.len(), 5);
            for (i, k) in kinds.iter().enumerate() {
                let want = if i % 2 == 0 {
                    EdgeKind::Follow
                } else {
                    EdgeKind::Unfollow
                };
                assert_eq!(*k, want, "churner {src} round {i}");
            }
        }
    }

    #[test]
    fn steady_with_burst_concentrates_events() {
        let cfg = ScenarioConfig::small().with_duration(Duration::from_secs(30));
        let t = Scenario::steady_with_burst(
            500,
            cfg,
            Timestamp::from_secs(10),
            Duration::from_secs(5),
            10.0,
        );
        let in_burst = t
            .events()
            .iter()
            .filter(|e| e.created_at.as_secs() >= 10 && e.created_at.as_secs() < 15)
            .count();
        // Burst: 5s × 1000/s = 5000 vs background 25s × 100/s = 2500.
        assert!(in_burst > t.len() / 2, "{in_burst} of {}", t.len());
    }
}
