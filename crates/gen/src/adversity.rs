//! Declarative adversity scenarios: background traffic plus scheduled
//! episodes of overload (flash crowds, churn storms, rate bursts) and
//! engine-agnostic *injection points* (crash here, inject I/O faults
//! seeded there). A spec is pure data — building it yields a
//! deterministic [`Trace`] keyed entirely by the spec's seed, so an
//! experiment runner can replay the exact same adversity against
//! different engine configurations and compare trajectories
//! cell-for-cell.
//!
//! The split of responsibilities: this module schedules *what the world
//! does* (events and when to hurt the engine); the persistence layer's
//! `FaultVfs` decides *how* the hurt manifests (failed write, torn
//! write, failed fsync), keyed by the [`Injection::FaultSeed`] carried
//! here. Nothing in this crate depends on the persistence crate.

use crate::scenario::{Scenario, ScenarioConfig, Trace};
use magicrecs_types::{Duration, Timestamp, UserId};

/// A scheduled episode of adversity layered over the background trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Episode {
    /// A flash crowd converges on a dormant vertex (one with zero
    /// background traffic): `followers` distinct accounts follow it
    /// within `len` starting at `at`.
    FlashCrowd {
        /// Episode start time.
        at: Timestamp,
        /// Burst length.
        len: Duration,
        /// Number of distinct followers in the crowd.
        followers: usize,
    },
    /// An unfollow/refollow storm: `churners` accounts each flip their
    /// edge to a dormant vertex `rounds` times across `len`.
    ChurnStorm {
        /// Episode start time.
        at: Timestamp,
        /// Storm length.
        len: Duration,
        /// Number of churning accounts.
        churners: usize,
        /// Follow/unfollow flips per churner.
        rounds: usize,
    },
    /// The background arrival rate multiplies by `factor` for `len`
    /// (modeled as a superposed Poisson process at the extra rate).
    RateBurst {
        /// Episode start time.
        at: Timestamp,
        /// Burst length.
        len: Duration,
        /// Rate multiplier (> 1.0).
        factor: f64,
    },
}

/// An engine-agnostic injection point, scheduled by *event index* into
/// the built trace — index-based so the same spec means the same thing
/// for a sequential engine, a sharded one, or a batched ingest path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Kill the engine (drop it without shutdown) after `at_event`
    /// events have been ingested, then recover and resume.
    Crash {
        /// Number of events ingested before the kill.
        at_event: usize,
    },
    /// Arm a seeded I/O fault plan once `at_event` events have been
    /// ingested. The consumer maps `seed` to its own fault vocabulary
    /// (e.g. the persistence layer's `FaultPlan::from_seed`).
    FaultSeed {
        /// Number of events ingested before arming.
        at_event: usize,
        /// Seed for the consumer's fault-plan generator.
        seed: u64,
    },
}

impl Injection {
    /// The event index this injection fires at.
    pub fn at_event(&self) -> usize {
        match self {
            Injection::Crash { at_event } | Injection::FaultSeed { at_event, .. } => *at_event,
        }
    }
}

/// A named, seeded adversity scenario: background workload parameters
/// plus scheduled [`Episode`]s and [`Injection`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversitySpec {
    /// Scenario name (lands in experiment trajectories).
    pub name: String,
    /// Master seed; every derived trace and episode is keyed off it.
    pub seed: u64,
    /// Background account population (sources `0..users`).
    pub users: u64,
    /// Background arrival rate, events/sec.
    pub background_rate: f64,
    /// Total trace length.
    pub duration: Duration,
    /// Zipf exponent for background destination popularity.
    pub popularity_alpha: f64,
    /// Scheduled adversity episodes.
    pub episodes: Vec<Episode>,
    /// Scheduled injection points.
    pub injections: Vec<Injection>,
}

impl AdversitySpec {
    /// A new spec with test-scale defaults: 1 000 users, 50 ev/s for
    /// 60 s, α = 1.0, no episodes, no injections.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        AdversitySpec {
            name: name.into(),
            seed,
            users: 1_000,
            background_rate: 50.0,
            duration: Duration::from_secs(60),
            popularity_alpha: 1.0,
            episodes: Vec::new(),
            injections: Vec::new(),
        }
    }

    /// Sets the account population.
    pub fn with_users(mut self, users: u64) -> Self {
        self.users = users;
        self
    }

    /// Sets the background rate (events/sec).
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.background_rate = rate;
        self
    }

    /// Sets the trace duration.
    pub fn with_duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }

    /// Sets the Zipf popularity exponent (the skew-sweep knob).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.popularity_alpha = alpha;
        self
    }

    /// Appends an episode.
    pub fn episode(mut self, e: Episode) -> Self {
        self.episodes.push(e);
        self
    }

    /// Schedules a crash after `at_event` ingested events.
    pub fn crash_at(mut self, at_event: usize) -> Self {
        self.injections.push(Injection::Crash { at_event });
        self
    }

    /// Schedules a seeded fault-plan arming after `at_event` events.
    pub fn fault_at(mut self, at_event: usize, seed: u64) -> Self {
        self.injections
            .push(Injection::FaultSeed { at_event, seed });
        self
    }

    /// The dormant vertex targeted by episode `i` — one past the
    /// background id range, so it receives no steady traffic.
    pub fn dormant_target(&self, episode_index: usize) -> UserId {
        UserId(self.users + episode_index as u64)
    }

    /// Injections sorted by firing index (stable for equal indices).
    pub fn injections_sorted(&self) -> Vec<Injection> {
        let mut v = self.injections.clone();
        v.sort_by_key(|i| i.at_event());
        v
    }

    /// Builds the deterministic event trace: steady background plus
    /// every episode, merged in time order. Identical specs produce
    /// identical traces on every platform.
    pub fn build(&self) -> Trace {
        let cfg = ScenarioConfig {
            rate_per_sec: self.background_rate,
            duration: self.duration,
            start: Timestamp::ZERO,
            popularity_alpha: self.popularity_alpha,
            seed: self.seed,
        };
        let mut trace = Scenario::steady(self.users, cfg);
        for (i, ep) in self.episodes.iter().enumerate() {
            // Per-episode seed: derived, not shared, so reordering the
            // episode list perturbs only the episodes it moves.
            let ep_seed = self.seed ^ (0xAD5E_0000 + ((i as u64 + 1) << 4));
            let target = self.dormant_target(i);
            let layered = match *ep {
                Episode::FlashCrowd { at, len, followers } => Scenario::flash_crowd(
                    self.users,
                    target,
                    followers,
                    len,
                    ScenarioConfig {
                        start: at,
                        seed: ep_seed,
                        ..cfg
                    },
                ),
                Episode::ChurnStorm {
                    at,
                    len,
                    churners,
                    rounds,
                } => Scenario::churn_storm(
                    self.users,
                    target,
                    churners,
                    rounds,
                    len,
                    ScenarioConfig {
                        start: at,
                        seed: ep_seed,
                        ..cfg
                    },
                ),
                Episode::RateBurst { at, len, factor } => {
                    // Superposition: an independent Poisson stream at the
                    // *extra* rate over [at, at+len) sums with the
                    // background to the multiplied rate.
                    let extra = (factor - 1.0).max(0.0) * self.background_rate;
                    Scenario::steady(
                        self.users,
                        ScenarioConfig {
                            rate_per_sec: extra,
                            duration: len,
                            start: at,
                            seed: ep_seed,
                            ..cfg
                        },
                    )
                }
            };
            trace = trace.merge(layered);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flashy(seed: u64) -> AdversitySpec {
        AdversitySpec::new("flash", seed).episode(Episode::FlashCrowd {
            at: Timestamp::from_secs(20),
            len: Duration::from_secs(5),
            followers: 60,
        })
    }

    #[test]
    fn build_is_deterministic_and_seed_sensitive() {
        let a = flashy(1).build();
        let b = flashy(1).build();
        let c = flashy(2).build();
        assert_eq!(a.events(), b.events());
        assert_ne!(a.events(), c.events());
        assert!(!a.is_empty());
    }

    #[test]
    fn flash_crowd_target_is_dormant_before_the_episode() {
        let spec = flashy(7);
        let target = spec.dormant_target(0);
        let trace = spec.build();
        let hits: Vec<_> = trace.events().iter().filter(|e| e.dst == target).collect();
        assert_eq!(hits.len(), 60);
        for e in &hits {
            assert!(
                e.created_at >= Timestamp::from_secs(20),
                "dormant target saw traffic before the episode"
            );
        }
        // And time order survives the merge.
        for w in trace.events().windows(2) {
            assert!(w[0].created_at <= w[1].created_at);
        }
    }

    #[test]
    fn rate_burst_concentrates_arrivals() {
        let spec = AdversitySpec::new("burst", 3).episode(Episode::RateBurst {
            at: Timestamp::from_secs(20),
            len: Duration::from_secs(10),
            factor: 8.0,
        });
        let trace = spec.build();
        let in_burst = trace
            .events()
            .iter()
            .filter(|e| e.created_at.as_secs() >= 20 && e.created_at.as_secs() < 30)
            .count();
        // Burst window holds 10s × 400/s vs 50s × 50/s elsewhere.
        assert!(
            in_burst as f64 > trace.len() as f64 * 0.45,
            "{in_burst} of {}",
            trace.len()
        );
    }

    #[test]
    fn churn_storm_layers_unfollows() {
        let spec = AdversitySpec::new("churn", 11).episode(Episode::ChurnStorm {
            at: Timestamp::from_secs(10),
            len: Duration::from_secs(30),
            churners: 8,
            rounds: 4,
        });
        let trace = spec.build();
        let unfollows = trace
            .events()
            .iter()
            .filter(|e| e.kind == magicrecs_types::EdgeKind::Unfollow)
            .count();
        assert_eq!(unfollows, 8 * 2, "2 of 4 rounds per churner unfollow");
    }

    #[test]
    fn injections_sort_by_event_index() {
        let spec = AdversitySpec::new("inj", 0)
            .fault_at(500, 99)
            .crash_at(100)
            .fault_at(300, 7);
        let sorted = spec.injections_sorted();
        assert_eq!(
            sorted.iter().map(|i| i.at_event()).collect::<Vec<_>>(),
            vec![100, 300, 500]
        );
        assert_eq!(sorted[0], Injection::Crash { at_event: 100 });
    }
}
