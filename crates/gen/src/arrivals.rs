//! Edge-creation arrival processes.
//!
//! The paper's design point is "O(10⁴) edge insertions per second". A
//! homogeneous Poisson process models steady-state load; bursts (flash
//! crowds around an event) are modelled by a multiplicative rate modulation
//! over an interval, which is where motif detections concentrate.

use magicrecs_types::{Duration, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Poisson arrival-time generator with optional burst windows.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate_per_sec: f64,
    rng: StdRng,
    now: Timestamp,
    bursts: Vec<Burst>,
}

/// A rate multiplier active during `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Burst start time.
    pub start: Timestamp,
    /// Burst length.
    pub len: Duration,
    /// Rate multiplier while active (e.g. 10.0 = 10× base rate).
    pub factor: f64,
}

impl PoissonProcess {
    /// Creates a process with `rate_per_sec > 0` base arrivals per second,
    /// starting at `start`.
    pub fn new(rate_per_sec: f64, start: Timestamp, seed: u64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "rate must be positive"
        );
        PoissonProcess {
            rate_per_sec,
            rng: StdRng::seed_from_u64(seed),
            now: start,
            bursts: Vec::new(),
        }
    }

    /// Adds a burst window.
    pub fn with_burst(mut self, burst: Burst) -> Self {
        self.bursts.push(burst);
        self
    }

    /// The instantaneous rate at `t` (base × product of active bursts).
    pub fn rate_at(&self, t: Timestamp) -> f64 {
        let mut r = self.rate_per_sec;
        for b in &self.bursts {
            if t >= b.start && t < b.start + b.len {
                r *= b.factor;
            }
        }
        r
    }

    /// Returns the next arrival time (thinning algorithm for the
    /// inhomogeneous case: sample at the max rate, accept with probability
    /// rate(t)/max_rate).
    pub fn next_arrival(&mut self) -> Timestamp {
        let max_rate = self.rate_per_sec
            * self
                .bursts
                .iter()
                .map(|b| b.factor.max(1.0))
                .fold(1.0, f64::max);
        loop {
            // Exponential inter-arrival at the envelope rate.
            let u: f64 = self.rng.random::<f64>().max(1e-12);
            let dt = -u.ln() / max_rate;
            self.now += Duration::from_secs_f64(dt);
            let accept: f64 = self.rng.random();
            if accept <= self.rate_at(self.now) / max_rate {
                return self.now;
            }
        }
    }

    /// Generates all arrivals up to `end` (consumes the current position).
    pub fn arrivals_until(&mut self, end: Timestamp) -> Vec<Timestamp> {
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival();
            if t >= end {
                // Rewind is unnecessary; the process is one-shot per trace.
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_rate_close_to_target() {
        let mut p = PoissonProcess::new(1000.0, Timestamp::ZERO, 42);
        let arrivals = p.arrivals_until(Timestamp::from_secs(10));
        let n = arrivals.len() as f64;
        // Expect 10_000 ± ~4 σ (σ = 100).
        assert!(
            (n - 10_000.0).abs() < 500.0,
            "got {n} arrivals for expected 10000"
        );
    }

    #[test]
    fn arrivals_strictly_increasing() {
        let mut p = PoissonProcess::new(500.0, Timestamp::from_secs(5), 1);
        let arrivals = p.arrivals_until(Timestamp::from_secs(8));
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(arrivals.first().unwrap() >= &Timestamp::from_secs(5));
        assert!(arrivals.last().unwrap() < &Timestamp::from_secs(8));
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> =
            PoissonProcess::new(100.0, Timestamp::ZERO, 7).arrivals_until(Timestamp::from_secs(2));
        let b: Vec<_> =
            PoissonProcess::new(100.0, Timestamp::ZERO, 7).arrivals_until(Timestamp::from_secs(2));
        assert_eq!(a, b);
    }

    #[test]
    fn burst_multiplies_rate() {
        let burst = Burst {
            start: Timestamp::from_secs(5),
            len: Duration::from_secs(5),
            factor: 10.0,
        };
        let mut p = PoissonProcess::new(100.0, Timestamp::ZERO, 3).with_burst(burst);
        assert_eq!(p.rate_at(Timestamp::from_secs(1)), 100.0);
        assert_eq!(p.rate_at(Timestamp::from_secs(6)), 1000.0);
        assert_eq!(p.rate_at(Timestamp::from_secs(10)), 100.0); // end exclusive

        let arrivals = p.arrivals_until(Timestamp::from_secs(15));
        let in_burst = arrivals
            .iter()
            .filter(|t| t.as_secs() >= 5 && t.as_secs() < 10)
            .count();
        let outside = arrivals.len() - in_burst;
        // Burst window (5s at 1000/s = ~5000) vs outside (10s at 100/s = ~1000).
        assert!(
            in_burst > outside * 3,
            "burst {in_burst} vs outside {outside}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = PoissonProcess::new(0.0, Timestamp::ZERO, 0);
    }
}
