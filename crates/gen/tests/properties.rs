//! Property tests for the workload generators: determinism, structural
//! invariants of generated graphs, and trace well-formedness across the
//! parameter space.

use magicrecs_gen::{GraphGen, GraphGenConfig, Scenario, ScenarioConfig, Zipf};
use magicrecs_graph::GraphStats;
use magicrecs_types::{Duration, Timestamp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generated graphs are well-formed for any parameter combination:
    /// no self-loops, sorted adjacency both directions, forward/inverse
    /// edge counts equal.
    #[test]
    fn graphs_well_formed(
        users in 10u64..500,
        mean_deg in 2.0f64..30.0,
        pop_alpha in 0.0f64..1.5,
        act_alpha in 0.0f64..1.2,
        seed in 0u64..1_000,
    ) {
        let g = GraphGen::new(GraphGenConfig {
            users,
            mean_out_degree: mean_deg,
            max_out_degree: 200,
            popularity_alpha: pop_alpha,
            activity_alpha: act_alpha,
            seed,
        })
        .generate();

        let mut fwd_edges = 0usize;
        for (a, followings) in g.iter_forward() {
            prop_assert!(!followings.contains(&a), "self-loop at {a:?}");
            prop_assert!(
                followings.windows(2).all(|w| w[0] < w[1]),
                "unsorted forward row"
            );
            fwd_edges += followings.len();
        }
        let mut inv_edges = 0usize;
        for (_, followers) in g.iter_inverse() {
            prop_assert!(
                followers.windows(2).all(|w| w[0] < w[1]),
                "unsorted inverse row"
            );
            inv_edges += followers.len();
        }
        prop_assert_eq!(fwd_edges, inv_edges);
        prop_assert_eq!(fwd_edges, g.num_follow_edges());

        // Both directions agree edge-by-edge on a sample.
        for (a, followings) in g.iter_forward().take(20) {
            for &b in followings.iter().take(5) {
                prop_assert!(g.followers(b).contains(&a));
            }
        }
    }

    /// Generation is a pure function of its config.
    #[test]
    fn generation_deterministic(seed in 0u64..500) {
        let cfg = GraphGenConfig::small().with_seed(seed).with_users(300);
        let g1 = GraphGen::new(cfg).generate();
        let g2 = GraphGen::new(cfg).generate();
        prop_assert_eq!(g1.num_follow_edges(), g2.num_follow_edges());
        let s1 = GraphStats::of(&g1);
        let s2 = GraphStats::of(&g2);
        prop_assert_eq!(s1.out_degree, s2.out_degree);
        prop_assert_eq!(s1.in_degree, s2.in_degree);
    }

    /// Traces are time-ordered, in-range, and respect their duration for
    /// any rate/duration/seed.
    #[test]
    fn traces_well_formed(
        users in 5u64..300,
        rate in 5.0f64..300.0,
        secs in 1u64..60,
        seed in 0u64..500,
    ) {
        let cfg = ScenarioConfig {
            rate_per_sec: rate,
            duration: Duration::from_secs(secs),
            start: Timestamp::from_secs(100),
            popularity_alpha: 1.0,
            seed,
        };
        let t = Scenario::steady(users, cfg);
        for w in t.events().windows(2) {
            prop_assert!(w[0].created_at <= w[1].created_at);
        }
        for e in t.events() {
            prop_assert!(e.src != e.dst, "self-edge in trace");
            prop_assert!(e.src.raw() < users && e.dst.raw() < users);
            prop_assert!(e.created_at >= cfg.start);
            prop_assert!(e.created_at < cfg.start + cfg.duration);
        }
        // Poisson count within 6σ of expectation (λ = rate × secs).
        let lambda = rate * secs as f64;
        let sigma = lambda.sqrt();
        prop_assert!(
            (t.len() as f64 - lambda).abs() < 6.0 * sigma + 10.0,
            "count {} far from λ {}",
            t.len(),
            lambda
        );
    }

    /// Zipf sampling stays in range and rank-0 dominates for α ≥ 0.5.
    #[test]
    fn zipf_in_range_and_skewed(
        n in 2usize..2_000,
        alpha in 0.5f64..2.0,
        seed in 0u64..100,
    ) {
        let z = Zipf::new(n, alpha);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut head = 0usize;
        let samples = 2_000;
        for _ in 0..samples {
            let r = z.sample(&mut rng);
            prop_assert!(r < n);
            if r == 0 {
                head += 1;
            }
        }
        // pmf(0) ≥ 1/(n·uniform-share) — check the head is clearly over
        // the uniform rate for skewed alphas (loose 3× bound).
        let uniform = samples as f64 / n as f64;
        prop_assert!(
            head as f64 > uniform * 2.0 || n < 10,
            "head {head} not above uniform {uniform:.1}"
        );
    }
}
