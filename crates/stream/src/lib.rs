//! # magicrecs-stream
//!
//! The event-transport substrate. The paper "assume\[s\] the existence of a
//! data source (e.g., message queue) that provides a stream of graph edges
//! as they are created in real-time" and attributes nearly all of the
//! system's end-to-end latency (median 7 s, p99 15 s) to "event propagation
//! delays in various message queues".
//!
//! Two transports:
//!
//! * **Simulated** ([`queue::SimulatedQueue`] over [`sched::Scheduler`]) —
//!   a discrete-event queue whose propagation delay follows a configurable
//!   [`delay::DelayModel`]; the log-normal model is fitted to the paper's
//!   median/p99 so experiment E3 reproduces the latency decomposition
//!   deterministically and without wall-clock waiting.
//! * **Live** ([`live`]) — real threads over crossbeam channels, used by the
//!   throughput experiments where actual machine speed is the measurement.
//!   [`live::run_fanout`] broadcasts the stream to share-nothing consumers
//!   (the paper's every-partition-sees-everything topology);
//!   [`live::run_sharded`] hash-routes it into one shared handler — the
//!   transport that drives `magicrecs_core::ConcurrentEngine` from N
//!   threads.
//!
//! Plus [`playback`] — the deterministic scenario-playback driver used
//! by robustness experiments: it feeds a trace into a fallible sink and
//! yields control at scheduled breakpoints (crash here, arm faults
//! there).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delay;
pub mod live;
pub mod playback;
pub mod queue;
pub mod sched;

pub use delay::DelayModel;
pub use playback::{play, PlaybackControl, PlaybackReport};
pub use queue::SimulatedQueue;
pub use sched::Scheduler;
