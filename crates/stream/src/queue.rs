//! A simulated message queue with stochastic propagation delay.
//!
//! Events published at their origin timestamp are delivered after a delay
//! drawn from the queue's [`DelayModel`]. Delivery can reorder events (as
//! real multi-hop queues do) — downstream structures must tolerate modest
//! out-of-orderness, which `magicrecs-temporal` does.

use crate::delay::DelayModel;
use crate::sched::Scheduler;
use magicrecs_types::{EdgeEvent, Timestamp};
use rand::rngs::StdRng;

/// A delayed-delivery queue of [`EdgeEvent`]s.
pub struct SimulatedQueue {
    model: DelayModel,
    rng: StdRng,
    sched: Scheduler<EdgeEvent>,
    published: u64,
    delivered: u64,
}

impl SimulatedQueue {
    /// Creates a queue with the given delay model and RNG seed.
    pub fn new(model: DelayModel, seed: u64) -> Self {
        SimulatedQueue {
            model,
            rng: DelayModel::rng(seed),
            sched: Scheduler::new(),
            published: 0,
            delivered: 0,
        }
    }

    /// A queue with the paper's delay profile (median 7 s, p99 15 s).
    pub fn paper_profile(seed: u64) -> Self {
        SimulatedQueue::new(DelayModel::paper_profile(), seed)
    }

    /// An instant-delivery queue (for tests isolating detection logic).
    pub fn instant(seed: u64) -> Self {
        SimulatedQueue::new(DelayModel::Constant(magicrecs_types::Duration::ZERO), seed)
    }

    /// Publishes an event at its origin time; it will be delivered at
    /// `created_at + sampled delay`.
    pub fn publish(&mut self, event: EdgeEvent) {
        let delay = self.model.sample(&mut self.rng);
        self.sched.schedule(event.created_at + delay, event);
        self.published += 1;
    }

    /// Publishes a whole trace.
    pub fn publish_all<I: IntoIterator<Item = EdgeEvent>>(&mut self, events: I) {
        for e in events {
            self.publish(e);
        }
    }

    /// Delivers every event due at or before `until`, in delivery order.
    /// Each item is `(delivered_at, event)`.
    pub fn deliver_until(&mut self, until: Timestamp) -> Vec<(Timestamp, EdgeEvent)> {
        let out = self.sched.drain_until(until);
        self.delivered += out.len() as u64;
        out
    }

    /// Delivers the single next event, advancing virtual time to it.
    pub fn deliver_next(&mut self) -> Option<(Timestamp, EdgeEvent)> {
        let next = self.sched.pop();
        if next.is_some() {
            self.delivered += 1;
        }
        next
    }

    /// Number of events still in flight.
    pub fn in_flight(&self) -> usize {
        self.sched.len()
    }

    /// Total events published.
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Total events delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The queue's current virtual time.
    pub fn now(&self) -> Timestamp {
        self.sched.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magicrecs_types::{Duration, Histogram, UserId};

    fn ev(src: u64, dst: u64, at: u64) -> EdgeEvent {
        EdgeEvent::follow(UserId(src), UserId(dst), Timestamp::from_secs(at))
    }

    #[test]
    fn constant_delay_shifts_delivery() {
        let mut q = SimulatedQueue::new(DelayModel::Constant(Duration::from_secs(5)), 1);
        q.publish(ev(1, 2, 10));
        let (at, e) = q.deliver_next().unwrap();
        assert_eq!(at, Timestamp::from_secs(15));
        assert_eq!(e.created_at, Timestamp::from_secs(10)); // origin preserved
    }

    #[test]
    fn instant_queue_delivers_at_origin() {
        let mut q = SimulatedQueue::instant(0);
        q.publish(ev(1, 2, 3));
        let (at, _) = q.deliver_next().unwrap();
        assert_eq!(at, Timestamp::from_secs(3));
    }

    #[test]
    fn delivery_order_is_by_arrival_not_publish() {
        // Two events: the earlier-created one gets a big delay.
        let mut q = SimulatedQueue::new(
            DelayModel::Uniform {
                min: Duration::from_secs(0),
                max: Duration::from_secs(20),
            },
            42,
        );
        for i in 0..50 {
            q.publish(ev(i, 99, i));
        }
        let delivered = q.deliver_until(Timestamp::from_secs(1000));
        assert_eq!(delivered.len(), 50);
        for w in delivered.windows(2) {
            assert!(w[0].0 <= w[1].0, "deliveries out of order");
        }
        // With a 20s delay spread over 50s of publishes, some inversion of
        // origin order must occur.
        let inverted = delivered
            .windows(2)
            .any(|w| w[0].1.created_at > w[1].1.created_at);
        assert!(inverted, "expected some origin-order inversion");
    }

    #[test]
    fn paper_profile_latency_distribution() {
        let mut q = SimulatedQueue::paper_profile(7);
        for i in 0..20_000 {
            q.publish(ev(i, 1, 0));
        }
        let mut h = Histogram::new();
        for (at, e) in q.deliver_until(Timestamp::from_secs(100_000)) {
            h.record_duration(at.saturating_since(e.created_at));
        }
        let s = h.snapshot();
        assert!((s.p50_secs() - 7.0).abs() < 0.5, "median {}", s.p50_secs());
        assert!((s.p99_secs() - 15.0).abs() < 2.0, "p99 {}", s.p99_secs());
    }

    #[test]
    fn counters_track_flow() {
        let mut q = SimulatedQueue::instant(0);
        q.publish_all((0..10).map(|i| ev(i, 1, i)));
        assert_eq!(q.published(), 10);
        assert_eq!(q.in_flight(), 10);
        let got = q.deliver_until(Timestamp::from_secs(5));
        assert_eq!(got.len(), 6); // created at 0..=5
        assert_eq!(q.delivered(), 6);
        assert_eq!(q.in_flight(), 4);
    }
}
