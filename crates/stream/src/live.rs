//! Real-thread transport for throughput measurements.
//!
//! The simulated queue measures *latency* without wall-clock cost; this
//! module measures *throughput* with real threads and crossbeam channels.
//! [`run_fanout`] reproduces the paper's fan-out topology: every consumer
//! (partition) receives the **entire** event stream, because "every
//! partition needs to handle the entire stream of edge creation events".
//! [`run_sharded`] is the shared-state alternative: one handler shared by
//! all workers (e.g. an `Arc`'d `ConcurrentEngine` driven through
//! `on_event(&self)`), with the stream hash-routed so each item is
//! processed exactly once and items with equal routing keys stay ordered.
//! [`run_sharded_batched`] is the same transport draining **bounded
//! micro-batches** per `recv` — the entry point for batch-aware handlers
//! (`on_events`-shaped engines, WAL group commit); all sharded variants
//! share one spawn/route/join implementation
//! ([`run_sharded_stateful_batched`]).

use crossbeam::channel;
use magicrecs_types::{Error, Result};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Outcome of a live run.
#[derive(Debug, Clone, Copy)]
pub struct LiveRunReport {
    /// Events pushed through the pipeline (per consumer for fan-out).
    pub events: u64,
    /// Wall-clock time of the run.
    pub wall: std::time::Duration,
}

impl LiveRunReport {
    /// Sustained events per second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall.as_secs_f64() > 0.0 {
            self.events as f64 / self.wall.as_secs_f64()
        } else {
            f64::INFINITY
        }
    }
}

/// Streams `items` through a bounded channel into `handler` on a consumer
/// thread (single producer, single consumer). Returns the measured
/// throughput.
pub fn run_spsc<T, F>(items: Vec<T>, capacity: usize, mut handler: F) -> Result<LiveRunReport>
where
    T: Send + 'static,
    F: FnMut(T) + Send + 'static,
{
    let n = items.len() as u64;
    let (tx, rx) = channel::bounded::<T>(capacity.max(1));
    let start = Instant::now();
    let consumer = thread::spawn(move || {
        for item in rx.iter() {
            handler(item);
        }
    });
    for item in items {
        tx.send(item).map_err(|_| Error::ChannelClosed("spsc"))?;
    }
    drop(tx);
    consumer
        .join()
        .map_err(|_| Error::ChannelClosed("spsc consumer panicked"))?;
    Ok(LiveRunReport {
        events: n,
        wall: start.elapsed(),
    })
}

/// Broadcasts every item to `n_consumers` consumer threads (the paper's
/// full-stream-per-partition topology). `make_handler(i)` builds the
/// handler for consumer `i`; each handler sees the full stream in order.
///
/// Returns the report where `events` counts items *per consumer*.
pub fn run_fanout<T, F, H>(
    items: Vec<T>,
    n_consumers: usize,
    make_handler: F,
) -> Result<LiveRunReport>
where
    T: Clone + Send + 'static,
    F: Fn(usize) -> H,
    H: FnMut(T) + Send + 'static,
{
    assert!(n_consumers >= 1, "need at least one consumer");
    let n = items.len() as u64;
    let mut senders = Vec::with_capacity(n_consumers);
    let mut joins = Vec::with_capacity(n_consumers);
    for i in 0..n_consumers {
        let (tx, rx) = channel::bounded::<T>(1024);
        let mut handler = make_handler(i);
        senders.push(tx);
        joins.push(thread::spawn(move || {
            for item in rx.iter() {
                handler(item);
            }
        }));
    }
    let start = Instant::now();
    for item in items {
        for tx in &senders {
            tx.send(item.clone())
                .map_err(|_| Error::ChannelClosed("fanout"))?;
        }
    }
    drop(senders);
    for j in joins {
        j.join()
            .map_err(|_| Error::ChannelClosed("fanout consumer panicked"))?;
    }
    Ok(LiveRunReport {
        events: n,
        wall: start.elapsed(),
    })
}

/// Routes every item to one of `n_workers` workers by `route(item)` and
/// handles it on that worker with the **shared** `handler` — the transport
/// for a shared-state engine, where N threads drive one `&self` engine
/// instead of each owning a partition clone.
///
/// Items with the same routing key go to the same worker in stream order;
/// that is the ordering contract a shared motif engine needs (per-target
/// `D` updates must stay sequenced). The handler receives
/// `(worker_index, item)`.
///
/// Returns the report where `events` counts items once (each item is
/// processed exactly once, unlike [`run_fanout`]).
pub fn run_sharded<T, R, F>(
    items: Vec<T>,
    n_workers: usize,
    route: R,
    handler: F,
) -> Result<LiveRunReport>
where
    T: Send + 'static,
    R: Fn(&T) -> u64,
    F: Fn(usize, T) + Send + Sync + 'static,
{
    // The stateless transport is the stateful one with unit state.
    let (report, _) = run_sharded_stateful(
        items,
        n_workers,
        |_| (),
        route,
        move |w, (), item| handler(w, item),
    )?;
    Ok(report)
}

/// [`run_sharded`] with per-worker state: `make_state(i)` builds worker
/// `i`'s private value on the producer thread before the workers spawn,
/// and the handler receives `&mut state` alongside each item.
///
/// This is the transport seam for per-partition side effects keyed by the
/// hash route — e.g. each worker owning the write-ahead-log segment for
/// its slice of the stream (`magicrecs-persist`), a private metrics
/// shard, or a connection. Same ordering contract as [`run_sharded`]:
/// items with equal routing keys stay ordered on one worker. The final
/// states are returned in worker order after the stream drains, so
/// callers can flush/inspect them.
pub fn run_sharded_stateful<T, S, M, R, F>(
    items: Vec<T>,
    n_workers: usize,
    make_state: M,
    route: R,
    handler: F,
) -> Result<(LiveRunReport, Vec<S>)>
where
    T: Send + 'static,
    S: Send + 'static,
    M: Fn(usize) -> S,
    R: Fn(&T) -> u64,
    F: Fn(usize, &mut S, T) + Send + Sync + 'static,
{
    // The per-item transport is the batched one at batch size 1.
    run_sharded_stateful_batched(
        items,
        n_workers,
        1,
        make_state,
        route,
        move |w, s, batch| {
            for item in batch.drain(..) {
                handler(w, s, item);
            }
        },
    )
}

/// Routes every item to one of `n_workers` workers by `route(item)` and
/// handles it on that worker with the **shared** batch handler, which
/// receives bounded micro-batches instead of one item per `recv`: a
/// worker takes one item blocking, then drains whatever else is already
/// queued up to `max_batch` before invoking the handler once for the
/// whole slice. Under load the queue is non-empty and batches fill, so
/// per-batch costs (an engine's snapshot pin, a WAL group commit)
/// amortize; when the stream idles batches shrink to one item and
/// latency stays at the per-item floor — batching never *waits* for a
/// batch to fill.
///
/// Same ordering contract as [`run_sharded`]: items with equal routing
/// keys land on one worker and stay in stream order, both across and
/// within batches. The handler gets `(worker, &mut batch)` and may drain
/// or reuse the buffer; it is cleared before refill either way.
pub fn run_sharded_batched<T, R, F>(
    items: Vec<T>,
    n_workers: usize,
    max_batch: usize,
    route: R,
    handler: F,
) -> Result<LiveRunReport>
where
    T: Send + 'static,
    R: Fn(&T) -> u64,
    F: Fn(usize, &mut Vec<T>) + Send + Sync + 'static,
{
    let (report, _) = run_sharded_stateful_batched(
        items,
        n_workers,
        max_batch,
        |_| (),
        route,
        move |w, (), batch| handler(w, batch),
    )?;
    Ok(report)
}

/// [`run_sharded_batched`] with per-worker state — the one spawn/route/
/// join implementation every sharded transport variant delegates to.
pub fn run_sharded_stateful_batched<T, S, M, R, F>(
    items: Vec<T>,
    n_workers: usize,
    max_batch: usize,
    make_state: M,
    route: R,
    handler: F,
) -> Result<(LiveRunReport, Vec<S>)>
where
    T: Send + 'static,
    S: Send + 'static,
    M: Fn(usize) -> S,
    R: Fn(&T) -> u64,
    F: Fn(usize, &mut S, &mut Vec<T>) + Send + Sync + 'static,
{
    assert!(n_workers >= 1, "need at least one worker");
    let max_batch = max_batch.max(1);
    let n = items.len() as u64;
    let handler = Arc::new(handler);
    let mut senders = Vec::with_capacity(n_workers);
    let mut joins = Vec::with_capacity(n_workers);
    for i in 0..n_workers {
        let (tx, rx) = channel::bounded::<T>(1024);
        let handler = Arc::clone(&handler);
        let mut state = make_state(i);
        senders.push(tx);
        joins.push(thread::spawn(move || {
            let mut batch: Vec<T> = Vec::with_capacity(max_batch);
            // Block for the first item of each batch, then drain without
            // waiting: a batch is whatever the queue already holds.
            while let Ok(item) = rx.recv() {
                batch.clear();
                batch.push(item);
                while batch.len() < max_batch {
                    match rx.try_recv() {
                        Ok(item) => batch.push(item),
                        Err(_) => break,
                    }
                }
                handler(i, &mut state, &mut batch);
            }
            state
        }));
    }
    let start = Instant::now();
    for item in items {
        let w = (route(&item) % n_workers as u64) as usize;
        senders[w]
            .send(item)
            .map_err(|_| Error::ChannelClosed("sharded-stateful"))?;
    }
    drop(senders);
    let mut states = Vec::with_capacity(n_workers);
    for j in joins {
        states.push(
            j.join()
                .map_err(|_| Error::ChannelClosed("sharded-stateful worker panicked"))?,
        );
    }
    Ok((
        LiveRunReport {
            events: n,
            wall: start.elapsed(),
        },
        states,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn spsc_processes_everything() {
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        let report = run_spsc((0..10_000u64).collect(), 256, move |v| {
            c.fetch_add(v, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(report.events, 10_000);
        assert_eq!(counter.load(Ordering::Relaxed), 9_999 * 10_000 / 2);
        assert!(report.events_per_sec() > 0.0);
    }

    #[test]
    fn fanout_every_consumer_sees_full_stream() {
        let counters: Vec<Arc<AtomicU64>> = (0..4).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let cs = counters.clone();
        let report = run_fanout((0..1_000u64).collect(), 4, move |i| {
            let c = Arc::clone(&cs[i]);
            move |_v: u64| {
                c.fetch_add(1, Ordering::Relaxed);
            }
        })
        .unwrap();
        assert_eq!(report.events, 1_000);
        for c in &counters {
            assert_eq!(c.load(Ordering::Relaxed), 1_000);
        }
    }

    #[test]
    fn fanout_preserves_order_per_consumer() {
        let last = Arc::new(AtomicU64::new(0));
        let l = Arc::clone(&last);
        run_fanout((1..=5_000u64).collect(), 2, move |_| {
            let l = Arc::clone(&l);
            let mut prev = 0u64;
            move |v: u64| {
                assert!(v > prev, "order violated: {v} after {prev}");
                prev = v;
                l.store(v, Ordering::Relaxed);
            }
        })
        .unwrap();
        assert_eq!(last.load(Ordering::Relaxed), 5_000);
    }

    #[test]
    fn empty_input_ok() {
        let report = run_spsc(Vec::<u64>::new(), 16, |_| {}).unwrap();
        assert_eq!(report.events, 0);
    }

    #[test]
    fn sharded_processes_each_item_once() {
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        let report = run_sharded(
            (0..10_000u64).collect(),
            4,
            |&v| v,
            move |_, v| {
                c.fetch_add(v, Ordering::Relaxed);
            },
        )
        .unwrap();
        assert_eq!(report.events, 10_000);
        assert_eq!(counter.load(Ordering::Relaxed), 9_999 * 10_000 / 2);
    }

    #[test]
    fn sharded_routing_is_sticky_and_ordered() {
        // Items carry (key, seq); per key, seq must arrive ascending and
        // always on the same worker.
        let violations = Arc::new(AtomicU64::new(0));
        let v = Arc::clone(&violations);
        let items: Vec<(u64, u64)> = (0..5_000u64).map(|i| (i % 8, i / 8)).collect();
        run_sharded(
            items,
            3,
            |&(k, _)| k,
            move |w, (k, seq)| {
                // Worker index must be a pure function of the key.
                if w as u64 != k % 3 {
                    v.fetch_add(1, Ordering::Relaxed);
                }
                thread_local! {
                    static LAST: std::cell::RefCell<std::collections::HashMap<u64, u64>> =
                        std::cell::RefCell::new(std::collections::HashMap::new());
                }
                let ok = LAST.with(|m| {
                    let mut m = m.borrow_mut();
                    let prev = m.insert(k, seq);
                    prev.is_none_or(|p| p < seq)
                });
                if !ok {
                    v.fetch_add(1, Ordering::Relaxed);
                }
            },
        )
        .unwrap();
        assert_eq!(violations.load(Ordering::Relaxed), 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn sharded_zero_workers_rejected() {
        let _ = run_sharded(vec![1u64], 0, |&v| v, |_, _| {});
    }

    #[test]
    fn sharded_stateful_threads_state_and_returns_it() {
        // Each worker accumulates the items it saw; the union must be the
        // full stream and routing must be key-sticky.
        let items: Vec<u64> = (0..4_000).collect();
        let (report, states) = run_sharded_stateful(
            items,
            3,
            |i| (i, Vec::<u64>::new()),
            |&v| v,
            |w, (sw, seen), v| {
                assert_eq!(w, *sw, "state handed to the wrong worker");
                assert_eq!(v % 3, w as u64, "item routed to the wrong worker");
                seen.push(v);
            },
        )
        .unwrap();
        assert_eq!(report.events, 4_000);
        let mut all: Vec<u64> = states.into_iter().flat_map(|(_, v)| v).collect();
        all.sort_unstable();
        assert_eq!(all, (0..4_000).collect::<Vec<u64>>());
    }

    #[test]
    fn sharded_stateful_preserves_per_key_order() {
        let items: Vec<(u64, u64)> = (0..3_000u64).map(|i| (i % 5, i / 5)).collect();
        let (_, states) = run_sharded_stateful(
            items,
            2,
            |_| std::collections::HashMap::<u64, u64>::new(),
            |&(k, _)| k,
            |_, last, (k, seq)| {
                let prev = last.insert(k, seq);
                assert!(prev.is_none_or(|p| p < seq), "order violated for key {k}");
            },
        )
        .unwrap();
        assert_eq!(states.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one consumer")]
    fn zero_consumers_rejected() {
        let _ = run_fanout(vec![1u64], 0, |_| |_v: u64| {});
    }

    #[test]
    fn batched_processes_each_item_once_within_bound() {
        let counter = Arc::new(AtomicU64::new(0));
        let oversize = Arc::new(AtomicU64::new(0));
        let (c, o) = (Arc::clone(&counter), Arc::clone(&oversize));
        let report = run_sharded_batched(
            (0..10_000u64).collect(),
            4,
            64,
            |&v| v,
            move |_, batch| {
                if batch.is_empty() || batch.len() > 64 {
                    o.fetch_add(1, Ordering::Relaxed);
                }
                for v in batch.drain(..) {
                    c.fetch_add(v, Ordering::Relaxed);
                }
            },
        )
        .unwrap();
        assert_eq!(report.events, 10_000);
        assert_eq!(counter.load(Ordering::Relaxed), 9_999 * 10_000 / 2);
        assert_eq!(oversize.load(Ordering::Relaxed), 0, "batch bound violated");
    }

    #[test]
    fn batched_preserves_per_key_order_across_batches() {
        let items: Vec<(u64, u64)> = (0..6_000u64).map(|i| (i % 7, i / 7)).collect();
        let (_, states) = run_sharded_stateful_batched(
            items,
            3,
            32,
            |_| std::collections::HashMap::<u64, u64>::new(),
            |&(k, _)| k,
            |_, last, batch| {
                for (k, seq) in batch.drain(..) {
                    let prev = last.insert(k, seq);
                    assert!(prev.is_none_or(|p| p < seq), "order violated for key {k}");
                }
            },
        )
        .unwrap();
        assert_eq!(states.len(), 3);
    }
}
