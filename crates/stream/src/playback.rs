//! Scenario playback: feed a time-ordered event slice into a fallible
//! sink, yielding control at scheduled indices.
//!
//! This is the seam between a declarative adversity scenario (built by
//! `magicrecs_gen::adversity`) and the engine under test. The harness
//! owns a context `C` (typically the engine plus its experiment
//! bookkeeping); the driver calls back into it for every event and at
//! every scheduled *breakpoint* — where the harness can arm an I/O fault
//! plan, crash-and-recover the engine, or stop the run. Keeping the
//! loop here, rather than in each experiment binary, means every
//! harness interprets "crash after event N" identically.

use magicrecs_types::Error;

/// What the harness wants after a breakpoint fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaybackControl {
    /// Keep feeding events.
    Continue,
    /// Stop the run here (e.g. a simulated crash the harness will
    /// recover from with a fresh playback over the remaining events).
    Stop,
}

/// Outcome of a playback run.
#[derive(Debug)]
pub struct PlaybackReport {
    /// Events successfully ingested (sink returned `Ok`).
    pub ingested: usize,
    /// Breakpoint indices that fired, in order.
    pub breaks_hit: Vec<usize>,
    /// The sink error that ended the run, with the index of the event
    /// that triggered it, if any.
    pub error: Option<(usize, Error)>,
    /// Whether a breakpoint's [`PlaybackControl::Stop`] ended the run.
    pub stopped: bool,
}

impl PlaybackReport {
    /// True when every event was ingested without error or stop.
    pub fn completed(&self) -> bool {
        !self.stopped && self.error.is_none()
    }
}

/// Plays `events` into `sink`, pausing at each index in `breakpoints`.
///
/// For each event `i` (in order): first, if `i` is a breakpoint,
/// `at_break(ctx, i)` runs and may stop the run; then `sink(ctx, i,
/// &events[i])` ingests the event. A breakpoint equal to `events.len()`
/// fires after the final event (useful for end-of-trace assertions).
/// A sink error records `(i, error)` and ends the run — the harness
/// decides whether that means recovery (typed fault) or failure.
///
/// Breakpoints are visited in sorted order regardless of input order;
/// duplicates fire once. Both callbacks receive `&mut C`, so the engine
/// under test lives in one place and the breakpoint handler can replace
/// it (crash-and-recover) between segments.
pub fn play<T, C, S, B>(
    events: &[T],
    breakpoints: &[usize],
    ctx: &mut C,
    mut sink: S,
    mut at_break: B,
) -> PlaybackReport
where
    S: FnMut(&mut C, usize, &T) -> Result<(), Error>,
    B: FnMut(&mut C, usize) -> PlaybackControl,
{
    let mut breaks: Vec<usize> = breakpoints.to_vec();
    breaks.sort_unstable();
    breaks.dedup();
    let mut next_break = 0usize;

    let mut report = PlaybackReport {
        ingested: 0,
        breaks_hit: Vec::new(),
        error: None,
        stopped: false,
    };

    for (i, event) in events.iter().enumerate() {
        while next_break < breaks.len() && breaks[next_break] <= i {
            let b = breaks[next_break];
            next_break += 1;
            report.breaks_hit.push(b);
            if at_break(ctx, b) == PlaybackControl::Stop {
                report.stopped = true;
                return report;
            }
        }
        if let Err(e) = sink(ctx, i, event) {
            report.error = Some((i, e));
            return report;
        }
        report.ingested += 1;
    }
    // Trailing breakpoints (>= events.len()) fire after the last event.
    while next_break < breaks.len() {
        let b = breaks[next_break];
        next_break += 1;
        report.breaks_hit.push(b);
        if at_break(ctx, b) == PlaybackControl::Stop {
            report.stopped = true;
            return report;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plays_everything_without_breakpoints() {
        let events = [10u64, 20, 30];
        let mut seen = Vec::new();
        let r = play(
            &events,
            &[],
            &mut seen,
            |ctx, i, e| {
                ctx.push((i, *e));
                Ok(())
            },
            |_, _| PlaybackControl::Continue,
        );
        assert!(r.completed());
        assert_eq!(r.ingested, 3);
        assert_eq!(seen, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn breakpoints_fire_before_their_event_in_sorted_order() {
        let events = [0u64; 6];
        let mut log = Vec::new();
        let r = play(
            &events,
            &[4, 2, 4, 6], // unsorted + duplicate + trailing
            &mut log,
            |ctx, i, _| {
                ctx.push(format!("ev{i}"));
                Ok(())
            },
            |ctx, b| {
                ctx.push(format!("brk{b}"));
                PlaybackControl::Continue
            },
        );
        assert!(r.completed());
        assert_eq!(r.breaks_hit, vec![2, 4, 6]);
        assert_eq!(
            log,
            vec!["ev0", "ev1", "brk2", "ev2", "ev3", "brk4", "ev4", "ev5", "brk6"]
        );
    }

    #[test]
    fn stop_at_breakpoint_halts_before_the_event() {
        let events = [0u64; 5];
        let mut ingested = 0usize;
        let r = play(
            &events,
            &[3],
            &mut ingested,
            |ctx, _, _| {
                *ctx += 1;
                Ok(())
            },
            |_, _| PlaybackControl::Stop,
        );
        assert!(r.stopped);
        assert!(!r.completed());
        assert_eq!(r.ingested, 3);
        assert_eq!(ingested, 3, "event at the stop index must not ingest");
    }

    #[test]
    fn sink_error_records_index_and_halts() {
        let events = [0u64; 5];
        let r = play(
            &events,
            &[],
            &mut (),
            |_, i, _| {
                if i == 2 {
                    Err(Error::Io("injected".into()))
                } else {
                    Ok(())
                }
            },
            |_, _| PlaybackControl::Continue,
        );
        assert_eq!(r.ingested, 2);
        let (at, err) = r.error.unwrap();
        assert_eq!(at, 2);
        assert!(matches!(err, Error::Io(_)));
    }

    #[test]
    fn context_can_be_swapped_at_a_breakpoint() {
        // The crash-and-recover shape: the breakpoint handler replaces
        // the "engine" inside the context and playback keeps going.
        struct Ctx {
            engine: Vec<usize>,
            generation: u32,
        }
        let events = [0u64; 4];
        let mut ctx = Ctx {
            engine: Vec::new(),
            generation: 0,
        };
        let r = play(
            &events,
            &[2],
            &mut ctx,
            |c, i, _| {
                c.engine.push(i);
                Ok(())
            },
            |c, _| {
                c.engine = Vec::new(); // "recovered" engine
                c.generation += 1;
                PlaybackControl::Continue
            },
        );
        assert!(r.completed());
        assert_eq!(ctx.generation, 1);
        assert_eq!(ctx.engine, vec![2, 3], "post-crash engine saw the tail");
    }
}
