//! A deterministic discrete-event scheduler.
//!
//! A binary heap of `(due_time, sequence, item)` delivering items in time
//! order, with insertion order breaking ties — so identical runs replay
//! identically regardless of heap internals.

use magicrecs_types::Timestamp;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    due: Timestamp,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap scheduler delivering items in `(time, insertion order)`.
pub struct Scheduler<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    now: Timestamp,
}

impl<T> Scheduler<T> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Timestamp::ZERO,
        }
    }

    /// Schedules `item` for delivery at `due`. Items scheduled in the past
    /// are delivered at the current time (no time travel).
    pub fn schedule(&mut self, due: Timestamp, item: T) {
        let due = due.max(self.now);
        self.heap.push(Entry {
            due,
            seq: self.next_seq,
            item,
        });
        self.next_seq += 1;
    }

    /// Delivers the next item, advancing the clock to its due time.
    pub fn pop(&mut self) -> Option<(Timestamp, T)> {
        self.heap.pop().map(|e| {
            self.now = self.now.max(e.due);
            (e.due, e.item)
        })
    }

    /// The due time of the next item, if any.
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|e| e.due)
    }

    /// Delivers all items due at or before `until`, in order.
    pub fn drain_until(&mut self, until: Timestamp) -> Vec<(Timestamp, T)> {
        let mut out = Vec::new();
        while self.peek_time().is_some_and(|t| t <= until) {
            out.push(self.pop().expect("peeked"));
        }
        self.now = self.now.max(until);
        out
    }

    /// The scheduler's current (virtual) time: the latest delivery time
    /// observed.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of pending items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no items are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for Scheduler<T> {
    fn default() -> Self {
        Scheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn delivers_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(ts(3), "c");
        s.schedule(ts(1), "a");
        s.schedule(ts(2), "b");
        assert_eq!(s.pop(), Some((ts(1), "a")));
        assert_eq!(s.pop(), Some((ts(2), "b")));
        assert_eq!(s.pop(), Some((ts(3), "c")));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut s = Scheduler::new();
        s.schedule(ts(5), 1);
        s.schedule(ts(5), 2);
        s.schedule(ts(5), 3);
        assert_eq!(s.pop().unwrap().1, 1);
        assert_eq!(s.pop().unwrap().1, 2);
        assert_eq!(s.pop().unwrap().1, 3);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut s = Scheduler::new();
        s.schedule(ts(10), ());
        s.pop();
        assert_eq!(s.now(), ts(10));
        // Scheduling in the past clamps to now.
        s.schedule(ts(1), ());
        let (due, _) = s.pop().unwrap();
        assert_eq!(due, ts(10));
        assert_eq!(s.now(), ts(10));
    }

    #[test]
    fn drain_until_stops_at_bound() {
        let mut s = Scheduler::new();
        for t in [1u64, 2, 3, 4, 5] {
            s.schedule(ts(t), t);
        }
        let drained = s.drain_until(ts(3));
        assert_eq!(drained.len(), 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.now(), ts(3));
    }

    #[test]
    fn drain_until_advances_clock_even_when_empty() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.drain_until(ts(42));
        assert_eq!(s.now(), ts(42));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut s = Scheduler::new();
        s.schedule(ts(1), "a");
        s.schedule(ts(10), "z");
        assert_eq!(s.pop().unwrap().1, "a");
        s.schedule(ts(5), "m");
        assert_eq!(s.pop().unwrap().1, "m");
        assert_eq!(s.pop().unwrap().1, "z");
    }
}
