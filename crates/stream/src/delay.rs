//! Queue-propagation delay models.
//!
//! The paper: "The system operates with a median latency of 7s and p99
//! latency of 15s … Nearly all the latency comes from event propagation
//! delays in various message queues." A log-normal is the standard shape
//! for multi-hop queue delay; [`DelayModel::fitted_lognormal`] solves for
//! (μ, σ) from a target median and p99 so experiment E3 can reproduce the
//! paper's distribution exactly.

use magicrecs_types::Duration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// z-score of the 99th percentile of the standard normal.
const Z99: f64 = 2.326_347_874;

/// A sampler of per-event propagation delays.
#[derive(Debug, Clone)]
pub enum DelayModel {
    /// Always the same delay (unit tests, fixed-latency links).
    Constant(Duration),
    /// Uniform in `[min, max)`.
    Uniform {
        /// Lower bound (inclusive).
        min: Duration,
        /// Upper bound (exclusive).
        max: Duration,
    },
    /// Log-normal: `exp(μ + σ·Z)` seconds. The multi-hop queue shape.
    LogNormal {
        /// Mean of the underlying normal (log-seconds).
        mu: f64,
        /// Std-dev of the underlying normal.
        sigma: f64,
    },
    /// A chain of hops; total delay is the sum (e.g. firehose → fan-out
    /// queue → push gateway).
    Chain(Vec<DelayModel>),
}

impl DelayModel {
    /// A log-normal fitted so the distribution's median and p99 equal the
    /// targets. With median m and p99 q: mu = ln(m), sigma = ln(q/m)/z99.
    pub fn fitted_lognormal(median: Duration, p99: Duration) -> Self {
        assert!(
            median > Duration::ZERO && p99 >= median,
            "need 0 < median <= p99"
        );
        let m = median.as_secs_f64();
        let q = p99.as_secs_f64();
        DelayModel::LogNormal {
            mu: m.ln(),
            sigma: (q / m).ln() / Z99,
        }
    }

    /// The paper's production profile: median 7 s, p99 15 s.
    pub fn paper_profile() -> Self {
        DelayModel::fitted_lognormal(Duration::from_secs(7), Duration::from_secs(15))
    }

    /// Samples one delay.
    pub fn sample(&self, rng: &mut StdRng) -> Duration {
        match self {
            DelayModel::Constant(d) => *d,
            DelayModel::Uniform { min, max } => {
                let lo = min.as_micros();
                let hi = max.as_micros().max(lo + 1);
                Duration::from_micros(rng.random_range(lo..hi))
            }
            DelayModel::LogNormal { mu, sigma } => {
                let z = standard_normal(rng);
                Duration::from_secs_f64((mu + sigma * z).exp())
            }
            DelayModel::Chain(hops) => hops
                .iter()
                .fold(Duration::ZERO, |acc, hop| acc + hop.sample(rng)),
        }
    }

    /// Convenience: a dedicated RNG for this model from a seed.
    pub fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }
}

/// Box–Muller standard-normal sample (keeps the workspace off `rand_distr`).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use magicrecs_types::Histogram;

    fn quantiles(model: &DelayModel, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = DelayModel::rng(seed);
        let mut h = Histogram::new();
        for _ in 0..n {
            h.record_duration(model.sample(&mut rng));
        }
        let s = h.snapshot();
        (s.p50_secs(), s.p99_secs())
    }

    #[test]
    fn constant_is_constant() {
        let m = DelayModel::Constant(Duration::from_millis(250));
        let mut rng = DelayModel::rng(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), Duration::from_millis(250));
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let m = DelayModel::Uniform {
            min: Duration::from_secs(1),
            max: Duration::from_secs(2),
        };
        let mut rng = DelayModel::rng(2);
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= Duration::from_secs(1) && d < Duration::from_secs(2));
        }
    }

    #[test]
    fn paper_profile_hits_median_and_p99() {
        let (p50, p99) = quantiles(&DelayModel::paper_profile(), 50_000, 42);
        assert!((p50 - 7.0).abs() < 0.5, "median {p50}");
        assert!((p99 - 15.0).abs() < 1.5, "p99 {p99}");
    }

    #[test]
    fn fitted_lognormal_respects_targets_generally() {
        let m = DelayModel::fitted_lognormal(Duration::from_secs(2), Duration::from_secs(10));
        let (p50, p99) = quantiles(&m, 50_000, 7);
        assert!((p50 - 2.0).abs() < 0.3, "median {p50}");
        assert!((p99 - 10.0).abs() < 1.5, "p99 {p99}");
    }

    #[test]
    fn chain_sums_hops() {
        let m = DelayModel::Chain(vec![
            DelayModel::Constant(Duration::from_secs(1)),
            DelayModel::Constant(Duration::from_secs(2)),
        ]);
        let mut rng = DelayModel::rng(3);
        assert_eq!(m.sample(&mut rng), Duration::from_secs(3));
    }

    #[test]
    fn chain_of_lognormals_still_positive_and_skewed() {
        let hop = DelayModel::fitted_lognormal(Duration::from_secs(2), Duration::from_secs(5));
        let m = DelayModel::Chain(vec![hop.clone(), hop.clone(), hop]);
        let (p50, p99) = quantiles(&m, 20_000, 9);
        assert!(p50 > 4.0 && p50 < 9.0, "median {p50}");
        assert!(p99 > p50, "p99 {p99} ≤ median {p50}");
    }

    #[test]
    fn deterministic_per_seed() {
        let m = DelayModel::paper_profile();
        let mut a = DelayModel::rng(5);
        let mut b = DelayModel::rng(5);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut a), m.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "median")]
    fn p99_below_median_rejected() {
        let _ = DelayModel::fitted_lognormal(Duration::from_secs(10), Duration::from_secs(5));
    }
}
