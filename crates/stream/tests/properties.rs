//! Property tests for the transport substrate: scheduler ordering,
//! queue conservation, and delay-model statistics.

use magicrecs_stream::{DelayModel, Scheduler, SimulatedQueue};
use magicrecs_types::{Duration, EdgeEvent, Histogram, Timestamp, UserId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The scheduler delivers in (time, insertion) order for any input.
    #[test]
    fn scheduler_total_order(items in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut s = Scheduler::new();
        for (seq, &due) in items.iter().enumerate() {
            s.schedule(Timestamp::from_secs(due), seq);
        }
        let mut last_due = Timestamp::ZERO;
        let mut last_seq_at_tie = None::<usize>;
        let mut delivered = 0usize;
        while let Some((due, seq)) = s.pop() {
            prop_assert!(due >= last_due, "time went backwards");
            if due == last_due {
                if let Some(prev) = last_seq_at_tie {
                    prop_assert!(seq > prev, "tie-break violated insertion order");
                }
                last_seq_at_tie = Some(seq);
            } else {
                last_seq_at_tie = Some(seq);
            }
            last_due = due;
            delivered += 1;
        }
        prop_assert_eq!(delivered, items.len());
    }

    /// drain_until splits the pending set exactly at the bound.
    #[test]
    fn drain_until_partitions(
        items in proptest::collection::vec(0u64..1_000, 1..100),
        bound in 0u64..1_000,
    ) {
        let mut s = Scheduler::new();
        for &due in &items {
            s.schedule(Timestamp::from_secs(due), due);
        }
        let drained = s.drain_until(Timestamp::from_secs(bound));
        for (due, _) in &drained {
            prop_assert!(*due <= Timestamp::from_secs(bound));
        }
        let expected: usize = items.iter().filter(|&&d| d <= bound).count();
        prop_assert_eq!(drained.len(), expected);
        prop_assert_eq!(s.len(), items.len() - expected);
    }

    /// The queue conserves events: published == delivered (+ in flight),
    /// and every delivery is at or after its origin time.
    #[test]
    fn queue_conserves_events(
        events in proptest::collection::vec((0u64..50, 0u64..50, 0u64..500), 1..150),
        horizon in 500u64..5_000,
    ) {
        let mut q = SimulatedQueue::paper_profile(42);
        for &(src, dst, at) in &events {
            q.publish(EdgeEvent::follow(
                UserId(src),
                UserId(dst),
                Timestamp::from_secs(at),
            ));
        }
        prop_assert_eq!(q.published(), events.len() as u64);
        let delivered = q.deliver_until(Timestamp::from_secs(horizon));
        for (at, e) in &delivered {
            prop_assert!(*at >= e.created_at, "delivered before origin");
        }
        prop_assert_eq!(
            delivered.len() + q.in_flight(),
            events.len(),
            "events lost or duplicated"
        );
    }

    /// Fitted log-normal delay models hit their target median across a
    /// range of (median, p99) pairs.
    #[test]
    fn fitted_lognormal_median(median_s in 1u64..20, spread in 2u64..5) {
        let median = Duration::from_secs(median_s);
        let p99 = Duration::from_secs(median_s * spread);
        let model = DelayModel::fitted_lognormal(median, p99);
        let mut rng = DelayModel::rng(7);
        let mut h = Histogram::new();
        for _ in 0..20_000 {
            h.record_duration(model.sample(&mut rng));
        }
        let got = h.snapshot().p50_secs();
        let want = median.as_secs_f64();
        prop_assert!(
            (got - want).abs() / want < 0.1,
            "median {got:.2}s vs target {want:.2}s"
        );
    }
}
