//! Property tests for the dense-ID interning layer: the dense CSR view
//! must match the old id-level semantics exactly, for arbitrary graphs
//! and caps.

use magicrecs_graph::{CapStrategy, FollowGraph, GraphBuilder};
use magicrecs_types::{DenseId, UserId};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn u(n: u64) -> UserId {
    UserId(n)
}

/// Brute-force model: forward and inverse adjacency as sorted sets.
#[derive(Default)]
struct Model {
    forward: BTreeMap<u64, BTreeSet<u64>>,
    inverse: BTreeMap<u64, BTreeSet<u64>>,
}

impl Model {
    fn from_edges(edges: &[(u64, u64)]) -> Self {
        let mut m = Model::default();
        for &(a, b) in edges {
            if a == b {
                continue; // builder drops self-loops
            }
            m.forward.entry(a).or_default().insert(b);
            m.inverse.entry(b).or_default().insert(a);
        }
        m
    }
}

fn build(edges: &[(u64, u64)]) -> FollowGraph {
    let mut b = GraphBuilder::new();
    b.extend(edges.iter().map(|&(a, bb)| (u(a), u(bb))));
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `neighbors`/`followers` round-trip through dense space exactly
    /// matches the old id-level semantics (sorted, deduplicated, complete).
    #[test]
    fn dense_csr_roundtrip_matches_id_semantics(
        edges in proptest::collection::vec((0u64..40, 0u64..40), 0..150),
    ) {
        let g = build(&edges);
        let model = Model::from_edges(&edges);

        // Every id in the universe, present or not.
        for id in 0u64..40 {
            let expect_fwd: Vec<UserId> = model
                .forward
                .get(&id)
                .map(|s| s.iter().map(|&x| u(x)).collect())
                .unwrap_or_default();
            let expect_inv: Vec<UserId> = model
                .inverse
                .get(&id)
                .map(|s| s.iter().map(|&x| u(x)).collect())
                .unwrap_or_default();
            prop_assert_eq!(g.followings(u(id)), expect_fwd, "followings({})", id);
            prop_assert_eq!(g.followers(u(id)), expect_inv, "followers({})", id);
            prop_assert_eq!(
                g.following_count(u(id)),
                model.forward.get(&id).map_or(0, |s| s.len())
            );
            prop_assert_eq!(
                g.follower_count(u(id)),
                model.inverse.get(&id).map_or(0, |s| s.len())
            );
        }

        // follows() agrees with the model for every pair in the universe.
        for a in 0u64..40 {
            for b in 0u64..40 {
                let expect = model.forward.get(&a).is_some_and(|s| s.contains(&b));
                prop_assert_eq!(g.follows(u(a), u(b)), expect, "follows({}, {})", a, b);
            }
        }
    }

    /// Dense ids are assigned to exactly the referenced vertices, are
    /// order-preserving, and the dense slices translate element-for-element
    /// to the id-level rows.
    #[test]
    fn interner_is_total_and_order_preserving(
        edges in proptest::collection::vec((0u64..60, 0u64..60), 1..120),
    ) {
        let g = build(&edges);
        let model = Model::from_edges(&edges);
        let mut referenced: BTreeSet<u64> = BTreeSet::new();
        for (&a, bs) in &model.forward {
            referenced.insert(a);
            referenced.extend(bs.iter());
        }

        prop_assert_eq!(g.num_vertices(), referenced.len());
        // Ascending raw ids ⇒ ascending, contiguous dense ids.
        for (expected_dense, &raw) in referenced.iter().enumerate() {
            let d = g.dense_of(u(raw));
            prop_assert_eq!(d, Some(DenseId(expected_dense as u32)), "raw {}", raw);
            prop_assert_eq!(g.user_of(d.unwrap()), u(raw));
        }

        // Dense follower slices translate back to the id-level rows.
        for (b, followers) in g.iter_inverse() {
            let db = g.dense_of(b).unwrap();
            let translated: Vec<UserId> = g
                .followers_dense(db)
                .iter()
                .map(|&d| g.user_of(d))
                .collect();
            prop_assert_eq!(translated, followers);
        }
    }

    /// The influencer cap commutes with interning: capped graphs also
    /// round-trip, and no vertex outside the capped edge set keeps a
    /// dense id.
    #[test]
    fn capped_graphs_roundtrip(
        edges in proptest::collection::vec((0u64..20, 20u64..45), 1..150),
        cap in 1usize..6,
    ) {
        let mut b = GraphBuilder::new();
        b.extend(edges.iter().map(|&(a, bb)| (u(a), u(bb))));
        let g = b.build_capped(CapStrategy::Oldest(cap));

        for a in 0u64..20 {
            let row = g.followings(u(a));
            prop_assert!(row.len() <= cap);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "row sorted");
            // Every kept edge is visible from both directions.
            for &bb in &row {
                prop_assert!(g.followers(bb).contains(&u(a)));
                prop_assert!(g.follows(u(a), bb));
            }
        }
        // Edge count consistency between directions.
        let fwd: usize = g.iter_forward().map(|(_, t)| t.len()).sum();
        let inv: usize = g.iter_inverse().map(|(_, t)| t.len()).sum();
        prop_assert_eq!(fwd, inv);
    }
}
