//! # magicrecs-graph
//!
//! The *static* half of the paper's design: the `A → B` follow edges,
//! "computed offline and loaded into the system periodically", held in main
//! memory with **sorted adjacency lists** so that the detector's
//! intersections run on plain sorted slices.
//!
//! Layout:
//!
//! * [`csr::CsrGraph`] — a compressed-sparse-row adjacency structure over
//!   sparse `u64` user ids (hash index → contiguous sorted target slices).
//! * [`builder::GraphBuilder`] — accumulates edges, dedups, sorts, builds.
//! * [`follow::FollowGraph`] — the pair of CSRs the system needs: forward
//!   (`A → [B]`, who each user follows) and inverse (`B → [A]`, structure
//!   `S` in the paper: the followers of each `B`), plus the influencer cap.
//! * [`partition::partition_by_source`] — splits a [`FollowGraph`] into the
//!   per-partition `S` structures of §2's distributed design.
//! * [`stats`] — degree distributions and memory accounting for the
//!   experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod follow;
pub mod io;
pub mod partition;
pub mod stats;

pub use builder::GraphBuilder;
pub use io::{load_graph, save_graph};
pub use csr::CsrGraph;
pub use follow::{CapStrategy, FollowGraph};
pub use partition::{partition_by_source, HashPartitioner, Partitioner};
pub use stats::{DegreeStats, GraphStats};
