//! # magicrecs-graph
//!
//! The *static* half of the paper's design: the `A → B` follow edges,
//! "computed offline and loaded into the system periodically", held in main
//! memory with **sorted adjacency lists** so that the detector's
//! intersections run on plain sorted slices.
//!
//! Layout:
//!
//! * [`intern::UserInterner`] — order-preserving map from sparse `u64` user
//!   ids to contiguous `u32` [`magicrecs_types::DenseId`]s, built once per
//!   graph load. Sparse ids exist only at the boundary (event ingestion,
//!   candidate emission); everything inside runs dense.
//! * [`csr::CsrGraph`] — a **true offset-array CSR** over dense ids
//!   (`offsets: Vec<u32>` + `targets: Vec<DenseId>`): an `S[B]` lookup is
//!   two array reads, no hash probe.
//! * [`builder::GraphBuilder`] — accumulates edges, dedups, sorts, interns,
//!   builds.
//! * [`follow::FollowGraph`] — interner + the pair of CSRs the system
//!   needs: forward (`A → [B]`, who each user follows) and inverse
//!   (`B → [A]`, structure `S` in the paper: the followers of each `B`),
//!   plus the influencer cap.
//! * [`delta::GraphDelta`] — versioned snapshot deltas (`MGRD`) and
//!   [`follow::FollowGraph::apply_delta`]: the periodic offline refresh
//!   for the cost of its touched rows instead of a world rebuild
//!   (`magicrecs-persist` chains these on disk).
//! * [`partition::partition_by_source`] — splits a [`FollowGraph`] into the
//!   per-partition `S` structures of §2's distributed design (each
//!   partition gets its own compact interner).
//! * [`stats`] — degree distributions and memory accounting for the
//!   experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod delta;
pub mod follow;
pub mod intern;
pub mod io;
pub mod partition;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use delta::{load_delta, save_delta, GraphDelta};
pub use follow::{CapStrategy, FollowGraph};
pub use intern::UserInterner;
pub use io::{load_graph, save_graph};
pub use partition::{partition_by_source, partition_delta_by_source, HashPartitioner, Partitioner};
pub use stats::{DegreeStats, GraphStats};
