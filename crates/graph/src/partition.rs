//! Partitioning the static graph by recommendation target (`A`).
//!
//! The paper: "To distribute this design over multiple machines, we
//! partition by the A's. This means each partition holds a disjoint set of
//! source vertices for the S data structure; thus, the same B's may reside
//! in multiple partitions. Such a design guarantees that all adjacency list
//! intersections are local to each partition."
//!
//! [`partition_by_source`] implements exactly that: partition `p` receives
//! the follow edges of every `A` with `hash(A) mod n == p`, and builds its
//! own inverse index `S_p` over just those `A`s.

use crate::builder::GraphBuilder;
use crate::follow::{CapStrategy, FollowGraph};
use magicrecs_types::{PartitionId, UserId};
use std::hash::BuildHasher;

/// Assigns each `A` vertex to a partition.
pub trait Partitioner: Send + Sync {
    /// Number of partitions.
    fn partitions(&self) -> u32;

    /// The partition owning user `a`.
    fn partition_of(&self, a: UserId) -> PartitionId;
}

/// Hash-based partitioner (the standard choice for a skew-free `A` split).
///
/// Uses the workspace Fx hasher with an avalanche finalizer so consecutive
/// ids spread uniformly.
#[derive(Debug, Clone, Copy)]
pub struct HashPartitioner {
    n: u32,
}

impl HashPartitioner {
    /// Creates a partitioner over `n ≥ 1` partitions.
    pub fn new(n: u32) -> Self {
        assert!(n >= 1, "need at least one partition");
        HashPartitioner { n }
    }
}

impl Partitioner for HashPartitioner {
    #[inline]
    fn partitions(&self) -> u32 {
        self.n
    }

    #[inline]
    fn partition_of(&self, a: UserId) -> PartitionId {
        let bh = magicrecs_types::FxBuildHasher::default();

        // Finalize with a xor-shift avalanche so modulo over small n is
        // unbiased even for sequential ids.
        let mut x = bh.hash_one(a);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        PartitionId((x % self.n as u64) as u32)
    }
}

/// Splits a [`FollowGraph`] into per-partition graphs, each holding the
/// forward rows (and therefore the inverse `S_p`) of its owned `A`s only.
///
/// The influencer cap is applied *before* partitioning (matching the paper,
/// where pruning happens in the offline pipeline), so pass the already
/// capped graph in.
///
/// Returns one [`FollowGraph`] per partition, indexed by
/// [`PartitionId::index`].
pub fn partition_by_source<P: Partitioner>(graph: &FollowGraph, part: &P) -> Vec<FollowGraph> {
    let n = part.partitions() as usize;
    let mut builders: Vec<GraphBuilder> = (0..n).map(|_| GraphBuilder::new()).collect();
    for (a, followings) in graph.iter_forward() {
        let p = part.partition_of(a).index();
        for b in followings {
            builders[p].add_edge(a, b);
        }
    }
    builders
        .into_iter()
        .map(|b| b.build_capped(CapStrategy::None))
        .collect()
}

/// Splits a [`GraphDelta`] by the same `A`-ownership rule as
/// [`partition_by_source`]: partition `p` receives the added/removed edges
/// of every `A` it owns, so applying slice `p` to partition `p`'s local
/// graph is equivalent to re-partitioning the fully-applied global graph.
///
/// Epochs carry over unchanged — the chain is global, each partition just
/// applies its slice of it.
pub fn partition_delta_by_source<P: Partitioner>(
    delta: &crate::delta::GraphDelta,
    part: &P,
) -> Vec<crate::delta::GraphDelta> {
    let n = part.partitions() as usize;
    let mut added: Vec<Vec<(UserId, UserId)>> = vec![Vec::new(); n];
    let mut removed: Vec<Vec<(UserId, UserId)>> = vec![Vec::new(); n];
    for &(a, b) in delta.added() {
        added[part.partition_of(a).index()].push((a, b));
    }
    for &(a, b) in delta.removed() {
        removed[part.partition_of(a).index()].push((a, b));
    }
    added
        .into_iter()
        .zip(removed)
        .map(|(add, rm)| {
            crate::delta::GraphDelta::new(delta.base_epoch, delta.target_epoch, add, rm)
                .expect("slices of a valid delta stay sorted and disjoint")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn u(n: u64) -> UserId {
        UserId(n)
    }

    fn sample() -> FollowGraph {
        let mut b = GraphBuilder::new();
        for a in 0..40u64 {
            b.add_edge(u(a), u(1000));
            b.add_edge(u(a), u(1000 + a % 5));
        }
        b.build()
    }

    #[test]
    fn partitions_are_disjoint_and_complete() {
        let g = sample();
        let part = HashPartitioner::new(4);
        let parts = partition_by_source(&g, &part);
        assert_eq!(parts.len(), 4);

        let total: usize = parts.iter().map(|p| p.num_follow_edges()).sum();
        assert_eq!(total, g.num_follow_edges());

        // Each A appears in exactly one partition.
        for a in 0..40u64 {
            let owning: Vec<_> = parts
                .iter()
                .enumerate()
                .filter(|(_, p)| !p.followings(u(a)).is_empty())
                .map(|(i, _)| i)
                .collect();
            assert_eq!(owning.len(), 1, "A={a} in partitions {owning:?}");
            assert_eq!(owning[0], part.partition_of(u(a)).index());
        }
    }

    #[test]
    fn same_b_resides_in_multiple_partitions() {
        // The paper: "the same B's may reside in multiple partitions."
        let g = sample();
        let parts = partition_by_source(&g, &HashPartitioner::new(4));
        let with_b1000 = parts
            .iter()
            .filter(|p| !p.followers(u(1000)).is_empty())
            .count();
        assert!(with_b1000 > 1, "B1000 should replicate across partitions");
    }

    #[test]
    fn local_followers_are_subset_of_global() {
        let g = sample();
        let parts = partition_by_source(&g, &HashPartitioner::new(4));
        let global: Vec<_> = g.followers(u(1000));
        for p in &parts {
            for a in p.followers(u(1000)) {
                assert!(global.contains(&a));
            }
        }
        // Union of locals == global.
        let mut union: Vec<UserId> = parts.iter().flat_map(|p| p.followers(u(1000))).collect();
        union.sort_unstable();
        assert_eq!(union, global);
    }

    #[test]
    fn single_partition_is_identity() {
        let g = sample();
        let parts = partition_by_source(&g, &HashPartitioner::new(1));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].num_follow_edges(), g.num_follow_edges());
        assert_eq!(parts[0].followers(u(1000)), g.followers(u(1000)));
    }

    #[test]
    fn hash_partitioner_is_deterministic_and_in_range() {
        let part = HashPartitioner::new(20);
        for a in 0..1000u64 {
            let p1 = part.partition_of(u(a));
            let p2 = part.partition_of(u(a));
            assert_eq!(p1, p2);
            assert!(p1.raw() < 20);
        }
    }

    #[test]
    fn hash_partitioner_balances_sequential_ids() {
        let part = HashPartitioner::new(8);
        let mut counts = [0usize; 8];
        for a in 0..8000u64 {
            counts[part.partition_of(u(a)).index()] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        // Expect ~1000 per partition; allow ±15%.
        assert!(min > 850 && max < 1150, "imbalanced: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let _ = HashPartitioner::new(0);
    }

    #[test]
    fn partitioned_delta_matches_repartitioned_graph() {
        let old = sample();
        let mut nb = GraphBuilder::new();
        for a in 0..40u64 {
            if a != 3 {
                nb.add_edge(u(a), u(1000)); // A3 unfollows B1000
            }
            nb.add_edge(u(a), u(1000 + a % 5));
        }
        nb.add_edge(u(41), u(2000)); // brand-new A and B
        nb.add_edge(u(7), u(2000));
        let new = nb.build();

        let part = HashPartitioner::new(4);
        let delta = crate::delta::GraphDelta::between(&old, &new, 0, 1).unwrap();
        let slices = partition_delta_by_source(&delta, &part);
        assert_eq!(slices.len(), 4);
        let total: usize = slices.iter().map(|d| d.len()).sum();
        assert_eq!(total, delta.len());

        let old_parts = partition_by_source(&old, &part);
        let want_parts = partition_by_source(&new, &part);
        for (i, (local, slice)) in old_parts.iter().zip(&slices).enumerate() {
            let applied = local.apply_delta(slice).unwrap();
            let got: Vec<_> = applied.iter_forward().collect();
            let want: Vec<_> = want_parts[i].iter_forward().collect();
            assert_eq!(got, want, "partition {i}");
        }
    }
}
