//! Binary serialization of follow graphs.
//!
//! The paper's `S` is "computed offline and loaded into the system
//! periodically". This module provides the load format: a compact
//! little-endian binary edge list with a magic header, checksummed, written
//! through any `io::Write` and read back through any `io::Read`. Delta
//! encoding + varints keep files small (sorted targets compress well).
//!
//! Format:
//! ```text
//! magic  "MGRS"            4 bytes
//! version u32 LE           4 bytes
//! rows    u64 LE           8 bytes
//! per row:
//!   src        varint u64
//!   degree     varint u64
//!   targets    varint u64 × degree, delta-encoded ascending
//! checksum u64 LE (FxHash of all decoded values)
//! ```

use crate::builder::GraphBuilder;
use crate::follow::{CapStrategy, FollowGraph};
use magicrecs_types::{Error, Result, UserId};
use std::hash::{BuildHasher, Hasher};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"MGRS";
const VERSION: u32 = 1;

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> std::io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut buf = [0u8; 1];
        r.read_exact(&mut buf)?;
        let byte = buf[0];
        if shift >= 63 && byte > 1 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "varint overflow",
            ));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

struct Check {
    h: magicrecs_types::FxHasher,
}

impl Check {
    fn new() -> Self {
        Check {
            h: magicrecs_types::FxBuildHasher::default().build_hasher(),
        }
    }
    fn mix(&mut self, v: u64) {
        self.h.write_u64(v);
    }
    fn finish(&self) -> u64 {
        self.h.finish()
    }
}

/// Writes the forward rows of `graph` to `w`.
pub fn save_graph<W: Write>(graph: &FollowGraph, w: &mut W) -> Result<()> {
    let io_err = |e: std::io::Error| Error::Invariant(format!("graph write failed: {e}"));
    w.write_all(MAGIC).map_err(io_err)?;
    w.write_all(&VERSION.to_le_bytes()).map_err(io_err)?;

    // Rows arrive in ascending id order from the dense CSR, which is
    // already the deterministic order the format wants.
    let rows: Vec<(UserId, Vec<UserId>)> = graph.iter_forward().collect();
    debug_assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));

    w.write_all(&(rows.len() as u64).to_le_bytes())
        .map_err(io_err)?;
    let mut check = Check::new();
    for (src, targets) in rows {
        check.mix(src.raw());
        write_varint(w, src.raw()).map_err(io_err)?;
        write_varint(w, targets.len() as u64).map_err(io_err)?;
        let mut prev = 0u64;
        for (i, t) in targets.iter().enumerate() {
            check.mix(t.raw());
            let delta = if i == 0 { t.raw() } else { t.raw() - prev };
            write_varint(w, delta).map_err(io_err)?;
            prev = t.raw();
        }
    }
    w.write_all(&check.finish().to_le_bytes()).map_err(io_err)?;
    Ok(())
}

/// Reads a graph previously written by [`save_graph`], optionally applying
/// an influencer cap at load time (the offline pipeline's pruning hook).
pub fn load_graph<R: Read>(r: &mut R, cap: CapStrategy) -> Result<FollowGraph> {
    let io_err = |e: std::io::Error| Error::Invariant(format!("graph read failed: {e}"));
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(Error::Invariant("bad magic: not a magicrecs graph".into()));
    }
    let mut v4 = [0u8; 4];
    r.read_exact(&mut v4).map_err(io_err)?;
    let version = u32::from_le_bytes(v4);
    if version != VERSION {
        return Err(Error::Invariant(format!(
            "unsupported graph version {version} (expected {VERSION})"
        )));
    }
    let mut n8 = [0u8; 8];
    r.read_exact(&mut n8).map_err(io_err)?;
    let rows = u64::from_le_bytes(n8);

    let mut builder = GraphBuilder::new();
    let mut check = Check::new();
    for _ in 0..rows {
        let src = read_varint(r).map_err(io_err)?;
        check.mix(src);
        let degree = read_varint(r).map_err(io_err)?;
        let mut prev = 0u64;
        for i in 0..degree {
            let delta = read_varint(r).map_err(io_err)?;
            let t = if i == 0 { delta } else { prev + delta };
            check.mix(t);
            builder.add_edge(UserId(src), UserId(t));
            prev = t;
        }
    }
    let mut c8 = [0u8; 8];
    r.read_exact(&mut c8).map_err(io_err)?;
    if u64::from_le_bytes(c8) != check.finish() {
        return Err(Error::Invariant("graph checksum mismatch".into()));
    }
    Ok(builder.build_capped(cap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    fn u(n: u64) -> UserId {
        UserId(n)
    }

    fn sample() -> FollowGraph {
        let mut b = GraphBuilder::new();
        b.extend([
            (u(1), u(10)),
            (u(1), u(1_000_000_007)),
            (u(2), u(10)),
            (u(42), u(7)),
        ]);
        b.build()
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = sample();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        let g2 = load_graph(&mut buf.as_slice(), CapStrategy::None).unwrap();
        assert_eq!(g.num_follow_edges(), g2.num_follow_edges());
        for (src, targets) in g.iter_forward() {
            assert_eq!(targets, g2.followings(src), "row {src:?}");
        }
        assert_eq!(GraphStats::of(&g), GraphStats::of(&g2));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = GraphBuilder::new().build();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        let g2 = load_graph(&mut buf.as_slice(), CapStrategy::None).unwrap();
        assert_eq!(g2.num_follow_edges(), 0);
    }

    #[test]
    fn load_applies_cap() {
        let mut b = GraphBuilder::new();
        for t in 100..120u64 {
            b.add_edge(u(1), u(t));
        }
        let g = b.build();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        let capped = load_graph(&mut buf.as_slice(), CapStrategy::Oldest(5)).unwrap();
        assert_eq!(capped.following_count(u(1)), 5);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00".to_vec();
        let err = load_graph(&mut buf.as_slice(), CapStrategy::None).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = load_graph(&mut buf.as_slice(), CapStrategy::None).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let g = sample();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        // Flip a byte in the payload (after header, before checksum).
        let mid = buf.len() / 2;
        buf[mid] ^= 0x01;
        let result = load_graph(&mut buf.as_slice(), CapStrategy::None);
        assert!(result.is_err(), "corruption must not load silently");
    }

    #[test]
    fn truncation_detected() {
        let g = sample();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(load_graph(&mut buf.as_slice(), CapStrategy::None).is_err());
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v, "v={v}");
        }
    }

    #[test]
    fn delta_encoding_compresses_sorted_targets() {
        // Dense consecutive targets: one byte per edge after the first.
        let mut b = GraphBuilder::new();
        for t in 1_000_000..1_001_000u64 {
            b.add_edge(u(1), u(t));
        }
        let g = b.build();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        // 1000 edges; raw u64s would be 8000 bytes. Expect well under half.
        assert!(buf.len() < 2_000, "no compression: {} bytes", buf.len());
    }
}
