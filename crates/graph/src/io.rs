//! Binary serialization of follow graphs.
//!
//! The paper's `S` is "computed offline and loaded into the system
//! periodically". This module provides the load format: a compact
//! little-endian binary edge list with a magic header, checksummed, written
//! through any `io::Write` and read back through any `io::Read`. Delta
//! encoding + varints keep files small (sorted targets compress well).
//!
//! Format:
//! ```text
//! magic  "MGRS"            4 bytes
//! version u32 LE           4 bytes
//! rows    u64 LE           8 bytes
//! per row:
//!   src        varint u64, delta-encoded ascending across rows
//!   degree     varint u64
//!   targets    varint u64 × degree, delta-encoded ascending
//! checksum u64 LE (FxHash of all decoded values)
//! ```
//!
//! (Row sources were written raw in format v1; v2 delta-encodes them like
//! targets and the loader **rejects** non-monotone sources and targets
//! instead of silently merging them — a corrupted length byte can no
//! longer smear one row into another unnoticed. The loader still reads
//! v1 files — base snapshots published by earlier releases must keep
//! loading — with the same monotonicity enforcement; the writer only
//! emits v2.)
//!
//! **Failure containment.** Loading never panics on hostile input: every
//! malformed shape — wrong magic, unsupported version, short read,
//! varint overflow, non-monotone delta targets, checksum mismatch — comes
//! back as [`magicrecs_types::Error::Corrupt`], and OS-level read failures
//! as [`magicrecs_types::Error::Io`]. The varint helpers are `pub` so the
//! snapshot-delta codec ([`crate::delta`]) and the persistence subsystem
//! (`magicrecs-persist`) reuse one encoding.

use crate::builder::GraphBuilder;
use crate::follow::{CapStrategy, FollowGraph};
use magicrecs_types::{Error, Result, UserId};
use std::hash::{BuildHasher, Hasher};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"MGRS";
const VERSION: u32 = 2;

/// Writes `v` as a little-endian base-128 varint (1–10 bytes).
pub fn write_varint<W: Write>(w: &mut W, mut v: u64) -> std::io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads a varint written by [`write_varint`]. Overflow (more than 64
/// payload bits) and truncation surface as `io::Error`s; callers going
/// through [`read_varint_checked`] get them as typed [`Error`]s.
pub fn read_varint<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut buf = [0u8; 1];
        r.read_exact(&mut buf)?;
        let byte = buf[0];
        if shift >= 63 && byte > 1 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "varint overflow",
            ));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Classifies an `io::Error` from a *read* path: truncation and malformed
/// varints are data corruption; anything else is an OS-level failure.
pub fn read_err(context: &str, e: std::io::Error) -> Error {
    match e.kind() {
        std::io::ErrorKind::UnexpectedEof => Error::Corrupt(format!("{context}: truncated input")),
        std::io::ErrorKind::InvalidData => Error::Corrupt(format!("{context}: {e}")),
        _ => Error::Io(format!("{context}: {e}")),
    }
}

/// [`read_varint`] with typed errors.
pub fn read_varint_checked<R: Read>(r: &mut R, context: &str) -> Result<u64> {
    read_varint(r).map_err(|e| read_err(context, e))
}

/// Reads exactly `buf.len()` bytes with typed errors.
pub fn read_exact_checked<R: Read>(r: &mut R, buf: &mut [u8], context: &str) -> Result<()> {
    r.read_exact(buf).map_err(|e| read_err(context, e))
}

/// Order-insensitive-free checksum accumulator shared by the graph and
/// delta codecs: an FxHash over every decoded value in decode order.
pub struct Check {
    h: magicrecs_types::FxHasher,
}

impl Default for Check {
    fn default() -> Self {
        Check::new()
    }
}

impl Check {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Check {
            h: magicrecs_types::FxBuildHasher::default().build_hasher(),
        }
    }

    /// Folds one value into the checksum.
    pub fn mix(&mut self, v: u64) {
        self.h.write_u64(v);
    }

    /// The accumulated checksum.
    pub fn finish(&self) -> u64 {
        self.h.finish()
    }
}

/// Reads one element of a strictly-ascending delta-encoded sequence:
/// the first element is the raw value, later ones add a non-zero varint
/// delta to `prev` with overflow checking (a zero or overflowing delta
/// is corruption — the writers never produce either). `what` names the
/// decoded value in error messages; this is the single decode shared by
/// the graph, delta, and checkpoint codecs so their monotonicity
/// enforcement cannot drift apart.
pub fn read_ascending_step<R: Read>(
    r: &mut R,
    first: bool,
    prev: u64,
    context: &str,
    what: &str,
) -> Result<u64> {
    let delta = read_varint_checked(r, context)?;
    if first {
        return Ok(delta);
    }
    if delta == 0 {
        return Err(Error::Corrupt(format!(
            "{context}: non-monotone {what} (duplicate after {prev})"
        )));
    }
    prev.checked_add(delta)
        .ok_or_else(|| Error::Corrupt(format!("{context}: {what} overflows past {prev}")))
}

/// Writes one delta-encoded ascending row (strictly increasing `ids`)
/// as `count, delta…`, mixing every id into `check`.
pub(crate) fn write_ascending_row<W: Write>(
    w: &mut W,
    ids: &[UserId],
    check: &mut Check,
) -> std::io::Result<()> {
    write_varint(w, ids.len() as u64)?;
    let mut prev = 0u64;
    for (i, t) in ids.iter().enumerate() {
        check.mix(t.raw());
        let delta = if i == 0 { t.raw() } else { t.raw() - prev };
        write_varint(w, delta)?;
        prev = t.raw();
    }
    Ok(())
}

/// Reads a row written by [`write_ascending_row`], enforcing strict
/// monotonicity (a zero delta past the first entry, or an overflowing
/// one, is corruption — the format never produces either).
pub(crate) fn read_ascending_row<R: Read>(
    r: &mut R,
    check: &mut Check,
    context: &str,
    mut push: impl FnMut(UserId),
) -> Result<()> {
    let count = read_varint_checked(r, context)?;
    let mut prev = 0u64;
    for i in 0..count {
        let t = read_ascending_step(r, i == 0, prev, context, "delta target")?;
        check.mix(t);
        push(UserId(t));
        prev = t;
    }
    Ok(())
}

/// Writes the forward rows of `graph` to `w`.
pub fn save_graph<W: Write>(graph: &FollowGraph, w: &mut W) -> Result<()> {
    let io_err = |e: std::io::Error| Error::Io(format!("graph write failed: {e}"));
    w.write_all(MAGIC).map_err(io_err)?;
    w.write_all(&VERSION.to_le_bytes()).map_err(io_err)?;

    // Rows arrive in ascending id order from the dense CSR, which is
    // already the deterministic order the format wants.
    let rows: Vec<(UserId, Vec<UserId>)> = graph.iter_forward().collect();
    debug_assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));

    w.write_all(&(rows.len() as u64).to_le_bytes())
        .map_err(io_err)?;
    let mut check = Check::new();
    let mut prev_src = 0u64;
    for (i, (src, targets)) in rows.iter().enumerate() {
        check.mix(src.raw());
        let delta = if i == 0 {
            src.raw()
        } else {
            src.raw() - prev_src
        };
        write_varint(w, delta).map_err(io_err)?;
        prev_src = src.raw();
        write_ascending_row(w, targets, &mut check).map_err(io_err)?;
    }
    w.write_all(&check.finish().to_le_bytes()).map_err(io_err)?;
    Ok(())
}

/// Reads a graph previously written by [`save_graph`], optionally applying
/// an influencer cap at load time (the offline pipeline's pruning hook).
///
/// Corrupt or truncated input is rejected with [`Error::Corrupt`] — bad
/// magic, unsupported version, short reads, non-monotone sources or delta
/// targets, and checksum mismatches all refuse to load rather than
/// producing a silently wrong graph.
pub fn load_graph<R: Read>(r: &mut R, cap: CapStrategy) -> Result<FollowGraph> {
    let ctx = "graph load";
    let mut magic = [0u8; 4];
    read_exact_checked(r, &mut magic, ctx)?;
    if &magic != MAGIC {
        return Err(Error::Corrupt("bad magic: not a magicrecs graph".into()));
    }
    let mut v4 = [0u8; 4];
    read_exact_checked(r, &mut v4, ctx)?;
    let version = u32::from_le_bytes(v4);
    if version == 0 || version > VERSION {
        return Err(Error::Corrupt(format!(
            "unsupported graph version {version} (expected 1..={VERSION})"
        )));
    }
    let mut n8 = [0u8; 8];
    read_exact_checked(r, &mut n8, ctx)?;
    let rows = u64::from_le_bytes(n8);

    let mut builder = GraphBuilder::new();
    let mut check = Check::new();
    let mut prev_src = 0u64;
    for i in 0..rows {
        // v1 wrote sources raw; v2 delta-encodes them. Both are strictly
        // ascending on disk (the writer walks the dense CSR in id order),
        // so monotonicity is enforced for both.
        let src = if version == 1 {
            let src = read_varint_checked(r, ctx)?;
            if i > 0 && src <= prev_src {
                return Err(Error::Corrupt(format!(
                    "{ctx}: non-monotone row source ({src} after {prev_src})"
                )));
            }
            src
        } else {
            read_ascending_step(r, i == 0, prev_src, ctx, "row source")?
        };
        check.mix(src);
        prev_src = src;
        read_ascending_row(r, &mut check, ctx, |t| {
            builder.add_edge(UserId(src), t);
        })?;
    }
    let mut c8 = [0u8; 8];
    read_exact_checked(r, &mut c8, ctx)?;
    if u64::from_le_bytes(c8) != check.finish() {
        return Err(Error::Corrupt("graph checksum mismatch".into()));
    }
    Ok(builder.build_capped(cap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    fn u(n: u64) -> UserId {
        UserId(n)
    }

    fn sample() -> FollowGraph {
        let mut b = GraphBuilder::new();
        b.extend([
            (u(1), u(10)),
            (u(1), u(1_000_000_007)),
            (u(2), u(10)),
            (u(42), u(7)),
        ]);
        b.build()
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = sample();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        let g2 = load_graph(&mut buf.as_slice(), CapStrategy::None).unwrap();
        assert_eq!(g.num_follow_edges(), g2.num_follow_edges());
        for (src, targets) in g.iter_forward() {
            assert_eq!(targets, g2.followings(src), "row {src:?}");
        }
        assert_eq!(GraphStats::of(&g), GraphStats::of(&g2));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = GraphBuilder::new().build();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        let g2 = load_graph(&mut buf.as_slice(), CapStrategy::None).unwrap();
        assert_eq!(g2.num_follow_edges(), 0);
    }

    #[test]
    fn load_applies_cap() {
        let mut b = GraphBuilder::new();
        for t in 100..120u64 {
            b.add_edge(u(1), u(t));
        }
        let g = b.build();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        let capped = load_graph(&mut buf.as_slice(), CapStrategy::Oldest(5)).unwrap();
        assert_eq!(capped.following_count(u(1)), 5);
    }

    /// Serializes a graph in the v1 layout (raw varint row sources,
    /// delta-encoded targets, same checksum) — what pre-v2 releases
    /// published as base snapshots.
    fn save_graph_v1(graph: &FollowGraph) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        let rows: Vec<(UserId, Vec<UserId>)> = graph.iter_forward().collect();
        buf.extend_from_slice(&(rows.len() as u64).to_le_bytes());
        let mut check = Check::new();
        for (src, targets) in rows {
            check.mix(src.raw());
            write_varint(&mut buf, src.raw()).unwrap();
            write_ascending_row(&mut buf, &targets, &mut check).unwrap();
        }
        buf.extend_from_slice(&check.finish().to_le_bytes());
        buf
    }

    #[test]
    fn v1_snapshot_still_loads() {
        let g = sample();
        let buf = save_graph_v1(&g);
        let g2 = load_graph(&mut buf.as_slice(), CapStrategy::None).unwrap();
        assert_eq!(g.num_follow_edges(), g2.num_follow_edges());
        for (src, targets) in g.iter_forward() {
            assert_eq!(targets, g2.followings(src), "row {src:?}");
        }
    }

    #[test]
    fn v1_non_monotone_row_source_rejected() {
        // Two rows, second src <= first: v1 files were written ascending,
        // so this is corruption, not a legal v1 file.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes());
        write_varint(&mut buf, 5).unwrap(); // src
        write_varint(&mut buf, 1).unwrap(); // degree
        write_varint(&mut buf, 9).unwrap(); // target
        write_varint(&mut buf, 5).unwrap(); // duplicate src
        write_varint(&mut buf, 1).unwrap();
        write_varint(&mut buf, 9).unwrap();
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = load_graph(&mut buf.as_slice(), CapStrategy::None).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("non-monotone"), "{err}");
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00".to_vec();
        let err = load_graph(&mut buf.as_slice(), CapStrategy::None).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = load_graph(&mut buf.as_slice(), CapStrategy::None).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let g = sample();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        // Flip a byte in the payload (after header, before checksum).
        let mid = buf.len() / 2;
        buf[mid] ^= 0x01;
        let result = load_graph(&mut buf.as_slice(), CapStrategy::None);
        assert!(
            matches!(result, Err(Error::Corrupt(_))),
            "corruption must not load silently: {result:?}"
        );
    }

    #[test]
    fn truncation_detected() {
        let g = sample();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        let err = load_graph(&mut buf.as_slice(), CapStrategy::None).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn every_truncation_point_is_a_typed_error() {
        let g = sample();
        let mut full = Vec::new();
        save_graph(&g, &mut full).unwrap();
        for len in 0..full.len() {
            let result = load_graph(&mut &full[..len], CapStrategy::None);
            assert!(
                matches!(result, Err(Error::Corrupt(_))),
                "truncation at {len}/{} must be Corrupt, got {result:?}",
                full.len()
            );
        }
    }

    #[test]
    fn non_monotone_delta_target_rejected() {
        // One row, two targets, second delta == 0 (duplicate target).
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        write_varint(&mut buf, 1).unwrap(); // src
        write_varint(&mut buf, 2).unwrap(); // degree
        write_varint(&mut buf, 5).unwrap(); // first target
        write_varint(&mut buf, 0).unwrap(); // zero delta: non-monotone
        buf.extend_from_slice(&0u64.to_le_bytes()); // (never reaches checksum)
        let err = load_graph(&mut buf.as_slice(), CapStrategy::None).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("non-monotone"), "{err}");
    }

    #[test]
    fn overflowing_delta_target_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        write_varint(&mut buf, 1).unwrap(); // src
        write_varint(&mut buf, 2).unwrap(); // degree
        write_varint(&mut buf, u64::MAX).unwrap(); // first target = MAX
        write_varint(&mut buf, 10).unwrap(); // would overflow
        let err = load_graph(&mut buf.as_slice(), CapStrategy::None).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("overflow"), "{err}");
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v, "v={v}");
        }
    }

    #[test]
    fn delta_encoding_compresses_sorted_targets() {
        // Dense consecutive targets: one byte per edge after the first.
        let mut b = GraphBuilder::new();
        for t in 1_000_000..1_001_000u64 {
            b.add_edge(u(1), u(t));
        }
        let g = b.build();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        // 1000 edges; raw u64s would be 8000 bytes. Expect well under half.
        assert!(buf.len() < 2_000, "no compression: {} bytes", buf.len());
    }
}
