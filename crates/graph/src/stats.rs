//! Degree-distribution and size statistics for graphs.
//!
//! Used by the experiments to (a) verify that generated graphs have the
//! heavy-tailed shape of the real Twitter follow graph (Myers et al.,
//! WWW'14) and (b) report the memory effects of the influencer cap (E9).

use crate::csr::CsrGraph;
use crate::follow::FollowGraph;

/// Summary statistics of a degree sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices with degree ≥ 1.
    pub vertices: usize,
    /// Total degree (== edge count for one direction).
    pub total: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree over vertices with degree ≥ 1.
    pub mean: f64,
    /// Median degree over vertices with degree ≥ 1.
    pub median: usize,
    /// 99th-percentile degree.
    pub p99: usize,
}

impl DegreeStats {
    /// Computes stats from a degree sequence (zeros are filtered out).
    pub fn from_degrees(mut degrees: Vec<usize>) -> Self {
        degrees.retain(|&d| d > 0);
        if degrees.is_empty() {
            return DegreeStats {
                vertices: 0,
                total: 0,
                max: 0,
                mean: 0.0,
                median: 0,
                p99: 0,
            };
        }
        degrees.sort_unstable();
        let total: usize = degrees.iter().sum();
        let n = degrees.len();
        DegreeStats {
            vertices: n,
            total,
            max: degrees[n - 1],
            mean: total as f64 / n as f64,
            median: degrees[n / 2],
            p99: degrees[((n as f64 * 0.99) as usize).min(n - 1)],
        }
    }

    /// Skew ratio max/mean — a quick heavy-tail indicator (≫ 1 for
    /// power-law graphs, ≈ 1 for regular graphs).
    pub fn skew(&self) -> f64 {
        if self.mean > 0.0 {
            self.max as f64 / self.mean
        } else {
            0.0
        }
    }
}

/// Combined statistics of a [`FollowGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Out-degree (followings per user) stats.
    pub out_degree: DegreeStats,
    /// In-degree (followers per account) stats.
    pub in_degree: DegreeStats,
    /// Total follow edges.
    pub edges: usize,
    /// Approximate resident bytes (both directions).
    pub memory_bytes: usize,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn of(g: &FollowGraph) -> Self {
        GraphStats {
            out_degree: degree_stats(g.forward_csr()),
            in_degree: degree_stats(g.inverse_csr()),
            edges: g.num_follow_edges(),
            memory_bytes: g.memory_bytes(),
        }
    }
}

fn degree_stats(csr: &CsrGraph) -> DegreeStats {
    DegreeStats::from_degrees(csr.iter().map(|(_, t)| t.len()).collect())
}

/// Log-binned degree histogram: returns `(bin_upper_bound, count)` pairs
/// with power-of-two bins, suitable for eyeballing a power law.
pub fn degree_histogram(csr: &CsrGraph) -> Vec<(usize, usize)> {
    let mut bins: Vec<usize> = Vec::new();
    for (_, t) in csr.iter() {
        let d = t.len();
        let bin = (usize::BITS - d.leading_zeros()) as usize; // floor(log2)+1
        if bins.len() <= bin {
            bins.resize(bin + 1, 0);
        }
        bins[bin] += 1;
    }
    bins.into_iter()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .map(|(b, c)| ((1usize << b).saturating_sub(1).max(1), c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use magicrecs_types::UserId;

    fn u(n: u64) -> UserId {
        UserId(n)
    }

    #[test]
    fn stats_on_small_graph() {
        let mut b = GraphBuilder::new();
        // degrees: u1 -> 3, u2 -> 1
        b.extend([(u(1), u(10)), (u(1), u(11)), (u(1), u(12)), (u(2), u(10))]);
        let g = b.build();
        let s = GraphStats::of(&g);
        assert_eq!(s.edges, 4);
        assert_eq!(s.out_degree.vertices, 2);
        assert_eq!(s.out_degree.max, 3);
        assert_eq!(s.out_degree.total, 4);
        assert_eq!(s.in_degree.max, 2); // u10 followed by both
        assert!(s.memory_bytes > 0);
    }

    #[test]
    fn empty_degree_stats() {
        let s = DegreeStats::from_degrees(vec![]);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.skew(), 0.0);
    }

    #[test]
    fn zeros_filtered() {
        let s = DegreeStats::from_degrees(vec![0, 0, 5, 1]);
        assert_eq!(s.vertices, 2);
        assert_eq!(s.total, 6);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn skew_detects_heavy_tail() {
        let regular = DegreeStats::from_degrees(vec![10; 100]);
        assert!((regular.skew() - 1.0).abs() < 1e-9);
        let mut heavy = vec![1usize; 99];
        heavy.push(1000);
        let heavy = DegreeStats::from_degrees(heavy);
        assert!(heavy.skew() > 50.0);
    }

    #[test]
    fn histogram_bins_cover_all_vertices() {
        let mut b = GraphBuilder::new();
        for a in 0..32u64 {
            for t in 0..=(a % 8) {
                b.add_edge(u(a), u(1000 + t));
            }
        }
        let csr = b.build_csr();
        let hist = degree_histogram(&csr);
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, csr.num_sources());
    }

    #[test]
    fn median_and_p99() {
        let s = DegreeStats::from_degrees((1..=100).collect());
        assert_eq!(s.median, 51); // element at index 50
        assert_eq!(s.p99, 100);
    }
}
