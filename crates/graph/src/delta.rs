//! Versioned snapshot deltas for the static graph `S`.
//!
//! The paper loads `S` "periodically" from an offline pipeline. A full
//! reload re-sorts the world's edge list, re-interns every vertex, and
//! rebuilds both CSRs — all to pick up a refresh that typically touches a
//! sliver of rows. A [`GraphDelta`] encodes exactly that sliver: edge
//! additions and removals (plus any brand-new vertices, implied by the
//! added edges) against a **base snapshot epoch**, so
//! [`FollowGraph::apply_delta`] can rebuild only the touched CSR rows and
//! extend the interner instead of re-interning everything.
//!
//! Binary format (same varint/delta machinery as [`crate::io`]):
//!
//! ```text
//! magic  "MGRD"            4 bytes
//! version u32 LE           4 bytes
//! base_epoch   u64 LE      8 bytes
//! target_epoch u64 LE      8 bytes
//! added rows   u64 LE      8 bytes
//! per row:
//!   src        varint u64, delta-encoded ascending across rows
//!   degree     varint u64
//!   targets    varint u64 × degree, delta-encoded ascending
//! removed rows u64 LE      8 bytes   (same row shape)
//! checksum u64 LE (FxHash of epochs + all decoded ids)
//! ```
//!
//! Loading is hardened like the graph codec: bad magic, truncation,
//! non-monotone sources/targets, and checksum mismatches are
//! [`Error::Corrupt`], never panics or silently wrong deltas.
//!
//! **Application semantics are strict.** Adding an edge that already
//! exists, or removing one that does not, is an error — so applying a
//! delta out of chain order (or twice) fails loudly instead of quietly
//! corrupting `S`. Vertices orphaned by removals stay interned (they cost
//! two offset-array slots); the periodic full-snapshot rebase compacts
//! them away.

use crate::csr::{CsrGraph, CsrRowBuilder};
use crate::follow::FollowGraph;
use crate::io::{
    read_ascending_row, read_ascending_step, read_exact_checked, write_ascending_row, write_varint,
    Check,
};
use magicrecs_types::{DenseId, Error, FxHashMap, Result, UserId};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"MGRD";
const VERSION: u32 = 1;

/// A set of edge additions and removals taking a [`FollowGraph`] from
/// snapshot epoch `base_epoch` to `target_epoch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphDelta {
    /// Epoch of the snapshot this delta applies on top of.
    pub base_epoch: u64,
    /// Epoch of the snapshot produced by applying this delta.
    pub target_epoch: u64,
    /// `(src, dst)`-sorted, deduplicated edges to add.
    added: Vec<(UserId, UserId)>,
    /// `(src, dst)`-sorted, deduplicated edges to remove.
    removed: Vec<(UserId, UserId)>,
}

impl GraphDelta {
    /// Builds a delta after validating the edge lists: sorted,
    /// deduplicated, free of self-loops, disjoint between added and
    /// removed, and `target_epoch > base_epoch`.
    pub fn new(
        base_epoch: u64,
        target_epoch: u64,
        added: Vec<(UserId, UserId)>,
        removed: Vec<(UserId, UserId)>,
    ) -> Result<Self> {
        if target_epoch <= base_epoch {
            return Err(Error::InvalidConfig(format!(
                "delta target epoch {target_epoch} must exceed base epoch {base_epoch}"
            )));
        }
        for (name, list) in [("added", &added), ("removed", &removed)] {
            if !list.windows(2).all(|w| w[0] < w[1]) {
                return Err(Error::InvalidConfig(format!(
                    "delta {name} edges must be (src, dst)-sorted and deduplicated"
                )));
            }
            if let Some(&(a, b)) = list.iter().find(|&&(a, b)| a == b) {
                return Err(Error::InvalidConfig(format!(
                    "delta {name} edges contain self-loop {a:?}->{b:?}"
                )));
            }
        }
        // Sorted lists: one merge walk finds any edge in both.
        let (mut i, mut j) = (0usize, 0usize);
        while i < added.len() && j < removed.len() {
            match added[i].cmp(&removed[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let (a, b) = added[i];
                    return Err(Error::InvalidConfig(format!(
                        "edge {a:?}->{b:?} appears in both added and removed"
                    )));
                }
            }
        }
        Ok(GraphDelta {
            base_epoch,
            target_epoch,
            added,
            removed,
        })
    }

    /// Computes the delta between two built graphs (the offline pipeline's
    /// diff step; also the reference in tests and benches).
    pub fn between(
        old: &FollowGraph,
        new: &FollowGraph,
        base_epoch: u64,
        target_epoch: u64,
    ) -> Result<Self> {
        let mut added = Vec::new();
        let mut removed = Vec::new();
        let mut old_rows = old.iter_forward().peekable();
        let mut new_rows = new.iter_forward().peekable();
        loop {
            match (old_rows.peek(), new_rows.peek()) {
                (None, None) => break,
                (Some(_), None) => {
                    let (a, ts) = old_rows.next().expect("peeked");
                    removed.extend(ts.into_iter().map(|b| (a, b)));
                }
                (None, Some(_)) => {
                    let (a, ts) = new_rows.next().expect("peeked");
                    added.extend(ts.into_iter().map(|b| (a, b)));
                }
                (Some((oa, _)), Some((na, _))) => match oa.cmp(na) {
                    std::cmp::Ordering::Less => {
                        let (a, ts) = old_rows.next().expect("peeked");
                        removed.extend(ts.into_iter().map(|b| (a, b)));
                    }
                    std::cmp::Ordering::Greater => {
                        let (a, ts) = new_rows.next().expect("peeked");
                        added.extend(ts.into_iter().map(|b| (a, b)));
                    }
                    std::cmp::Ordering::Equal => {
                        let (a, ots) = old_rows.next().expect("peeked");
                        let (_, nts) = new_rows.next().expect("peeked");
                        diff_sorted(&ots, &nts, |b| removed.push((a, b)), |b| added.push((a, b)));
                    }
                },
            }
        }
        GraphDelta::new(base_epoch, target_epoch, added, removed)
    }

    /// The edges this delta adds, `(src, dst)`-sorted.
    pub fn added(&self) -> &[(UserId, UserId)] {
        &self.added
    }

    /// The edges this delta removes, `(src, dst)`-sorted.
    pub fn removed(&self) -> &[(UserId, UserId)] {
        &self.removed
    }

    /// Total edges touched (added + removed).
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Whether the delta changes nothing (epoch bump only).
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Walks two sorted, deduplicated lists, reporting entries only in `old`
/// to `on_removed` and entries only in `new` to `on_added`.
fn diff_sorted(
    old: &[UserId],
    new: &[UserId],
    mut on_removed: impl FnMut(UserId),
    mut on_added: impl FnMut(UserId),
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() || j < new.len() {
        if j >= new.len() || (i < old.len() && old[i] < new[j]) {
            on_removed(old[i]);
            i += 1;
        } else if i >= old.len() || new[j] < old[i] {
            on_added(new[j]);
            j += 1;
        } else {
            i += 1;
            j += 1;
        }
    }
}

/// Groups a `(src, dst)`-sorted edge list into rows and writes them with
/// shared-prefix delta encoding (sources ascending across rows, targets
/// ascending within).
fn write_edge_rows<W: Write>(
    w: &mut W,
    edges: &[(UserId, UserId)],
    check: &mut Check,
) -> std::io::Result<()> {
    let rows = edges.chunk_by(|x, y| x.0 == y.0);
    w.write_all(&(rows.clone().count() as u64).to_le_bytes())?;
    let mut prev_src = 0u64;
    let mut first = true;
    let mut targets = Vec::new();
    for row in rows {
        let src = row[0].0.raw();
        check.mix(src);
        write_varint(w, if first { src } else { src - prev_src })?;
        first = false;
        prev_src = src;
        targets.clear();
        targets.extend(row.iter().map(|&(_, b)| b));
        write_ascending_row(w, &targets, check)?;
    }
    Ok(())
}

/// Reads rows written by [`write_edge_rows`] back into a flat sorted edge
/// list, enforcing monotone sources and targets.
fn read_edge_rows<R: Read>(
    r: &mut R,
    check: &mut Check,
    context: &str,
    out: &mut Vec<(UserId, UserId)>,
) -> Result<()> {
    let mut n8 = [0u8; 8];
    read_exact_checked(r, &mut n8, context)?;
    let rows = u64::from_le_bytes(n8);
    let mut prev_src = 0u64;
    for i in 0..rows {
        let src = read_ascending_step(r, i == 0, prev_src, context, "row source")?;
        check.mix(src);
        prev_src = src;
        read_ascending_row(r, check, context, |t| out.push((UserId(src), t)))?;
    }
    Ok(())
}

/// Writes `delta` to `w` in the `MGRD` format.
pub fn save_delta<W: Write>(delta: &GraphDelta, w: &mut W) -> Result<()> {
    let io_err = |e: std::io::Error| Error::Io(format!("delta write failed: {e}"));
    w.write_all(MAGIC).map_err(io_err)?;
    w.write_all(&VERSION.to_le_bytes()).map_err(io_err)?;
    w.write_all(&delta.base_epoch.to_le_bytes())
        .map_err(io_err)?;
    w.write_all(&delta.target_epoch.to_le_bytes())
        .map_err(io_err)?;
    let mut check = Check::new();
    check.mix(delta.base_epoch);
    check.mix(delta.target_epoch);
    write_edge_rows(w, &delta.added, &mut check).map_err(io_err)?;
    write_edge_rows(w, &delta.removed, &mut check).map_err(io_err)?;
    w.write_all(&check.finish().to_le_bytes()).map_err(io_err)?;
    Ok(())
}

/// Reads a delta written by [`save_delta`], re-validating every invariant
/// ([`GraphDelta::new`] runs on the decoded lists).
pub fn load_delta<R: Read>(r: &mut R) -> Result<GraphDelta> {
    let ctx = "delta load";
    let mut magic = [0u8; 4];
    read_exact_checked(r, &mut magic, ctx)?;
    if &magic != MAGIC {
        return Err(Error::Corrupt("bad magic: not a magicrecs delta".into()));
    }
    let mut v4 = [0u8; 4];
    read_exact_checked(r, &mut v4, ctx)?;
    let version = u32::from_le_bytes(v4);
    if version != VERSION {
        return Err(Error::Corrupt(format!(
            "unsupported delta version {version} (expected {VERSION})"
        )));
    }
    let mut e8 = [0u8; 8];
    read_exact_checked(r, &mut e8, ctx)?;
    let base_epoch = u64::from_le_bytes(e8);
    read_exact_checked(r, &mut e8, ctx)?;
    let target_epoch = u64::from_le_bytes(e8);
    let mut check = Check::new();
    check.mix(base_epoch);
    check.mix(target_epoch);
    let mut added = Vec::new();
    read_edge_rows(r, &mut check, ctx, &mut added)?;
    let mut removed = Vec::new();
    read_edge_rows(r, &mut check, ctx, &mut removed)?;
    let mut c8 = [0u8; 8];
    read_exact_checked(r, &mut c8, ctx)?;
    if u64::from_le_bytes(c8) != check.finish() {
        return Err(Error::Corrupt("delta checksum mismatch".into()));
    }
    // Decoded lists are monotone by construction; the remaining invariants
    // (self-loops, added/removed overlap, epoch order) still need the full
    // validation — map their violations to Corrupt, since they can only
    // come from a tampered file.
    GraphDelta::new(base_epoch, target_epoch, added, removed)
        .map_err(|e| Error::Corrupt(format!("{ctx}: {e}")))
}

/// Per-row edits in new-dense space for one CSR direction.
#[derive(Default)]
struct RowEdits {
    adds: FxHashMap<DenseId, Vec<DenseId>>,
    removes: FxHashMap<DenseId, Vec<DenseId>>,
}

impl RowEdits {
    fn touched(&self, row: DenseId) -> bool {
        self.adds.contains_key(&row) || self.removes.contains_key(&row)
    }
}

impl FollowGraph {
    /// Applies `delta`, producing the refreshed graph without re-interning
    /// or re-sorting the untouched world.
    ///
    /// Cost: O(touched rows + Δ) hash work plus one linear splice of the
    /// CSR arrays (a straight `memcpy` per untouched row when no new
    /// vertex lands mid-id-range — the common case for time-ordered ids).
    /// Compare the full reload, which re-sorts the entire edge list and
    /// re-interns every vertex.
    ///
    /// Strictness: removing an edge that is absent (or whose endpoints
    /// were never interned), or adding one that already exists, is an
    /// [`Error::Invariant`] — the signature of a delta applied out of
    /// chain order. Vertices orphaned by removals stay interned; the next
    /// full-snapshot rebase compacts them.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<FollowGraph> {
        let interner = self.interner();

        // New vertices implied by added edges, in ascending id order.
        let mut new_vertices: Vec<UserId> = Vec::new();
        for &(a, b) in delta.added() {
            if interner.dense(a).is_none() {
                new_vertices.push(a);
            }
            if interner.dense(b).is_none() {
                new_vertices.push(b);
            }
        }
        new_vertices.sort_unstable();
        new_vertices.dedup();

        for &(a, b) in delta.removed() {
            if interner.dense(a).is_none() || interner.dense(b).is_none() {
                return Err(Error::Invariant(format!(
                    "delta removes edge {a:?}->{b:?} whose endpoints are absent from the base graph"
                )));
            }
        }

        let (new_interner, remap) = interner.merged_with(&new_vertices);
        let to_new = |u: UserId| new_interner.dense(u).expect("endpoint interned above");

        // Group the delta by row for each direction. The flat lists are
        // (src, dst)-sorted and interning is order-preserving, so pushes
        // arrive sorted per row in the forward direction; inverse rows
        // collect across source groups and need a sort.
        let mut fwd = RowEdits::default();
        let mut inv = RowEdits::default();
        for &(a, b) in delta.added() {
            let (da, db) = (to_new(a), to_new(b));
            fwd.adds.entry(da).or_default().push(db);
            inv.adds.entry(db).or_default().push(da);
        }
        for &(a, b) in delta.removed() {
            let (da, db) = (to_new(a), to_new(b));
            fwd.removes.entry(da).or_default().push(db);
            inv.removes.entry(db).or_default().push(da);
        }
        for edits in [&mut inv.adds, &mut inv.removes] {
            for list in edits.values_mut() {
                list.sort_unstable();
            }
        }

        let n_new = new_interner.len();
        let old_n = interner.len();
        let forward = rebuild_csr(
            self.forward_csr(),
            old_n,
            n_new,
            remap.as_deref(),
            &fwd,
            "forward",
        )?;
        let inverse = rebuild_csr(
            self.inverse_csr(),
            old_n,
            n_new,
            remap.as_deref(),
            &inv,
            "inverse",
        )?;
        debug_assert_eq!(forward.num_edges(), inverse.num_edges());
        Ok(FollowGraph::from_parts(new_interner, forward, inverse))
    }
}

/// Splices one CSR direction: untouched rows are copied (remapped only if
/// dense ids shifted), touched rows are merged with their edits, and rows
/// for brand-new vertices are their additions verbatim.
fn rebuild_csr(
    old: &CsrGraph,
    old_n: usize,
    n_new: usize,
    remap: Option<&[DenseId]>,
    edits: &RowEdits,
    direction: &str,
) -> Result<CsrGraph> {
    let total_adds: usize = edits.adds.values().map(|v| v.len()).sum();
    let mut b = CsrRowBuilder::new(n_new, old.num_edges() + total_adds);
    let mut old_d = 0usize;
    for new_d in 0..n_new {
        let row_id = DenseId(new_d as u32);
        let from_old = match remap {
            Some(r) => old_d < old_n && r[old_d].index() == new_d,
            None => new_d < old_n,
        };
        if !from_old {
            // Brand-new vertex: additions only (removals were rejected).
            let adds = edits.adds.get(&row_id).map_or(&[][..], |v| v.as_slice());
            b.push_row(adds);
            continue;
        }
        let row = old.neighbors(DenseId(old_d as u32));
        old_d += 1;
        if !edits.touched(row_id) {
            match remap {
                None => b.push_row(row),
                Some(r) => {
                    // Monotone remap keeps the row sorted.
                    for &t in row {
                        b.push_target(r[t.index()]);
                    }
                    b.end_row();
                }
            }
            continue;
        }
        let adds = edits.adds.get(&row_id).map_or(&[][..], |v| v.as_slice());
        let removes = edits.removes.get(&row_id).map_or(&[][..], |v| v.as_slice());
        merge_row(&mut b, row, remap, adds, removes, direction, row_id)?;
    }
    debug_assert_eq!(b.rows(), n_new);
    Ok(b.finish())
}

/// Merges one old row with its sorted edits, enforcing strictness: every
/// removal must match an existing target, every addition must be novel.
fn merge_row(
    b: &mut CsrRowBuilder,
    row: &[DenseId],
    remap: Option<&[DenseId]>,
    adds: &[DenseId],
    removes: &[DenseId],
    direction: &str,
    row_id: DenseId,
) -> Result<()> {
    let map = |t: DenseId| remap.map_or(t, |r| r[t.index()]);
    let (mut ai, mut ri) = (0usize, 0usize);
    for &t in row {
        let t = map(t);
        while ai < adds.len() && adds[ai] < t {
            b.push_target(adds[ai]);
            ai += 1;
        }
        if ai < adds.len() && adds[ai] == t {
            return Err(Error::Invariant(format!(
                "delta adds {direction} edge ({row_id:?}) that already exists — delta applied \
                 out of chain order?"
            )));
        }
        if ri < removes.len() && removes[ri] == t {
            ri += 1;
            continue; // removed
        }
        b.push_target(t);
    }
    while ai < adds.len() {
        b.push_target(adds[ai]);
        ai += 1;
    }
    if ri < removes.len() {
        return Err(Error::Invariant(format!(
            "delta removes {direction} edge ({row_id:?}) that does not exist — delta applied \
             out of chain order?"
        )));
    }
    b.end_row();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::follow::CapStrategy;

    fn u(n: u64) -> UserId {
        UserId(n)
    }

    fn build(edges: &[(u64, u64)]) -> FollowGraph {
        let mut b = GraphBuilder::new();
        b.extend(edges.iter().map(|&(a, bb)| (u(a), u(bb))));
        b.build()
    }

    /// Sparse-level equality: same rows, same followers, same edge count.
    /// (Dense spaces may differ — delta application keeps orphaned
    /// vertices interned, a full rebuild drops them.)
    fn assert_same_graph(got: &FollowGraph, want: &FollowGraph) {
        assert_eq!(got.num_follow_edges(), want.num_follow_edges());
        let got_rows: Vec<_> = got.iter_forward().collect();
        let want_rows: Vec<_> = want.iter_forward().collect();
        assert_eq!(got_rows, want_rows, "forward rows diverge");
        let got_inv: Vec<_> = got.iter_inverse().collect();
        let want_inv: Vec<_> = want.iter_inverse().collect();
        assert_eq!(got_inv, want_inv, "inverse rows diverge");
    }

    #[test]
    fn between_then_apply_roundtrips() {
        let old = build(&[(1, 11), (1, 12), (2, 11), (3, 12)]);
        let new = build(&[(1, 11), (2, 11), (2, 13), (3, 12), (4, 11)]);
        let delta = GraphDelta::between(&old, &new, 7, 8).unwrap();
        assert_eq!(delta.added(), &[(u(2), u(13)), (u(4), u(11))]);
        assert_eq!(delta.removed(), &[(u(1), u(12))]);
        let applied = old.apply_delta(&delta).unwrap();
        assert_same_graph(&applied, &new);
    }

    #[test]
    fn apply_preserves_order_preserving_interning() {
        let old = build(&[(5, 50), (9, 90)]);
        // New vertices 1 and 60 land mid-range: dense ids must shift and
        // stay raw-id-ordered (the detector's emission order depends on
        // it).
        let new = build(&[(1, 50), (5, 50), (5, 60), (9, 90)]);
        let delta = GraphDelta::between(&old, &new, 0, 1).unwrap();
        let applied = old.apply_delta(&delta).unwrap();
        let ids: Vec<_> = applied.interner().iter().map(|(_, raw)| raw).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "interner must stay ascending");
        assert_same_graph(&applied, &new);
        for (d, raw) in applied.interner().iter() {
            assert_eq!(applied.dense_of(raw), Some(d));
        }
    }

    #[test]
    fn apply_append_only_keeps_old_dense_ids() {
        let old = build(&[(1, 11), (2, 11)]);
        let new = build(&[(1, 11), (2, 11), (2, 500), (400, 11)]);
        let delta = GraphDelta::between(&old, &new, 0, 1).unwrap();
        let before: Vec<_> = old.interner().iter().collect();
        let applied = old.apply_delta(&delta).unwrap();
        for (d, raw) in before {
            assert_eq!(applied.dense_of(raw), Some(d), "old ids must not move");
        }
        assert_same_graph(&applied, &new);
    }

    #[test]
    fn orphaned_vertices_stay_interned_with_empty_rows() {
        let old = build(&[(1, 11), (2, 12)]);
        let new = build(&[(1, 11)]);
        let delta = GraphDelta::between(&old, &new, 0, 1).unwrap();
        let applied = old.apply_delta(&delta).unwrap();
        assert_eq!(applied.num_follow_edges(), 1);
        // 2 and 12 are orphaned but still interned, with empty rows.
        assert!(applied.dense_of(u(2)).is_some());
        assert_eq!(applied.followings(u(2)), Vec::<UserId>::new());
        assert_eq!(applied.followers(u(12)), Vec::<UserId>::new());
    }

    #[test]
    fn double_apply_rejected() {
        let old = build(&[(1, 11)]);
        let new = build(&[(1, 11), (1, 12)]);
        let delta = GraphDelta::between(&old, &new, 0, 1).unwrap();
        let once = old.apply_delta(&delta).unwrap();
        let err = once.apply_delta(&delta).unwrap_err();
        assert!(err.to_string().contains("already exists"), "{err}");
    }

    #[test]
    fn removing_absent_edge_rejected() {
        let g = build(&[(1, 11)]);
        let delta = GraphDelta::new(0, 1, vec![], vec![(u(1), u(99))]).unwrap();
        assert!(g.apply_delta(&delta).is_err());
        let delta2 = GraphDelta::new(0, 1, vec![], vec![(u(1), u(11))]).unwrap();
        let g2 = g.apply_delta(&delta2).unwrap();
        assert!(g2.apply_delta(&delta2).is_err(), "edge already gone");
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = build(&[(1, 11), (2, 12)]);
        let delta = GraphDelta::new(3, 4, vec![], vec![]).unwrap();
        assert!(delta.is_empty());
        let applied = g.apply_delta(&delta).unwrap();
        assert_same_graph(&applied, &g);
    }

    #[test]
    fn validation_rejects_malformed_deltas() {
        // Epoch order.
        assert!(GraphDelta::new(5, 5, vec![], vec![]).is_err());
        // Unsorted.
        assert!(GraphDelta::new(0, 1, vec![(u(2), u(1)), (u(1), u(2))], vec![]).is_err());
        // Duplicate.
        assert!(GraphDelta::new(0, 1, vec![(u(1), u(2)), (u(1), u(2))], vec![]).is_err());
        // Self-loop.
        assert!(GraphDelta::new(0, 1, vec![(u(3), u(3))], vec![]).is_err());
        // Added ∩ removed.
        assert!(GraphDelta::new(0, 1, vec![(u(1), u(2))], vec![(u(1), u(2))]).is_err());
    }

    #[test]
    fn codec_roundtrips() {
        let old = build(&[(1, 11), (1, 12), (2, 11), (3, 12), (9, 1000)]);
        let new = build(&[(1, 11), (2, 11), (2, 13), (3, 12), (4, 11), (9, 1001)]);
        let delta = GraphDelta::between(&old, &new, 41, 42).unwrap();
        let mut buf = Vec::new();
        save_delta(&delta, &mut buf).unwrap();
        let loaded = load_delta(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded, delta);
    }

    #[test]
    fn codec_rejects_corruption_and_truncation() {
        let old = build(&[(1, 11), (2, 12)]);
        let new = build(&[(1, 11), (2, 12), (2, 13)]);
        let delta = GraphDelta::between(&old, &new, 0, 1).unwrap();
        let mut buf = Vec::new();
        save_delta(&delta, &mut buf).unwrap();

        for len in 0..buf.len() {
            let r = load_delta(&mut &buf[..len]);
            assert!(
                matches!(r, Err(Error::Corrupt(_))),
                "truncation at {len} must be Corrupt, got {r:?}"
            );
        }
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            if let Ok(loaded) = load_delta(&mut bad.as_slice()) {
                // A flip that still parses must be checksum-clean only if
                // it decoded to the identical delta (impossible for a
                // single-bit flip given the checksum covers every value).
                assert_eq!(loaded, delta, "silent corruption at byte {i}");
            }
        }
    }

    #[test]
    fn applied_graph_serves_dense_lookups() {
        let old = build(&[(1, 11), (2, 11)]);
        let new = build(&[(1, 11), (2, 11), (3, 11), (1, 7)]);
        let delta = GraphDelta::between(&old, &new, 0, 1).unwrap();
        let g = old.apply_delta(&delta).unwrap();
        let d11 = g.dense_of(u(11)).unwrap();
        let followers: Vec<UserId> = g
            .followers_dense(d11)
            .iter()
            .map(|&d| g.user_of(d))
            .collect();
        assert_eq!(followers, vec![u(1), u(2), u(3)]);
        assert!(g.follows(u(1), u(7)));
        // Loading through the full codec agrees too.
        let mut buf = Vec::new();
        crate::io::save_graph(&g, &mut buf).unwrap();
        let reloaded = crate::io::load_graph(&mut buf.as_slice(), CapStrategy::None).unwrap();
        assert_eq!(reloaded.num_follow_edges(), g.num_follow_edges());
    }
}
