//! Dense-ID interning: sparse `u64` user ids → contiguous `u32` indices.
//!
//! Built once at graph-build time over every vertex the static graph
//! references. The forward map is a single Fx-hash probe (paid only at the
//! sparse boundary: event ingestion and candidate emission); the reverse
//! map is an array read. Everything between those boundaries — `S`
//! lookups, intersections, threshold counting — runs on dense `u32`s.
//!
//! **Order preservation.** Dense ids are assigned in ascending raw-id
//! order, so `dense(a) < dense(b) ⟺ a < b`. This is what lets the
//! detector's sorted-list kernels operate on dense slices while the
//! emitted candidates still come out in ascending [`UserId`] order.

use magicrecs_types::{DenseId, FxHashMap, UserId};

/// Bidirectional sparse-id ⇄ dense-id map (immutable after build).
#[derive(Debug, Clone, Default)]
pub struct UserInterner {
    /// Sparse → dense. One Fx probe; only used at the sparse boundary.
    dense: FxHashMap<UserId, DenseId>,
    /// Dense → sparse. `users[d]` is the raw id of dense vertex `d`;
    /// strictly ascending by construction.
    users: Vec<UserId>,
}

impl UserInterner {
    /// Builds from a strictly ascending, deduplicated id list (asserted).
    pub fn from_sorted_users(users: Vec<UserId>) -> Self {
        assert!(
            users.len() <= u32::MAX as usize,
            "UserInterner supports up to 2^32-1 vertices per graph"
        );
        debug_assert!(
            users.windows(2).all(|w| w[0] < w[1]),
            "interner input must be strictly ascending"
        );
        let mut dense = FxHashMap::default();
        dense.reserve(users.len());
        for (i, &u) in users.iter().enumerate() {
            dense.insert(u, DenseId(i as u32));
        }
        UserInterner { dense, users }
    }

    /// Builds from an arbitrary id list (sorts and deduplicates first).
    pub fn from_users(mut users: Vec<UserId>) -> Self {
        users.sort_unstable();
        users.dedup();
        UserInterner::from_sorted_users(users)
    }

    /// The dense id of `user`, if interned.
    #[inline]
    pub fn dense(&self, user: UserId) -> Option<DenseId> {
        self.dense.get(&user).copied()
    }

    /// The raw id of dense vertex `d`.
    ///
    /// # Panics
    /// If `d` is out of range (dense ids are only minted by this interner,
    /// so an out-of-range id is a cross-graph mixup).
    #[inline]
    pub fn user(&self, d: DenseId) -> UserId {
        self.users[d.index()]
    }

    /// The raw id of dense vertex `d`, or `None` when `d` lies outside
    /// this interner's range.
    ///
    /// This is the membership test behind the dense-witness contract: a
    /// closed-world ingest adapter seeds its id space from this interner
    /// and assigns ids *past* the interned range to stream-invented
    /// vertices, so an out-of-range id is a valid witness that simply has
    /// no follower list in `S` (and must not be looked up with the
    /// panicking [`UserInterner::user`]).
    #[inline]
    pub fn user_checked(&self, d: DenseId) -> Option<UserId> {
        self.users.get(d.index()).copied()
    }

    /// Number of interned vertices (== the CSR vertex-space size).
    #[inline]
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether no vertices are interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Whether `user` is interned.
    #[inline]
    pub fn contains(&self, user: UserId) -> bool {
        self.dense.contains_key(&user)
    }

    /// Builds the interner over this one's users merged with `extra`
    /// (strictly ascending, deduplicated, and disjoint from the current
    /// users — asserted in debug), returning the new interner and the
    /// remap from **old** dense ids to **new** dense ids.
    ///
    /// A `None` remap means old dense ids are unchanged (no extra users,
    /// or every extra id sorts past the current maximum — the common case
    /// for Twitter-style time-ordered ids, where new accounts have higher
    /// ids than everything already interned). In that case the forward map
    /// is cloned and only the appended users pay a hash insert. When extra
    /// ids land mid-range, dense ids shift (order preservation is
    /// load-bearing: the detector emits candidates in dense order and
    /// relies on it equalling raw-id order) and the map is rebuilt; the
    /// returned remap (`remap[old.index()] == new`) is strictly monotone
    /// so callers can remap sorted structures with a linear pass.
    pub fn merged_with(&self, extra: &[UserId]) -> (UserInterner, Option<Vec<DenseId>>) {
        debug_assert!(extra.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(extra.iter().all(|&u| !self.contains(u)));
        assert!(
            self.users.len() + extra.len() <= u32::MAX as usize,
            "UserInterner supports up to 2^32-1 vertices per graph"
        );
        if extra.is_empty() {
            return (self.clone(), None);
        }
        if self.users.last().is_none_or(|&max| max < extra[0]) {
            // Append-only: old ids stay put, extend both directions.
            let mut dense = self.dense.clone();
            let mut users = self.users.clone();
            dense.reserve(extra.len());
            for &u in extra {
                dense.insert(u, DenseId(users.len() as u32));
                users.push(u);
            }
            return (UserInterner { dense, users }, None);
        }
        // Mid-range insertions: merge the two ascending runs, tracking
        // where each old id lands.
        let mut users = Vec::with_capacity(self.users.len() + extra.len());
        let mut remap = Vec::with_capacity(self.users.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.users.len() || j < extra.len() {
            let take_old = j >= extra.len() || (i < self.users.len() && self.users[i] < extra[j]);
            if take_old {
                remap.push(DenseId(users.len() as u32));
                users.push(self.users[i]);
                i += 1;
            } else {
                users.push(extra[j]);
                j += 1;
            }
        }
        (UserInterner::from_sorted_users(users), Some(remap))
    }

    /// Iterates `(dense, raw)` pairs in ascending order of both.
    pub fn iter(&self) -> impl Iterator<Item = (DenseId, UserId)> + '_ {
        self.users
            .iter()
            .enumerate()
            .map(|(i, &u)| (DenseId(i as u32), u))
    }

    /// Approximate resident bytes (hash map costed at the hashbrown
    /// layout, ~8/7 load factor, plus the reverse array).
    pub fn memory_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(UserId, DenseId)>() + 1;
        let map_bytes = (self.dense.len() as f64 * entry as f64 * 8.0 / 7.0) as usize;
        map_bytes + self.users.len() * std::mem::size_of::<UserId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: u64) -> UserId {
        UserId(n)
    }

    #[test]
    fn roundtrip_both_directions() {
        let i = UserInterner::from_users(vec![u(50), u(3), u(1_000_000), u(3)]);
        assert_eq!(i.len(), 3);
        for (d, raw) in i.iter() {
            assert_eq!(i.dense(raw), Some(d));
            assert_eq!(i.user(d), raw);
        }
        assert_eq!(i.dense(u(4)), None);
    }

    #[test]
    fn order_preserving() {
        let i = UserInterner::from_users(vec![u(9), u(2), u(500), u(40)]);
        let ds: Vec<DenseId> = [2u64, 9, 40, 500]
            .iter()
            .map(|&n| i.dense(u(n)).unwrap())
            .collect();
        assert_eq!(ds, vec![DenseId(0), DenseId(1), DenseId(2), DenseId(3)]);
    }

    #[test]
    fn empty_interner() {
        let i = UserInterner::default();
        assert!(i.is_empty());
        assert_eq!(i.dense(u(1)), None);
    }

    #[test]
    fn memory_accounting_scales() {
        let small = UserInterner::from_users((0..10).map(u).collect());
        let big = UserInterner::from_users((0..10_000).map(u).collect());
        assert!(big.memory_bytes() > small.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "ascending")]
    #[cfg(debug_assertions)]
    fn unsorted_input_rejected_in_debug() {
        let _ = UserInterner::from_sorted_users(vec![u(5), u(2)]);
    }

    #[test]
    fn merged_with_empty_is_identity() {
        let i = UserInterner::from_users(vec![u(3), u(9)]);
        let (m, remap) = i.merged_with(&[]);
        assert!(remap.is_none());
        assert_eq!(m.len(), 2);
        assert_eq!(m.dense(u(3)), i.dense(u(3)));
    }

    #[test]
    fn merged_with_appended_ids_keeps_old_dense_ids() {
        let i = UserInterner::from_users(vec![u(3), u(9)]);
        let (m, remap) = i.merged_with(&[u(10), u(20)]);
        assert!(remap.is_none(), "append-only must not shift old ids");
        assert_eq!(m.dense(u(3)), Some(DenseId(0)));
        assert_eq!(m.dense(u(9)), Some(DenseId(1)));
        assert_eq!(m.dense(u(10)), Some(DenseId(2)));
        assert_eq!(m.dense(u(20)), Some(DenseId(3)));
    }

    #[test]
    fn merged_with_mid_range_ids_produces_monotone_remap() {
        let i = UserInterner::from_users(vec![u(3), u(9), u(30)]);
        let (m, remap) = i.merged_with(&[u(1), u(10)]);
        let remap = remap.expect("mid-range insertions shift dense ids");
        // New order: 1, 3, 9, 10, 30.
        assert_eq!(remap, vec![DenseId(1), DenseId(2), DenseId(4)]);
        assert!(remap.windows(2).all(|w| w[0] < w[1]));
        for (old_d, raw) in i.iter() {
            assert_eq!(m.dense(raw), Some(remap[old_d.index()]));
        }
        // Order preservation survives the merge.
        let ds: Vec<DenseId> = [1u64, 3, 9, 10, 30]
            .iter()
            .map(|&n| m.dense(u(n)).unwrap())
            .collect();
        assert!(ds.windows(2).all(|w| w[0] < w[1]));
    }
}
