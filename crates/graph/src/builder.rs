//! Edge-list accumulation and CSR construction.
//!
//! The paper loads `S` from an offline pipeline; [`GraphBuilder`] plays that
//! role: accumulate `(A, B)` follow edges in any order (duplicates fine),
//! then [`GraphBuilder::build`] produces a [`crate::FollowGraph`] with both
//! directions sorted and deduplicated.

use crate::csr::CsrGraph;
use crate::follow::{CapStrategy, FollowGraph};
use crate::intern::UserInterner;
use magicrecs_types::{DenseId, UserId};

/// Accumulates follow edges and builds the static graph.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    edges: Vec<(UserId, UserId)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder { edges: Vec::new() }
    }

    /// Creates a builder expecting roughly `n` edges.
    pub fn with_capacity(n: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(n),
        }
    }

    /// Records the follow edge `follower → followee` (`A → B`).
    /// Self-loops are ignored: a user following themselves carries no
    /// recommendation signal and would make every motif trivially fire.
    #[inline]
    pub fn add_edge(&mut self, follower: UserId, followee: UserId) -> &mut Self {
        if follower != followee {
            self.edges.push((follower, followee));
        }
        self
    }

    /// Records many edges at once.
    pub fn extend<I: IntoIterator<Item = (UserId, UserId)>>(&mut self, iter: I) -> &mut Self {
        for (a, b) in iter {
            self.add_edge(a, b);
        }
        self
    }

    /// Number of accumulated (pre-dedup) edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been recorded.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Builds the [`FollowGraph`] with no influencer cap.
    pub fn build(self) -> FollowGraph {
        self.build_capped(CapStrategy::None)
    }

    /// Builds the [`FollowGraph`], limiting each user's retained followings
    /// per `cap` (the paper's "limit the number of influencers" pruning).
    pub fn build_capped(mut self, cap: CapStrategy) -> FollowGraph {
        // Sort by (src, dst) and dedup exact duplicates.
        self.edges.sort_unstable();
        self.edges.dedup();
        let forward = rows_from_sorted(&self.edges);
        FollowGraph::from_forward_rows(forward, cap)
    }

    /// Builds only a single-direction dense CSR plus its interner from the
    /// accumulated edges (useful for tests and degree statistics).
    pub fn build_csr_interned(mut self) -> (UserInterner, CsrGraph) {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut vertices: Vec<UserId> = Vec::with_capacity(self.edges.len() * 2);
        for &(a, b) in &self.edges {
            vertices.push(a);
            vertices.push(b);
        }
        let interner = UserInterner::from_users(vertices);
        // Raw-sorted edges map to dense-sorted edges (order preservation).
        let dense: Vec<(DenseId, DenseId)> = self
            .edges
            .iter()
            .map(|&(a, b)| {
                (
                    interner.dense(a).expect("interned"),
                    interner.dense(b).expect("interned"),
                )
            })
            .collect();
        let csr = CsrGraph::from_sorted_edges(interner.len(), &dense);
        (interner, csr)
    }

    /// Builds only a single-direction dense CSR, discarding the interner.
    pub fn build_csr(self) -> CsrGraph {
        self.build_csr_interned().1
    }
}

/// Groups a `(src, dst)`-sorted, deduplicated edge list into rows.
fn rows_from_sorted(edges: &[(UserId, UserId)]) -> Vec<(UserId, Vec<UserId>)> {
    let mut rows: Vec<(UserId, Vec<UserId>)> = Vec::new();
    for &(src, dst) in edges {
        match rows.last_mut() {
            Some((s, ts)) if *s == src => ts.push(dst),
            _ => rows.push((src, vec![dst])),
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: u64) -> UserId {
        UserId(n)
    }

    #[test]
    fn dedup_and_sort() {
        let mut b = GraphBuilder::new();
        b.add_edge(u(1), u(30));
        b.add_edge(u(1), u(10));
        b.add_edge(u(1), u(30)); // duplicate
        b.add_edge(u(2), u(10));
        let g = b.build();
        assert_eq!(g.followings(u(1)), &[u(10), u(30)]);
        assert_eq!(g.followings(u(2)), &[u(10)]);
        assert_eq!(g.num_follow_edges(), 3);
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::new();
        b.add_edge(u(5), u(5));
        b.add_edge(u(5), u(6));
        let g = b.build();
        assert_eq!(g.followings(u(5)), &[u(6)]);
    }

    #[test]
    fn extend_bulk() {
        let mut b = GraphBuilder::with_capacity(4);
        b.extend([(u(1), u(2)), (u(1), u(3)), (u(2), u(3)), (u(2), u(2))]);
        assert_eq!(b.len(), 3); // self-loop dropped pre-dedup
        let g = b.build();
        assert_eq!(g.num_follow_edges(), 3);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_follow_edges(), 0);
        assert!(GraphBuilder::new().is_empty());
    }

    #[test]
    fn build_csr_directly() {
        let mut b = GraphBuilder::new();
        b.add_edge(u(1), u(9));
        b.add_edge(u(1), u(8));
        let (interner, csr) = b.build_csr_interned();
        let d1 = interner.dense(u(1)).unwrap();
        let dense_targets: Vec<UserId> = csr
            .neighbors(d1)
            .iter()
            .map(|&d| interner.user(d))
            .collect();
        assert_eq!(dense_targets, vec![u(8), u(9)]);
    }
}
