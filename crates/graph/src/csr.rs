//! Compressed-sparse-row adjacency over sparse user ids.
//!
//! Twitter user ids are sparse `u64`s, so a classic dense-offset CSR does
//! not apply directly. We keep the CSR's cache-friendly contiguous target
//! array and replace the offset array with an Fx-hashed index from source id
//! to a `(start, len)` range. Target slices are **sorted ascending**, which
//! is the property the whole detection pipeline relies on ("since S is a
//! static data structure, we can easily keep the A's sorted and thus
//! intersections can be implemented efficiently").

use magicrecs_types::{FxHashMap, UserId};

/// Immutable sorted-adjacency graph.
///
/// Construct via [`crate::GraphBuilder`]; the invariants (per-source targets
/// sorted and deduplicated) are established there.
#[derive(Debug, Clone, Default)]
pub struct CsrGraph {
    /// source id → (offset, len) into `targets`.
    index: FxHashMap<UserId, (u32, u32)>,
    /// Concatenated, per-source-sorted target lists.
    targets: Vec<UserId>,
}

impl CsrGraph {
    /// Builds from pre-grouped rows. Each row's target list must already be
    /// sorted and deduplicated; `debug_assert`ed.
    ///
    /// This is the low-level constructor used by [`crate::GraphBuilder`];
    /// prefer the builder in application code.
    pub fn from_rows(rows: Vec<(UserId, Vec<UserId>)>) -> Self {
        let total: usize = rows.iter().map(|(_, t)| t.len()).sum();
        assert!(
            total <= u32::MAX as usize,
            "CsrGraph supports up to 2^32-1 edges per instance"
        );
        let mut index = FxHashMap::default();
        index.reserve(rows.len());
        let mut targets = Vec::with_capacity(total);
        for (src, row) in rows {
            debug_assert!(
                row.windows(2).all(|w| w[0] < w[1]),
                "row for {src:?} must be sorted and deduplicated"
            );
            if row.is_empty() {
                continue;
            }
            let start = targets.len() as u32;
            targets.extend_from_slice(&row);
            index.insert(src, (start, row.len() as u32));
        }
        CsrGraph { index, targets }
    }

    /// The sorted out-neighbor slice of `src` (empty if absent).
    #[inline]
    pub fn neighbors(&self, src: UserId) -> &[UserId] {
        match self.index.get(&src) {
            Some(&(start, len)) => &self.targets[start as usize..(start + len) as usize],
            None => &[],
        }
    }

    /// Out-degree of `src` (0 if absent).
    #[inline]
    pub fn degree(&self, src: UserId) -> usize {
        self.index.get(&src).map_or(0, |&(_, len)| len as usize)
    }

    /// Whether the edge `src → dst` exists (binary search over the sorted
    /// neighbor slice).
    #[inline]
    pub fn contains_edge(&self, src: UserId, dst: UserId) -> bool {
        self.neighbors(src).binary_search(&dst).is_ok()
    }

    /// Whether `src` has any out-edges.
    #[inline]
    pub fn contains_source(&self, src: UserId) -> bool {
        self.index.contains_key(&src)
    }

    /// Number of sources with at least one out-edge.
    #[inline]
    pub fn num_sources(&self) -> usize {
        self.index.len()
    }

    /// Total number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Iterates `(source, sorted neighbor slice)` pairs in unspecified
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, &[UserId])> + '_ {
        self.index.iter().map(move |(&src, &(start, len))| {
            (
                src,
                &self.targets[start as usize..(start + len) as usize],
            )
        })
    }

    /// Iterates all edges as `(src, dst)` pairs in unspecified source order
    /// (targets in ascending order within a source).
    pub fn edges(&self) -> impl Iterator<Item = (UserId, UserId)> + '_ {
        self.iter()
            .flat_map(|(src, ts)| ts.iter().map(move |&dst| (src, dst)))
    }

    /// Approximate resident bytes (index + target array), for the memory
    /// experiments. The hash index is costed at the hashbrown table layout
    /// (~1.1 × (key + value + 1 byte control) per slot at 7/8 load).
    pub fn memory_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(UserId, (u32, u32))>() + 1;
        let index_bytes = (self.index.len() as f64 * entry as f64 * 8.0 / 7.0) as usize;
        index_bytes + self.targets.len() * std::mem::size_of::<UserId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: u64) -> UserId {
        UserId(n)
    }

    fn sample() -> CsrGraph {
        CsrGraph::from_rows(vec![
            (u(1), vec![u(10), u(20), u(30)]),
            (u(2), vec![u(20)]),
            (u(3), vec![]),
        ])
    }

    #[test]
    fn neighbors_sorted_slices() {
        let g = sample();
        assert_eq!(g.neighbors(u(1)), &[u(10), u(20), u(30)]);
        assert_eq!(g.neighbors(u(2)), &[u(20)]);
        assert_eq!(g.neighbors(u(3)), &[] as &[UserId]);
        assert_eq!(g.neighbors(u(99)), &[] as &[UserId]);
    }

    #[test]
    fn degrees() {
        let g = sample();
        assert_eq!(g.degree(u(1)), 3);
        assert_eq!(g.degree(u(2)), 1);
        assert_eq!(g.degree(u(99)), 0);
    }

    #[test]
    fn contains_edge_binary_search() {
        let g = sample();
        assert!(g.contains_edge(u(1), u(20)));
        assert!(!g.contains_edge(u(1), u(25)));
        assert!(!g.contains_edge(u(99), u(20)));
    }

    #[test]
    fn empty_rows_are_dropped() {
        let g = sample();
        assert!(!g.contains_source(u(3)));
        assert_eq!(g.num_sources(), 2);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn edges_iterator_covers_all() {
        let g = sample();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort();
        assert_eq!(
            edges,
            vec![
                (u(1), u(10)),
                (u(1), u(20)),
                (u(1), u(30)),
                (u(2), u(20))
            ]
        );
    }

    #[test]
    fn default_is_empty() {
        let g = CsrGraph::default();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.neighbors(u(1)), &[] as &[UserId]);
    }

    #[test]
    fn memory_accounting_scales_with_edges() {
        let small = sample();
        let rows: Vec<_> = (0..100)
            .map(|i| (u(i), (1000..1100).map(u).collect::<Vec<_>>()))
            .collect();
        let big = CsrGraph::from_rows(rows);
        assert!(big.memory_bytes() > small.memory_bytes());
        // 100 sources * 100 targets * 8 bytes = 80 KB floor for targets.
        assert!(big.memory_bytes() >= 80_000);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    #[cfg(debug_assertions)]
    fn unsorted_rows_rejected_in_debug() {
        let _ = CsrGraph::from_rows(vec![(u(1), vec![u(3), u(2)])]);
    }
}
