//! True offset-array compressed-sparse-row adjacency over dense ids.
//!
//! The seed version of this module kept an Fx-hash index from sparse
//! source id to a `(start, len)` range because "Twitter user ids are
//! sparse u64s". With the [`crate::UserInterner`] assigning contiguous
//! `u32` dense ids at build time, the classic CSR applies directly:
//!
//! ```text
//! offsets: [0, 3, 3, 4, ...]   // n+1 entries, offsets[v]..offsets[v+1]
//! targets: [d10, d20, d30, d20, ...]
//! ```
//!
//! An `S[B]` lookup is now two array reads (`offsets[b]`, `offsets[b+1]`)
//! instead of a hash probe, and targets are `u32`s — half the memory
//! traffic of the old `u64` slices during intersections. Target slices
//! remain **sorted ascending**, the invariant the whole detection pipeline
//! relies on; because interning is order-preserving, dense-sorted and
//! raw-id-sorted orders coincide.

use magicrecs_types::DenseId;

/// Immutable dense-vertex sorted-adjacency graph.
///
/// Construct via [`crate::GraphBuilder`] (which also builds the interner);
/// the invariants (per-source targets sorted and deduplicated, all ids
/// within the vertex space) are established there.
#[derive(Debug, Clone, Default)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` bounds vertex `v`'s target slice.
    /// Length is `num_vertices + 1`; `offsets[0] == 0`.
    offsets: Vec<u32>,
    /// Concatenated, per-source-sorted target lists.
    targets: Vec<DenseId>,
    /// Number of vertices with at least one out-edge.
    sources: usize,
}

impl CsrGraph {
    /// Builds from `(src, dst)` edges sorted by `(src, dst)` and
    /// deduplicated (`debug_assert`ed), over a vertex space of
    /// `num_vertices` dense ids.
    pub fn from_sorted_edges(num_vertices: usize, edges: &[(DenseId, DenseId)]) -> Self {
        assert!(
            edges.len() <= u32::MAX as usize,
            "CsrGraph supports up to 2^32-1 edges per instance"
        );
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be sorted by (src, dst) and deduplicated"
        );
        let mut offsets = vec![0u32; num_vertices + 1];
        let mut targets = Vec::with_capacity(edges.len());
        for &(src, dst) in edges {
            debug_assert!(src.index() < num_vertices, "source {src:?} out of range");
            debug_assert!(dst.index() < num_vertices, "target {dst:?} out of range");
            offsets[src.index() + 1] += 1;
            targets.push(dst);
        }
        let mut sources = 0usize;
        let mut running = 0u32;
        for o in offsets.iter_mut().skip(1) {
            if *o > 0 {
                sources += 1;
            }
            running += *o;
            *o = running;
        }
        CsrGraph {
            offsets,
            targets,
            sources,
        }
    }

    /// The sorted out-neighbor slice of `v` — two array reads.
    ///
    /// Out-of-range ids (from a foreign graph's interner) return empty
    /// rather than panicking, matching the old "absent source" behavior.
    #[inline]
    pub fn neighbors(&self, v: DenseId) -> &[DenseId] {
        let i = v.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        // Both bounds come from the monotone offset array, so the slice is
        // always in range.
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Out-degree of `v` (0 if absent or out of range).
    #[inline]
    pub fn degree(&self, v: DenseId) -> usize {
        let i = v.index();
        if i + 1 >= self.offsets.len() {
            return 0;
        }
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Whether the edge `src → dst` exists (binary search over the sorted
    /// neighbor slice).
    #[inline]
    pub fn contains_edge(&self, src: DenseId, dst: DenseId) -> bool {
        self.neighbors(src).binary_search(&dst).is_ok()
    }

    /// Whether `src` has any out-edges.
    #[inline]
    pub fn contains_source(&self, src: DenseId) -> bool {
        self.degree(src) > 0
    }

    /// Size of the dense vertex space (interned vertices, with or without
    /// out-edges).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of vertices with at least one out-edge.
    #[inline]
    pub fn num_sources(&self) -> usize {
        self.sources
    }

    /// Total number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Iterates `(source, sorted neighbor slice)` pairs in ascending
    /// source order, skipping sources with no out-edges.
    pub fn iter(&self) -> impl Iterator<Item = (DenseId, &[DenseId])> + '_ {
        (0..self.num_vertices()).filter_map(move |i| {
            let s = &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize];
            (!s.is_empty()).then_some((DenseId(i as u32), s))
        })
    }

    /// Iterates all edges as `(src, dst)` pairs in ascending `(src, dst)`
    /// order.
    pub fn edges(&self) -> impl Iterator<Item = (DenseId, DenseId)> + '_ {
        self.iter()
            .flat_map(|(src, ts)| ts.iter().map(move |&dst| (src, dst)))
    }

    /// Resident bytes (offset + target arrays) — exact now that the hash
    /// index is gone, which is itself part of the memory win the paper's
    /// "S data structures held in memory" experiments track.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.targets.len() * std::mem::size_of::<DenseId>()
    }
}

/// Row-sequential CSR assembly, for rebuilds that splice existing rows
/// with per-row edits (the snapshot-delta path: untouched rows are copied
/// as whole slices, touched rows are merged in place — no global edge
/// sort, no per-edge interner probe).
#[derive(Debug)]
pub struct CsrRowBuilder {
    offsets: Vec<u32>,
    targets: Vec<DenseId>,
    sources: usize,
}

impl CsrRowBuilder {
    /// Starts a builder for `num_vertices` rows, reserving room for about
    /// `edges_hint` targets.
    pub fn new(num_vertices: usize, edges_hint: usize) -> Self {
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        offsets.push(0);
        CsrRowBuilder {
            offsets,
            targets: Vec::with_capacity(edges_hint),
            sources: 0,
        }
    }

    /// Appends the next vertex's sorted target slice (rows must arrive in
    /// ascending dense order; sortedness is `debug_assert`ed).
    pub fn push_row(&mut self, targets: &[DenseId]) {
        debug_assert!(targets.windows(2).all(|w| w[0] < w[1]));
        self.targets.extend_from_slice(targets);
        if !targets.is_empty() {
            self.sources += 1;
        }
        self.offsets.push(self.targets.len() as u32);
    }

    /// Extends the current row one target at a time; finish it with
    /// [`CsrRowBuilder::end_row`].
    pub fn push_target(&mut self, target: DenseId) {
        self.targets.push(target);
    }

    /// Closes a row built via [`CsrRowBuilder::push_target`].
    pub fn end_row(&mut self) {
        let start = *self.offsets.last().expect("offsets never empty") as usize;
        debug_assert!(self.targets[start..].windows(2).all(|w| w[0] < w[1]));
        if self.targets.len() > start {
            self.sources += 1;
        }
        self.offsets.push(self.targets.len() as u32);
    }

    /// Number of rows pushed so far.
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Finishes the graph; `rows()` must equal the vertex-space size the
    /// consumer expects.
    pub fn finish(self) -> CsrGraph {
        assert!(
            self.targets.len() <= u32::MAX as usize,
            "CsrGraph supports up to 2^32-1 edges per instance"
        );
        CsrGraph {
            offsets: self.offsets,
            targets: self.targets,
            sources: self.sources,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(n: u32) -> DenseId {
        DenseId(n)
    }

    /// Vertex space {0..6}; 0 → {3,4,5}, 1 → {4}, 2 and 3..6 empty sources.
    fn sample() -> CsrGraph {
        CsrGraph::from_sorted_edges(6, &[(d(0), d(3)), (d(0), d(4)), (d(0), d(5)), (d(1), d(4))])
    }

    #[test]
    fn neighbors_sorted_slices() {
        let g = sample();
        assert_eq!(g.neighbors(d(0)), &[d(3), d(4), d(5)]);
        assert_eq!(g.neighbors(d(1)), &[d(4)]);
        assert_eq!(g.neighbors(d(2)), &[] as &[DenseId]);
        assert_eq!(
            g.neighbors(d(99)),
            &[] as &[DenseId],
            "out of range is empty"
        );
    }

    #[test]
    fn degrees() {
        let g = sample();
        assert_eq!(g.degree(d(0)), 3);
        assert_eq!(g.degree(d(1)), 1);
        assert_eq!(g.degree(d(5)), 0);
        assert_eq!(g.degree(d(99)), 0);
    }

    #[test]
    fn contains_edge_binary_search() {
        let g = sample();
        assert!(g.contains_edge(d(0), d(4)));
        assert!(!g.contains_edge(d(0), d(2)));
        assert!(!g.contains_edge(d(99), d(4)));
    }

    #[test]
    fn source_and_vertex_counts() {
        let g = sample();
        assert!(!g.contains_source(d(2)));
        assert_eq!(g.num_sources(), 2);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn edges_iterator_covers_all_in_order() {
        let g = sample();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![(d(0), d(3)), (d(0), d(4)), (d(0), d(5)), (d(1), d(4))]
        );
    }

    #[test]
    fn iter_skips_empty_sources() {
        let g = sample();
        let sources: Vec<DenseId> = g.iter().map(|(s, _)| s).collect();
        assert_eq!(sources, vec![d(0), d(1)]);
    }

    #[test]
    fn default_is_empty() {
        let g = CsrGraph::default();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.neighbors(d(0)), &[] as &[DenseId]);
    }

    #[test]
    fn memory_accounting_is_exact() {
        let g = sample();
        // 7 offsets × 4 bytes + 4 targets × 4 bytes.
        assert_eq!(g.memory_bytes(), 7 * 4 + 4 * 4);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    #[cfg(debug_assertions)]
    fn unsorted_edges_rejected_in_debug() {
        let _ = CsrGraph::from_sorted_edges(4, &[(d(1), d(3)), (d(1), d(2))]);
    }

    #[test]
    fn row_builder_matches_edge_builder() {
        let reference = sample();
        let mut b = CsrRowBuilder::new(6, 4);
        b.push_row(&[d(3), d(4), d(5)]);
        b.push_row(&[d(4)]);
        for _ in 2..6 {
            b.push_row(&[]);
        }
        assert_eq!(b.rows(), 6);
        let g = b.finish();
        assert_eq!(g.num_vertices(), reference.num_vertices());
        assert_eq!(g.num_edges(), reference.num_edges());
        assert_eq!(g.num_sources(), reference.num_sources());
        for v in 0..6u32 {
            assert_eq!(g.neighbors(d(v)), reference.neighbors(d(v)), "row {v}");
        }
    }

    #[test]
    fn row_builder_incremental_rows() {
        let mut b = CsrRowBuilder::new(2, 3);
        b.push_target(d(1));
        b.push_target(d(7));
        b.end_row();
        b.end_row(); // empty second row
        let g = b.finish();
        assert_eq!(g.neighbors(d(0)), &[d(1), d(7)]);
        assert_eq!(g.degree(d(1)), 0);
        assert_eq!(g.num_sources(), 1);
    }
}
