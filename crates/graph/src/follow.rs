//! The bidirectional static follow graph.
//!
//! [`FollowGraph`] holds both directions of the offline-computed `A → B`
//! edges, interned into dense-id space (see [`crate::UserInterner`]):
//!
//! * **forward** — `A → [B]`: the accounts each user follows ("followings").
//!   Used by baselines, the workload generator, and the influencer cap.
//! * **inverse** — `B → [A]`: each account's followers **restricted to the
//!   hosted `A` set**. This is the paper's structure `S`: "store the inverse
//!   as an adjacency list … given a particular B, we can query S to look up
//!   all A's that follow it."
//!
//! The hot path works exclusively in dense space ([`FollowGraph::followers_dense`],
//! [`FollowGraph::follows_dense`]): an `S[B]` lookup is two array reads and
//! intersections compare `u32`s. Id-level accessors remain for offline
//! consumers (io, partitioning, baselines, tests); they translate at the
//! boundary and allocate, so keep them off per-event paths.
//!
//! The influencer cap ([`CapStrategy`]) reproduces the paper's pruning:
//! "for users who follow many accounts, we have found it more effective to
//! limit the number of influencers each user can have. This has the
//! additional benefit of limiting the size of the S data structures held in
//! memory."

use crate::csr::CsrGraph;
use crate::intern::UserInterner;
use magicrecs_types::{DenseId, FxHashMap, UserId};

/// How to choose which followings to keep when a user exceeds the
/// influencer cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapStrategy {
    /// Keep everything (no cap).
    None,
    /// Keep the `n` followings with the **most followers** (global
    /// popularity proxy for the paper's "rich features").
    MostPopular(usize),
    /// Keep the `n` followings with the **fewest followers**. Favouring
    /// niche accounts concentrates signal on tight communities; included as
    /// the contrast arm of experiment E9.
    LeastPopular(usize),
    /// Keep the `n` smallest user ids — a cheap deterministic stand-in for
    /// "first n by account age" (Twitter ids are time-ordered).
    Oldest(usize),
}

impl CapStrategy {
    /// The cap value, if any.
    pub fn cap(&self) -> Option<usize> {
        match *self {
            CapStrategy::None => None,
            CapStrategy::MostPopular(n) | CapStrategy::LeastPopular(n) | CapStrategy::Oldest(n) => {
                Some(n)
            }
        }
    }
}

/// The static bidirectional follow graph (structure `S` plus its forward
/// view), interned to dense ids.
#[derive(Debug, Clone, Default)]
pub struct FollowGraph {
    interner: UserInterner,
    forward: CsrGraph,
    inverse: CsrGraph,
}

impl FollowGraph {
    /// Builds from forward rows (each row sorted + deduplicated, rows in
    /// ascending source order), applying the influencer cap before
    /// interning and inverting.
    pub(crate) fn from_forward_rows(
        mut forward_rows: Vec<(UserId, Vec<UserId>)>,
        cap: CapStrategy,
    ) -> Self {
        if let Some(n) = cap.cap() {
            // Popularity = follower count over the *uncapped* graph.
            let mut popularity: FxHashMap<UserId, u32> = FxHashMap::default();
            if matches!(
                cap,
                CapStrategy::MostPopular(_) | CapStrategy::LeastPopular(_)
            ) {
                for (_, targets) in &forward_rows {
                    for &b in targets {
                        *popularity.entry(b).or_insert(0) += 1;
                    }
                }
            }
            for (_, targets) in forward_rows.iter_mut() {
                if targets.len() <= n {
                    continue;
                }
                match cap {
                    CapStrategy::None => unreachable!(),
                    CapStrategy::Oldest(_) => {
                        targets.truncate(n); // rows are sorted by id
                    }
                    CapStrategy::MostPopular(_) => {
                        targets
                            .sort_unstable_by_key(|b| (std::cmp::Reverse(popularity[b]), b.raw()));
                        targets.truncate(n);
                        targets.sort_unstable();
                    }
                    CapStrategy::LeastPopular(_) => {
                        targets.sort_unstable_by_key(|b| (popularity[b], b.raw()));
                        targets.truncate(n);
                        targets.sort_unstable();
                    }
                }
            }
        }

        // Intern every vertex the (capped) graph references. Sources come
        // sorted from the builder; merging in the targets and resorting
        // yields the ascending id list the order-preserving interner needs.
        let mut vertices: Vec<UserId> = Vec::new();
        for (a, bs) in &forward_rows {
            vertices.push(*a);
            vertices.extend_from_slice(bs);
        }
        let interner = UserInterner::from_users(vertices);

        // Forward edges in dense space. Rows arrive in ascending source
        // order with ascending targets, and interning preserves order, so
        // the edge list is already `(src, dst)`-sorted.
        let mut fwd_edges: Vec<(DenseId, DenseId)> = Vec::new();
        for (a, bs) in &forward_rows {
            let da = interner.dense(*a).expect("source was interned");
            for b in bs {
                let db = interner.dense(*b).expect("target was interned");
                fwd_edges.push((da, db));
            }
        }
        debug_assert!(fwd_edges.windows(2).all(|w| w[0] < w[1]));

        // Invert: (A, B) → (B, A), then sort to group by B with A's
        // ascending (dense order == raw order).
        let mut inv_edges: Vec<(DenseId, DenseId)> =
            fwd_edges.iter().map(|&(a, b)| (b, a)).collect();
        inv_edges.sort_unstable();

        let n = interner.len();
        FollowGraph {
            forward: CsrGraph::from_sorted_edges(n, &fwd_edges),
            inverse: CsrGraph::from_sorted_edges(n, &inv_edges),
            interner,
        }
    }

    /// Assembles a graph from parts whose invariants the caller has
    /// already established (the delta-application path: interner
    /// ascending, both CSRs over the interner's vertex space with sorted
    /// rows, inverse the exact transpose of forward).
    pub(crate) fn from_parts(interner: UserInterner, forward: CsrGraph, inverse: CsrGraph) -> Self {
        debug_assert_eq!(forward.num_vertices(), interner.len());
        debug_assert_eq!(inverse.num_vertices(), interner.len());
        FollowGraph {
            interner,
            forward,
            inverse,
        }
    }

    // ---- dense hot path ---------------------------------------------------

    /// The interner mapping sparse ids to this graph's dense vertex space.
    #[inline]
    pub fn interner(&self) -> &UserInterner {
        &self.interner
    }

    /// Dense id of `user`, if it appears anywhere in the static graph.
    #[inline]
    pub fn dense_of(&self, user: UserId) -> Option<DenseId> {
        self.interner.dense(user)
    }

    /// Raw id of dense vertex `d`.
    #[inline]
    pub fn user_of(&self, d: DenseId) -> UserId {
        self.interner.user(d)
    }

    /// Whether `d` is a vertex of this graph. Ids a closed-world ingest
    /// assigned past the interned range (stream-invented vertices) report
    /// `false` — they have no follower list in `S`.
    #[inline]
    pub fn contains_dense(&self, d: DenseId) -> bool {
        d.index() < self.interner.len()
    }

    /// Raw id of dense vertex `d`, or `None` outside the interned range
    /// (see [`FollowGraph::contains_dense`]).
    #[inline]
    pub fn user_of_checked(&self, d: DenseId) -> Option<UserId> {
        self.interner.user_checked(d)
    }

    /// The followers of dense vertex `b` as a sorted dense slice — the
    /// paper's `S` lookup, now two array reads. Ascending dense order
    /// equals ascending raw-id order (order-preserving interning).
    #[inline]
    pub fn followers_dense(&self, b: DenseId) -> &[DenseId] {
        self.inverse.neighbors(b)
    }

    /// The accounts dense vertex `a` follows, as a sorted dense slice.
    #[inline]
    pub fn followings_dense(&self, a: DenseId) -> &[DenseId] {
        self.forward.neighbors(a)
    }

    /// Whether dense vertex `a` follows dense vertex `b`.
    #[inline]
    pub fn follows_dense(&self, a: DenseId, b: DenseId) -> bool {
        self.forward.contains_edge(a, b)
    }

    // ---- id-level view (offline / boundary use) ---------------------------

    /// The accounts `a` follows (sorted ascending). Allocates; offline use.
    pub fn followings(&self, a: UserId) -> Vec<UserId> {
        self.to_users(self.dense_of(a).map_or(&[], |d| self.forward.neighbors(d)))
    }

    /// The followers of `b` (sorted ascending). Allocates; offline use —
    /// the detector uses [`FollowGraph::followers_dense`].
    pub fn followers(&self, b: UserId) -> Vec<UserId> {
        self.to_users(self.dense_of(b).map_or(&[], |d| self.inverse.neighbors(d)))
    }

    /// Whether `a` follows `b`.
    #[inline]
    pub fn follows(&self, a: UserId, b: UserId) -> bool {
        match (self.dense_of(a), self.dense_of(b)) {
            (Some(da), Some(db)) => self.forward.contains_edge(da, db),
            _ => false,
        }
    }

    fn to_users(&self, dense: &[DenseId]) -> Vec<UserId> {
        dense.iter().map(|&d| self.interner.user(d)).collect()
    }

    /// Number of distinct follow edges.
    #[inline]
    pub fn num_follow_edges(&self) -> usize {
        self.forward.num_edges()
    }

    /// Number of users with at least one following.
    #[inline]
    pub fn num_followers_hosted(&self) -> usize {
        self.forward.num_sources()
    }

    /// Number of interned vertices (dense vertex-space size).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.interner.len()
    }

    /// Out-degree (following count) of `a`.
    #[inline]
    pub fn following_count(&self, a: UserId) -> usize {
        self.dense_of(a).map_or(0, |d| self.forward.degree(d))
    }

    /// In-degree (follower count) of `b`.
    #[inline]
    pub fn follower_count(&self, b: UserId) -> usize {
        self.dense_of(b).map_or(0, |d| self.inverse.degree(d))
    }

    /// Iterates `(A, followings)` rows in ascending id order (allocates
    /// per row; offline use).
    pub fn iter_forward(&self) -> impl Iterator<Item = (UserId, Vec<UserId>)> + '_ {
        self.forward
            .iter()
            .map(|(d, ts)| (self.interner.user(d), self.to_users(ts)))
    }

    /// Iterates `(B, followers)` rows — the `S` structure — in ascending
    /// id order (allocates per row; offline use).
    pub fn iter_inverse(&self) -> impl Iterator<Item = (UserId, Vec<UserId>)> + '_ {
        self.inverse
            .iter()
            .map(|(d, ts)| (self.interner.user(d), self.to_users(ts)))
    }

    /// The forward CSR in dense space (for baselines that need raw access).
    pub fn forward_csr(&self) -> &CsrGraph {
        &self.forward
    }

    /// The inverse CSR in dense space — structure `S` (the detector's hot
    /// path).
    pub fn inverse_csr(&self) -> &CsrGraph {
        &self.inverse
    }

    /// Approximate resident bytes: both CSR directions plus the interner.
    pub fn memory_bytes(&self) -> usize {
        self.forward.memory_bytes() + self.inverse.memory_bytes() + self.interner.memory_bytes()
    }

    /// Approximate resident bytes of what a partition actually serves
    /// from: the inverse index plus the interner (forward is only needed
    /// offline).
    pub fn s_memory_bytes(&self) -> usize {
        self.inverse.memory_bytes() + self.interner.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn u(n: u64) -> UserId {
        UserId(n)
    }

    /// A1 follows B1,B2; A2 follows B1,B2,B3; A3 follows B2.
    fn sample() -> GraphBuilder {
        let mut b = GraphBuilder::new();
        b.extend([
            (u(1), u(11)),
            (u(1), u(12)),
            (u(2), u(11)),
            (u(2), u(12)),
            (u(2), u(13)),
            (u(3), u(12)),
        ]);
        b
    }

    #[test]
    fn forward_and_inverse_agree() {
        let g = sample().build();
        assert_eq!(g.followings(u(2)), &[u(11), u(12), u(13)]);
        assert_eq!(g.followers(u(11)), &[u(1), u(2)]);
        assert_eq!(g.followers(u(12)), &[u(1), u(2), u(3)]);
        assert_eq!(g.followers(u(13)), &[u(2)]);
        assert!(g.follows(u(1), u(11)));
        assert!(!g.follows(u(3), u(11)));
    }

    #[test]
    fn dense_view_matches_id_view() {
        let g = sample().build();
        for (b, followers) in g.iter_inverse() {
            let db = g.dense_of(b).unwrap();
            let via_dense: Vec<UserId> = g
                .followers_dense(db)
                .iter()
                .map(|&d| g.user_of(d))
                .collect();
            assert_eq!(via_dense, followers, "B={b:?}");
        }
        assert!(g.follows_dense(g.dense_of(u(1)).unwrap(), g.dense_of(u(11)).unwrap()));
    }

    #[test]
    fn dense_ids_are_order_preserving() {
        let g = sample().build();
        let ids = [1u64, 2, 3, 11, 12, 13];
        let dense: Vec<DenseId> = ids
            .iter()
            .map(|&n| g.dense_of(u(n)).expect("interned"))
            .collect();
        assert!(dense.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(g.num_vertices(), 6);
    }

    #[test]
    fn unknown_users_resolve_empty() {
        let g = sample().build();
        assert_eq!(g.dense_of(u(99)), None);
        assert_eq!(g.followers(u(99)), Vec::<UserId>::new());
        assert_eq!(g.followings(u(99)), Vec::<UserId>::new());
        assert!(!g.follows(u(99), u(11)));
        assert!(!g.follows(u(1), u(99)));
    }

    #[test]
    fn inverse_edge_count_matches_forward() {
        let g = sample().build();
        let fwd: usize = g.iter_forward().map(|(_, t)| t.len()).sum();
        let inv: usize = g.iter_inverse().map(|(_, t)| t.len()).sum();
        assert_eq!(fwd, inv);
        assert_eq!(fwd, g.num_follow_edges());
    }

    #[test]
    fn degrees() {
        let g = sample().build();
        assert_eq!(g.following_count(u(2)), 3);
        assert_eq!(g.follower_count(u(12)), 3);
        assert_eq!(g.following_count(u(99)), 0);
        assert_eq!(g.follower_count(u(99)), 0);
    }

    #[test]
    fn cap_oldest_keeps_smallest_ids() {
        let g = sample().build_capped_for_test(CapStrategy::Oldest(2));
        assert_eq!(g.followings(u(2)), &[u(11), u(12)]);
        // B3 lost its only follower — and with it, its dense id.
        assert_eq!(g.followers(u(13)), Vec::<UserId>::new());
        assert_eq!(g.dense_of(u(13)), None);
    }

    #[test]
    fn cap_most_popular_keeps_high_follower_accounts() {
        // Popularity: B2 has 3 followers, B1 has 2, B3 has 1.
        let g = sample().build_capped_for_test(CapStrategy::MostPopular(2));
        assert_eq!(g.followings(u(2)), &[u(11), u(12)]); // keeps B1, B2
    }

    #[test]
    fn cap_least_popular_keeps_niche_accounts() {
        let g = sample().build_capped_for_test(CapStrategy::LeastPopular(2));
        assert_eq!(g.followings(u(2)), &[u(11), u(13)]); // keeps B3, B1
    }

    #[test]
    fn cap_none_is_identity() {
        let uncapped = sample().build();
        let explicit = sample().build_capped_for_test(CapStrategy::None);
        assert_eq!(uncapped.num_follow_edges(), explicit.num_follow_edges());
    }

    #[test]
    fn cap_shrinks_s_memory() {
        let mut b = GraphBuilder::new();
        for a in 0..100u64 {
            for bb in 1000..1050u64 {
                b.add_edge(u(a), u(bb));
            }
        }
        let full = b.clone().build();
        let capped = b.build_capped(CapStrategy::Oldest(5));
        assert!(capped.s_memory_bytes() < full.s_memory_bytes());
        assert_eq!(capped.num_follow_edges(), 100 * 5);
    }

    #[test]
    fn followers_always_sorted() {
        let g = sample().build();
        for (_, followers) in g.iter_inverse() {
            assert!(followers.windows(2).all(|w| w[0] < w[1]));
        }
    }

    impl GraphBuilder {
        fn build_capped_for_test(self, cap: CapStrategy) -> FollowGraph {
            self.build_capped(cap)
        }
    }
}
