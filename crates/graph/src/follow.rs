//! The bidirectional static follow graph.
//!
//! [`FollowGraph`] holds both directions of the offline-computed `A → B`
//! edges:
//!
//! * **forward** — `A → [B]`: the accounts each user follows ("followings").
//!   Used by baselines, the workload generator, and the influencer cap.
//! * **inverse** — `B → [A]`: each account's followers **restricted to the
//!   hosted `A` set**. This is the paper's structure `S`: "store the inverse
//!   as an adjacency list … given a particular B, we can query S to look up
//!   all A's that follow it."
//!
//! The influencer cap ([`CapStrategy`]) reproduces the paper's pruning:
//! "for users who follow many accounts, we have found it more effective to
//! limit the number of influencers each user can have. This has the
//! additional benefit of limiting the size of the S data structures held in
//! memory."

use crate::csr::CsrGraph;
use magicrecs_types::{FxHashMap, UserId};

/// How to choose which followings to keep when a user exceeds the
/// influencer cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapStrategy {
    /// Keep everything (no cap).
    None,
    /// Keep the `n` followings with the **most followers** (global
    /// popularity proxy for the paper's "rich features").
    MostPopular(usize),
    /// Keep the `n` followings with the **fewest followers**. Favouring
    /// niche accounts concentrates signal on tight communities; included as
    /// the contrast arm of experiment E9.
    LeastPopular(usize),
    /// Keep the `n` smallest user ids — a cheap deterministic stand-in for
    /// "first n by account age" (Twitter ids are time-ordered).
    Oldest(usize),
}

impl CapStrategy {
    /// The cap value, if any.
    pub fn cap(&self) -> Option<usize> {
        match *self {
            CapStrategy::None => None,
            CapStrategy::MostPopular(n)
            | CapStrategy::LeastPopular(n)
            | CapStrategy::Oldest(n) => Some(n),
        }
    }
}

/// The static bidirectional follow graph (structure `S` plus its forward
/// view).
#[derive(Debug, Clone, Default)]
pub struct FollowGraph {
    forward: CsrGraph,
    inverse: CsrGraph,
}

impl FollowGraph {
    /// Builds from forward rows (each row sorted + deduplicated), applying
    /// the influencer cap before inverting.
    pub(crate) fn from_forward_rows(
        mut forward_rows: Vec<(UserId, Vec<UserId>)>,
        cap: CapStrategy,
    ) -> Self {
        if let Some(n) = cap.cap() {
            // Popularity = follower count over the *uncapped* graph.
            let mut popularity: FxHashMap<UserId, u32> = FxHashMap::default();
            if matches!(
                cap,
                CapStrategy::MostPopular(_) | CapStrategy::LeastPopular(_)
            ) {
                for (_, targets) in &forward_rows {
                    for &b in targets {
                        *popularity.entry(b).or_insert(0) += 1;
                    }
                }
            }
            for (_, targets) in forward_rows.iter_mut() {
                if targets.len() <= n {
                    continue;
                }
                match cap {
                    CapStrategy::None => unreachable!(),
                    CapStrategy::Oldest(_) => {
                        targets.truncate(n); // rows are sorted by id
                    }
                    CapStrategy::MostPopular(_) => {
                        targets.sort_unstable_by_key(|b| {
                            (std::cmp::Reverse(popularity[b]), b.raw())
                        });
                        targets.truncate(n);
                        targets.sort_unstable();
                    }
                    CapStrategy::LeastPopular(_) => {
                        targets.sort_unstable_by_key(|b| (popularity[b], b.raw()));
                        targets.truncate(n);
                        targets.sort_unstable();
                    }
                }
            }
        }

        // Invert: (A, B) → (B, A), grouped by B, A's sorted.
        let mut inv_edges: Vec<(UserId, UserId)> = forward_rows
            .iter()
            .flat_map(|(a, bs)| bs.iter().map(move |&b| (b, *a)))
            .collect();
        inv_edges.sort_unstable();
        let mut inv_rows: Vec<(UserId, Vec<UserId>)> = Vec::new();
        for (b, a) in inv_edges {
            match inv_rows.last_mut() {
                Some((s, ts)) if *s == b => ts.push(a),
                _ => inv_rows.push((b, vec![a])),
            }
        }

        FollowGraph {
            forward: CsrGraph::from_rows(forward_rows),
            inverse: CsrGraph::from_rows(inv_rows),
        }
    }

    /// The accounts `a` follows (sorted). Forward direction, `A → [B]`.
    #[inline]
    pub fn followings(&self, a: UserId) -> &[UserId] {
        self.forward.neighbors(a)
    }

    /// The followers of `b` (sorted). This is the paper's `S` lookup:
    /// "given a particular B, query S to look up all A's that follow it."
    #[inline]
    pub fn followers(&self, b: UserId) -> &[UserId] {
        self.inverse.neighbors(b)
    }

    /// Whether `a` follows `b`.
    #[inline]
    pub fn follows(&self, a: UserId, b: UserId) -> bool {
        self.forward.contains_edge(a, b)
    }

    /// Number of distinct follow edges.
    #[inline]
    pub fn num_follow_edges(&self) -> usize {
        self.forward.num_edges()
    }

    /// Number of users with at least one following.
    #[inline]
    pub fn num_followers_hosted(&self) -> usize {
        self.forward.num_sources()
    }

    /// Out-degree (following count) of `a`.
    #[inline]
    pub fn following_count(&self, a: UserId) -> usize {
        self.forward.degree(a)
    }

    /// In-degree (follower count) of `b`.
    #[inline]
    pub fn follower_count(&self, b: UserId) -> usize {
        self.inverse.degree(b)
    }

    /// Iterates `(A, followings)` rows.
    pub fn iter_forward(&self) -> impl Iterator<Item = (UserId, &[UserId])> + '_ {
        self.forward.iter()
    }

    /// Iterates `(B, followers)` rows — the `S` structure.
    pub fn iter_inverse(&self) -> impl Iterator<Item = (UserId, &[UserId])> + '_ {
        self.inverse.iter()
    }

    /// The forward CSR (for baselines that need raw access).
    pub fn forward_csr(&self) -> &CsrGraph {
        &self.forward
    }

    /// The inverse CSR — structure `S` (for the detector's hot path).
    pub fn inverse_csr(&self) -> &CsrGraph {
        &self.inverse
    }

    /// Approximate resident bytes of both directions.
    pub fn memory_bytes(&self) -> usize {
        self.forward.memory_bytes() + self.inverse.memory_bytes()
    }

    /// Approximate resident bytes of the inverse index only — what a
    /// partition actually serves from (forward is only needed offline).
    pub fn s_memory_bytes(&self) -> usize {
        self.inverse.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn u(n: u64) -> UserId {
        UserId(n)
    }

    /// A1 follows B1,B2; A2 follows B1,B2,B3; A3 follows B2.
    fn sample() -> GraphBuilder {
        let mut b = GraphBuilder::new();
        b.extend([
            (u(1), u(11)),
            (u(1), u(12)),
            (u(2), u(11)),
            (u(2), u(12)),
            (u(2), u(13)),
            (u(3), u(12)),
        ]);
        b
    }

    #[test]
    fn forward_and_inverse_agree() {
        let g = sample().build();
        assert_eq!(g.followings(u(2)), &[u(11), u(12), u(13)]);
        assert_eq!(g.followers(u(11)), &[u(1), u(2)]);
        assert_eq!(g.followers(u(12)), &[u(1), u(2), u(3)]);
        assert_eq!(g.followers(u(13)), &[u(2)]);
        assert!(g.follows(u(1), u(11)));
        assert!(!g.follows(u(3), u(11)));
    }

    #[test]
    fn inverse_edge_count_matches_forward() {
        let g = sample().build();
        let fwd: usize = g.iter_forward().map(|(_, t)| t.len()).sum();
        let inv: usize = g.iter_inverse().map(|(_, t)| t.len()).sum();
        assert_eq!(fwd, inv);
        assert_eq!(fwd, g.num_follow_edges());
    }

    #[test]
    fn degrees() {
        let g = sample().build();
        assert_eq!(g.following_count(u(2)), 3);
        assert_eq!(g.follower_count(u(12)), 3);
        assert_eq!(g.following_count(u(99)), 0);
        assert_eq!(g.follower_count(u(99)), 0);
    }

    #[test]
    fn cap_oldest_keeps_smallest_ids() {
        let g = sample().build_capped_for_test(CapStrategy::Oldest(2));
        assert_eq!(g.followings(u(2)), &[u(11), u(12)]);
        // B3 lost its only follower.
        assert_eq!(g.followers(u(13)), &[] as &[UserId]);
    }

    #[test]
    fn cap_most_popular_keeps_high_follower_accounts() {
        // Popularity: B2 has 3 followers, B1 has 2, B3 has 1.
        let g = sample().build_capped_for_test(CapStrategy::MostPopular(2));
        assert_eq!(g.followings(u(2)), &[u(11), u(12)]); // keeps B1, B2
    }

    #[test]
    fn cap_least_popular_keeps_niche_accounts() {
        let g = sample().build_capped_for_test(CapStrategy::LeastPopular(2));
        assert_eq!(g.followings(u(2)), &[u(11), u(13)]); // keeps B3, B1
    }

    #[test]
    fn cap_none_is_identity() {
        let uncapped = sample().build();
        let explicit = sample().build_capped_for_test(CapStrategy::None);
        assert_eq!(uncapped.num_follow_edges(), explicit.num_follow_edges());
    }

    #[test]
    fn cap_shrinks_s_memory() {
        let mut b = GraphBuilder::new();
        for a in 0..100u64 {
            for bb in 1000..1050u64 {
                b.add_edge(u(a), u(bb));
            }
        }
        let full = b.clone().build();
        let capped = b.build_capped(CapStrategy::Oldest(5));
        assert!(capped.s_memory_bytes() < full.s_memory_bytes());
        assert_eq!(capped.num_follow_edges(), 100 * 5);
    }

    #[test]
    fn followers_always_sorted() {
        let g = sample().build();
        for (_, followers) in g.iter_inverse() {
            assert!(followers.windows(2).all(|w| w[0] < w[1]));
        }
    }

    impl GraphBuilder {
        fn build_capped_for_test(self, cap: CapStrategy) -> FollowGraph {
            self.build_capped(cap)
        }
    }
}
