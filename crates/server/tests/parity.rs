//! Network-vs-in-process parity: the candidate stream coming back over
//! loopback TCP must be *identical* to an in-process
//! [`SharedEngineCluster`] run over the same graph, config, and trace.
//!
//! The client preserves the ordering contract the same way the cluster
//! transport does: one connection per worker, each event routed on
//! `route_mix(dst) % num_workers`, so same-target events stay FIFO on
//! one worker. Barriers fence each connection at the end, proving every
//! frame was processed before we compare. Candidates are compared under
//! the cluster's deterministic sort `(triggered_at, user, target)`.

use magicrecs_cluster::SharedEngineCluster;
use magicrecs_core::ConcurrentEngine;
use magicrecs_gen::{GraphGen, GraphGenConfig, Scenario, ScenarioConfig};
use magicrecs_server::{connect_per_worker, AdmissionConfig, Frame, Server, ServerConfig};
use magicrecs_types::{
    route_mix, Candidate, DetectorConfig, Duration, EdgeEvent, Timestamp, UserId,
};
use std::sync::Arc;

fn sort_key(c: &Candidate) -> (Timestamp, UserId, UserId) {
    (c.triggered_at, c.user, c.target)
}

/// Drives `events` through a loopback server with `workers` workers and
/// returns every delivered candidate (unsorted).
fn run_over_the_wire(
    graph: &magicrecs_graph::FollowGraph,
    config: DetectorConfig,
    events: &[EdgeEvent],
    workers: usize,
    batch: usize,
) -> Vec<Candidate> {
    let engine = Arc::new(ConcurrentEngine::new(graph.clone(), config).unwrap());
    let server = Server::start(
        engine,
        "127.0.0.1:0",
        ServerConfig {
            workers,
            admission: AdmissionConfig::unlimited(),
            pin_cores: false,
            checkpoint_hook: None,
        },
    )
    .unwrap();
    let mut conns = connect_per_worker(server.addr()).unwrap();
    let n = conns.len() as u64;
    for c in conns.iter_mut() {
        c.send(&Frame::Subscribe).unwrap();
        match c.recv().unwrap() {
            Frame::OkAck => {}
            other => panic!("expected OkAck, got {other:?}"),
        }
    }

    // Route by target, micro-batching consecutive same-worker events the
    // way a real ingest proxy would.
    let mut pending: Vec<Vec<EdgeEvent>> = vec![Vec::new(); conns.len()];
    let mut tag = 0u64;
    for e in events {
        let w = (route_mix(&e.dst) % n) as usize;
        pending[w].push(*e);
        if pending[w].len() >= batch {
            conns[w]
                .send(&Frame::Ingest {
                    tag,
                    events: std::mem::take(&mut pending[w]),
                })
                .unwrap();
            tag += 1;
        }
    }
    for (w, rest) in pending.into_iter().enumerate() {
        if !rest.is_empty() {
            conns[w].send(&Frame::Ingest { tag, events: rest }).unwrap();
            tag += 1;
        }
    }

    let mut candidates = Vec::new();
    for c in conns.iter_mut() {
        for frame in c.barrier(u64::MAX).unwrap() {
            match frame {
                Frame::Deliver {
                    candidates: mut cs, ..
                } => candidates.append(&mut cs),
                Frame::Shed { .. } => panic!("unlimited admission shed"),
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }
    server.shutdown();
    candidates
}

#[test]
fn network_candidates_match_in_process_cluster() {
    let graph = GraphGen::new(GraphGenConfig::small()).generate();
    let config = DetectorConfig::example();
    let trace = Scenario::steady_with_burst(
        1_000,
        ScenarioConfig::small().with_rate(60.0),
        Timestamp::from_secs(20),
        Duration::from_secs(10),
        8.0,
    );
    assert!(trace.len() > 1_000, "trace too small to mean anything");

    let workers = 3;
    let reference = SharedEngineCluster::new(&graph, workers, config)
        .unwrap()
        .run_trace(trace.events())
        .unwrap();
    assert!(
        !reference.candidates.is_empty(),
        "trace produced no candidates; parity would be vacuous"
    );

    let mut wire = run_over_the_wire(&graph, config, trace.events(), workers, 32);
    wire.sort_by_key(sort_key);
    // The cluster report is already sorted by the same key.
    assert_eq!(wire.len(), reference.candidates.len());
    assert_eq!(wire, reference.candidates);
}

#[test]
fn parity_holds_across_worker_counts_and_batch_sizes() {
    let graph = GraphGen::new(GraphGenConfig::small().with_seed(0xBEEF)).generate();
    let config = DetectorConfig::example();
    let trace = Scenario::steady(1_000, ScenarioConfig::small().with_rate(40.0));

    let reference = SharedEngineCluster::new(&graph, 2, config)
        .unwrap()
        .run_trace(trace.events())
        .unwrap();
    assert!(!reference.candidates.is_empty());

    for (workers, batch) in [(1, 1), (2, 7), (4, 64)] {
        let mut wire = run_over_the_wire(&graph, config, trace.events(), workers, batch);
        wire.sort_by_key(sort_key);
        assert_eq!(
            wire, reference.candidates,
            "parity broke at workers={workers} batch={batch}"
        );
    }
}
