//! Property tests for the wire codec, in the persistence-codec style:
//! arbitrary frames round-trip exactly (alone and in streams), every
//! truncation point is a clean incomplete prefix, and any single-bit
//! flip either fails typed ([`Error::Corrupt`]), yields the identical
//! frame, or turns the stream into an incomplete prefix — never a
//! panic, never a silently different frame.

use magicrecs_server::wire::{
    decode, encode, Frame, ReplStatus, ShedCode, WireErrorCode, WireStats,
};
use magicrecs_types::{Candidate, EdgeEvent, EdgeKind, Error, Timestamp, UserId};
use proptest::prelude::*;

fn u(n: u64) -> UserId {
    UserId(n)
}

fn kind(k: u8) -> EdgeKind {
    match k % 4 {
        0 => EdgeKind::Follow,
        1 => EdgeKind::Unfollow,
        2 => EdgeKind::Retweet,
        _ => EdgeKind::Favorite,
    }
}

fn arb_event() -> impl Strategy<Value = EdgeEvent> {
    (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 50, 0u8..4).prop_map(|(a, b, us, k)| EdgeEvent {
        src: u(a),
        dst: u(b),
        created_at: Timestamp::from_micros(us),
        kind: kind(k),
    })
}

fn arb_candidate() -> impl Strategy<Value = Candidate> {
    (
        0u64..1 << 40,
        0u64..1 << 40,
        0u64..1 << 50,
        proptest::collection::vec(0u64..1 << 40, 0..6),
    )
        .prop_map(|(user, target, us, ws)| Candidate {
            user: u(user),
            target: u(target),
            triggered_at: Timestamp::from_micros(us),
            witnesses: ws.into_iter().map(u).collect(),
        })
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (0u32..8).prop_map(|w| Frame::Hello {
            preferred_worker: w
        }),
        (0u32..8, 1u32..9).prop_map(|(w, n)| Frame::HelloAck {
            worker_id: w,
            num_workers: n
        }),
        (
            (0u64..u64::MAX),
            proptest::collection::vec(arb_event(), 0..24)
        )
            .prop_map(|(tag, events)| Frame::Ingest { tag, events }),
        Just(Frame::Subscribe),
        (
            (0u64..u64::MAX),
            proptest::collection::vec(arb_candidate(), 0..12)
        )
            .prop_map(|(tag, candidates)| Frame::Deliver { tag, candidates }),
        ((0u64..u64::MAX), prop::bool::ANY, 0u64..100_000_000).prop_map(|(tag, rl, us)| {
            Frame::Shed {
                tag,
                code: if rl {
                    ShedCode::RateLimited
                } else {
                    ShedCode::Overloaded
                },
                retry_after_us: us,
            }
        }),
        (
            0u8..3,
            proptest::collection::vec(97u8..123, 0..40)
                .prop_map(|v| String::from_utf8(v).expect("ascii"))
        )
            .prop_map(|(c, detail)| Frame::Error {
                code: match c {
                    0 => WireErrorCode::BadFrame,
                    1 => WireErrorCode::Unsupported,
                    _ => WireErrorCode::Internal,
                },
                detail,
            }),
        proptest::collection::vec(0u8..255, 0..256).prop_map(|bytes| Frame::DeltaPublish { bytes }),
        Just(Frame::CheckpointReq),
        Just(Frame::StatsReq),
        proptest::collection::vec(0u64..u64::MAX, 10..11).prop_map(|v| {
            Frame::StatsResp(WireStats {
                events: v[0],
                candidates: v[1],
                firing_events: v[2],
                accepted: v[3],
                shed: v[4],
                queue_high_watermark: v[5],
                dropped_deliveries: v[6],
                connections: v[7],
                detect_p50_us: v[8],
                detect_p99_us: v[9],
            })
        }),
        Just(Frame::OkAck),
        (0u64..u64::MAX).prop_map(|tag| Frame::Barrier { tag }),
        (0u64..u64::MAX).prop_map(|tag| Frame::BarrierAck { tag }),
        Just(Frame::MetricsReq),
        proptest::collection::vec(
            (
                proptest::collection::vec(97u8..123, 0..24)
                    .prop_map(|v| String::from_utf8(v).expect("ascii")),
                0u64..u64::MAX,
            ),
            0..16
        )
        .prop_map(|metrics| Frame::MetricsResp { metrics }),
        (0u32..8, 0u64..u64::MAX, 0u64..1 << 50, 0u64..1 << 50).prop_map(
            |(partition, tag, durable, replicated)| Frame::IngestAck {
                partition,
                tag,
                durable,
                replicated,
            }
        ),
        (0u32..8, 0u64..1 << 20)
            .prop_map(|(partition, epoch)| Frame::RouteBind { partition, epoch }),
        (0u32..8, 0u64..1 << 20, 0u32..8).prop_map(|(partition, epoch, hint)| {
            Frame::WrongLeader {
                partition,
                epoch,
                hint,
            }
        }),
        (0u32..8, 0u64..1 << 50).prop_map(|(partition, from_seq)| Frame::SegmentsReq {
            partition,
            from_seq
        }),
        (
            0u32..8,
            proptest::collection::vec((0u64..1 << 50, 0u64..1 << 30), 0..12)
        )
            .prop_map(|(partition, segments)| Frame::SegmentsResp {
                partition,
                segments
            }),
        (0u32..8, 0u64..1 << 50, 0u64..1 << 30, 0u32..1 << 20).prop_map(
            |(partition, first_seq, offset, max_len)| Frame::SegmentFetch {
                partition,
                first_seq,
                offset,
                max_len,
            }
        ),
        (
            0u32..8,
            0u64..1 << 50,
            0u64..1 << 30,
            proptest::collection::vec(0u8..255, 0..256)
        )
            .prop_map(
                |(partition, first_seq, offset, bytes)| Frame::SegmentChunk {
                    partition,
                    first_seq,
                    offset,
                    bytes,
                }
            ),
        (0u32..8, 0u64..1 << 20, prop::bool::ANY, 0u32..8).prop_map(
            |(partition, epoch, leader, hint)| Frame::RoleChange {
                partition,
                epoch,
                leader,
                hint,
            }
        ),
        (0u32..8, 0u64..1 << 20, 0u64..1 << 50).prop_map(|(partition, epoch, durable)| {
            Frame::RoleChangeAck {
                partition,
                epoch,
                durable,
            }
        }),
        (0u32..8).prop_map(|partition| Frame::StateListReq { partition }),
        (
            0u32..8,
            proptest::collection::vec(
                (
                    proptest::collection::vec(97u8..123, 0..24)
                        .prop_map(|v| String::from_utf8(v).expect("ascii")),
                    0u64..1 << 40,
                ),
                0..8
            )
        )
            .prop_map(|(partition, files)| Frame::StateListResp { partition, files }),
        (
            0u32..8,
            proptest::collection::vec(97u8..123, 0..24)
                .prop_map(|v| String::from_utf8(v).expect("ascii")),
            0u64..1 << 30,
            0u32..1 << 20,
        )
            .prop_map(|(partition, name, offset, max_len)| Frame::StateFetch {
                partition,
                name,
                offset,
                max_len,
            }),
        (
            0u32..8,
            proptest::collection::vec(97u8..123, 0..24)
                .prop_map(|v| String::from_utf8(v).expect("ascii")),
            0u64..1 << 30,
            proptest::collection::vec(0u8..255, 0..256),
        )
            .prop_map(|(partition, name, offset, bytes)| Frame::StateChunk {
                partition,
                name,
                offset,
                bytes,
            }),
        (
            0u32..8,
            proptest::collection::vec(97u8..123, 0..24)
                .prop_map(|v| String::from_utf8(v).expect("ascii")),
        )
            .prop_map(|(partition, source)| Frame::FollowReq { partition, source }),
        (0u32..8).prop_map(|partition| Frame::StatusReq { partition }),
        (
            (0u32..8, prop::bool::ANY, 0u64..1 << 20),
            (0u64..1 << 50, 0u64..1 << 50, 0u64..1 << 50),
        )
            .prop_map(
                |((partition, leading, epoch), (durable, applied, replicated))| {
                    Frame::StatusResp(ReplStatus {
                        partition,
                        leading,
                        epoch,
                        durable,
                        applied,
                        replicated,
                    })
                }
            ),
    ]
}

/// Decodes every complete frame in `buf`, stopping at the first
/// incomplete prefix or typed error.
fn drain(mut buf: &[u8]) -> Result<Vec<Frame>, Error> {
    let mut out = Vec::new();
    while let Some((f, used)) = decode(buf)? {
        out.push(f);
        buf = &buf[used..];
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every frame round-trips exactly, consuming exactly its bytes.
    #[test]
    fn frames_roundtrip(frame in arb_frame()) {
        let bytes = encode(&frame);
        let (back, used) = decode(&bytes).unwrap().expect("complete frame");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back, frame);
    }

    /// Streams of frames decode in order, and every truncation point of
    /// the stream is a clean prefix (the decoded frames match the
    /// originals frame-for-frame) — never an error, never a panic.
    #[test]
    fn streams_are_prefix_closed_under_truncation(
        frames in proptest::collection::vec(arb_frame(), 1..8),
        cut_at in 0usize..65536,
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode(f));
        }
        prop_assert_eq!(drain(&stream).unwrap(), frames.clone());

        let cut = cut_at % (stream.len() + 1);
        let got = drain(&stream[..cut]).unwrap();
        prop_assert!(got.len() <= frames.len());
        prop_assert_eq!(&got[..], &frames[..got.len()]);
    }

    /// Flipping any single bit anywhere in a stream either (a) fails
    /// typed with `Corrupt`, (b) still decodes to the identical frames,
    /// or (c) decodes an identical prefix then reports an incomplete
    /// frame (a length-field flip can only starve the decoder — the
    /// checksum guards the rest). Never a panic, never a different frame.
    #[test]
    fn bit_flips_never_forge_frames(
        frames in proptest::collection::vec(arb_frame(), 1..6),
        flip_at in 0usize..65536,
        flip_bit in 0u32..8,
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode(f));
        }
        let mut mutated = stream.clone();
        let i = flip_at % mutated.len();
        mutated[i] ^= 1 << flip_bit;

        match drain(&mutated) {
            Err(Error::Corrupt(_)) => {}
            Err(e) => prop_assert!(false, "wrong error class: {e:?}"),
            Ok(got) => {
                prop_assert!(got.len() <= frames.len(), "forged extra frames");
                prop_assert_eq!(
                    &got[..],
                    &frames[..got.len()],
                    "flip at byte {} decoded different frames", i
                );
            }
        }
    }
}
