//! Loopback end-to-end tests: handshake, subscribe/deliver, barriers,
//! typed shedding, control plane, and connection hygiene.

use magicrecs_core::ConcurrentEngine;
use magicrecs_server::{
    connect_per_worker, AdmissionConfig, ClientConn, Frame, Server, ServerConfig, ShedCode,
    WireErrorCode,
};
use magicrecs_types::{DetectorConfig, Duration, EdgeEvent, Timestamp, UserId};
use std::sync::Arc;

fn u(n: u64) -> UserId {
    UserId(n)
}

fn ts(s: u64) -> Timestamp {
    Timestamp::from_secs(s)
}

/// A1(1), A2(2) both follow B1(10), B2(11): B1→C, B2→C completes the
/// k=2 diamond for both As.
fn diamond_graph() -> magicrecs_graph::FollowGraph {
    let mut b = magicrecs_graph::GraphBuilder::new();
    b.extend([(u(1), u(10)), (u(1), u(11)), (u(2), u(10)), (u(2), u(11))]);
    b.build()
}

fn start(workers: usize, admission: AdmissionConfig) -> (Server, Arc<ConcurrentEngine>) {
    let engine =
        Arc::new(ConcurrentEngine::new(diamond_graph(), DetectorConfig::example()).unwrap());
    let server = Server::start(
        engine.clone(),
        "127.0.0.1:0",
        ServerConfig {
            workers,
            admission,
            pin_cores: false,
            checkpoint_hook: None,
        },
    )
    .unwrap();
    (server, engine)
}

#[test]
fn handshake_reports_worker_topology() {
    let (server, _engine) = start(3, AdmissionConfig::unlimited());
    let conns = connect_per_worker(server.addr()).unwrap();
    assert_eq!(conns.len(), 3);
    for (i, c) in conns.iter().enumerate() {
        assert_eq!(c.worker_id, i as u32);
        assert_eq!(c.num_workers, 3);
    }
    server.shutdown();
}

#[test]
fn ingest_detect_deliver_roundtrip() {
    let (server, _engine) = start(1, AdmissionConfig::unlimited());
    let mut conn = ClientConn::connect(server.addr(), Some(0)).unwrap();
    conn.send(&Frame::Subscribe).unwrap();
    assert_eq!(conn.recv().unwrap(), Frame::OkAck);

    conn.send(&Frame::Ingest {
        tag: 7,
        events: vec![
            EdgeEvent::follow(u(10), u(99), ts(100)),
            EdgeEvent::follow(u(11), u(99), ts(105)),
        ],
    })
    .unwrap();

    match conn.recv().unwrap() {
        Frame::Deliver { tag, candidates } => {
            assert_eq!(tag, 7);
            let users: Vec<UserId> = candidates.iter().map(|c| c.user).collect();
            assert_eq!(users, vec![u(1), u(2)]);
            for c in &candidates {
                assert_eq!(c.target, u(99));
                assert_eq!(c.witnesses, vec![u(10), u(11)]);
            }
        }
        other => panic!("expected Deliver, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn unsubscribed_connections_get_no_deliveries() {
    let (server, _engine) = start(1, AdmissionConfig::unlimited());
    let mut conn = ClientConn::connect(server.addr(), Some(0)).unwrap();
    conn.send(&Frame::Ingest {
        tag: 1,
        events: vec![
            EdgeEvent::follow(u(10), u(99), ts(100)),
            EdgeEvent::follow(u(11), u(99), ts(105)),
        ],
    })
    .unwrap();
    // The barrier ack must be the *first* frame back: no Deliver.
    let before = conn.barrier(2).unwrap();
    assert!(before.is_empty(), "got {before:?}");
    server.shutdown();
}

#[test]
fn rate_limit_sheds_with_typed_response_and_retry_hint() {
    // Burst of 256 events, then an empty bucket at 1 ev/s.
    let (server, engine) = start(
        1,
        AdmissionConfig {
            source_rate: 1.0,
            source_burst: 256.0,
            ..AdmissionConfig::unlimited()
        },
    );
    let mut conn = ClientConn::connect(server.addr(), Some(0)).unwrap();

    let burst: Vec<EdgeEvent> = (0..256)
        .map(|i| EdgeEvent::follow(u(1000 + i), u(2000), ts(i)))
        .collect();
    conn.send(&Frame::Ingest {
        tag: 1,
        events: burst.clone(),
    })
    .unwrap();
    conn.send(&Frame::Ingest {
        tag: 2,
        events: burst,
    })
    .unwrap();
    let frames = conn.barrier(99).unwrap();
    let sheds: Vec<&Frame> = frames
        .iter()
        .filter(|f| matches!(f, Frame::Shed { .. }))
        .collect();
    assert_eq!(sheds.len(), 1, "exactly the second batch sheds: {frames:?}");
    match sheds[0] {
        Frame::Shed {
            tag,
            code,
            retry_after_us,
        } => {
            assert_eq!(*tag, 2);
            assert_eq!(*code, ShedCode::RateLimited);
            // 256 events at 1/s: the hint is large (capped at 60s).
            assert!(*retry_after_us > 1_000_000, "hint {retry_after_us}µs");
        }
        _ => unreachable!(),
    }
    let s = engine.stats();
    assert_eq!(s.accepted, 256);
    assert_eq!(s.shed, 256);
    server.shutdown();
}

#[test]
fn stats_roundtrip_over_the_wire() {
    let (server, _engine) = start(1, AdmissionConfig::unlimited());
    let mut conn = ClientConn::connect(server.addr(), Some(0)).unwrap();
    conn.send(&Frame::Ingest {
        tag: 1,
        events: vec![
            EdgeEvent::follow(u(10), u(99), ts(100)),
            EdgeEvent::follow(u(11), u(99), ts(101)),
        ],
    })
    .unwrap();
    conn.barrier(2).unwrap();
    conn.send(&Frame::StatsReq).unwrap();
    match conn.recv().unwrap() {
        Frame::StatsResp(s) => {
            assert_eq!(s.events, 2);
            assert_eq!(s.accepted, 2);
            assert_eq!(s.shed, 0);
            assert_eq!(s.candidates, 2);
            assert_eq!(s.firing_events, 1);
            assert!(s.queue_high_watermark >= 2);
            assert_eq!(s.connections, 1);
        }
        other => panic!("expected StatsResp, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn metrics_scrape_is_bit_identical_to_stats_shim() {
    // The StatsResp compatibility shim and the MetricsResp registry
    // scrape read the same handles; with traffic quiesced behind a
    // barrier, every overlapping field must match exactly.
    let (server, _engine) = start(1, AdmissionConfig::unlimited());
    let mut conn = ClientConn::connect(server.addr(), Some(0)).unwrap();
    conn.send(&Frame::Ingest {
        tag: 1,
        events: vec![
            EdgeEvent::follow(u(10), u(99), ts(100)),
            EdgeEvent::follow(u(11), u(99), ts(101)),
        ],
    })
    .unwrap();
    conn.barrier(2).unwrap();
    let metrics = conn.fetch_metrics().unwrap();
    let get = |name: &str| -> u64 {
        metrics
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("scrape missing {name}"))
            .1
    };
    conn.send(&Frame::StatsReq).unwrap();
    let stats = match conn.recv().unwrap() {
        Frame::StatsResp(s) => s,
        other => panic!("expected StatsResp, got {other:?}"),
    };
    assert_eq!(stats.events, get("engine_events"));
    assert_eq!(stats.candidates, get("engine_candidates"));
    assert_eq!(stats.firing_events, get("engine_firing_events"));
    assert_eq!(stats.accepted, get("engine_accepted"));
    assert_eq!(stats.shed, get("engine_shed"));
    assert_eq!(
        stats.queue_high_watermark,
        get("engine_queue_high_watermark")
    );
    assert_eq!(stats.dropped_deliveries, get("server_dropped_deliveries"));
    assert_eq!(stats.connections, get("server_connections"));
    assert_eq!(stats.detect_p50_us, get("engine_detect_us_p50"));
    assert_eq!(stats.detect_p99_us, get("engine_detect_us_p99"));
    // The scrape also carries what the frozen shim cannot: store gauges
    // and the stage-latency decomposition from the global registry.
    assert!(get("store_inserted") >= 2);
    assert!(get("stage_e2e_us_count") >= 1);
    assert!(get("stage_detect_us_count") >= 1);
    assert!(get("server_frames_ingest") >= 1);
    server.shutdown();
}

#[test]
fn checkpoint_without_hook_is_typed_unsupported() {
    let (server, _engine) = start(1, AdmissionConfig::unlimited());
    let mut conn = ClientConn::connect(server.addr(), Some(0)).unwrap();
    conn.send(&Frame::CheckpointReq).unwrap();
    match conn.recv().unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, WireErrorCode::Unsupported),
        other => panic!("expected Error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn checkpoint_hook_is_invoked() {
    let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let engine =
        Arc::new(ConcurrentEngine::new(diamond_graph(), DetectorConfig::example()).unwrap());
    let hook_hits = hits.clone();
    let server = Server::start(
        engine,
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            admission: AdmissionConfig::unlimited(),
            pin_cores: false,
            checkpoint_hook: Some(Arc::new(move || {
                hook_hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                Ok(())
            })),
        },
    )
    .unwrap();
    let mut conn = ClientConn::connect(server.addr(), Some(0)).unwrap();
    conn.send(&Frame::CheckpointReq).unwrap();
    assert_eq!(conn.recv().unwrap(), Frame::OkAck);
    assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 1);
    server.shutdown();
}

#[test]
fn delta_publish_applies_to_the_snapshot_slot() {
    let (server, engine) = start(1, AdmissionConfig::unlimited());
    // New graph adds A3(3) following B1 and B2.
    let old = diamond_graph();
    let mut b = magicrecs_graph::GraphBuilder::new();
    b.extend([
        (u(1), u(10)),
        (u(1), u(11)),
        (u(2), u(10)),
        (u(2), u(11)),
        (u(3), u(10)),
        (u(3), u(11)),
    ]);
    let new = b.build();
    let delta = magicrecs_graph::GraphDelta::between(&old, &new, 1, 2).unwrap();
    let mut bytes = Vec::new();
    magicrecs_graph::save_delta(&delta, &mut bytes).unwrap();

    let mut conn = ClientConn::connect(server.addr(), Some(0)).unwrap();
    conn.send(&Frame::DeltaPublish { bytes }).unwrap();
    assert_eq!(conn.recv().unwrap(), Frame::OkAck);
    assert!(engine.graph().follows(u(3), u(10)));

    // Garbage delta: typed internal error, connection stays usable.
    conn.send(&Frame::DeltaPublish {
        bytes: vec![0xFF; 16],
    })
    .unwrap();
    match conn.recv().unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, WireErrorCode::Internal),
        other => panic!("expected Error, got {other:?}"),
    }
    conn.barrier(1).unwrap();
    server.shutdown();
}

#[test]
fn garbage_bytes_earn_a_typed_error_then_close() {
    use std::io::{Read, Write};
    let (server, _engine) = start(1, AdmissionConfig::unlimited());
    let mut conn = ClientConn::connect(server.addr(), Some(0)).unwrap();
    conn.send(&Frame::Subscribe).unwrap();
    assert_eq!(conn.recv().unwrap(), Frame::OkAck);

    // Bypass the typed client: write a corrupt frame directly.
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    raw.write_all(&magicrecs_server::wire::encode(&Frame::Hello {
        preferred_worker: 0,
    }))
    .unwrap();
    let mut junk = magicrecs_server::wire::encode(&Frame::Subscribe);
    let last = junk.len() - 1;
    junk[last] ^= 0xFF; // break the checksum
    raw.write_all(&junk).unwrap();
    // Read until EOF: the server sends Error{BadFrame} and closes.
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).unwrap();
    let mut frames = Vec::new();
    let mut off = 0;
    while let Ok(Some((f, used))) = magicrecs_server::wire::decode(&buf[off..]) {
        frames.push(f);
        off += used;
    }
    assert!(
        frames.iter().any(|f| matches!(
            f,
            Frame::Error {
                code: WireErrorCode::BadFrame,
                ..
            }
        )),
        "got {frames:?}"
    );
    server.shutdown();
}

#[test]
fn frames_pipelined_behind_hello_are_answered() {
    use std::io::{Read, Write};
    let (server, _engine) = start(1, AdmissionConfig::unlimited());
    // Write Hello + Subscribe in a single segment: the Subscribe rides
    // into the acceptor's handshake read as leftover bytes and must
    // still be answered (regression: leftover was parked in the read
    // buffer until the socket next signalled readable — which for a
    // client waiting on the reply is never).
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut bytes = magicrecs_server::wire::encode(&Frame::Hello {
        preferred_worker: 0,
    });
    bytes.extend_from_slice(&magicrecs_server::wire::encode(&Frame::Subscribe));
    raw.write_all(&bytes).unwrap();

    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut frames = Vec::new();
    while frames.len() < 2 {
        let n = raw.read(&mut chunk).unwrap();
        assert!(n > 0, "server closed before answering; got {frames:?}");
        buf.extend_from_slice(&chunk[..n]);
        while let Some((f, used)) = magicrecs_server::wire::decode(&buf).unwrap() {
            buf.drain(..used);
            frames.push(f);
        }
    }
    assert!(matches!(frames[0], Frame::HelloAck { .. }), "{frames:?}");
    assert_eq!(frames[1], Frame::OkAck);
    server.shutdown();
}

#[test]
fn events_spread_across_workers_by_target_routing() {
    let (server, engine) = start(2, AdmissionConfig::unlimited());
    let mut conns = connect_per_worker(server.addr()).unwrap();
    let n = conns.len() as u64;
    // 100 events over distinct targets, routed client-side.
    for i in 0..100u64 {
        let dst = u(5000 + i);
        let w = magicrecs_types::route_mix(&dst) % n;
        conns[w as usize]
            .send(&Frame::Ingest {
                tag: i,
                events: vec![EdgeEvent::follow(u(1), dst, ts(i))],
            })
            .unwrap();
    }
    for c in conns.iter_mut() {
        c.barrier(u64::MAX).unwrap();
    }
    assert_eq!(engine.stats().events, 100);
    server.shutdown();
}

#[test]
fn kill_and_reconnect_resumes_cleanly() {
    let (server, engine) = start(1, AdmissionConfig::unlimited());
    let mut conn = ClientConn::connect(server.addr(), Some(0)).unwrap();
    conn.send(&Frame::Ingest {
        tag: 1,
        events: vec![EdgeEvent::follow(u(10), u(99), ts(100))],
    })
    .unwrap();
    conn.barrier(2).unwrap();
    conn.kill();

    let mut conn = ClientConn::connect(server.addr(), Some(0)).unwrap();
    conn.send(&Frame::Subscribe).unwrap();
    assert_eq!(conn.recv().unwrap(), Frame::OkAck);
    conn.send(&Frame::Ingest {
        tag: 2,
        events: vec![EdgeEvent::follow(u(11), u(99), ts(100 + 5))],
    })
    .unwrap();
    match conn.recv().unwrap() {
        Frame::Deliver { candidates, .. } => {
            assert_eq!(candidates.len(), 2, "diamond completes across the kill");
        }
        other => panic!("expected Deliver, got {other:?}"),
    }
    assert_eq!(engine.stats().events, 2);
    server.shutdown();
}

#[test]
fn window_expiry_applies_across_the_wire() {
    let (server, _engine) = start(1, AdmissionConfig::unlimited());
    let mut conn = ClientConn::connect(server.addr(), Some(0)).unwrap();
    conn.send(&Frame::Subscribe).unwrap();
    assert_eq!(conn.recv().unwrap(), Frame::OkAck);
    let tau = DetectorConfig::example().tau;
    conn.send(&Frame::Ingest {
        tag: 1,
        events: vec![
            EdgeEvent::follow(u(10), u(99), ts(100)),
            // Outside the window: no diamond.
            EdgeEvent::follow(
                u(11),
                u(99),
                Timestamp::from_secs(100) + tau + Duration::from_secs(1),
            ),
        ],
    })
    .unwrap();
    let frames = conn.barrier(2).unwrap();
    assert!(frames.is_empty(), "stale witness fired: {frames:?}");
    server.shutdown();
}
