//! Client-side resilience: exponential backoff with jitter, a resend
//! ledger keyed by WAL sequence, and a reconnecting connection wrapper.
//!
//! The serving tier emits typed refusals (`Shed` with a retry-after
//! hint) and replica nodes emit typed acks (`IngestAck` with durable /
//! replicated watermarks), but until this module no client *consumed*
//! them: the load generator recorded hints without sleeping, and a
//! dropped connection ended the run. The pieces here close that loop:
//!
//! * [`Backoff`] — exponential delay with deterministic jitter that
//!   treats a server's retry-after hint as a **floor**, never less.
//! * [`SeqLedger`] — un-acked batches keyed by their first WAL
//!   sequence. A batch leaves the ledger only when the *replicated*
//!   watermark passes it, so after a leader kill -9 the client still
//!   holds exactly the acked-but-unshipped tail and can re-send it to
//!   the promoted follower. Re-sending is idempotent: the batch tag is
//!   its first sequence, and a leader skips any prefix it already
//!   holds — retry cannot double-ingest.
//! * [`ResilientConn`] — a [`ClientConn`] that re-dials with backoff
//!   when an operation dies on a transport error, instead of
//!   propagating the first `Io`/`ChannelClosed` to the caller.

use crate::client::ClientConn;
use crate::wire::Frame;
use magicrecs_types::{EdgeEvent, Error, Result};
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::time::Duration;

/// Exponential backoff with deterministic jitter.
///
/// The delay for attempt `n` is drawn uniformly from the upper half of
/// `base * 2^n` (capped at `cap`) — "equal jitter", so concurrent
/// clients desynchronize without ever retrying immediately. When the
/// server supplied a retry-after hint, the hint is a floor: honoring it
/// means never knocking again sooner than invited.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A backoff starting at `base`, doubling per attempt, capped at
    /// `cap`. `seed` drives the jitter; two clients with different
    /// seeds spread out, one client with a fixed seed is reproducible.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base,
            cap,
            attempt: 0,
            // xorshift must not start at 0; fold in a constant.
            rng: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64* — no external RNG dependency, good enough to
        // decorrelate retry storms.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The delay to sleep before the next attempt, honoring
    /// `hint_us` (a server retry-after hint; 0 = none) as a floor.
    /// Advances the attempt counter.
    pub fn next_delay(&mut self, hint_us: u64) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << self.attempt.min(16))
            .min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        let half = exp.as_micros() as u64 / 2;
        let jittered = half + self.next_rand() % (half + 1);
        Duration::from_micros(jittered.max(hint_us))
    }

    /// Attempts made since construction or the last [`Backoff::reset`].
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Clears the attempt counter after a success, so the next failure
    /// starts the ladder at `base` again.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// One staged, not-yet-released batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingBatch {
    /// Correlation tag — by construction the batch's first sequence,
    /// which is what makes re-sends idempotent at the WAL layer.
    pub tag: u64,
    /// Sequence of the batch's first event; events occupy
    /// `first_seq .. first_seq + events.len()`.
    pub first_seq: u64,
    /// The batch's events, in send order.
    pub events: Vec<EdgeEvent>,
}

impl PendingBatch {
    /// First sequence *after* this batch.
    pub fn end_seq(&self) -> u64 {
        self.first_seq + self.events.len() as u64
    }
}

/// The client's resend ledger: every sent batch, keyed by sequence,
/// retained until the replication watermark passes it.
///
/// Sequences are client-assigned and dense: the ledger hands out
/// `next_seq` as each batch is staged, and the receiving leader appends
/// at exactly those sequences (skipping any prefix it already holds).
/// "Acked" (durable on the leader) is therefore not enough to forget a
/// batch — only "replicated" (confirmed shipped to the follower) is,
/// because a kill -9 leader takes its un-shipped WAL tail down with it
/// and the promoted follower needs the client to still have those
/// events in hand.
#[derive(Debug, Default)]
pub struct SeqLedger {
    pending: VecDeque<PendingBatch>,
    next_seq: u64,
}

impl SeqLedger {
    /// A ledger whose first staged event gets sequence `first_seq`
    /// (0 for a fresh partition; the durable watermark when resuming).
    pub fn new(first_seq: u64) -> SeqLedger {
        SeqLedger {
            pending: VecDeque::new(),
            next_seq: first_seq,
        }
    }

    /// Stages a batch: assigns its sequences, records it as pending,
    /// and returns it for sending. Empty batches are an error — they
    /// would mint a tag no ack can ever release.
    pub fn stage(&mut self, events: Vec<EdgeEvent>) -> Result<&PendingBatch> {
        if events.is_empty() {
            return Err(Error::InvalidConfig("ledger: empty batch".into()));
        }
        let first_seq = self.next_seq;
        self.next_seq += events.len() as u64;
        self.pending.push_back(PendingBatch {
            tag: first_seq,
            first_seq,
            events,
        });
        Ok(self.pending.back().expect("just pushed"))
    }

    /// Applies a replicated watermark (first sequence **not** yet
    /// replicated): releases every batch wholly below it and returns
    /// how many were released. Watermarks are monotone; a stale or
    /// partial one releases nothing.
    pub fn release(&mut self, replicated: u64) -> usize {
        let mut released = 0;
        while let Some(front) = self.pending.front() {
            if front.end_seq() <= replicated {
                self.pending.pop_front();
                released += 1;
            } else {
                break;
            }
        }
        released
    }

    /// The batches a reconnecting client must re-send, oldest first.
    pub fn unreleased(&self) -> impl Iterator<Item = &PendingBatch> {
        self.pending.iter()
    }

    /// Sequence the next staged event will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Batches still held.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when every staged batch has been released.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Is this error worth re-dialing for? Transport failures are;
/// everything else (corrupt frames, typed refusals) is the caller's
/// problem.
pub fn is_transport_error(e: &Error) -> bool {
    matches!(e, Error::Io(_) | Error::ChannelClosed(_))
}

/// A [`ClientConn`] that survives its server: operations run through
/// [`ResilientConn::with_retries`], and a transport error drops the
/// socket, sleeps the backoff, re-dials, and re-runs the operation —
/// up to `max_attempts` dial attempts before giving up with the last
/// error.
#[derive(Debug)]
pub struct ResilientConn {
    addr: SocketAddr,
    preferred_worker: Option<u32>,
    conn: Option<ClientConn>,
    backoff: Backoff,
    max_attempts: u32,
    reconnects: u64,
}

impl ResilientConn {
    /// A wrapper that dials `addr` lazily and re-dials on failure.
    pub fn new(
        addr: SocketAddr,
        preferred_worker: Option<u32>,
        backoff: Backoff,
        max_attempts: u32,
    ) -> ResilientConn {
        ResilientConn {
            addr,
            preferred_worker,
            conn: None,
            backoff,
            max_attempts: max_attempts.max(1),
            reconnects: 0,
        }
    }

    /// Times this wrapper re-dialed after losing an established
    /// connection (successful first dials don't count).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Drops the current connection; the next operation re-dials. Used
    /// by callers that learn out-of-band the peer is gone (e.g. a
    /// `WrongLeader` pointing elsewhere).
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    /// Re-points the wrapper at a different address (follower
    /// promotion); drops any current connection.
    pub fn set_addr(&mut self, addr: SocketAddr) {
        self.addr = addr;
        self.conn = None;
    }

    /// The address currently dialed.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn ensure(&mut self) -> Result<&mut ClientConn> {
        if self.conn.is_none() {
            self.conn = Some(ClientConn::connect(self.addr, self.preferred_worker)?);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Runs `op` against a live connection, re-dialing (with backoff)
    /// and re-running on transport errors. `op` must be safe to repeat
    /// — which is exactly what [`SeqLedger`]-keyed batches are.
    pub fn with_retries<T>(
        &mut self,
        mut op: impl FnMut(&mut ClientConn) -> Result<T>,
    ) -> Result<T> {
        let mut attempts = 0u32;
        loop {
            let had_conn = self.conn.is_some();
            let r = match self.ensure() {
                Ok(conn) => op(conn),
                Err(e) => Err(e),
            };
            match r {
                Ok(v) => {
                    self.backoff.reset();
                    return Ok(v);
                }
                Err(e) if is_transport_error(&e) => {
                    if had_conn && self.conn.is_some() {
                        self.reconnects += 1;
                    }
                    self.conn = None;
                    attempts += 1;
                    if attempts >= self.max_attempts {
                        return Err(e);
                    }
                    std::thread::sleep(self.backoff.next_delay(0));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Convenience: send one frame and wait for the next frame back,
    /// with reconnect-and-resend on transport errors.
    pub fn request(&mut self, frame: &Frame) -> Result<Frame> {
        self.with_retries(|conn| {
            conn.send(frame)?;
            conn.recv()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magicrecs_types::{Timestamp, UserId};

    fn ev(n: u64) -> EdgeEvent {
        EdgeEvent::follow(UserId(n), UserId(n + 1), Timestamp::from_secs(n))
    }

    #[test]
    fn backoff_grows_honors_hints_and_caps() {
        let mut b = Backoff::new(
            Duration::from_micros(100),
            Duration::from_millis(10),
            0xC0FFEE,
        );
        let d0 = b.next_delay(0);
        assert!(d0 >= Duration::from_micros(50) && d0 <= Duration::from_micros(100));
        let d1 = b.next_delay(0);
        assert!(d1 >= Duration::from_micros(100) && d1 <= Duration::from_micros(200));
        // A server hint is a floor even when the ladder is lower.
        let d2 = b.next_delay(50_000);
        assert!(d2 >= Duration::from_millis(50));
        // The ladder never exceeds the cap (hint aside).
        for _ in 0..20 {
            assert!(b.next_delay(0) <= Duration::from_millis(10));
        }
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert!(b.next_delay(0) <= Duration::from_micros(100));
    }

    #[test]
    fn backoff_jitter_differs_across_seeds() {
        let mut a = Backoff::new(Duration::from_millis(1), Duration::from_secs(1), 1);
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_secs(1), 2);
        let da: Vec<Duration> = (0..4).map(|_| a.next_delay(0)).collect();
        let db: Vec<Duration> = (0..4).map(|_| b.next_delay(0)).collect();
        assert_ne!(da, db, "different seeds must jitter differently");
    }

    #[test]
    fn ledger_assigns_dense_seqs_and_tags() {
        let mut l = SeqLedger::new(100);
        let b1 = l.stage(vec![ev(1), ev(2), ev(3)]).unwrap().clone();
        assert_eq!((b1.tag, b1.first_seq, b1.end_seq()), (100, 100, 103));
        let b2 = l.stage(vec![ev(4)]).unwrap().clone();
        assert_eq!((b2.tag, b2.first_seq, b2.end_seq()), (103, 103, 104));
        assert_eq!(l.next_seq(), 104);
        assert!(l.stage(Vec::new()).is_err(), "empty batches are refused");
    }

    #[test]
    fn ledger_releases_only_fully_replicated_batches() {
        let mut l = SeqLedger::new(0);
        l.stage(vec![ev(1), ev(2)]).unwrap(); // seqs 0..2
        l.stage(vec![ev(3), ev(4)]).unwrap(); // seqs 2..4
        l.stage(vec![ev(5)]).unwrap(); // seq 4
                                       // Watermark mid-batch releases only the whole batches below it.
        assert_eq!(l.release(3), 1);
        assert_eq!(l.len(), 2);
        assert_eq!(l.unreleased().next().unwrap().first_seq, 2);
        // Stale watermark: no-op.
        assert_eq!(l.release(1), 0);
        assert_eq!(l.release(5), 2);
        assert!(l.is_empty());
        // Sequences keep ascending after a drain.
        assert_eq!(l.stage(vec![ev(6)]).unwrap().first_seq, 5);
    }

    #[test]
    fn resend_set_is_exactly_the_unreleased_tail() {
        let mut l = SeqLedger::new(0);
        for i in 0..5 {
            l.stage(vec![ev(i), ev(i + 10)]).unwrap();
        }
        l.release(4); // two batches gone
        let tags: Vec<u64> = l.unreleased().map(|b| b.tag).collect();
        assert_eq!(tags, vec![4, 6, 8]);
    }

    #[test]
    fn transport_errors_are_classified() {
        assert!(is_transport_error(&Error::Io("broken pipe".into())));
        assert!(is_transport_error(&Error::ChannelClosed("peer")));
        assert!(!is_transport_error(&Error::Corrupt("bad".into())));
        assert!(!is_transport_error(&Error::WrongLeader {
            partition: 0,
            epoch: 1,
            hint: 2
        }));
    }
}
