//! Safe wrappers over the raw epoll/eventfd/affinity syscalls.
//!
//! This module is the crate's only unsafe island (mirroring
//! `magicrecs_core::simd`): every `unsafe` block wraps exactly one
//! syscall with its argument invariants established on the preceding
//! lines. The rest of the crate is `#![deny(unsafe_code)]`-clean.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

/// Readiness bits re-exported for the event loop.
pub const IN: u32 = libc::EPOLLIN;
/// Writable.
pub const OUT: u32 = libc::EPOLLOUT;
/// Error condition (reported unrequested).
pub const ERR: u32 = libc::EPOLLERR;
/// Hang-up (reported unrequested).
pub const HUP: u32 = libc::EPOLLHUP;
/// Peer closed its writing half.
pub const RDHUP: u32 = libc::EPOLLRDHUP;

/// One readiness record: the token passed at registration plus the
/// ready-event mask.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Caller token from [`Epoll::add`].
    pub token: u64,
    /// `IN`/`OUT`/`ERR`/`HUP`/`RDHUP` bits.
    pub events: u32,
}

/// A level-triggered epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // checked and surfaced as an error.
        let fd = unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: libc::c_int, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = libc::epoll_event {
            events: interest,
            u64: token,
        };
        // SAFETY: `ev` is a valid epoll_event for the duration of the
        // call; `self.fd` is a live epoll fd owned by this struct.
        let rc = unsafe { libc::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with interest mask `interest`; readiness reports
    /// carry `token` back.
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest mask of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters an fd.
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` (`-1` = forever) and appends ready
    /// events to `out`. Returns the number of events delivered. EINTR is
    /// retried internally.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        const CAP: usize = 256;
        let mut buf = [libc::epoll_event { events: 0, u64: 0 }; CAP];
        loop {
            // SAFETY: `buf` is a valid array of CAP epoll_events; the
            // kernel writes at most `CAP` entries.
            let n = unsafe { libc::epoll_wait(self.fd, buf.as_mut_ptr(), CAP as i32, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            for ev in &buf[..n as usize] {
                // `epoll_event` is packed; copy fields out before use.
                let (events, token) = (ev.events, ev.u64);
                out.push(Event { token, events });
            }
            return Ok(n as usize);
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this struct and closed exactly once.
        unsafe { libc::close(self.fd) };
    }
}

/// A non-blocking eventfd used to wake a worker's epoll loop (socket
/// handoff, shutdown).
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a non-blocking, close-on-exec eventfd.
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: eventfd takes no pointers; errors are checked.
        let fd = unsafe { libc::eventfd(0, libc::EFD_NONBLOCK | libc::EFD_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// Raw fd for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Signals the eventfd (adds 1 to its counter). A full counter
    /// (EAGAIN) already guarantees the waiter will wake, so it is not an
    /// error.
    pub fn notify(&self) {
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from a live u64.
        unsafe {
            libc::write(
                self.fd,
                (&one as *const u64).cast::<libc::c_void>(),
                std::mem::size_of::<u64>(),
            )
        };
    }

    /// Drains the counter so a level-triggered epoll stops reporting it.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: reads exactly 8 bytes into a live u64; EAGAIN (already
        // drained) is the expected other outcome and needs no handling.
        unsafe {
            libc::read(
                self.fd,
                (&mut buf as *mut u64).cast::<libc::c_void>(),
                std::mem::size_of::<u64>(),
            )
        };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this struct and closed exactly once.
        unsafe { libc::close(self.fd) };
    }
}

/// Pins the calling thread to `core` (mod the addressable 1024 CPUs).
/// Returns whether pinning took effect; on failure (no permission,
/// single-CPU cgroup, non-Linux semantics) the thread simply stays
/// unpinned — the server treats pinning as an optimization, never a
/// requirement.
pub fn pin_to_core(core: usize) -> bool {
    let mut set = libc::cpu_set_t::default();
    let bit = core % 1024;
    set.bits[bit / 64] |= 1 << (bit % 64);
    // SAFETY: `set` is a fully-initialized cpu_set_t; pid 0 = calling
    // thread; the size matches the struct the kernel expects.
    let rc = unsafe { libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) };
    rc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;

    #[test]
    fn eventfd_wakes_epoll() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw(), 7, IN).unwrap();

        let mut out = Vec::new();
        // Nothing signalled yet: zero-timeout wait reports nothing.
        assert_eq!(ep.wait(&mut out, 0).unwrap(), 0);

        ev.notify();
        assert_eq!(ep.wait(&mut out, 1000).unwrap(), 1);
        assert_eq!(out[0].token, 7);
        assert!(out[0].events & IN != 0);

        // Drain clears the level-triggered readiness.
        ev.drain();
        out.clear();
        assert_eq!(ep.wait(&mut out, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_reports_socket_readability() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), 42, IN | RDHUP).unwrap();

        let mut out = Vec::new();
        assert_eq!(ep.wait(&mut out, 0).unwrap(), 0, "no data yet");

        client.write_all(b"ping").unwrap();
        assert_eq!(ep.wait(&mut out, 1000).unwrap(), 1);
        assert_eq!(out[0].token, 42);
        assert!(out[0].events & IN != 0);

        // Modify to OUT-only: an idle writable socket reports OUT.
        ep.modify(server.as_raw_fd(), 42, OUT).unwrap();
        out.clear();
        assert_eq!(ep.wait(&mut out, 1000).unwrap(), 1);
        assert!(out[0].events & OUT != 0);

        ep.del(server.as_raw_fd()).unwrap();
        out.clear();
        assert_eq!(ep.wait(&mut out, 0).unwrap(), 0, "deregistered");
    }

    #[test]
    fn pinning_is_best_effort() {
        // Must not panic whether or not the container allows affinity.
        let _ = pin_to_core(0);
        let _ = pin_to_core(9999); // wraps mod 1024, still best-effort
    }
}
