//! Ingress admission control: per-connection token buckets and the
//! per-worker cycle budget.
//!
//! Admission is two independent gates, checked in order when an ingest
//! frame is decoded:
//!
//! 1. **Token bucket** (per connection, i.e. per ingest source): a
//!    configured sustained events/sec with a burst allowance. An empty
//!    bucket sheds the whole batch with [`ShedCode::RateLimited`] and a
//!    retry-after hint computed from the deficit — the batch is refused
//!    atomically, never split, so per-target ordering survives a shed
//!    (the client retries the whole batch in order).
//! 2. **Cycle budget** (per worker): at most `cycle_budget` events are
//!    applied per epoll wake-up. The budget bounds how long a worker can
//!    stay heads-down in detection before it services its other
//!    connections again; beyond it, ingest frames shed with
//!    [`ShedCode::Overloaded`]. This is what turns a 2× overload into
//!    typed backpressure instead of unbounded buffering.
//!
//! [`ShedCode::RateLimited`]: crate::wire::ShedCode::RateLimited
//! [`ShedCode::Overloaded`]: crate::wire::ShedCode::Overloaded

use std::time::Instant;

/// Admission knobs, per server.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Sustained per-connection ingest rate, events/sec.
    /// `f64::INFINITY` disables rate limiting.
    pub source_rate: f64,
    /// Per-connection burst allowance, events. The bucket starts full.
    pub source_burst: f64,
    /// Events a worker applies per epoll cycle before shedding.
    pub cycle_budget: usize,
    /// Cap on a subscriber's pending outbound bytes; deliveries beyond
    /// it are dropped (counted) rather than buffered without bound.
    pub max_write_queue: usize,
    /// Cap on a connection's inbound buffer. A peer that streams more
    /// than this without completing a frame is closed with a typed
    /// error. Must exceed [`crate::wire::MAX_FRAME_LEN`] + 4 or legal
    /// maximum frames could never arrive.
    pub max_read_buf: usize,
}

impl AdmissionConfig {
    /// Wide-open admission: no rate limit, large budgets. The default
    /// for parity tests, where every event must be accepted.
    pub fn unlimited() -> Self {
        AdmissionConfig {
            source_rate: f64::INFINITY,
            source_burst: f64::INFINITY,
            cycle_budget: usize::MAX,
            max_write_queue: 64 << 20,
            max_read_buf: 2 * (crate::wire::MAX_FRAME_LEN + 4),
        }
    }

    /// Admission tuned for overload protection at roughly
    /// `rate` sustained events/sec per connection.
    pub fn rate_limited(rate: f64) -> Self {
        AdmissionConfig {
            source_rate: rate,
            source_burst: (rate / 4.0).max(256.0),
            cycle_budget: 65_536,
            max_write_queue: 4 << 20,
            max_read_buf: 2 * (crate::wire::MAX_FRAME_LEN + 4),
        }
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig::unlimited()
    }
}

/// A classic token bucket over wall-clock time.
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate` tokens/sec, holding at most `burst`,
    /// starting full.
    pub fn new(rate: f64, burst: f64, now: Instant) -> Self {
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: now,
        }
    }

    fn refill(&mut self, now: Instant) {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        if self.rate.is_infinite() {
            self.tokens = self.burst;
        } else {
            self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        }
    }

    /// Takes `n` tokens if available; otherwise returns the number of
    /// microseconds after which the deficit will have refilled (the
    /// shed response's retry-after hint).
    pub fn try_take(&mut self, n: u64, now: Instant) -> Result<(), u64> {
        self.refill(now);
        let need = n as f64;
        if self.tokens >= need || self.rate.is_infinite() {
            self.tokens -= need;
            Ok(())
        } else {
            let deficit = need - self.tokens;
            let secs = if self.rate > 0.0 {
                deficit / self.rate
            } else {
                1.0
            };
            Err((secs * 1e6).ceil().min(60.0 * 1e6) as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_then_refusal_then_refill() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(100.0, 10.0, t0);
        assert!(b.try_take(10, t0).is_ok(), "burst allowance");
        let retry = b.try_take(5, t0).unwrap_err();
        // 5 tokens at 100/s = 50ms.
        assert!((40_000..=60_000).contains(&retry), "retry hint {retry}µs");
        // After 100ms the bucket holds 10 again (capped at burst).
        let t1 = t0 + Duration::from_millis(100);
        assert!(b.try_take(10, t1).is_ok());
    }

    #[test]
    fn infinite_rate_never_sheds() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(f64::INFINITY, f64::INFINITY, t0);
        for _ in 0..100 {
            assert!(b.try_take(u64::MAX / 2, t0).is_ok());
        }
    }

    #[test]
    fn retry_hint_is_capped() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(0.001, 0.0, t0);
        let retry = b.try_take(1_000_000, t0).unwrap_err();
        assert!(retry <= 60_000_000, "hint {retry}µs exceeds 60s cap");
    }
}
