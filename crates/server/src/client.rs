//! A small blocking client for the wire protocol — the counterpart the
//! load generator, parity tests, and adversity cells drive.
//!
//! A [`ClientConn`] is one TCP connection pinned (via the Hello
//! handshake) to one server worker. To preserve the engine's
//! per-target ordering contract across the network, a client keeps one
//! connection per worker ([`connect_per_worker`]) and sends each event
//! on the connection `route_mix(dst) % num_workers` — the same routing
//! recipe the in-process cluster uses, so the wire adds no new ordering
//! assumptions.

use crate::wire::{self, Frame, ANY_WORKER};
use magicrecs_types::{Error, Result};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One blocking connection to a server worker.
#[derive(Debug)]
pub struct ClientConn {
    stream: TcpStream,
    buf: Vec<u8>,
    /// The worker this connection landed on.
    pub worker_id: u32,
    /// The server's worker count (for client-side routing).
    pub num_workers: u32,
}

fn io_err(e: std::io::Error) -> Error {
    Error::Io(format!("client: {e}"))
}

impl ClientConn {
    /// Connects, sends Hello (optionally requesting a worker), and
    /// waits for the HelloAck.
    pub fn connect(addr: SocketAddr, preferred_worker: Option<u32>) -> Result<ClientConn> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        let mut conn = ClientConn {
            stream,
            buf: Vec::new(),
            worker_id: 0,
            num_workers: 0,
        };
        conn.send(&Frame::Hello {
            preferred_worker: preferred_worker.unwrap_or(ANY_WORKER),
        })?;
        match conn.recv()? {
            Frame::HelloAck {
                worker_id,
                num_workers,
            } => {
                conn.worker_id = worker_id;
                conn.num_workers = num_workers;
                Ok(conn)
            }
            other => Err(Error::Io(format!(
                "client: expected HelloAck, got {other:?}"
            ))),
        }
    }

    /// Writes one frame (blocking until fully queued in the kernel).
    pub fn send(&mut self, frame: &Frame) -> Result<()> {
        let bytes = wire::encode(frame);
        self.stream.write_all(&bytes).map_err(io_err)
    }

    /// Reads the next frame, blocking until one arrives. A closed peer
    /// surfaces as [`Error::ChannelClosed`].
    pub fn recv(&mut self) -> Result<Frame> {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if let Some((frame, used)) = wire::decode(&self.buf)? {
                self.buf.drain(..used);
                return Ok(frame);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(Error::ChannelClosed("server closed the connection")),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_err(e)),
            }
        }
    }

    /// Like [`ClientConn::recv`] but gives up after `timeout`, returning
    /// `Ok(None)`.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Frame>> {
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(io_err)?;
        let result = self.recv_step();
        self.stream.set_read_timeout(None).map_err(io_err)?;
        result
    }

    fn recv_step(&mut self) -> Result<Option<Frame>> {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if let Some((frame, used)) = wire::decode(&self.buf)? {
                self.buf.drain(..used);
                return Ok(Some(frame));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(Error::ChannelClosed("server closed the connection")),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(ref e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(io_err(e)),
            }
        }
    }

    /// Requests a full metrics-registry scrape and blocks for the
    /// reply, returning the flattened `(name, value)` pairs. Frames
    /// arriving before the `MetricsResp` (pipelined delivers) are
    /// discarded; issue a [`ClientConn::barrier`] first if you need
    /// them.
    pub fn fetch_metrics(&mut self) -> Result<Vec<(String, u64)>> {
        self.send(&Frame::MetricsReq)?;
        loop {
            match self.recv()? {
                Frame::MetricsResp { metrics } => return Ok(metrics),
                Frame::Error { code, detail } => {
                    return Err(Error::Io(format!(
                        "client: metrics request refused ({code:?}: {detail})"
                    )))
                }
                _ => {}
            }
        }
    }

    /// Sends a barrier and blocks until its ack comes back, buffering
    /// (and returning) every frame that arrives before it — the fence
    /// that proves all prior frames on this connection were processed.
    pub fn barrier(&mut self, tag: u64) -> Result<Vec<Frame>> {
        self.send(&Frame::Barrier { tag })?;
        let mut before = Vec::new();
        loop {
            match self.recv()? {
                Frame::BarrierAck { tag: t } if t == tag => return Ok(before),
                other => before.push(other),
            }
        }
    }

    /// Abruptly kills the connection (both directions, no goodbye) —
    /// the adversity harness's mid-ingest connection-kill lever.
    pub fn kill(self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    /// Splits into independently-owned read and write handles (clones
    /// of one socket) plus any bytes already buffered on the read side
    /// — for callers (the load generator) that pump reads and writes
    /// from different threads.
    pub fn split(self) -> Result<(TcpStream, TcpStream, Vec<u8>)> {
        let reader = self.stream.try_clone().map_err(io_err)?;
        Ok((reader, self.stream, self.buf))
    }
}

/// Opens one connection per server worker, index == worker id.
pub fn connect_per_worker(addr: SocketAddr) -> Result<Vec<ClientConn>> {
    let first = ClientConn::connect(addr, Some(0))?;
    let n = first.num_workers;
    let mut conns = Vec::with_capacity(n as usize);
    conns.push(first);
    for w in 1..n {
        conns.push(ClientConn::connect(addr, Some(w))?);
    }
    Ok(conns)
}
