//! The length-prefixed binary wire protocol.
//!
//! Frame layout (everything little-endian):
//!
//! ```text
//! [len: u32]  [ver: u8]  [type: u8]  [payload ...]  [check: u64]
//!  `len` covers ver..=check      varint fields      FxHash checksum
//! ```
//!
//! `len` is the byte count of everything after the length field itself
//! (minimum 10: version + type + checksum). The checksum is the
//! workspace's [`Check`] accumulator (FxHash) folded over the version,
//! type, payload length, and payload bytes — the same integrity recipe
//! as the `MGRS`/`MGRD` codecs, shared so a registry-backed CRC swap
//! lands everywhere at once. Payload fields are the varints of
//! [`magicrecs_graph::io`].
//!
//! Decoding is *prefix-closed*: a truncated byte stream decodes to a
//! clean prefix of the frames written (the partial tail reports
//! "incomplete", never an error, never a wrong frame), and any
//! corruption that survives the length check dies on the checksum as a
//! typed [`Error::Corrupt`] — property-tested in
//! `tests/properties.rs`.

use magicrecs_graph::io::{read_exact_checked, read_varint_checked, write_varint, Check};
use magicrecs_types::{Candidate, EdgeEvent, EdgeKind, Error, Result, Timestamp, UserId};

/// Protocol version byte. Bump on any frame-layout change.
pub const WIRE_VERSION: u8 = 1;

/// Hard cap on a single frame's `len` field (1 MiB). Anything larger is
/// rejected as corrupt before buffering, so a flipped length byte cannot
/// make a reader allocate or wait for gigabytes.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Most candidates the server packs into one `Deliver` frame. A
/// worst-case candidate (three max-width varints plus 64 witnesses at
/// the detector's witness cap) encodes to ~672 bytes, so this keeps
/// every Deliver comfortably under [`MAX_FRAME_LEN`]; larger emissions
/// are chunked into several frames sharing the tag.
pub const MAX_DELIVER_CANDIDATES: usize = 1024;

/// Smallest legal `len`: version + type + checksum.
const MIN_FRAME_LEN: usize = 1 + 1 + 8;

/// Sentinel for "any worker" in [`Frame::Hello`].
pub const ANY_WORKER: u32 = u32::MAX;

/// Why an ingest frame was refused (carried in [`Frame::Shed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCode {
    /// The connection's token bucket is empty: the source exceeds its
    /// configured events/sec. Retry after the bucket refills.
    RateLimited,
    /// The worker's per-cycle event budget is exhausted: the core is
    /// saturated. Retry after the hinted backoff.
    Overloaded,
}

impl ShedCode {
    fn to_byte(self) -> u8 {
        match self {
            ShedCode::RateLimited => 1,
            ShedCode::Overloaded => 2,
        }
    }

    fn from_byte(b: u8) -> Result<ShedCode> {
        match b {
            1 => Ok(ShedCode::RateLimited),
            2 => Ok(ShedCode::Overloaded),
            _ => Err(Error::Corrupt(format!("wire: unknown shed code {b}"))),
        }
    }
}

/// Error classes carried in [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireErrorCode {
    /// The peer sent a frame this endpoint cannot parse or does not
    /// accept in its current state. The connection is closed after this.
    BadFrame,
    /// The requested operation is not available (e.g. checkpoint trigger
    /// on a volatile engine).
    Unsupported,
    /// The operation was understood but failed server-side (e.g. a delta
    /// that does not apply to the current snapshot).
    Internal,
}

impl WireErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            WireErrorCode::BadFrame => 1,
            WireErrorCode::Unsupported => 2,
            WireErrorCode::Internal => 3,
        }
    }

    fn from_byte(b: u8) -> Result<WireErrorCode> {
        match b {
            1 => Ok(WireErrorCode::BadFrame),
            2 => Ok(WireErrorCode::Unsupported),
            3 => Ok(WireErrorCode::Internal),
            _ => Err(Error::Corrupt(format!("wire: unknown error code {b}"))),
        }
    }
}

/// Largest `bytes` payload a [`Frame::SegmentChunk`] / [`Frame::StateChunk`]
/// sender may pack (512 KiB) — keeps every chunk frame comfortably under
/// [`MAX_FRAME_LEN`] with headroom for the header varints.
pub const MAX_CHUNK_LEN: usize = 1 << 19;

/// Replication status snapshot carried by [`Frame::StatusResp`].
///
/// Watermarks are **next-sequence** values, not last-sequence: `durable`
/// is the first sequence *not yet* durable in the node's local WAL (so a
/// fresh partition reports 0 and a partition holding seqs `0..=41`
/// reports 42). This sidesteps the "is 0 a seq or none?" ambiguity and
/// matches `Wal::next_seq()` directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplStatus {
    /// Partition this status describes.
    pub partition: u32,
    /// Whether the node currently leads the partition.
    pub leading: bool,
    /// The node's routing epoch for the partition.
    pub epoch: u64,
    /// First sequence not yet durable in the node's local WAL.
    pub durable: u64,
    /// First sequence not yet applied to the warm engine.
    pub applied: u64,
    /// Leader only: first sequence not yet confirmed shipped to the
    /// follower (0 when no follower has ever polled).
    pub replicated: u64,
}

/// Payload version byte inside [`Frame::MetricsResp`]. Independent of
/// [`WIRE_VERSION`]: the metrics payload can evolve (new entry shapes)
/// without a protocol-wide bump.
pub const METRICS_VERSION: u8 = 1;

/// Engine + ingress statistics returned by [`Frame::StatsResp`].
///
/// **Frozen as v0.** The decoder reads exactly ten varint fields — a
/// fixed-count loop with no length prefix — so adding a field here would
/// silently desynchronize old peers mid-stream rather than fail typed.
/// Do not extend this struct: new telemetry goes through the versioned,
/// length-prefixed [`Frame::MetricsResp`] (whose key/value payload can
/// grow freely), and `StatsReq`/`StatsResp` remain a compatibility shim
/// backed by the same metrics registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Events processed by the engine.
    pub events: u64,
    /// Candidates emitted (pre-funnel).
    pub candidates: u64,
    /// Events that produced at least one candidate.
    pub firing_events: u64,
    /// Ingest events admitted by the serving tier.
    pub accepted: u64,
    /// Ingest events refused with a typed shed response.
    pub shed: u64,
    /// High-water mark of decoded-but-unprocessed events on any worker.
    pub queue_high_watermark: u64,
    /// Deliveries dropped because a subscriber's write queue was full.
    pub dropped_deliveries: u64,
    /// Connections currently registered across all workers.
    pub connections: u64,
    /// Engine-side detection latency, µs.
    pub detect_p50_us: u64,
    /// Engine-side detection latency, µs.
    pub detect_p99_us: u64,
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → acceptor, first frame on every connection. The acceptor
    /// hands the socket to `preferred_worker` ([`ANY_WORKER`] =
    /// round-robin), which replies with [`Frame::HelloAck`].
    Hello {
        /// Requested worker id, or [`ANY_WORKER`].
        preferred_worker: u32,
    },
    /// Worker → client: the connection is live on `worker_id`. Clients
    /// route events by `route_mix(dst) % num_workers` and send each on
    /// the matching connection to preserve per-target order.
    HelloAck {
        /// The worker that owns this connection.
        worker_id: u32,
        /// Worker count, for client-side routing.
        num_workers: u32,
    },
    /// Client → worker: a micro-batch of events (a single event is a
    /// batch of one). `tag` is client-assigned and echoed on every
    /// [`Frame::Deliver`]/[`Frame::Shed`] this batch produces, which is
    /// what lets a load generator measure end-to-end latency.
    Ingest {
        /// Client-assigned correlation tag.
        tag: u64,
        /// Events, already routed to this connection's worker.
        events: Vec<EdgeEvent>,
    },
    /// Client → worker: start receiving [`Frame::Deliver`] frames for
    /// candidates detected on this worker.
    Subscribe,
    /// Worker → subscriber: candidates produced by the ingest batch
    /// tagged `tag`.
    Deliver {
        /// The triggering batch's tag.
        tag: u64,
        /// Raw candidates (pre-funnel).
        candidates: Vec<Candidate>,
    },
    /// Worker → client: the tagged ingest batch was refused whole.
    Shed {
        /// The refused batch's tag.
        tag: u64,
        /// Why it was refused.
        code: ShedCode,
        /// Hint: retry no sooner than this many µs from receipt.
        retry_after_us: u64,
    },
    /// Either direction: a typed failure.
    Error {
        /// Error class.
        code: WireErrorCode,
        /// Human-readable detail (diagnostic only, not part of the
        /// contract).
        detail: String,
    },
    /// Control: publish an `MGRD` graph delta (bytes as written by
    /// `magicrecs_graph::save_delta`) into the engine's snapshot slot.
    /// Replies [`Frame::OkAck`] or [`Frame::Error`].
    DeltaPublish {
        /// Serialized delta.
        bytes: Vec<u8>,
    },
    /// Control: trigger a checkpoint. Replies [`Frame::OkAck`], or
    /// [`Frame::Error`] with [`WireErrorCode::Unsupported`] when the
    /// server runs a volatile engine.
    CheckpointReq,
    /// Control: request [`Frame::StatsResp`].
    StatsReq,
    /// Control reply: current statistics.
    StatsResp(WireStats),
    /// Control reply: success without payload.
    OkAck,
    /// Client → worker: reply [`Frame::BarrierAck`] once every frame
    /// received before this one on this connection has been fully
    /// processed (FIFO makes this a pure echo). Used to fence ingest.
    Barrier {
        /// Echoed verbatim.
        tag: u64,
    },
    /// Worker → client: the barrier `tag` has been reached.
    BarrierAck {
        /// The barrier's tag.
        tag: u64,
    },
    /// Control: request a full metrics-registry scrape
    /// ([`Frame::MetricsResp`]).
    MetricsReq,
    /// Control reply: flattened registry scrape as length-prefixed
    /// `(name, value)` entries (histograms appear as their
    /// `_count`/`_sum`/`_min`/`_max`/`_p50`/`_p90`/`_p99` projections).
    /// The payload carries its own [`METRICS_VERSION`] byte so the entry
    /// shape can grow without touching [`WIRE_VERSION`] — unlike the
    /// frozen fixed-field [`WireStats`].
    MetricsResp {
        /// Sorted `(metric name, value)` pairs.
        metrics: Vec<(String, u64)>,
    },
    /// Leader → client: the tagged ingest batch is durable. `durable` /
    /// `replicated` are next-sequence watermarks (see [`ReplStatus`]): a
    /// batch whose events occupy seqs `s..s+n` is **acked** once
    /// `durable >= s+n` and may be dropped from the client's resend
    /// ledger once `replicated >= s+n` — before that, a kill -9 of the
    /// leader can lose the acked-but-unshipped tail and the client must
    /// be able to re-send it to the promoted follower.
    IngestAck {
        /// Partition the batch landed on.
        partition: u32,
        /// The acked batch's client-assigned tag.
        tag: u64,
        /// First sequence not yet durable on the leader.
        durable: u64,
        /// First sequence not yet confirmed shipped to the follower.
        replicated: u64,
    },
    /// Client → node: bind this connection's ingest stream to a
    /// partition at a routing epoch. Every later ingest on the
    /// connection is admitted through the partition's epoch gate at the
    /// bound epoch; a stale bind (or a later move) gets
    /// [`Frame::WrongLeader`]. Replies [`Frame::OkAck`] on success.
    RouteBind {
        /// Partition this connection will write.
        partition: u32,
        /// Routing epoch the client routed with.
        epoch: u64,
    },
    /// Node → client: the write (or bind) was refused because the
    /// partition's routing epoch moved on. The wire twin of
    /// [`Error::WrongLeader`].
    WrongLeader {
        /// Partition the write was aimed at.
        partition: u32,
        /// The refusing node's current epoch for that partition.
        epoch: u64,
        /// Node id believed to lead the partition now.
        hint: u32,
    },
    /// Follower → leader: list WAL segments that cover `from_seq`
    /// onward. Doubles as the follower's progress report: the leader
    /// takes `from_seq` as the follower's replicated watermark.
    SegmentsReq {
        /// Partition being tailed.
        partition: u32,
        /// First sequence the follower still needs.
        from_seq: u64,
    },
    /// Leader → follower: the shippable-segment catalog (every segment
    /// whose records could include `from_seq` or later), as
    /// `(first_seq, byte length)` pairs in ascending `first_seq` order.
    SegmentsResp {
        /// Partition being tailed.
        partition: u32,
        /// `(first_seq, byte length)` per shippable segment.
        segments: Vec<(u64, u64)>,
    },
    /// Follower → leader: fetch raw bytes of one WAL segment.
    SegmentFetch {
        /// Partition being tailed.
        partition: u32,
        /// The segment's first sequence (its catalog identity).
        first_seq: u64,
        /// Byte offset to read from.
        offset: u64,
        /// Most bytes wanted back (sender also caps at
        /// [`MAX_CHUNK_LEN`]).
        max_len: u32,
    },
    /// Leader → follower: raw segment bytes. Empty `bytes` means the
    /// segment currently ends at `offset` — poll again (growing tail) or
    /// re-list (a newer segment exists).
    SegmentChunk {
        /// Partition being tailed.
        partition: u32,
        /// The segment's first sequence.
        first_seq: u64,
        /// Offset these bytes start at.
        offset: u64,
        /// The bytes (possibly ending mid-record; the ship decoder is
        /// prefix-closed).
        bytes: Vec<u8>,
    },
    /// Coordinator → node: assume a role for a partition at a new epoch.
    /// Demotion (`leader: false`) fences ingest *before* the route
    /// flips; promotion (`leader: true`) opens the gate at the new
    /// epoch. Replies [`Frame::RoleChangeAck`].
    RoleChange {
        /// Partition changing hands.
        partition: u32,
        /// The new routing epoch.
        epoch: u64,
        /// Whether this node now leads the partition.
        leader: bool,
        /// Node id that leads the partition at `epoch`.
        hint: u32,
    },
    /// Node → coordinator: the role change is applied; `durable` is the
    /// node's WAL watermark at the instant the gate flipped — for a
    /// demotion this is the fence the new leader must reach before
    /// opening.
    RoleChangeAck {
        /// Partition that changed hands.
        partition: u32,
        /// The epoch that was applied.
        epoch: u64,
        /// First sequence not yet durable at the flip.
        durable: u64,
    },
    /// Peer → node: list the partition's checkpoint state files
    /// (rebalance bootstrap). Replies [`Frame::StateListResp`].
    StateListReq {
        /// Partition whose state is wanted.
        partition: u32,
    },
    /// Node → peer: checkpoint state files as `(name, byte length)`
    /// pairs. Names are bare file names inside the partition's state
    /// directory — never paths.
    StateListResp {
        /// Partition whose state is listed.
        partition: u32,
        /// `(file name, byte length)` per state file.
        files: Vec<(String, u64)>,
    },
    /// Peer → node: fetch raw bytes of one checkpoint state file.
    StateFetch {
        /// Partition whose state is wanted.
        partition: u32,
        /// Bare file name from [`Frame::StateListResp`].
        name: String,
        /// Byte offset to read from.
        offset: u64,
        /// Most bytes wanted back.
        max_len: u32,
    },
    /// Node → peer: raw state-file bytes. Empty `bytes` = end of file.
    StateChunk {
        /// Partition whose state is shipped.
        partition: u32,
        /// The file these bytes belong to.
        name: String,
        /// Offset these bytes start at.
        offset: u64,
        /// The bytes.
        bytes: Vec<u8>,
    },
    /// Coordinator → node: start (or re-point) the warm-follower tailer
    /// for a partition, shipping from the node at `source`
    /// (`host:port`). Replies [`Frame::OkAck`].
    FollowReq {
        /// Partition to follow.
        partition: u32,
        /// Loopback address of the node to ship from.
        source: String,
    },
    /// Control: request a [`Frame::StatusResp`] for one partition.
    StatusReq {
        /// Partition whose status is wanted.
        partition: u32,
    },
    /// Control reply: the node's replication status for a partition.
    StatusResp(ReplStatus),
}

fn kind_to_byte(k: EdgeKind) -> u8 {
    match k {
        EdgeKind::Follow => 0,
        EdgeKind::Unfollow => 1,
        EdgeKind::Retweet => 2,
        EdgeKind::Favorite => 3,
    }
}

fn kind_from_byte(b: u8) -> Result<EdgeKind> {
    match b {
        0 => Ok(EdgeKind::Follow),
        1 => Ok(EdgeKind::Unfollow),
        2 => Ok(EdgeKind::Retweet),
        3 => Ok(EdgeKind::Favorite),
        _ => Err(Error::Corrupt(format!("wire: unknown edge kind {b}"))),
    }
}

impl Frame {
    /// The wire type byte of this frame (the table in the crate docs).
    pub fn frame_type(&self) -> u8 {
        frame_type(self)
    }
}

fn frame_type(f: &Frame) -> u8 {
    match f {
        Frame::Hello { .. } => 0,
        Frame::HelloAck { .. } => 1,
        Frame::Ingest { .. } => 2,
        Frame::Subscribe => 3,
        Frame::Deliver { .. } => 4,
        Frame::Shed { .. } => 5,
        Frame::Error { .. } => 6,
        Frame::DeltaPublish { .. } => 7,
        Frame::CheckpointReq => 8,
        Frame::StatsReq => 9,
        Frame::StatsResp(_) => 10,
        Frame::OkAck => 11,
        Frame::Barrier { .. } => 12,
        Frame::BarrierAck { .. } => 13,
        Frame::MetricsReq => 14,
        Frame::MetricsResp { .. } => 15,
        Frame::IngestAck { .. } => 16,
        Frame::RouteBind { .. } => 17,
        Frame::WrongLeader { .. } => 18,
        Frame::SegmentsReq { .. } => 19,
        Frame::SegmentsResp { .. } => 20,
        Frame::SegmentFetch { .. } => 21,
        Frame::SegmentChunk { .. } => 22,
        Frame::RoleChange { .. } => 23,
        Frame::RoleChangeAck { .. } => 24,
        Frame::StateListReq { .. } => 25,
        Frame::StateListResp { .. } => 26,
        Frame::StateFetch { .. } => 27,
        Frame::StateChunk { .. } => 28,
        Frame::FollowReq { .. } => 29,
        Frame::StatusReq { .. } => 30,
        Frame::StatusResp(_) => 31,
    }
}

/// Folds the integrity checksum over the frame's covered bytes.
fn checksum(ver: u8, ty: u8, payload: &[u8]) -> u64 {
    let mut c = Check::new();
    c.mix(ver as u64);
    c.mix(ty as u64);
    c.mix(payload.len() as u64);
    let mut chunks = payload.chunks_exact(8);
    for ch in &mut chunks {
        let mut w = [0u8; 8];
        w.copy_from_slice(ch);
        c.mix(u64::from_le_bytes(w));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = [0u8; 8];
        w[..rem.len()].copy_from_slice(rem);
        c.mix(u64::from_le_bytes(w));
    }
    c.finish()
}

fn put_varint(out: &mut Vec<u8>, v: u64) {
    // Writing into a Vec cannot fail.
    write_varint(out, v).expect("vec write");
}

fn encode_payload(f: &Frame, out: &mut Vec<u8>) {
    match f {
        Frame::Hello { preferred_worker } => put_varint(out, *preferred_worker as u64),
        Frame::HelloAck {
            worker_id,
            num_workers,
        } => {
            put_varint(out, *worker_id as u64);
            put_varint(out, *num_workers as u64);
        }
        Frame::Ingest { tag, events } => {
            put_varint(out, *tag);
            put_varint(out, events.len() as u64);
            for e in events {
                put_varint(out, e.src.raw());
                put_varint(out, e.dst.raw());
                put_varint(out, e.created_at.as_micros());
                out.push(kind_to_byte(e.kind));
            }
        }
        Frame::Subscribe
        | Frame::CheckpointReq
        | Frame::StatsReq
        | Frame::OkAck
        | Frame::MetricsReq => {}
        Frame::Deliver { tag, candidates } => {
            put_varint(out, *tag);
            put_varint(out, candidates.len() as u64);
            for c in candidates {
                put_varint(out, c.user.raw());
                put_varint(out, c.target.raw());
                put_varint(out, c.triggered_at.as_micros());
                put_varint(out, c.witnesses.len() as u64);
                for w in &c.witnesses {
                    put_varint(out, w.raw());
                }
            }
        }
        Frame::Shed {
            tag,
            code,
            retry_after_us,
        } => {
            put_varint(out, *tag);
            out.push(code.to_byte());
            put_varint(out, *retry_after_us);
        }
        Frame::Error { code, detail } => {
            out.push(code.to_byte());
            put_varint(out, detail.len() as u64);
            out.extend_from_slice(detail.as_bytes());
        }
        Frame::DeltaPublish { bytes } => {
            put_varint(out, bytes.len() as u64);
            out.extend_from_slice(bytes);
        }
        Frame::StatsResp(s) => {
            for v in [
                s.events,
                s.candidates,
                s.firing_events,
                s.accepted,
                s.shed,
                s.queue_high_watermark,
                s.dropped_deliveries,
                s.connections,
                s.detect_p50_us,
                s.detect_p99_us,
            ] {
                put_varint(out, v);
            }
        }
        Frame::Barrier { tag } | Frame::BarrierAck { tag } => put_varint(out, *tag),
        Frame::MetricsResp { metrics } => {
            out.push(METRICS_VERSION);
            put_varint(out, metrics.len() as u64);
            for (name, value) in metrics {
                put_varint(out, name.len() as u64);
                out.extend_from_slice(name.as_bytes());
                put_varint(out, *value);
            }
        }
        Frame::IngestAck {
            partition,
            tag,
            durable,
            replicated,
        } => {
            put_varint(out, *partition as u64);
            put_varint(out, *tag);
            put_varint(out, *durable);
            put_varint(out, *replicated);
        }
        Frame::RouteBind { partition, epoch } => {
            put_varint(out, *partition as u64);
            put_varint(out, *epoch);
        }
        Frame::WrongLeader {
            partition,
            epoch,
            hint,
        } => {
            put_varint(out, *partition as u64);
            put_varint(out, *epoch);
            put_varint(out, *hint as u64);
        }
        Frame::SegmentsReq {
            partition,
            from_seq,
        } => {
            put_varint(out, *partition as u64);
            put_varint(out, *from_seq);
        }
        Frame::SegmentsResp {
            partition,
            segments,
        } => {
            put_varint(out, *partition as u64);
            put_varint(out, segments.len() as u64);
            for (first_seq, len) in segments {
                put_varint(out, *first_seq);
                put_varint(out, *len);
            }
        }
        Frame::SegmentFetch {
            partition,
            first_seq,
            offset,
            max_len,
        } => {
            put_varint(out, *partition as u64);
            put_varint(out, *first_seq);
            put_varint(out, *offset);
            put_varint(out, *max_len as u64);
        }
        Frame::SegmentChunk {
            partition,
            first_seq,
            offset,
            bytes,
        } => {
            put_varint(out, *partition as u64);
            put_varint(out, *first_seq);
            put_varint(out, *offset);
            put_varint(out, bytes.len() as u64);
            out.extend_from_slice(bytes);
        }
        Frame::RoleChange {
            partition,
            epoch,
            leader,
            hint,
        } => {
            put_varint(out, *partition as u64);
            put_varint(out, *epoch);
            out.push(*leader as u8);
            put_varint(out, *hint as u64);
        }
        Frame::RoleChangeAck {
            partition,
            epoch,
            durable,
        } => {
            put_varint(out, *partition as u64);
            put_varint(out, *epoch);
            put_varint(out, *durable);
        }
        Frame::StateListReq { partition } | Frame::StatusReq { partition } => {
            put_varint(out, *partition as u64);
        }
        Frame::StateListResp { partition, files } => {
            put_varint(out, *partition as u64);
            put_varint(out, files.len() as u64);
            for (name, len) in files {
                put_varint(out, name.len() as u64);
                out.extend_from_slice(name.as_bytes());
                put_varint(out, *len);
            }
        }
        Frame::StateFetch {
            partition,
            name,
            offset,
            max_len,
        } => {
            put_varint(out, *partition as u64);
            put_varint(out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
            put_varint(out, *offset);
            put_varint(out, *max_len as u64);
        }
        Frame::StateChunk {
            partition,
            name,
            offset,
            bytes,
        } => {
            put_varint(out, *partition as u64);
            put_varint(out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
            put_varint(out, *offset);
            put_varint(out, bytes.len() as u64);
            out.extend_from_slice(bytes);
        }
        Frame::FollowReq { partition, source } => {
            put_varint(out, *partition as u64);
            put_varint(out, source.len() as u64);
            out.extend_from_slice(source.as_bytes());
        }
        Frame::StatusResp(s) => {
            put_varint(out, s.partition as u64);
            out.push(s.leading as u8);
            put_varint(out, s.epoch);
            put_varint(out, s.durable);
            put_varint(out, s.applied);
            put_varint(out, s.replicated);
        }
    }
}

/// Appends the frame's wire bytes to `out`.
pub fn encode_into(f: &Frame, out: &mut Vec<u8>) {
    let ty = frame_type(f);
    let start = out.len();
    out.extend_from_slice(&[0u8; 4]); // length backpatched below
    out.push(WIRE_VERSION);
    out.push(ty);
    let payload_start = out.len();
    encode_payload(f, out);
    let check = checksum(WIRE_VERSION, ty, &out[payload_start..]);
    out.extend_from_slice(&check.to_le_bytes());
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

/// Encodes one frame to a fresh buffer.
pub fn encode(f: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    encode_into(f, &mut out);
    out
}

fn read_u32_field(r: &mut &[u8], what: &str) -> Result<u32> {
    let v = read_varint_checked(r, what)?;
    u32::try_from(v).map_err(|_| Error::Corrupt(format!("wire: {what} {v} exceeds u32")))
}

fn read_event(r: &mut &[u8]) -> Result<EdgeEvent> {
    let src = UserId(read_varint_checked(r, "wire event src")?);
    let dst = UserId(read_varint_checked(r, "wire event dst")?);
    let at = Timestamp::from_micros(read_varint_checked(r, "wire event time")?);
    let mut kb = [0u8; 1];
    read_exact_checked(r, &mut kb, "wire event kind")?;
    Ok(EdgeEvent {
        src,
        dst,
        created_at: at,
        kind: kind_from_byte(kb[0])?,
    })
}

fn read_candidate(r: &mut &[u8]) -> Result<Candidate> {
    let user = UserId(read_varint_checked(r, "wire cand user")?);
    let target = UserId(read_varint_checked(r, "wire cand target")?);
    let at = Timestamp::from_micros(read_varint_checked(r, "wire cand time")?);
    let n = read_varint_checked(r, "wire cand witness count")? as usize;
    if n > r.len() {
        return Err(Error::Corrupt(format!(
            "wire: witness count {n} exceeds remaining payload {}",
            r.len()
        )));
    }
    let mut witnesses = Vec::with_capacity(n);
    for _ in 0..n {
        witnesses.push(UserId(read_varint_checked(r, "wire cand witness")?));
    }
    Ok(Candidate {
        user,
        target,
        witnesses,
        triggered_at: at,
    })
}

/// Claimed element counts are validated against the remaining payload
/// (every element costs ≥ `min_bytes`), so a corrupt count can never
/// drive a large allocation.
fn checked_count(r: &[u8], n: u64, min_bytes: usize, what: &str) -> Result<usize> {
    let n = n as usize;
    if n.saturating_mul(min_bytes) > r.len() {
        return Err(Error::Corrupt(format!(
            "wire: {what} count {n} exceeds remaining payload {}",
            r.len()
        )));
    }
    Ok(n)
}

/// Reads a length-prefixed UTF-8 string, validating the claimed length
/// against the remaining payload first.
fn read_string(r: &mut &[u8], what: &str) -> Result<String> {
    let n = read_varint_checked(r, what)?;
    let n = checked_count(r, n, 1, what)?;
    let mut bytes = vec![0u8; n];
    read_exact_checked(r, &mut bytes, what)?;
    String::from_utf8(bytes).map_err(|_| Error::Corrupt(format!("wire: {what} not utf-8")))
}

/// Reads a length-prefixed raw byte blob with the same count guard.
fn read_bytes(r: &mut &[u8], what: &str) -> Result<Vec<u8>> {
    let n = read_varint_checked(r, what)?;
    let n = checked_count(r, n, 1, what)?;
    let mut bytes = vec![0u8; n];
    read_exact_checked(r, &mut bytes, what)?;
    Ok(bytes)
}

fn read_bool(r: &mut &[u8], what: &str) -> Result<bool> {
    let mut b = [0u8; 1];
    read_exact_checked(r, &mut b, what)?;
    match b[0] {
        0 => Ok(false),
        1 => Ok(true),
        v => Err(Error::Corrupt(format!("wire: {what} byte {v} not a bool"))),
    }
}

fn decode_payload(ty: u8, payload: &[u8]) -> Result<Frame> {
    let mut r = payload;
    let f = match ty {
        0 => Frame::Hello {
            preferred_worker: read_u32_field(&mut r, "wire hello worker")?,
        },
        1 => Frame::HelloAck {
            worker_id: read_u32_field(&mut r, "wire ack worker")?,
            num_workers: read_u32_field(&mut r, "wire ack workers")?,
        },
        2 => {
            let tag = read_varint_checked(&mut r, "wire ingest tag")?;
            let n = read_varint_checked(&mut r, "wire ingest count")?;
            let n = checked_count(r, n, 4, "event")?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                events.push(read_event(&mut r)?);
            }
            Frame::Ingest { tag, events }
        }
        3 => Frame::Subscribe,
        4 => {
            let tag = read_varint_checked(&mut r, "wire deliver tag")?;
            let n = read_varint_checked(&mut r, "wire deliver count")?;
            let n = checked_count(r, n, 4, "candidate")?;
            let mut candidates = Vec::with_capacity(n);
            for _ in 0..n {
                candidates.push(read_candidate(&mut r)?);
            }
            Frame::Deliver { tag, candidates }
        }
        5 => {
            let tag = read_varint_checked(&mut r, "wire shed tag")?;
            let mut cb = [0u8; 1];
            read_exact_checked(&mut r, &mut cb, "wire shed code")?;
            Frame::Shed {
                tag,
                code: ShedCode::from_byte(cb[0])?,
                retry_after_us: read_varint_checked(&mut r, "wire shed retry")?,
            }
        }
        6 => {
            let mut cb = [0u8; 1];
            read_exact_checked(&mut r, &mut cb, "wire error code")?;
            let n = read_varint_checked(&mut r, "wire error len")?;
            let n = checked_count(r, n, 1, "error byte")?;
            let mut bytes = vec![0u8; n];
            read_exact_checked(&mut r, &mut bytes, "wire error detail")?;
            Frame::Error {
                code: WireErrorCode::from_byte(cb[0])?,
                detail: String::from_utf8(bytes)
                    .map_err(|_| Error::Corrupt("wire: error detail not utf-8".into()))?,
            }
        }
        7 => {
            let n = read_varint_checked(&mut r, "wire delta len")?;
            let n = checked_count(r, n, 1, "delta byte")?;
            let mut bytes = vec![0u8; n];
            read_exact_checked(&mut r, &mut bytes, "wire delta bytes")?;
            Frame::DeltaPublish { bytes }
        }
        8 => Frame::CheckpointReq,
        9 => Frame::StatsReq,
        10 => {
            let mut vals = [0u64; 10];
            for v in &mut vals {
                *v = read_varint_checked(&mut r, "wire stats field")?;
            }
            Frame::StatsResp(WireStats {
                events: vals[0],
                candidates: vals[1],
                firing_events: vals[2],
                accepted: vals[3],
                shed: vals[4],
                queue_high_watermark: vals[5],
                dropped_deliveries: vals[6],
                connections: vals[7],
                detect_p50_us: vals[8],
                detect_p99_us: vals[9],
            })
        }
        11 => Frame::OkAck,
        12 => Frame::Barrier {
            tag: read_varint_checked(&mut r, "wire barrier tag")?,
        },
        13 => Frame::BarrierAck {
            tag: read_varint_checked(&mut r, "wire barrier tag")?,
        },
        14 => Frame::MetricsReq,
        15 => {
            let mut vb = [0u8; 1];
            read_exact_checked(&mut r, &mut vb, "wire metrics version")?;
            if vb[0] != METRICS_VERSION {
                return Err(Error::Corrupt(format!(
                    "wire: metrics payload version {}, expected {METRICS_VERSION}",
                    vb[0]
                )));
            }
            let n = read_varint_checked(&mut r, "wire metrics count")?;
            // Each entry costs at least a name-length varint + a value
            // varint, even with an empty name.
            let n = checked_count(r, n, 2, "metric")?;
            let mut metrics = Vec::with_capacity(n);
            for _ in 0..n {
                let len = read_varint_checked(&mut r, "wire metric name len")?;
                let len = checked_count(r, len, 1, "metric name byte")?;
                let mut bytes = vec![0u8; len];
                read_exact_checked(&mut r, &mut bytes, "wire metric name")?;
                let name = String::from_utf8(bytes)
                    .map_err(|_| Error::Corrupt("wire: metric name not utf-8".into()))?;
                let value = read_varint_checked(&mut r, "wire metric value")?;
                metrics.push((name, value));
            }
            Frame::MetricsResp { metrics }
        }
        16 => Frame::IngestAck {
            partition: read_u32_field(&mut r, "wire ack partition")?,
            tag: read_varint_checked(&mut r, "wire ack tag")?,
            durable: read_varint_checked(&mut r, "wire ack durable")?,
            replicated: read_varint_checked(&mut r, "wire ack replicated")?,
        },
        17 => Frame::RouteBind {
            partition: read_u32_field(&mut r, "wire bind partition")?,
            epoch: read_varint_checked(&mut r, "wire bind epoch")?,
        },
        18 => Frame::WrongLeader {
            partition: read_u32_field(&mut r, "wire wrongleader partition")?,
            epoch: read_varint_checked(&mut r, "wire wrongleader epoch")?,
            hint: read_u32_field(&mut r, "wire wrongleader hint")?,
        },
        19 => Frame::SegmentsReq {
            partition: read_u32_field(&mut r, "wire segreq partition")?,
            from_seq: read_varint_checked(&mut r, "wire segreq from")?,
        },
        20 => {
            let partition = read_u32_field(&mut r, "wire segresp partition")?;
            let n = read_varint_checked(&mut r, "wire segresp count")?;
            let n = checked_count(r, n, 2, "segment entry")?;
            let mut segments = Vec::with_capacity(n);
            for _ in 0..n {
                let first_seq = read_varint_checked(&mut r, "wire segresp first_seq")?;
                let len = read_varint_checked(&mut r, "wire segresp len")?;
                segments.push((first_seq, len));
            }
            Frame::SegmentsResp {
                partition,
                segments,
            }
        }
        21 => Frame::SegmentFetch {
            partition: read_u32_field(&mut r, "wire segfetch partition")?,
            first_seq: read_varint_checked(&mut r, "wire segfetch first_seq")?,
            offset: read_varint_checked(&mut r, "wire segfetch offset")?,
            max_len: read_u32_field(&mut r, "wire segfetch max_len")?,
        },
        22 => Frame::SegmentChunk {
            partition: read_u32_field(&mut r, "wire segchunk partition")?,
            first_seq: read_varint_checked(&mut r, "wire segchunk first_seq")?,
            offset: read_varint_checked(&mut r, "wire segchunk offset")?,
            bytes: read_bytes(&mut r, "wire segchunk bytes")?,
        },
        23 => Frame::RoleChange {
            partition: read_u32_field(&mut r, "wire role partition")?,
            epoch: read_varint_checked(&mut r, "wire role epoch")?,
            leader: read_bool(&mut r, "wire role leader")?,
            hint: read_u32_field(&mut r, "wire role hint")?,
        },
        24 => Frame::RoleChangeAck {
            partition: read_u32_field(&mut r, "wire roleack partition")?,
            epoch: read_varint_checked(&mut r, "wire roleack epoch")?,
            durable: read_varint_checked(&mut r, "wire roleack durable")?,
        },
        25 => Frame::StateListReq {
            partition: read_u32_field(&mut r, "wire statelist partition")?,
        },
        26 => {
            let partition = read_u32_field(&mut r, "wire statelist partition")?;
            let n = read_varint_checked(&mut r, "wire statelist count")?;
            // Each entry costs at least a name-length varint + a size
            // varint, even with an empty name.
            let n = checked_count(r, n, 2, "state file entry")?;
            let mut files = Vec::with_capacity(n);
            for _ in 0..n {
                let name = read_string(&mut r, "wire state file name")?;
                let len = read_varint_checked(&mut r, "wire state file len")?;
                files.push((name, len));
            }
            Frame::StateListResp { partition, files }
        }
        27 => Frame::StateFetch {
            partition: read_u32_field(&mut r, "wire statefetch partition")?,
            name: read_string(&mut r, "wire statefetch name")?,
            offset: read_varint_checked(&mut r, "wire statefetch offset")?,
            max_len: read_u32_field(&mut r, "wire statefetch max_len")?,
        },
        28 => Frame::StateChunk {
            partition: read_u32_field(&mut r, "wire statechunk partition")?,
            name: read_string(&mut r, "wire statechunk name")?,
            offset: read_varint_checked(&mut r, "wire statechunk offset")?,
            bytes: read_bytes(&mut r, "wire statechunk bytes")?,
        },
        29 => Frame::FollowReq {
            partition: read_u32_field(&mut r, "wire follow partition")?,
            source: read_string(&mut r, "wire follow source")?,
        },
        30 => Frame::StatusReq {
            partition: read_u32_field(&mut r, "wire status partition")?,
        },
        31 => Frame::StatusResp(ReplStatus {
            partition: read_u32_field(&mut r, "wire status partition")?,
            leading: read_bool(&mut r, "wire status leading")?,
            epoch: read_varint_checked(&mut r, "wire status epoch")?,
            durable: read_varint_checked(&mut r, "wire status durable")?,
            applied: read_varint_checked(&mut r, "wire status applied")?,
            replicated: read_varint_checked(&mut r, "wire status replicated")?,
        }),
        _ => return Err(Error::Corrupt(format!("wire: unknown frame type {ty}"))),
    };
    if !r.is_empty() {
        return Err(Error::Corrupt(format!(
            "wire: {} trailing payload bytes after frame type {ty}",
            r.len()
        )));
    }
    Ok(f)
}

/// Attempts to decode one frame from the front of `buf`.
///
/// * `Ok(None)` — `buf` holds an incomplete frame; read more bytes.
/// * `Ok(Some((frame, consumed)))` — one frame decoded; drop `consumed`
///   bytes from the front of `buf`.
/// * `Err(Corrupt)` — the stream is damaged beyond resynchronization;
///   close the connection.
pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if !(MIN_FRAME_LEN..=MAX_FRAME_LEN).contains(&len) {
        return Err(Error::Corrupt(format!(
            "wire: frame length {len} outside [{MIN_FRAME_LEN}, {MAX_FRAME_LEN}]"
        )));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let body = &buf[4..4 + len];
    let ver = body[0];
    if ver != WIRE_VERSION {
        return Err(Error::Corrupt(format!(
            "wire: version {ver}, expected {WIRE_VERSION}"
        )));
    }
    let ty = body[1];
    let payload = &body[2..len - 8];
    let mut cb = [0u8; 8];
    cb.copy_from_slice(&body[len - 8..]);
    let want = u64::from_le_bytes(cb);
    let got = checksum(ver, ty, payload);
    if want != got {
        return Err(Error::Corrupt(format!(
            "wire: checksum mismatch on frame type {ty} ({got:#x} != {want:#x})"
        )));
    }
    Ok(Some((decode_payload(ty, payload)?, 4 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                preferred_worker: ANY_WORKER,
            },
            Frame::HelloAck {
                worker_id: 3,
                num_workers: 8,
            },
            Frame::Ingest {
                tag: 42,
                events: vec![
                    EdgeEvent::follow(UserId(1), UserId(2), Timestamp::from_secs(5)),
                    EdgeEvent::unfollow(UserId(9), UserId(2), Timestamp::from_secs(6)),
                    EdgeEvent {
                        src: UserId(7),
                        dst: UserId(8),
                        created_at: Timestamp::from_micros(123_456_789),
                        kind: EdgeKind::Retweet,
                    },
                ],
            },
            Frame::Subscribe,
            Frame::Deliver {
                tag: 42,
                candidates: vec![Candidate {
                    user: UserId(10),
                    target: UserId(2),
                    witnesses: vec![UserId(1), UserId(9)],
                    triggered_at: Timestamp::from_secs(6),
                }],
            },
            Frame::Shed {
                tag: 43,
                code: ShedCode::RateLimited,
                retry_after_us: 1500,
            },
            Frame::Error {
                code: WireErrorCode::Unsupported,
                detail: "no checkpoint hook".into(),
            },
            Frame::DeltaPublish {
                bytes: vec![1, 2, 3, 250],
            },
            Frame::CheckpointReq,
            Frame::StatsReq,
            Frame::StatsResp(WireStats {
                events: 100,
                candidates: 7,
                firing_events: 5,
                accepted: 99,
                shed: 1,
                queue_high_watermark: 64,
                dropped_deliveries: 0,
                connections: 2,
                detect_p50_us: 12,
                detect_p99_us: 80,
            }),
            Frame::OkAck,
            Frame::Barrier { tag: u64::MAX },
            Frame::BarrierAck { tag: 0 },
            Frame::MetricsReq,
            Frame::MetricsResp {
                metrics: vec![
                    ("engine_events".to_string(), 100),
                    ("stage_detect_us_p99".to_string(), 80),
                    (String::new(), 0),
                ],
            },
            Frame::IngestAck {
                partition: 2,
                tag: 42,
                durable: 1000,
                replicated: 988,
            },
            Frame::RouteBind {
                partition: 2,
                epoch: 3,
            },
            Frame::WrongLeader {
                partition: 2,
                epoch: 4,
                hint: 1,
            },
            Frame::SegmentsReq {
                partition: 2,
                from_seq: 988,
            },
            Frame::SegmentsResp {
                partition: 2,
                segments: vec![(0, 4096), (512, 128), (1024, 0)],
            },
            Frame::SegmentFetch {
                partition: 2,
                first_seq: 512,
                offset: 64,
                max_len: MAX_CHUNK_LEN as u32,
            },
            Frame::SegmentChunk {
                partition: 2,
                first_seq: 512,
                offset: 64,
                bytes: vec![0xDE, 0xAD, 0xBE, 0xEF],
            },
            Frame::SegmentChunk {
                partition: 2,
                first_seq: 512,
                offset: 68,
                bytes: Vec::new(),
            },
            Frame::RoleChange {
                partition: 2,
                epoch: 4,
                leader: true,
                hint: 1,
            },
            Frame::RoleChangeAck {
                partition: 2,
                epoch: 4,
                durable: 1000,
            },
            Frame::StateListReq { partition: 2 },
            Frame::StateListResp {
                partition: 2,
                files: vec![
                    ("base-000042.mgrs".to_string(), 1 << 16),
                    ("delta-000043.mgci".to_string(), 777),
                    (String::new(), 0),
                ],
            },
            Frame::StateFetch {
                partition: 2,
                name: "base-000042.mgrs".to_string(),
                offset: 0,
                max_len: 4096,
            },
            Frame::StateChunk {
                partition: 2,
                name: "base-000042.mgrs".to_string(),
                offset: 0,
                bytes: vec![7; 32],
            },
            Frame::FollowReq {
                partition: 2,
                source: "127.0.0.1:41001".to_string(),
            },
            Frame::StatusReq { partition: 2 },
            Frame::StatusResp(ReplStatus {
                partition: 2,
                leading: false,
                epoch: 4,
                durable: 988,
                applied: 988,
                replicated: 0,
            }),
        ]
    }

    #[test]
    fn every_frame_roundtrips() {
        for f in sample_frames() {
            let bytes = encode(&f);
            let (got, consumed) = decode(&bytes).unwrap().unwrap();
            assert_eq!(got, f);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn stream_of_frames_decodes_in_order() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            encode_into(f, &mut stream);
        }
        let mut off = 0;
        let mut got = Vec::new();
        while let Some((f, used)) = decode(&stream[off..]).unwrap() {
            got.push(f);
            off += used;
        }
        assert_eq!(off, stream.len());
        assert_eq!(got, frames);
    }

    #[test]
    fn incomplete_prefixes_report_none() {
        let bytes = encode(&Frame::Barrier { tag: 77 });
        for cut in 0..bytes.len() {
            assert_eq!(
                decode(&bytes[..cut]).unwrap(),
                None,
                "cut at {cut} of {}",
                bytes.len()
            );
        }
    }

    #[test]
    fn oversized_length_is_typed_corrupt() {
        let mut bytes = encode(&Frame::Subscribe);
        bytes[..4].copy_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
        assert!(matches!(decode(&bytes), Err(Error::Corrupt(_))));
        // Undersized too: a length that cannot even hold the checksum.
        bytes[..4].copy_from_slice(&5u32.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(Error::Corrupt(_))));
    }

    #[test]
    fn wrong_version_is_typed_corrupt() {
        let mut bytes = encode(&Frame::Subscribe);
        bytes[4] = WIRE_VERSION + 1;
        assert!(matches!(decode(&bytes), Err(Error::Corrupt(_))));
    }

    #[test]
    fn corrupt_counts_cannot_drive_allocation() {
        // Hand-craft an ingest frame claiming 2^40 events with an empty
        // payload tail; the count check must reject it before allocating.
        let mut payload = Vec::new();
        put_varint(&mut payload, 1); // tag
        put_varint(&mut payload, 1 << 40); // event count
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&[0u8; 4]);
        bytes.push(WIRE_VERSION);
        bytes.push(2); // ingest
        bytes.extend_from_slice(&payload);
        let check = checksum(WIRE_VERSION, 2, &payload);
        bytes.extend_from_slice(&check.to_le_bytes());
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(Error::Corrupt(_))));
    }

    #[test]
    fn metrics_payload_version_mismatch_is_typed_corrupt() {
        let mut bytes = encode(&Frame::MetricsResp {
            metrics: vec![("x".to_string(), 1)],
        });
        // The payload version byte sits right after the frame header
        // (len + ver + type); bumping it must fail typed, not misparse.
        bytes[6] = METRICS_VERSION + 1;
        let check = checksum(WIRE_VERSION, 15, &bytes[6..bytes.len() - 8]);
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&check.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(Error::Corrupt(_))));
    }

    #[test]
    fn corrupt_metric_count_cannot_drive_allocation() {
        let mut payload = Vec::new();
        payload.push(METRICS_VERSION);
        put_varint(&mut payload, 1 << 40); // entry count
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&[0u8; 4]);
        bytes.push(WIRE_VERSION);
        bytes.push(15); // metrics resp
        bytes.extend_from_slice(&payload);
        let check = checksum(WIRE_VERSION, 15, &payload);
        bytes.extend_from_slice(&check.to_le_bytes());
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(Error::Corrupt(_))));
    }

    #[test]
    fn trailing_payload_bytes_are_typed_corrupt() {
        // A Subscribe frame with one extra payload byte: checksum valid,
        // parse must still reject the leftover.
        let payload = [0xAAu8];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&[0u8; 4]);
        bytes.push(WIRE_VERSION);
        bytes.push(3); // subscribe
        bytes.extend_from_slice(&payload);
        let check = checksum(WIRE_VERSION, 3, &payload);
        bytes.extend_from_slice(&check.to_le_bytes());
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(Error::Corrupt(_))));
    }
}
