//! # magicrecs-server
//!
//! The serving tier: a share-nothing, thread-per-core network front end
//! over [`magicrecs_core::ConcurrentEngine`]. This is ROADMAP item 2 —
//! the first piece of the system that speaks to the outside world, and
//! the wire substrate item 4's multi-node cluster builds on.
//!
//! ## Architecture
//!
//! One acceptor thread owns the listening socket; N workers (one per
//! core, pinned best-effort via `sched_setaffinity`) each run a
//! hand-rolled level-triggered epoll loop over the connections handed
//! to them. A connection lives on exactly one worker for its whole
//! life: reads, admission, detection ([`ConcurrentEngine::on_events_into`],
//! the PR 5 micro-batch fast path), and delivery all happen on that
//! worker's thread. Cross-core traffic exists only inside the engine's
//! already-sharded `D` — the same seam the in-process cluster uses.
//!
//! Clients preserve the engine's per-target ordering contract by
//! routing: one connection per worker, each event sent on the
//! connection `route_mix(dst) % num_workers` (the workspace routing
//! recipe, [`magicrecs_types::route_mix`]). The network therefore adds
//! no ordering assumptions beyond the cluster transport's, and the
//! candidate stream is bit-identical to an in-process
//! `SharedEngineCluster` run — test-enforced in `tests/parity.rs`.
//!
//! ## Wire format
//!
//! Little-endian, length-prefixed frames (see [`wire`]):
//!
//! ```text
//! [len: u32] [ver: u8 = 1] [type: u8] [payload: varints] [check: u64]
//! ```
//!
//! `len` counts everything after itself (min 10 = ver + type + check,
//! max [`wire::MAX_FRAME_LEN`] = 1 MiB). `check` is the workspace's
//! FxHash [`magicrecs_graph::io::Check`] accumulator over the version,
//! type, payload length, and payload bytes. Varint fields use
//! [`magicrecs_graph::io::write_varint`]'s LEB128.
//!
//! | type | frame          | direction | payload |
//! |------|----------------|-----------|---------|
//! | 0    | `Hello`        | C → S     | preferred worker (u32, `0xFFFF_FFFF` = any) |
//! | 1    | `HelloAck`     | S → C     | worker id, worker count |
//! | 2    | `Ingest`       | C → S     | tag, event count, events (src, dst, µs, kind byte) |
//! | 3    | `Subscribe`    | C → S     | — |
//! | 4    | `Deliver`      | S → C     | tag, candidate count, candidates |
//! | 5    | `Shed`         | S → C     | tag, shed code byte, retry-after µs |
//! | 6    | `Error`        | either    | error code byte, detail string |
//! | 7    | `DeltaPublish` | C → S     | MGRD byte length, bytes |
//! | 8    | `CheckpointReq`| C → S     | — |
//! | 9    | `StatsReq`     | C → S     | — |
//! | 10   | `StatsResp`    | S → C     | 10 varint counters (see [`wire::WireStats`]) |
//! | 11   | `OkAck`        | S → C     | — |
//! | 12   | `Barrier`      | C → S     | tag |
//! | 13   | `BarrierAck`   | S → C     | tag |
//! | 14   | `MetricsReq`   | C → S     | — |
//! | 15   | `MetricsResp`  | S → C     | payload version byte, entry count, entries (name length, name bytes, value) |
//! | 16   | `IngestAck`    | S → C     | partition, tag, durable watermark, replicated watermark |
//! | 17   | `RouteBind`    | C → S     | partition, routing epoch |
//! | 18   | `WrongLeader`  | S → C     | partition, current epoch, owner hint |
//! | 19   | `SegmentsReq`  | F → L     | partition, from-seq (doubles as replicated watermark) |
//! | 20   | `SegmentsResp` | L → F     | partition, entry count, entries (first seq, byte length) |
//! | 21   | `SegmentFetch` | F → L     | partition, first seq, offset, max length |
//! | 22   | `SegmentChunk` | L → F     | partition, first seq, offset, byte length, bytes |
//! | 23   | `RoleChange`   | K → S     | partition, epoch, leader byte, owner hint |
//! | 24   | `RoleChangeAck`| S → K     | partition, epoch, durable watermark |
//! | 25   | `StateListReq` | F → L     | partition |
//! | 26   | `StateListResp`| L → F     | partition, entry count, entries (name length, name bytes, byte length) |
//! | 27   | `StateFetch`   | F → L     | partition, name length, name bytes, offset, max length |
//! | 28   | `StateChunk`   | L → F     | partition, name length, name bytes, offset, byte length, bytes |
//! | 29   | `FollowReq`    | K → S     | partition, source-address length, bytes |
//! | 30   | `StatusReq`    | K → S     | partition |
//! | 31   | `StatusResp`   | S → K     | partition, leading byte, epoch, durable, applied, replicated |
//!
//! Types 16–31 are the replication plane (`L` = partition leader, `F` =
//! warm follower, `K` = coordinator), served by replica nodes; this
//! crate's single-node [`server::Server`] answers the request-direction
//! ones with a typed `Unsupported` error. Watermarks are next-sequence
//! values throughout (see [`wire::ReplStatus`]).
//!
//! `StatsResp` is **frozen as v0** (its decoder reads a fixed count of
//! fields); all new telemetry rides `MetricsResp`, whose entries are a
//! full flattened scrape of the metrics registry (`magicrecs-obs`) and
//! carry their own payload version byte so the shape can grow without a
//! protocol bump.
//!
//! Shed codes: 1 = rate-limited (per-source token bucket empty; retry
//! after the hinted µs), 2 = overloaded (worker cycle budget spent).
//! Error codes: 1 = bad frame (connection closes after it), 2 =
//! unsupported operation, 3 = internal failure. Decoding is
//! prefix-closed: truncation yields a clean frame prefix, any other
//! damage a typed `Corrupt` — property-tested in `tests/properties.rs`.
//!
//! ## Admission-control contract
//!
//! Ingest passes two gates (see [`admission`]), both shedding the whole
//! batch atomically (never splitting it, so a retried batch replays in
//! order):
//!
//! 1. a per-connection token bucket (`source_rate`/`source_burst`):
//!    exceeding it earns `Shed{RateLimited}` with a retry-after hint
//!    computed from the deficit;
//! 2. a per-worker cycle budget (`cycle_budget` events per epoll
//!    wake-up): exceeding it earns `Shed{Overloaded}`.
//!
//! Subscribers are protected in the other direction: a consumer whose
//! socket backs up past `max_write_queue` bytes has further deliveries
//! dropped (counted in `dropped_deliveries`) rather than buffered
//! without bound. Control replies are never dropped. Inbound buffers
//! are capped at `max_read_buf`; a peer that exceeds it is closed with
//! a typed error. Accepted/shed/queue-high-watermark counters live on
//! the engine ([`magicrecs_core::ConcurrentStats`]) and are served by
//! `StatsReq`.
//!
//! [`ConcurrentEngine::on_events_into`]: magicrecs_core::ConcurrentEngine::on_events_into

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod resilient;
pub mod server;
pub mod sys;
pub mod wire;

pub use admission::AdmissionConfig;
pub use client::{connect_per_worker, ClientConn};
pub use resilient::{Backoff, PendingBatch, ResilientConn, SeqLedger};
pub use server::{CheckpointHook, Server, ServerConfig};
pub use wire::{Frame, ReplStatus, ShedCode, WireErrorCode, WireStats};
