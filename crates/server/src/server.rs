//! The server: one acceptor + N share-nothing epoll workers over a
//! shared [`ConcurrentEngine`].
//!
//! The acceptor owns the listening socket, reads each connection's
//! [`Frame::Hello`], and hands the socket to the requested worker (or
//! round-robin). From then on the connection lives entirely on that
//! worker's thread: its reads, detection calls, and deliveries never
//! cross cores except through the engine's already-sharded `D` — the
//! share-nothing seam the cluster transport established in PR 2.
//!
//! Each worker runs a level-triggered epoll loop over its socket set
//! plus one eventfd (socket handoff + shutdown wake-ups), optionally
//! pinned to its core ([`sys::pin_to_core`], best-effort). Ingest
//! frames feed [`ConcurrentEngine::on_events_into`] — the PR 5
//! micro-batch fast path — after passing admission
//! ([`crate::admission`]); candidates fan out to the worker's
//! subscribed connections as [`Frame::Deliver`] frames echoing the
//! ingest tag.

use crate::admission::{AdmissionConfig, TokenBucket};
use crate::sys;
use crate::wire::{self, Frame, ShedCode, WireErrorCode, WireStats};
use magicrecs_core::ConcurrentEngine;
use magicrecs_obs as obs;
use magicrecs_obs::stage::Stage;
use magicrecs_obs::TraceKind;
use magicrecs_types::{Error, Result};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Callback invoked on [`Frame::CheckpointReq`]. Injected so the server
/// stays independent of the persistence crate: a durable deployment
/// passes a closure over its `PersistentConcurrentEngine`; a volatile
/// one passes `None` and the request earns a typed
/// [`WireErrorCode::Unsupported`].
pub type CheckpointHook = Arc<dyn Fn() -> Result<()> + Send + Sync>;

/// Server construction knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker (and target core) count. Zero = one per available core.
    pub workers: usize,
    /// Ingress admission knobs.
    pub admission: AdmissionConfig,
    /// Pin worker `i` to core `i` (best-effort; ignored where the
    /// container forbids affinity).
    pub pin_cores: bool,
    /// Checkpoint trigger, if the engine is durable.
    pub checkpoint_hook: Option<CheckpointHook>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("workers", &self.workers)
            .field("admission", &self.admission)
            .field("pin_cores", &self.pin_cores)
            .field("checkpoint_hook", &self.checkpoint_hook.is_some())
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            admission: AdmissionConfig::default(),
            pin_cores: true,
            checkpoint_hook: None,
        }
    }
}

/// Server-side metrics that live outside the engine's detection path.
/// Registered on the **engine's** registry (not the global one) so one
/// `MetricsResp` scrape of the engine covers the whole serving
/// component, and the `StatsResp` shim reads the very same handles —
/// the two views cannot disagree.
struct ServingCounters {
    dropped_deliveries: obs::Counter,
    connections: obs::Gauge,
    frames_ingest: obs::Counter,
    frames_control: obs::Counter,
}

impl ServingCounters {
    fn on(registry: &obs::Registry) -> ServingCounters {
        ServingCounters {
            dropped_deliveries: registry.counter("server_dropped_deliveries"),
            connections: registry.gauge("server_connections"),
            frames_ingest: registry.counter("server_frames_ingest"),
            frames_control: registry.counter("server_frames_control"),
        }
    }
}

/// A socket handed from the acceptor to a worker, with any bytes the
/// client pipelined behind its Hello.
struct Handoff {
    queue: Mutex<Vec<(TcpStream, Vec<u8>)>>,
    wake: sys::EventFd,
}

/// Eventfd token in each worker's epoll (connection slots use their
/// index, which stays far below this).
const WAKE_TOKEN: u64 = u64::MAX;

/// One worker-owned connection.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_off: usize,
    subscribed: bool,
    bucket: TokenBucket,
    wants_out: bool,
    /// Peer closed or errored: deregister at the end of the cycle.
    dead: bool,
}

/// A running server. Dropping without [`Server::shutdown`] leaks the
/// worker threads until process exit; call shutdown for a clean join.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_wake: Arc<sys::EventFd>,
    handoffs: Vec<Arc<Handoff>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `bind_addr` (use port 0 for an ephemeral port) and starts
    /// the acceptor plus `cfg.workers` workers over `engine`.
    pub fn start(
        engine: Arc<ConcurrentEngine>,
        bind_addr: &str,
        cfg: ServerConfig,
    ) -> Result<Server> {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.workers
        };
        let listener = TcpListener::bind(bind_addr).map_err(io_err)?;
        let addr = listener.local_addr().map_err(io_err)?;
        listener.set_nonblocking(true).map_err(io_err)?;

        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ServingCounters::on(engine.registry()));
        let mut handoffs = Vec::with_capacity(workers);
        let mut threads = Vec::with_capacity(workers + 1);

        for w in 0..workers {
            let handoff = Arc::new(Handoff {
                queue: Mutex::new(Vec::new()),
                wake: sys::EventFd::new().map_err(io_err)?,
            });
            handoffs.push(handoff.clone());
            let worker = Worker {
                id: w as u32,
                num_workers: workers as u32,
                engine: engine.clone(),
                cfg: cfg.clone(),
                stop: stop.clone(),
                counters: counters.clone(),
                handoff,
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("mr-worker-{w}"))
                    .spawn(move || worker.run())
                    .map_err(io_err)?,
            );
        }

        let accept_wake = Arc::new(sys::EventFd::new().map_err(io_err)?);
        {
            let stop = stop.clone();
            let wake = accept_wake.clone();
            let handoffs = handoffs.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("mr-acceptor".into())
                    .spawn(move || acceptor_loop(listener, wake, handoffs, stop))
                    .map_err(io_err)?,
            );
        }

        Ok(Server {
            addr,
            stop,
            accept_wake,
            handoffs,
            threads,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the acceptor and workers and joins their threads. Open
    /// connections are closed without a goodbye frame.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.accept_wake.notify();
        for h in &self.handoffs {
            h.wake.notify();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn io_err(e: std::io::Error) -> Error {
    Error::Io(format!("server: {e}"))
}

/// Accept loop: wait on {listener, wake eventfd}; for each connection
/// read the Hello (bounded by a read timeout so a stalled peer cannot
/// block accepts for long) and hand the socket to its worker.
fn acceptor_loop(
    listener: TcpListener,
    wake: Arc<sys::EventFd>,
    handoffs: Vec<Arc<Handoff>>,
    stop: Arc<AtomicBool>,
) {
    let Ok(ep) = sys::Epoll::new() else { return };
    if ep.add(listener.as_raw_fd(), 0, sys::IN).is_err() {
        return;
    }
    if ep.add(wake.raw(), WAKE_TOKEN, sys::IN).is_err() {
        return;
    }
    let mut rr = 0usize;
    let mut events = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        events.clear();
        if ep.wait(&mut events, -1).is_err() {
            return;
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        for _ in 0..events.len() {
            // Accept everything ready; nonblocking accept drains.
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if let Some((worker, stream, leftover)) =
                            handshake(stream, handoffs.len(), &mut rr)
                        {
                            let h = &handoffs[worker];
                            h.queue.lock().unwrap().push((stream, leftover));
                            h.wake.notify();
                        }
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }
        wake.drain();
    }
}

/// Reads the client's Hello frame (with a timeout) and picks its
/// worker. Returns `None` to drop the connection (timeout, garbage, or
/// a non-Hello first frame).
fn handshake(
    stream: TcpStream,
    workers: usize,
    rr: &mut usize,
) -> Option<(usize, TcpStream, Vec<u8>)> {
    stream.set_nodelay(true).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_millis(2000)))
        .ok()?;
    let mut buf = Vec::with_capacity(64);
    let mut chunk = [0u8; 4096];
    let mut stream = stream;
    loop {
        match wire::decode(&buf) {
            Ok(Some((Frame::Hello { preferred_worker }, used))) => {
                let leftover = buf.split_off(used);
                let worker = if (preferred_worker as usize) < workers {
                    preferred_worker as usize
                } else {
                    *rr = (*rr + 1) % workers;
                    *rr
                };
                stream.set_read_timeout(None).ok()?;
                return Some((worker, stream, leftover));
            }
            Ok(Some(_)) | Err(_) => return None, // first frame must be Hello
            Ok(None) => {}
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None, // includes the handshake timeout
        }
        if buf.len() > 4096 {
            return None; // a Hello is tens of bytes; this is garbage
        }
    }
}

struct Worker {
    id: u32,
    num_workers: u32,
    engine: Arc<ConcurrentEngine>,
    cfg: ServerConfig,
    stop: Arc<AtomicBool>,
    counters: Arc<ServingCounters>,
    handoff: Arc<Handoff>,
}

impl Worker {
    fn run(self) {
        if self.cfg.pin_cores {
            // Best-effort; a refusal (cgroup limits, 1-core box) is fine.
            let _ = sys::pin_to_core(self.id as usize);
        }
        let Ok(ep) = sys::Epoll::new() else { return };
        if ep
            .add(self.handoff.wake.raw(), WAKE_TOKEN, sys::IN)
            .is_err()
        {
            return;
        }

        let mut conns: Vec<Option<Conn>> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut events = Vec::new();
        let mut scratch = Vec::new(); // candidate buffer reused per batch

        while !self.stop.load(Ordering::SeqCst) {
            events.clear();
            if ep.wait(&mut events, -1).is_err() {
                break;
            }
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            // Per-cycle admission budget (see crate::admission).
            let mut cycle_events = 0usize;
            let mut dead: Vec<usize> = Vec::new();

            for &ev in &events {
                if ev.token == WAKE_TOKEN {
                    self.handoff.wake.drain();
                    self.adopt(&ep, &mut conns, &mut free, &mut cycle_events, &mut scratch);
                    continue;
                }
                let idx = ev.token as usize;
                {
                    let Some(conn) = conns.get_mut(idx).and_then(|c| c.as_mut()) else {
                        continue;
                    };
                    if ev.events & (sys::ERR | sys::HUP) != 0 {
                        conn.dead = true;
                    }
                    if !conn.dead && ev.events & sys::OUT != 0 {
                        let _ = flush(conn);
                    }
                }
                let alive = conns[idx].as_ref().is_some_and(|c| !c.dead);
                if alive && ev.events & (sys::IN | sys::RDHUP) != 0 {
                    self.read_and_process(idx, &mut conns, &mut cycle_events, &mut scratch);
                }
                match conns[idx].as_mut() {
                    Some(conn) if conn.dead => dead.push(idx),
                    Some(conn) => sync_out_interest(&ep, idx, conn),
                    None => {}
                }
            }

            dead.sort_unstable();
            dead.dedup();
            for idx in dead {
                if let Some(conn) = conns[idx].take() {
                    let _ = ep.del(conn.stream.as_raw_fd());
                    self.counters.connections.sub(1);
                    free.push(idx);
                }
            }
        }
    }

    /// Adopts handed-off sockets: nonblocking, registered, greeted.
    fn adopt(
        &self,
        ep: &sys::Epoll,
        conns: &mut Vec<Option<Conn>>,
        free: &mut Vec<usize>,
        cycle_events: &mut usize,
        scratch: &mut Vec<magicrecs_types::Candidate>,
    ) {
        let pending: Vec<(TcpStream, Vec<u8>)> =
            std::mem::take(&mut *self.handoff.queue.lock().unwrap());
        for (stream, leftover) in pending {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let now = Instant::now();
            let mut conn = Conn {
                stream,
                read_buf: leftover,
                write_buf: Vec::new(),
                write_off: 0,
                subscribed: false,
                bucket: TokenBucket::new(
                    self.cfg.admission.source_rate,
                    self.cfg.admission.source_burst,
                    now,
                ),
                wants_out: false,
                dead: false,
            };
            self.enqueue(
                &mut conn,
                &Frame::HelloAck {
                    worker_id: self.id,
                    num_workers: self.num_workers,
                },
            );
            let _ = flush(&mut conn);
            let idx = free.pop().unwrap_or_else(|| {
                conns.push(None);
                conns.len() - 1
            });
            if ep
                .add(conn.stream.as_raw_fd(), idx as u64, sys::IN | sys::RDHUP)
                .is_err()
            {
                free.push(idx);
                continue;
            }
            self.counters.connections.add(1);
            conns[idx] = Some(conn);
            // A pipelining client may have written frames right behind
            // its Hello; the handshake read carried them here as
            // leftover, and the socket may never signal readable again
            // on their account — drain them now, not on the next read.
            if !conns[idx].as_ref().expect("just set").read_buf.is_empty() {
                self.drain_frames(idx, conns, cycle_events, scratch);
            }
            if conns[idx].as_ref().is_some_and(|c| c.dead) {
                if let Some(conn) = conns[idx].take() {
                    let _ = ep.del(conn.stream.as_raw_fd());
                    self.counters.connections.sub(1);
                    free.push(idx);
                }
            } else if let Some(conn) = conns[idx].as_mut() {
                sync_out_interest(ep, idx, conn);
            }
        }
    }

    /// Drains the socket's readable bytes and processes every complete
    /// frame. Candidates fan out to the worker's subscribers, which is
    /// why this takes the whole slot table, not one connection.
    fn read_and_process(
        &self,
        idx: usize,
        conns: &mut [Option<Conn>],
        cycle_events: &mut usize,
        scratch: &mut Vec<magicrecs_types::Candidate>,
    ) {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            let conn = conns[idx].as_mut().expect("caller checked slot");
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    if conn.read_buf.len() > self.cfg.admission.max_read_buf {
                        self.enqueue(
                            conn,
                            &Frame::Error {
                                code: WireErrorCode::BadFrame,
                                detail: "read buffer cap exceeded".into(),
                            },
                        );
                        let _ = flush(conn);
                        conn.dead = true;
                        break;
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
            // Decode/process after each read so a pipelining peer gets
            // responses without waiting for its stream to go idle.
            self.drain_frames(idx, conns, cycle_events, scratch);
            if conns[idx].as_ref().expect("slot").dead {
                break;
            }
        }
        self.drain_frames(idx, conns, cycle_events, scratch);
    }

    fn drain_frames(
        &self,
        idx: usize,
        conns: &mut [Option<Conn>],
        cycle_events: &mut usize,
        scratch: &mut Vec<magicrecs_types::Candidate>,
    ) {
        loop {
            let conn = conns[idx].as_mut().expect("caller checked slot");
            if conn.dead {
                return;
            }
            match wire::decode(&conn.read_buf) {
                Ok(None) => return,
                Ok(Some((frame, used))) => {
                    conn.read_buf.drain(..used);
                    self.handle(idx, conns, frame, cycle_events, scratch);
                }
                Err(e) => {
                    self.enqueue(
                        conn,
                        &Frame::Error {
                            code: WireErrorCode::BadFrame,
                            detail: format!("{e:?}"),
                        },
                    );
                    let _ = flush(conn);
                    conn.dead = true;
                    return;
                }
            }
        }
    }

    fn handle(
        &self,
        idx: usize,
        conns: &mut [Option<Conn>],
        frame: Frame,
        cycle_events: &mut usize,
        scratch: &mut Vec<magicrecs_types::Candidate>,
    ) {
        match frame {
            Frame::Ingest { tag, events } => {
                // Stage decomposition: one stamp at receipt, then elapsed
                // µs recorded at each boundary the batch crosses. Only
                // admitted batches record, so the per-stage sums account
                // for the same traffic as the end-to-end histogram.
                let t0 = Instant::now();
                let stages = obs::global_stages();
                self.counters.frames_ingest.incr();
                let n = events.len() as u64;
                let conn = conns[idx].as_mut().expect("slot");
                // Gate 1: the source's token bucket.
                if let Err(retry_after_us) = conn.bucket.try_take(n, Instant::now()) {
                    self.engine.note_shed(n);
                    obs::recorder::record(TraceKind::Shed, "token_bucket", n, retry_after_us);
                    self.enqueue(
                        conn,
                        &Frame::Shed {
                            tag,
                            code: ShedCode::RateLimited,
                            retry_after_us,
                        },
                    );
                    return;
                }
                // Gate 2: the worker's per-cycle budget.
                if cycle_events.saturating_add(events.len()) > self.cfg.admission.cycle_budget {
                    self.engine.note_shed(n);
                    obs::recorder::record(
                        TraceKind::Shed,
                        "cycle_budget",
                        *cycle_events as u64,
                        self.cfg.admission.cycle_budget as u64,
                    );
                    self.enqueue(
                        conn,
                        &Frame::Shed {
                            tag,
                            code: ShedCode::Overloaded,
                            retry_after_us: 1_000,
                        },
                    );
                    return;
                }
                *cycle_events += events.len();
                self.engine.note_queue_depth(*cycle_events as u64);
                stages.record_since(Stage::Admission, t0);
                scratch.clear();
                let t_detect = Instant::now();
                self.engine.on_events_into(&events, scratch);
                stages.record_since(Stage::Detect, t_detect);
                self.engine.note_accepted(n);
                let t_deliver = Instant::now();
                if !scratch.is_empty() {
                    // A hot event can emit more candidates than fit one
                    // frame (1 MiB); chunk so every Deliver stays well
                    // under the cap (worst-case candidate ≈ 659 bytes at
                    // the 64-witness cap).
                    let all = std::mem::take(scratch);
                    for chunk in all.chunks(wire::MAX_DELIVER_CANDIDATES) {
                        let bytes = wire::encode(&Frame::Deliver {
                            tag,
                            candidates: chunk.to_vec(),
                        });
                        for slot in conns.iter_mut() {
                            if let Some(c) = slot.as_mut() {
                                if c.subscribed && !c.dead {
                                    self.enqueue_bytes(c, &bytes, true);
                                }
                            }
                        }
                    }
                }
                stages.record_since(Stage::Deliver, t_deliver);
                stages.record_since(Stage::EndToEnd, t0);
            }
            Frame::Subscribe => {
                self.counters.frames_control.incr();
                let conn = conns[idx].as_mut().expect("slot");
                conn.subscribed = true;
                self.enqueue(conn, &Frame::OkAck);
            }
            Frame::Barrier { tag } => {
                self.counters.frames_control.incr();
                let conn = conns[idx].as_mut().expect("slot");
                self.enqueue(conn, &Frame::BarrierAck { tag });
            }
            Frame::MetricsReq => {
                // Full scrape: the engine's registry (which carries the
                // serving counters and the store gauges) plus the
                // process-global one (stage histograms, WAL internals).
                // Names are prefix-disjoint, so concatenation is safe.
                self.counters.frames_control.incr();
                let mut snap = self.engine.scrape();
                snap.extend(obs::global().snapshot());
                let metrics = obs::export::flatten(&snap);
                let conn = conns[idx].as_mut().expect("slot");
                self.enqueue(conn, &Frame::MetricsResp { metrics });
            }
            Frame::StatsReq => {
                self.counters.frames_control.incr();
                let s = self.engine.stats();
                let resp = Frame::StatsResp(WireStats {
                    events: s.events,
                    candidates: s.candidates,
                    firing_events: s.firing_events,
                    accepted: s.accepted,
                    shed: s.shed,
                    queue_high_watermark: s.queue_high_watermark,
                    dropped_deliveries: self.counters.dropped_deliveries.get(),
                    connections: self.counters.connections.get(),
                    detect_p50_us: s.detect_time.p50_us,
                    detect_p99_us: s.detect_time.p99_us,
                });
                let conn = conns[idx].as_mut().expect("slot");
                self.enqueue(conn, &resp);
            }
            Frame::DeltaPublish { bytes } => {
                self.counters.frames_control.incr();
                let result = magicrecs_graph::load_delta(&mut bytes.as_slice())
                    .and_then(|delta| self.engine.swap_graph_delta(&delta).map(|_| ()));
                let reply = match result {
                    Ok(()) => Frame::OkAck,
                    Err(e) => Frame::Error {
                        code: WireErrorCode::Internal,
                        detail: format!("{e:?}"),
                    },
                };
                let conn = conns[idx].as_mut().expect("slot");
                self.enqueue(conn, &reply);
            }
            Frame::CheckpointReq => {
                self.counters.frames_control.incr();
                let reply = match &self.cfg.checkpoint_hook {
                    None => Frame::Error {
                        code: WireErrorCode::Unsupported,
                        detail: "volatile engine: no checkpoint hook".into(),
                    },
                    Some(hook) => match hook() {
                        Ok(()) => Frame::OkAck,
                        Err(e) => Frame::Error {
                            code: WireErrorCode::Internal,
                            detail: format!("{e:?}"),
                        },
                    },
                };
                let conn = conns[idx].as_mut().expect("slot");
                self.enqueue(conn, &reply);
            }
            // Replication control frames belong to replica nodes; this
            // single-node tier answers them typed (the peer may be a
            // probing coordinator) and keeps the connection alive.
            Frame::RouteBind { .. }
            | Frame::SegmentsReq { .. }
            | Frame::SegmentFetch { .. }
            | Frame::RoleChange { .. }
            | Frame::StateListReq { .. }
            | Frame::StateFetch { .. }
            | Frame::FollowReq { .. }
            | Frame::StatusReq { .. } => {
                self.counters.frames_control.incr();
                let conn = conns[idx].as_mut().expect("slot");
                self.enqueue(
                    conn,
                    &Frame::Error {
                        code: WireErrorCode::Unsupported,
                        detail: "replication frames require a replica node".into(),
                    },
                );
            }
            // Server-to-client frames arriving here mean a confused
            // peer; refuse and close.
            Frame::Hello { .. }
            | Frame::HelloAck { .. }
            | Frame::Deliver { .. }
            | Frame::Shed { .. }
            | Frame::StatsResp(_)
            | Frame::MetricsResp { .. }
            | Frame::OkAck
            | Frame::BarrierAck { .. }
            | Frame::Error { .. }
            | Frame::IngestAck { .. }
            | Frame::WrongLeader { .. }
            | Frame::SegmentsResp { .. }
            | Frame::SegmentChunk { .. }
            | Frame::RoleChangeAck { .. }
            | Frame::StateListResp { .. }
            | Frame::StateChunk { .. }
            | Frame::StatusResp(_) => {
                let conn = conns[idx].as_mut().expect("slot");
                self.enqueue(
                    conn,
                    &Frame::Error {
                        code: WireErrorCode::BadFrame,
                        detail: "unexpected frame direction".into(),
                    },
                );
                let _ = flush(conn);
                conn.dead = true;
            }
        }
    }

    fn enqueue(&self, conn: &mut Conn, frame: &Frame) {
        let bytes = wire::encode(frame);
        self.enqueue_bytes(conn, &bytes, false);
    }

    /// Appends `bytes` to the connection's write queue, honoring the
    /// slow-consumer cap: a full queue drops *deliveries* (counted) but
    /// never control replies (`droppable = false`), which are small and
    /// bounded per request.
    fn enqueue_bytes(&self, conn: &mut Conn, bytes: &[u8], droppable: bool) {
        let queued = conn.write_buf.len() - conn.write_off;
        if droppable && queued + bytes.len() > self.cfg.admission.max_write_queue {
            self.counters.dropped_deliveries.incr();
            return;
        }
        conn.write_buf.extend_from_slice(bytes);
        let _ = flush(conn);
    }
}

/// Writes as much queued output as the socket accepts.
fn flush(conn: &mut Conn) -> std::io::Result<()> {
    while conn.write_off < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.write_off..]) {
            Ok(0) => {
                conn.dead = true;
                return Ok(());
            }
            Ok(n) => conn.write_off += n,
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                conn.dead = true;
                return Err(e);
            }
        }
    }
    if conn.write_off == conn.write_buf.len() {
        conn.write_buf.clear();
        conn.write_off = 0;
    } else if conn.write_off > 64 * 1024 {
        conn.write_buf.drain(..conn.write_off);
        conn.write_off = 0;
    }
    Ok(())
}

/// Keeps EPOLLOUT interest in sync with whether output is queued, so a
/// writable-but-idle socket does not spin the level-triggered loop.
fn sync_out_interest(ep: &sys::Epoll, idx: usize, conn: &mut Conn) {
    let has_backlog = conn.write_off < conn.write_buf.len();
    if has_backlog && !conn.wants_out {
        if ep
            .modify(
                conn.stream.as_raw_fd(),
                idx as u64,
                sys::IN | sys::RDHUP | sys::OUT,
            )
            .is_ok()
        {
            conn.wants_out = true;
        }
    } else if !has_backlog
        && conn.wants_out
        && ep
            .modify(conn.stream.as_raw_fd(), idx as u64, sys::IN | sys::RDHUP)
            .is_ok()
    {
        conn.wants_out = false;
    }
}
