/root/repo/target/debug/deps/rand-508b59f676ae1080.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-508b59f676ae1080.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
