/root/repo/target/debug/deps/magicrecs_cluster-933fdd1232773b4a.d: crates/cluster/src/lib.rs crates/cluster/src/broker.rs crates/cluster/src/partition.rs crates/cluster/src/replica.rs crates/cluster/src/threaded.rs

/root/repo/target/debug/deps/magicrecs_cluster-933fdd1232773b4a: crates/cluster/src/lib.rs crates/cluster/src/broker.rs crates/cluster/src/partition.rs crates/cluster/src/replica.rs crates/cluster/src/threaded.rs

crates/cluster/src/lib.rs:
crates/cluster/src/broker.rs:
crates/cluster/src/partition.rs:
crates/cluster/src/replica.rs:
crates/cluster/src/threaded.rs:
