/root/repo/target/debug/deps/hotpath-6c8465e7f8a9cbf6.d: crates/bench/src/bin/hotpath.rs

/root/repo/target/debug/deps/libhotpath-6c8465e7f8a9cbf6.rmeta: crates/bench/src/bin/hotpath.rs

crates/bench/src/bin/hotpath.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
