/root/repo/target/debug/deps/rand-e6aa16f8843bd3df.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-e6aa16f8843bd3df.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
