/root/repo/target/debug/deps/intersect-c84cc1225f572be8.d: crates/bench/benches/intersect.rs

/root/repo/target/debug/deps/intersect-c84cc1225f572be8: crates/bench/benches/intersect.rs

crates/bench/benches/intersect.rs:
