/root/repo/target/debug/deps/properties-3e2723511c1f8b1d.d: crates/gen/tests/properties.rs

/root/repo/target/debug/deps/properties-3e2723511c1f8b1d: crates/gen/tests/properties.rs

crates/gen/tests/properties.rs:
