/root/repo/target/debug/deps/properties-38504a26f1861aa8.d: crates/types/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-38504a26f1861aa8.rmeta: crates/types/tests/properties.rs Cargo.toml

crates/types/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
