/root/repo/target/debug/deps/properties-c4923f5d3a289dd2.d: crates/temporal/tests/properties.rs

/root/repo/target/debug/deps/properties-c4923f5d3a289dd2: crates/temporal/tests/properties.rs

crates/temporal/tests/properties.rs:
