/root/repo/target/debug/deps/temporal-733eb5c1e42897b9.d: crates/bench/benches/temporal.rs

/root/repo/target/debug/deps/temporal-733eb5c1e42897b9: crates/bench/benches/temporal.rs

crates/bench/benches/temporal.rs:
