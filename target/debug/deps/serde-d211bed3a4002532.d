/root/repo/target/debug/deps/serde-d211bed3a4002532.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-d211bed3a4002532.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
