/root/repo/target/debug/deps/properties-2f1e998981836b5e.d: crates/stream/tests/properties.rs

/root/repo/target/debug/deps/properties-2f1e998981836b5e: crates/stream/tests/properties.rs

crates/stream/tests/properties.rs:
