/root/repo/target/debug/deps/magicrecs_bench-88257f033cf5e9a0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmagicrecs_bench-88257f033cf5e9a0.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmagicrecs_bench-88257f033cf5e9a0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
