/root/repo/target/debug/deps/magicrecs_temporal-7974da35cf57ab44.d: crates/temporal/src/lib.rs crates/temporal/src/sharded.rs crates/temporal/src/store.rs crates/temporal/src/target_list.rs crates/temporal/src/wheel.rs

/root/repo/target/debug/deps/magicrecs_temporal-7974da35cf57ab44: crates/temporal/src/lib.rs crates/temporal/src/sharded.rs crates/temporal/src/store.rs crates/temporal/src/target_list.rs crates/temporal/src/wheel.rs

crates/temporal/src/lib.rs:
crates/temporal/src/sharded.rs:
crates/temporal/src/store.rs:
crates/temporal/src/target_list.rs:
crates/temporal/src/wheel.rs:
