/root/repo/target/debug/deps/properties-959e67d3134bf756.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-959e67d3134bf756: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
