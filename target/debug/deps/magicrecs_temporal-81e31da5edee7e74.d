/root/repo/target/debug/deps/magicrecs_temporal-81e31da5edee7e74.d: crates/temporal/src/lib.rs crates/temporal/src/sharded.rs crates/temporal/src/store.rs crates/temporal/src/target_list.rs crates/temporal/src/wheel.rs

/root/repo/target/debug/deps/magicrecs_temporal-81e31da5edee7e74: crates/temporal/src/lib.rs crates/temporal/src/sharded.rs crates/temporal/src/store.rs crates/temporal/src/target_list.rs crates/temporal/src/wheel.rs

crates/temporal/src/lib.rs:
crates/temporal/src/sharded.rs:
crates/temporal/src/store.rs:
crates/temporal/src/target_list.rs:
crates/temporal/src/wheel.rs:
