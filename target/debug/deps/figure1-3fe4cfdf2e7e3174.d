/root/repo/target/debug/deps/figure1-3fe4cfdf2e7e3174.d: tests/figure1.rs

/root/repo/target/debug/deps/figure1-3fe4cfdf2e7e3174: tests/figure1.rs

tests/figure1.rs:
