/root/repo/target/debug/deps/properties-1144056c66e37824.d: crates/types/tests/properties.rs

/root/repo/target/debug/deps/properties-1144056c66e37824: crates/types/tests/properties.rs

crates/types/tests/properties.rs:
