/root/repo/target/debug/deps/serde_derive-502e3eb6fe0e7ea5.d: shims/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-502e3eb6fe0e7ea5.so: shims/serde_derive/src/lib.rs Cargo.toml

shims/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
