/root/repo/target/debug/deps/properties-3a45d3993338d64e.d: crates/stream/tests/properties.rs

/root/repo/target/debug/deps/properties-3a45d3993338d64e: crates/stream/tests/properties.rs

crates/stream/tests/properties.rs:
