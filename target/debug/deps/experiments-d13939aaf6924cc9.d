/root/repo/target/debug/deps/experiments-d13939aaf6924cc9.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/libexperiments-d13939aaf6924cc9.rmeta: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
