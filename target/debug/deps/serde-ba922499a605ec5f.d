/root/repo/target/debug/deps/serde-ba922499a605ec5f.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-ba922499a605ec5f.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
