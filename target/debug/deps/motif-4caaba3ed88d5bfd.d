/root/repo/target/debug/deps/motif-4caaba3ed88d5bfd.d: crates/bench/benches/motif.rs

/root/repo/target/debug/deps/motif-4caaba3ed88d5bfd: crates/bench/benches/motif.rs

crates/bench/benches/motif.rs:
