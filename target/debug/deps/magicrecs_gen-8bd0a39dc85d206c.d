/root/repo/target/debug/deps/magicrecs_gen-8bd0a39dc85d206c.d: crates/gen/src/lib.rs crates/gen/src/arrivals.rs crates/gen/src/graph_gen.rs crates/gen/src/scenario.rs crates/gen/src/zipf.rs

/root/repo/target/debug/deps/magicrecs_gen-8bd0a39dc85d206c: crates/gen/src/lib.rs crates/gen/src/arrivals.rs crates/gen/src/graph_gen.rs crates/gen/src/scenario.rs crates/gen/src/zipf.rs

crates/gen/src/lib.rs:
crates/gen/src/arrivals.rs:
crates/gen/src/graph_gen.rs:
crates/gen/src/scenario.rs:
crates/gen/src/zipf.rs:
