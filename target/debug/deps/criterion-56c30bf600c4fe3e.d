/root/repo/target/debug/deps/criterion-56c30bf600c4fe3e.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-56c30bf600c4fe3e.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
