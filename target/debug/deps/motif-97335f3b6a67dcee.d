/root/repo/target/debug/deps/motif-97335f3b6a67dcee.d: crates/bench/benches/motif.rs

/root/repo/target/debug/deps/motif-97335f3b6a67dcee: crates/bench/benches/motif.rs

crates/bench/benches/motif.rs:
