/root/repo/target/debug/deps/parking_lot-aa1fc8c9234cd9a3.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-aa1fc8c9234cd9a3.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
