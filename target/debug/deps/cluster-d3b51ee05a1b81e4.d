/root/repo/target/debug/deps/cluster-d3b51ee05a1b81e4.d: crates/bench/benches/cluster.rs

/root/repo/target/debug/deps/cluster-d3b51ee05a1b81e4: crates/bench/benches/cluster.rs

crates/bench/benches/cluster.rs:
