/root/repo/target/debug/deps/properties-f309c27979db0592.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-f309c27979db0592: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
