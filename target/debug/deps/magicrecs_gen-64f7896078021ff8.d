/root/repo/target/debug/deps/magicrecs_gen-64f7896078021ff8.d: crates/gen/src/lib.rs crates/gen/src/arrivals.rs crates/gen/src/graph_gen.rs crates/gen/src/scenario.rs crates/gen/src/zipf.rs

/root/repo/target/debug/deps/libmagicrecs_gen-64f7896078021ff8.rlib: crates/gen/src/lib.rs crates/gen/src/arrivals.rs crates/gen/src/graph_gen.rs crates/gen/src/scenario.rs crates/gen/src/zipf.rs

/root/repo/target/debug/deps/libmagicrecs_gen-64f7896078021ff8.rmeta: crates/gen/src/lib.rs crates/gen/src/arrivals.rs crates/gen/src/graph_gen.rs crates/gen/src/scenario.rs crates/gen/src/zipf.rs

crates/gen/src/lib.rs:
crates/gen/src/arrivals.rs:
crates/gen/src/graph_gen.rs:
crates/gen/src/scenario.rs:
crates/gen/src/zipf.rs:
