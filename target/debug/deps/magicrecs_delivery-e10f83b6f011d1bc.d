/root/repo/target/debug/deps/magicrecs_delivery-e10f83b6f011d1bc.d: crates/delivery/src/lib.rs crates/delivery/src/dedup.rs crates/delivery/src/fatigue.rs crates/delivery/src/pipeline.rs crates/delivery/src/quiet.rs

/root/repo/target/debug/deps/libmagicrecs_delivery-e10f83b6f011d1bc.rmeta: crates/delivery/src/lib.rs crates/delivery/src/dedup.rs crates/delivery/src/fatigue.rs crates/delivery/src/pipeline.rs crates/delivery/src/quiet.rs

crates/delivery/src/lib.rs:
crates/delivery/src/dedup.rs:
crates/delivery/src/fatigue.rs:
crates/delivery/src/pipeline.rs:
crates/delivery/src/quiet.rs:
