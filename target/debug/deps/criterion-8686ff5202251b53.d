/root/repo/target/debug/deps/criterion-8686ff5202251b53.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-8686ff5202251b53.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
