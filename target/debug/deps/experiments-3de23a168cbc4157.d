/root/repo/target/debug/deps/experiments-3de23a168cbc4157.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-3de23a168cbc4157: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
