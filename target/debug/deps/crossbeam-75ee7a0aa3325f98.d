/root/repo/target/debug/deps/crossbeam-75ee7a0aa3325f98.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-75ee7a0aa3325f98.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-75ee7a0aa3325f98.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
