/root/repo/target/debug/deps/magicrecs-ab1c3e2ce2dd9730.d: src/lib.rs

/root/repo/target/debug/deps/libmagicrecs-ab1c3e2ce2dd9730.rmeta: src/lib.rs

src/lib.rs:
