/root/repo/target/debug/deps/magicrecs_motif-3bf8d907b17aec81.d: crates/motif/src/lib.rs crates/motif/src/cluster.rs crates/motif/src/exec.rs crates/motif/src/library.rs crates/motif/src/parse.rs crates/motif/src/plan.rs crates/motif/src/planner.rs crates/motif/src/spec.rs

/root/repo/target/debug/deps/libmagicrecs_motif-3bf8d907b17aec81.rmeta: crates/motif/src/lib.rs crates/motif/src/cluster.rs crates/motif/src/exec.rs crates/motif/src/library.rs crates/motif/src/parse.rs crates/motif/src/plan.rs crates/motif/src/planner.rs crates/motif/src/spec.rs

crates/motif/src/lib.rs:
crates/motif/src/cluster.rs:
crates/motif/src/exec.rs:
crates/motif/src/library.rs:
crates/motif/src/parse.rs:
crates/motif/src/plan.rs:
crates/motif/src/planner.rs:
crates/motif/src/spec.rs:
