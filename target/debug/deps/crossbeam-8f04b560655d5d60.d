/root/repo/target/debug/deps/crossbeam-8f04b560655d5d60.d: shims/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-8f04b560655d5d60.rmeta: shims/crossbeam/src/lib.rs Cargo.toml

shims/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
