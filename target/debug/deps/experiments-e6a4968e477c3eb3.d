/root/repo/target/debug/deps/experiments-e6a4968e477c3eb3.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-e6a4968e477c3eb3: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
