/root/repo/target/debug/deps/magicrecs-37fac1c91315814b.d: src/lib.rs

/root/repo/target/debug/deps/libmagicrecs-37fac1c91315814b.rlib: src/lib.rs

/root/repo/target/debug/deps/libmagicrecs-37fac1c91315814b.rmeta: src/lib.rs

src/lib.rs:
