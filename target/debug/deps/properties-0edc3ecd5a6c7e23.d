/root/repo/target/debug/deps/properties-0edc3ecd5a6c7e23.d: crates/graph/tests/properties.rs

/root/repo/target/debug/deps/properties-0edc3ecd5a6c7e23: crates/graph/tests/properties.rs

crates/graph/tests/properties.rs:
