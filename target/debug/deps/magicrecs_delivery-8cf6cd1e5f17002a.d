/root/repo/target/debug/deps/magicrecs_delivery-8cf6cd1e5f17002a.d: crates/delivery/src/lib.rs crates/delivery/src/dedup.rs crates/delivery/src/fatigue.rs crates/delivery/src/pipeline.rs crates/delivery/src/quiet.rs

/root/repo/target/debug/deps/libmagicrecs_delivery-8cf6cd1e5f17002a.rlib: crates/delivery/src/lib.rs crates/delivery/src/dedup.rs crates/delivery/src/fatigue.rs crates/delivery/src/pipeline.rs crates/delivery/src/quiet.rs

/root/repo/target/debug/deps/libmagicrecs_delivery-8cf6cd1e5f17002a.rmeta: crates/delivery/src/lib.rs crates/delivery/src/dedup.rs crates/delivery/src/fatigue.rs crates/delivery/src/pipeline.rs crates/delivery/src/quiet.rs

crates/delivery/src/lib.rs:
crates/delivery/src/dedup.rs:
crates/delivery/src/fatigue.rs:
crates/delivery/src/pipeline.rs:
crates/delivery/src/quiet.rs:
