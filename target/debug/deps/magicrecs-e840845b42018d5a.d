/root/repo/target/debug/deps/magicrecs-e840845b42018d5a.d: src/lib.rs

/root/repo/target/debug/deps/libmagicrecs-e840845b42018d5a.rlib: src/lib.rs

/root/repo/target/debug/deps/libmagicrecs-e840845b42018d5a.rmeta: src/lib.rs

src/lib.rs:
