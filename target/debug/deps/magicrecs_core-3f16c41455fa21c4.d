/root/repo/target/debug/deps/magicrecs_core-3f16c41455fa21c4.d: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/engine.rs crates/core/src/intersect.rs crates/core/src/scoring.rs crates/core/src/threshold.rs Cargo.toml

/root/repo/target/debug/deps/libmagicrecs_core-3f16c41455fa21c4.rmeta: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/engine.rs crates/core/src/intersect.rs crates/core/src/scoring.rs crates/core/src/threshold.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/detector.rs:
crates/core/src/engine.rs:
crates/core/src/intersect.rs:
crates/core/src/scoring.rs:
crates/core/src/threshold.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
