/root/repo/target/debug/deps/magicrecs_bench-621f7155c64ebb6e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmagicrecs_bench-621f7155c64ebb6e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
