/root/repo/target/debug/deps/magicrecs_cluster-b68ebbe327d5250f.d: crates/cluster/src/lib.rs crates/cluster/src/broker.rs crates/cluster/src/partition.rs crates/cluster/src/replica.rs crates/cluster/src/threaded.rs

/root/repo/target/debug/deps/libmagicrecs_cluster-b68ebbe327d5250f.rmeta: crates/cluster/src/lib.rs crates/cluster/src/broker.rs crates/cluster/src/partition.rs crates/cluster/src/replica.rs crates/cluster/src/threaded.rs

crates/cluster/src/lib.rs:
crates/cluster/src/broker.rs:
crates/cluster/src/partition.rs:
crates/cluster/src/replica.rs:
crates/cluster/src/threaded.rs:
