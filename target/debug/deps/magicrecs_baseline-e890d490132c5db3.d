/root/repo/target/debug/deps/magicrecs_baseline-e890d490132c5db3.d: crates/baseline/src/lib.rs crates/baseline/src/batch.rs crates/baseline/src/bloom.rs crates/baseline/src/polling.rs crates/baseline/src/two_hop.rs Cargo.toml

/root/repo/target/debug/deps/libmagicrecs_baseline-e890d490132c5db3.rmeta: crates/baseline/src/lib.rs crates/baseline/src/batch.rs crates/baseline/src/bloom.rs crates/baseline/src/polling.rs crates/baseline/src/two_hop.rs Cargo.toml

crates/baseline/src/lib.rs:
crates/baseline/src/batch.rs:
crates/baseline/src/bloom.rs:
crates/baseline/src/polling.rs:
crates/baseline/src/two_hop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
