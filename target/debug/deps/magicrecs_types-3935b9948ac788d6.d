/root/repo/target/debug/deps/magicrecs_types-3935b9948ac788d6.d: crates/types/src/lib.rs crates/types/src/config.rs crates/types/src/error.rs crates/types/src/event.rs crates/types/src/hash.rs crates/types/src/ids.rs crates/types/src/metrics.rs crates/types/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libmagicrecs_types-3935b9948ac788d6.rmeta: crates/types/src/lib.rs crates/types/src/config.rs crates/types/src/error.rs crates/types/src/event.rs crates/types/src/hash.rs crates/types/src/ids.rs crates/types/src/metrics.rs crates/types/src/time.rs Cargo.toml

crates/types/src/lib.rs:
crates/types/src/config.rs:
crates/types/src/error.rs:
crates/types/src/event.rs:
crates/types/src/hash.rs:
crates/types/src/ids.rs:
crates/types/src/metrics.rs:
crates/types/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
