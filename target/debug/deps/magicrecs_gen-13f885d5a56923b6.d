/root/repo/target/debug/deps/magicrecs_gen-13f885d5a56923b6.d: crates/gen/src/lib.rs crates/gen/src/arrivals.rs crates/gen/src/graph_gen.rs crates/gen/src/scenario.rs crates/gen/src/zipf.rs

/root/repo/target/debug/deps/magicrecs_gen-13f885d5a56923b6: crates/gen/src/lib.rs crates/gen/src/arrivals.rs crates/gen/src/graph_gen.rs crates/gen/src/scenario.rs crates/gen/src/zipf.rs

crates/gen/src/lib.rs:
crates/gen/src/arrivals.rs:
crates/gen/src/graph_gen.rs:
crates/gen/src/scenario.rs:
crates/gen/src/zipf.rs:
