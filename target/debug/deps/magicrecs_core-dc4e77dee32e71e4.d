/root/repo/target/debug/deps/magicrecs_core-dc4e77dee32e71e4.d: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/engine.rs crates/core/src/intersect.rs crates/core/src/scoring.rs crates/core/src/threshold.rs

/root/repo/target/debug/deps/libmagicrecs_core-dc4e77dee32e71e4.rmeta: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/engine.rs crates/core/src/intersect.rs crates/core/src/scoring.rs crates/core/src/threshold.rs

crates/core/src/lib.rs:
crates/core/src/detector.rs:
crates/core/src/engine.rs:
crates/core/src/intersect.rs:
crates/core/src/scoring.rs:
crates/core/src/threshold.rs:
