/root/repo/target/debug/deps/magicrecs_core-59127c315f28854a.d: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/engine.rs crates/core/src/intersect.rs crates/core/src/scoring.rs crates/core/src/threshold.rs

/root/repo/target/debug/deps/libmagicrecs_core-59127c315f28854a.rlib: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/engine.rs crates/core/src/intersect.rs crates/core/src/scoring.rs crates/core/src/threshold.rs

/root/repo/target/debug/deps/libmagicrecs_core-59127c315f28854a.rmeta: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/engine.rs crates/core/src/intersect.rs crates/core/src/scoring.rs crates/core/src/threshold.rs

crates/core/src/lib.rs:
crates/core/src/detector.rs:
crates/core/src/engine.rs:
crates/core/src/intersect.rs:
crates/core/src/scoring.rs:
crates/core/src/threshold.rs:
