/root/repo/target/debug/deps/serde_derive-2ef00b7a9f6143dc.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-2ef00b7a9f6143dc: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
