/root/repo/target/debug/deps/hotpath-fd55d05cfcd3364f.d: crates/bench/src/bin/hotpath.rs

/root/repo/target/debug/deps/hotpath-fd55d05cfcd3364f: crates/bench/src/bin/hotpath.rs

crates/bench/src/bin/hotpath.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
