/root/repo/target/debug/deps/magicrecs_baseline-785303e4dadfba07.d: crates/baseline/src/lib.rs crates/baseline/src/batch.rs crates/baseline/src/bloom.rs crates/baseline/src/polling.rs crates/baseline/src/two_hop.rs

/root/repo/target/debug/deps/libmagicrecs_baseline-785303e4dadfba07.rlib: crates/baseline/src/lib.rs crates/baseline/src/batch.rs crates/baseline/src/bloom.rs crates/baseline/src/polling.rs crates/baseline/src/two_hop.rs

/root/repo/target/debug/deps/libmagicrecs_baseline-785303e4dadfba07.rmeta: crates/baseline/src/lib.rs crates/baseline/src/batch.rs crates/baseline/src/bloom.rs crates/baseline/src/polling.rs crates/baseline/src/two_hop.rs

crates/baseline/src/lib.rs:
crates/baseline/src/batch.rs:
crates/baseline/src/bloom.rs:
crates/baseline/src/polling.rs:
crates/baseline/src/two_hop.rs:
