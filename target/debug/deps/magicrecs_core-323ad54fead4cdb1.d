/root/repo/target/debug/deps/magicrecs_core-323ad54fead4cdb1.d: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/engine.rs crates/core/src/intersect.rs crates/core/src/scoring.rs crates/core/src/threshold.rs

/root/repo/target/debug/deps/magicrecs_core-323ad54fead4cdb1: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/engine.rs crates/core/src/intersect.rs crates/core/src/scoring.rs crates/core/src/threshold.rs

crates/core/src/lib.rs:
crates/core/src/detector.rs:
crates/core/src/engine.rs:
crates/core/src/intersect.rs:
crates/core/src/scoring.rs:
crates/core/src/threshold.rs:
