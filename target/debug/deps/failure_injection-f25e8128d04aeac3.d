/root/repo/target/debug/deps/failure_injection-f25e8128d04aeac3.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-f25e8128d04aeac3: tests/failure_injection.rs

tests/failure_injection.rs:
