/root/repo/target/debug/deps/cluster-812ac697e17c13f2.d: crates/bench/benches/cluster.rs

/root/repo/target/debug/deps/cluster-812ac697e17c13f2: crates/bench/benches/cluster.rs

crates/bench/benches/cluster.rs:
