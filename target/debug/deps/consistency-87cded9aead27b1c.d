/root/repo/target/debug/deps/consistency-87cded9aead27b1c.d: tests/consistency.rs Cargo.toml

/root/repo/target/debug/deps/libconsistency-87cded9aead27b1c.rmeta: tests/consistency.rs Cargo.toml

tests/consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
