/root/repo/target/debug/deps/consistency-9147d88313b3adb8.d: tests/consistency.rs

/root/repo/target/debug/deps/consistency-9147d88313b3adb8: tests/consistency.rs

tests/consistency.rs:
