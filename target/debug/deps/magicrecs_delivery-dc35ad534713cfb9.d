/root/repo/target/debug/deps/magicrecs_delivery-dc35ad534713cfb9.d: crates/delivery/src/lib.rs crates/delivery/src/dedup.rs crates/delivery/src/fatigue.rs crates/delivery/src/pipeline.rs crates/delivery/src/quiet.rs

/root/repo/target/debug/deps/libmagicrecs_delivery-dc35ad534713cfb9.rlib: crates/delivery/src/lib.rs crates/delivery/src/dedup.rs crates/delivery/src/fatigue.rs crates/delivery/src/pipeline.rs crates/delivery/src/quiet.rs

/root/repo/target/debug/deps/libmagicrecs_delivery-dc35ad534713cfb9.rmeta: crates/delivery/src/lib.rs crates/delivery/src/dedup.rs crates/delivery/src/fatigue.rs crates/delivery/src/pipeline.rs crates/delivery/src/quiet.rs

crates/delivery/src/lib.rs:
crates/delivery/src/dedup.rs:
crates/delivery/src/fatigue.rs:
crates/delivery/src/pipeline.rs:
crates/delivery/src/quiet.rs:
