/root/repo/target/debug/deps/detector-ad8c4881be746fd1.d: crates/bench/benches/detector.rs Cargo.toml

/root/repo/target/debug/deps/libdetector-ad8c4881be746fd1.rmeta: crates/bench/benches/detector.rs Cargo.toml

crates/bench/benches/detector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
