/root/repo/target/debug/deps/properties-c6c8d62cf0069362.d: crates/delivery/tests/properties.rs

/root/repo/target/debug/deps/properties-c6c8d62cf0069362: crates/delivery/tests/properties.rs

crates/delivery/tests/properties.rs:
