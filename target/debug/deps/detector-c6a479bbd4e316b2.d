/root/repo/target/debug/deps/detector-c6a479bbd4e316b2.d: crates/bench/benches/detector.rs

/root/repo/target/debug/deps/detector-c6a479bbd4e316b2: crates/bench/benches/detector.rs

crates/bench/benches/detector.rs:
