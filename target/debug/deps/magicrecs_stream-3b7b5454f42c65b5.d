/root/repo/target/debug/deps/magicrecs_stream-3b7b5454f42c65b5.d: crates/stream/src/lib.rs crates/stream/src/delay.rs crates/stream/src/live.rs crates/stream/src/queue.rs crates/stream/src/sched.rs

/root/repo/target/debug/deps/libmagicrecs_stream-3b7b5454f42c65b5.rlib: crates/stream/src/lib.rs crates/stream/src/delay.rs crates/stream/src/live.rs crates/stream/src/queue.rs crates/stream/src/sched.rs

/root/repo/target/debug/deps/libmagicrecs_stream-3b7b5454f42c65b5.rmeta: crates/stream/src/lib.rs crates/stream/src/delay.rs crates/stream/src/live.rs crates/stream/src/queue.rs crates/stream/src/sched.rs

crates/stream/src/lib.rs:
crates/stream/src/delay.rs:
crates/stream/src/live.rs:
crates/stream/src/queue.rs:
crates/stream/src/sched.rs:
