/root/repo/target/debug/deps/properties-53d9f0f11b4719ba.d: crates/stream/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-53d9f0f11b4719ba.rmeta: crates/stream/tests/properties.rs Cargo.toml

crates/stream/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
