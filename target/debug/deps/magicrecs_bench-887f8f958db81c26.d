/root/repo/target/debug/deps/magicrecs_bench-887f8f958db81c26.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmagicrecs_bench-887f8f958db81c26.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
