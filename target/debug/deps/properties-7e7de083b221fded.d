/root/repo/target/debug/deps/properties-7e7de083b221fded.d: crates/types/tests/properties.rs

/root/repo/target/debug/deps/properties-7e7de083b221fded: crates/types/tests/properties.rs

crates/types/tests/properties.rs:
