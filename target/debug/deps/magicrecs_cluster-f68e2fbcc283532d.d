/root/repo/target/debug/deps/magicrecs_cluster-f68e2fbcc283532d.d: crates/cluster/src/lib.rs crates/cluster/src/broker.rs crates/cluster/src/partition.rs crates/cluster/src/replica.rs crates/cluster/src/threaded.rs

/root/repo/target/debug/deps/libmagicrecs_cluster-f68e2fbcc283532d.rlib: crates/cluster/src/lib.rs crates/cluster/src/broker.rs crates/cluster/src/partition.rs crates/cluster/src/replica.rs crates/cluster/src/threaded.rs

/root/repo/target/debug/deps/libmagicrecs_cluster-f68e2fbcc283532d.rmeta: crates/cluster/src/lib.rs crates/cluster/src/broker.rs crates/cluster/src/partition.rs crates/cluster/src/replica.rs crates/cluster/src/threaded.rs

crates/cluster/src/lib.rs:
crates/cluster/src/broker.rs:
crates/cluster/src/partition.rs:
crates/cluster/src/replica.rs:
crates/cluster/src/threaded.rs:
