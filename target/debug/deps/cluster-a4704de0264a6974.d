/root/repo/target/debug/deps/cluster-a4704de0264a6974.d: crates/bench/benches/cluster.rs Cargo.toml

/root/repo/target/debug/deps/libcluster-a4704de0264a6974.rmeta: crates/bench/benches/cluster.rs Cargo.toml

crates/bench/benches/cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
