/root/repo/target/debug/deps/experiments-2c2a41aba92cf30c.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-2c2a41aba92cf30c: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
