/root/repo/target/debug/deps/rand-619d4ac06e921393.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-619d4ac06e921393.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
