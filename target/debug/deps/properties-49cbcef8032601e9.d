/root/repo/target/debug/deps/properties-49cbcef8032601e9.d: crates/temporal/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-49cbcef8032601e9.rmeta: crates/temporal/tests/properties.rs Cargo.toml

crates/temporal/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
