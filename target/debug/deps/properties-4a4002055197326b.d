/root/repo/target/debug/deps/properties-4a4002055197326b.d: crates/delivery/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-4a4002055197326b.rmeta: crates/delivery/tests/properties.rs Cargo.toml

crates/delivery/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
