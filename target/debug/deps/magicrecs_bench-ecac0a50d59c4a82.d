/root/repo/target/debug/deps/magicrecs_bench-ecac0a50d59c4a82.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/magicrecs_bench-ecac0a50d59c4a82: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
