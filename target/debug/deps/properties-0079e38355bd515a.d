/root/repo/target/debug/deps/properties-0079e38355bd515a.d: crates/gen/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-0079e38355bd515a.rmeta: crates/gen/tests/properties.rs Cargo.toml

crates/gen/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
