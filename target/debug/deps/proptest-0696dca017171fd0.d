/root/repo/target/debug/deps/proptest-0696dca017171fd0.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0696dca017171fd0.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0696dca017171fd0.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
