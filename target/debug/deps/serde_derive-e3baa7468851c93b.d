/root/repo/target/debug/deps/serde_derive-e3baa7468851c93b.d: shims/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-e3baa7468851c93b.rmeta: shims/serde_derive/src/lib.rs Cargo.toml

shims/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
