/root/repo/target/debug/deps/crossbeam-75aecb5456d8beaf.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-75aecb5456d8beaf.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
