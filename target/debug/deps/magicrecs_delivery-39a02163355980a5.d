/root/repo/target/debug/deps/magicrecs_delivery-39a02163355980a5.d: crates/delivery/src/lib.rs crates/delivery/src/dedup.rs crates/delivery/src/fatigue.rs crates/delivery/src/pipeline.rs crates/delivery/src/quiet.rs Cargo.toml

/root/repo/target/debug/deps/libmagicrecs_delivery-39a02163355980a5.rmeta: crates/delivery/src/lib.rs crates/delivery/src/dedup.rs crates/delivery/src/fatigue.rs crates/delivery/src/pipeline.rs crates/delivery/src/quiet.rs Cargo.toml

crates/delivery/src/lib.rs:
crates/delivery/src/dedup.rs:
crates/delivery/src/fatigue.rs:
crates/delivery/src/pipeline.rs:
crates/delivery/src/quiet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
