/root/repo/target/debug/deps/magicrecs_baseline-6c1db416fe901fba.d: crates/baseline/src/lib.rs crates/baseline/src/batch.rs crates/baseline/src/bloom.rs crates/baseline/src/polling.rs crates/baseline/src/two_hop.rs

/root/repo/target/debug/deps/magicrecs_baseline-6c1db416fe901fba: crates/baseline/src/lib.rs crates/baseline/src/batch.rs crates/baseline/src/bloom.rs crates/baseline/src/polling.rs crates/baseline/src/two_hop.rs

crates/baseline/src/lib.rs:
crates/baseline/src/batch.rs:
crates/baseline/src/bloom.rs:
crates/baseline/src/polling.rs:
crates/baseline/src/two_hop.rs:
