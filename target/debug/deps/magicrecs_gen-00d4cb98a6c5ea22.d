/root/repo/target/debug/deps/magicrecs_gen-00d4cb98a6c5ea22.d: crates/gen/src/lib.rs crates/gen/src/arrivals.rs crates/gen/src/graph_gen.rs crates/gen/src/scenario.rs crates/gen/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libmagicrecs_gen-00d4cb98a6c5ea22.rmeta: crates/gen/src/lib.rs crates/gen/src/arrivals.rs crates/gen/src/graph_gen.rs crates/gen/src/scenario.rs crates/gen/src/zipf.rs Cargo.toml

crates/gen/src/lib.rs:
crates/gen/src/arrivals.rs:
crates/gen/src/graph_gen.rs:
crates/gen/src/scenario.rs:
crates/gen/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
