/root/repo/target/debug/deps/serde-8febd4da6e48b379.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/serde-8febd4da6e48b379: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
