/root/repo/target/debug/deps/magicrecs-0d009b928b878a7d.d: src/lib.rs

/root/repo/target/debug/deps/magicrecs-0d009b928b878a7d: src/lib.rs

src/lib.rs:
