/root/repo/target/debug/deps/magicrecs_motif-a1c66ef2eb560bfa.d: crates/motif/src/lib.rs crates/motif/src/cluster.rs crates/motif/src/exec.rs crates/motif/src/library.rs crates/motif/src/parse.rs crates/motif/src/plan.rs crates/motif/src/planner.rs crates/motif/src/spec.rs

/root/repo/target/debug/deps/libmagicrecs_motif-a1c66ef2eb560bfa.rlib: crates/motif/src/lib.rs crates/motif/src/cluster.rs crates/motif/src/exec.rs crates/motif/src/library.rs crates/motif/src/parse.rs crates/motif/src/plan.rs crates/motif/src/planner.rs crates/motif/src/spec.rs

/root/repo/target/debug/deps/libmagicrecs_motif-a1c66ef2eb560bfa.rmeta: crates/motif/src/lib.rs crates/motif/src/cluster.rs crates/motif/src/exec.rs crates/motif/src/library.rs crates/motif/src/parse.rs crates/motif/src/plan.rs crates/motif/src/planner.rs crates/motif/src/spec.rs

crates/motif/src/lib.rs:
crates/motif/src/cluster.rs:
crates/motif/src/exec.rs:
crates/motif/src/library.rs:
crates/motif/src/parse.rs:
crates/motif/src/plan.rs:
crates/motif/src/planner.rs:
crates/motif/src/spec.rs:
