/root/repo/target/debug/deps/magicrecs_delivery-d15b22fe13a40c0c.d: crates/delivery/src/lib.rs crates/delivery/src/dedup.rs crates/delivery/src/fatigue.rs crates/delivery/src/pipeline.rs crates/delivery/src/quiet.rs

/root/repo/target/debug/deps/magicrecs_delivery-d15b22fe13a40c0c: crates/delivery/src/lib.rs crates/delivery/src/dedup.rs crates/delivery/src/fatigue.rs crates/delivery/src/pipeline.rs crates/delivery/src/quiet.rs

crates/delivery/src/lib.rs:
crates/delivery/src/dedup.rs:
crates/delivery/src/fatigue.rs:
crates/delivery/src/pipeline.rs:
crates/delivery/src/quiet.rs:
