/root/repo/target/debug/deps/serde_derive-f28172a039af844b.d: shims/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-f28172a039af844b.rmeta: shims/serde_derive/src/lib.rs Cargo.toml

shims/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
