/root/repo/target/debug/deps/magicrecs_bench-dee3e46aab04e7a5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/magicrecs_bench-dee3e46aab04e7a5: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
