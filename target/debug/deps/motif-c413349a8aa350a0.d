/root/repo/target/debug/deps/motif-c413349a8aa350a0.d: crates/bench/benches/motif.rs Cargo.toml

/root/repo/target/debug/deps/libmotif-c413349a8aa350a0.rmeta: crates/bench/benches/motif.rs Cargo.toml

crates/bench/benches/motif.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
