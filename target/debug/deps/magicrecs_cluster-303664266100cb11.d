/root/repo/target/debug/deps/magicrecs_cluster-303664266100cb11.d: crates/cluster/src/lib.rs crates/cluster/src/broker.rs crates/cluster/src/partition.rs crates/cluster/src/replica.rs crates/cluster/src/threaded.rs

/root/repo/target/debug/deps/libmagicrecs_cluster-303664266100cb11.rlib: crates/cluster/src/lib.rs crates/cluster/src/broker.rs crates/cluster/src/partition.rs crates/cluster/src/replica.rs crates/cluster/src/threaded.rs

/root/repo/target/debug/deps/libmagicrecs_cluster-303664266100cb11.rmeta: crates/cluster/src/lib.rs crates/cluster/src/broker.rs crates/cluster/src/partition.rs crates/cluster/src/replica.rs crates/cluster/src/threaded.rs

crates/cluster/src/lib.rs:
crates/cluster/src/broker.rs:
crates/cluster/src/partition.rs:
crates/cluster/src/replica.rs:
crates/cluster/src/threaded.rs:
