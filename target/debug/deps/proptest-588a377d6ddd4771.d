/root/repo/target/debug/deps/proptest-588a377d6ddd4771.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-588a377d6ddd4771.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
