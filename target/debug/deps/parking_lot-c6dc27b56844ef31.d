/root/repo/target/debug/deps/parking_lot-c6dc27b56844ef31.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-c6dc27b56844ef31: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
