/root/repo/target/debug/deps/failure_injection-00ba7197403c212a.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-00ba7197403c212a: tests/failure_injection.rs

tests/failure_injection.rs:
