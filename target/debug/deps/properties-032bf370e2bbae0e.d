/root/repo/target/debug/deps/properties-032bf370e2bbae0e.d: crates/gen/tests/properties.rs

/root/repo/target/debug/deps/properties-032bf370e2bbae0e: crates/gen/tests/properties.rs

crates/gen/tests/properties.rs:
