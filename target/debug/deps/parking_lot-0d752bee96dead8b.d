/root/repo/target/debug/deps/parking_lot-0d752bee96dead8b.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-0d752bee96dead8b.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-0d752bee96dead8b.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
