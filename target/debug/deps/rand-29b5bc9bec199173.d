/root/repo/target/debug/deps/rand-29b5bc9bec199173.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-29b5bc9bec199173: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
