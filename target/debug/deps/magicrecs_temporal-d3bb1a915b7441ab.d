/root/repo/target/debug/deps/magicrecs_temporal-d3bb1a915b7441ab.d: crates/temporal/src/lib.rs crates/temporal/src/sharded.rs crates/temporal/src/store.rs crates/temporal/src/target_list.rs crates/temporal/src/wheel.rs

/root/repo/target/debug/deps/libmagicrecs_temporal-d3bb1a915b7441ab.rlib: crates/temporal/src/lib.rs crates/temporal/src/sharded.rs crates/temporal/src/store.rs crates/temporal/src/target_list.rs crates/temporal/src/wheel.rs

/root/repo/target/debug/deps/libmagicrecs_temporal-d3bb1a915b7441ab.rmeta: crates/temporal/src/lib.rs crates/temporal/src/sharded.rs crates/temporal/src/store.rs crates/temporal/src/target_list.rs crates/temporal/src/wheel.rs

crates/temporal/src/lib.rs:
crates/temporal/src/sharded.rs:
crates/temporal/src/store.rs:
crates/temporal/src/target_list.rs:
crates/temporal/src/wheel.rs:
