/root/repo/target/debug/deps/magicrecs_bench-7dd3b0e0342fc374.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmagicrecs_bench-7dd3b0e0342fc374.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmagicrecs_bench-7dd3b0e0342fc374.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
