/root/repo/target/debug/deps/magicrecs_stream-6adada7c0efac9f5.d: crates/stream/src/lib.rs crates/stream/src/delay.rs crates/stream/src/live.rs crates/stream/src/queue.rs crates/stream/src/sched.rs

/root/repo/target/debug/deps/magicrecs_stream-6adada7c0efac9f5: crates/stream/src/lib.rs crates/stream/src/delay.rs crates/stream/src/live.rs crates/stream/src/queue.rs crates/stream/src/sched.rs

crates/stream/src/lib.rs:
crates/stream/src/delay.rs:
crates/stream/src/live.rs:
crates/stream/src/queue.rs:
crates/stream/src/sched.rs:
