/root/repo/target/debug/deps/magicrecs_stream-947e5222c3acd05a.d: crates/stream/src/lib.rs crates/stream/src/delay.rs crates/stream/src/live.rs crates/stream/src/queue.rs crates/stream/src/sched.rs Cargo.toml

/root/repo/target/debug/deps/libmagicrecs_stream-947e5222c3acd05a.rmeta: crates/stream/src/lib.rs crates/stream/src/delay.rs crates/stream/src/live.rs crates/stream/src/queue.rs crates/stream/src/sched.rs Cargo.toml

crates/stream/src/lib.rs:
crates/stream/src/delay.rs:
crates/stream/src/live.rs:
crates/stream/src/queue.rs:
crates/stream/src/sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
