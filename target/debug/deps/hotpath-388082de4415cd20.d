/root/repo/target/debug/deps/hotpath-388082de4415cd20.d: crates/bench/src/bin/hotpath.rs Cargo.toml

/root/repo/target/debug/deps/libhotpath-388082de4415cd20.rmeta: crates/bench/src/bin/hotpath.rs Cargo.toml

crates/bench/src/bin/hotpath.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
