/root/repo/target/debug/deps/criterion-01d2c952c05e90ea.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-01d2c952c05e90ea: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
