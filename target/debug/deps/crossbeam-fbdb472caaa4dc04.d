/root/repo/target/debug/deps/crossbeam-fbdb472caaa4dc04.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-fbdb472caaa4dc04: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
