/root/repo/target/debug/deps/figure1-6d811186dcbe7e0b.d: tests/figure1.rs

/root/repo/target/debug/deps/figure1-6d811186dcbe7e0b: tests/figure1.rs

tests/figure1.rs:
