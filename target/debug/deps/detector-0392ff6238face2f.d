/root/repo/target/debug/deps/detector-0392ff6238face2f.d: crates/bench/benches/detector.rs

/root/repo/target/debug/deps/detector-0392ff6238face2f: crates/bench/benches/detector.rs

crates/bench/benches/detector.rs:
