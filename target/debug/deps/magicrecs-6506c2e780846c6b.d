/root/repo/target/debug/deps/magicrecs-6506c2e780846c6b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmagicrecs-6506c2e780846c6b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
