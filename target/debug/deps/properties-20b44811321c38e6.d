/root/repo/target/debug/deps/properties-20b44811321c38e6.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-20b44811321c38e6.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
