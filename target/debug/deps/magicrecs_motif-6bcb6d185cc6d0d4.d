/root/repo/target/debug/deps/magicrecs_motif-6bcb6d185cc6d0d4.d: crates/motif/src/lib.rs crates/motif/src/cluster.rs crates/motif/src/exec.rs crates/motif/src/library.rs crates/motif/src/parse.rs crates/motif/src/plan.rs crates/motif/src/planner.rs crates/motif/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libmagicrecs_motif-6bcb6d185cc6d0d4.rmeta: crates/motif/src/lib.rs crates/motif/src/cluster.rs crates/motif/src/exec.rs crates/motif/src/library.rs crates/motif/src/parse.rs crates/motif/src/plan.rs crates/motif/src/planner.rs crates/motif/src/spec.rs Cargo.toml

crates/motif/src/lib.rs:
crates/motif/src/cluster.rs:
crates/motif/src/exec.rs:
crates/motif/src/library.rs:
crates/motif/src/parse.rs:
crates/motif/src/plan.rs:
crates/motif/src/planner.rs:
crates/motif/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
