/root/repo/target/debug/deps/intersect-a8cf56b29feb2e2e.d: crates/bench/benches/intersect.rs

/root/repo/target/debug/deps/intersect-a8cf56b29feb2e2e: crates/bench/benches/intersect.rs

crates/bench/benches/intersect.rs:
