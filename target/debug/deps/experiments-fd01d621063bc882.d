/root/repo/target/debug/deps/experiments-fd01d621063bc882.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-fd01d621063bc882: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
