/root/repo/target/debug/deps/magicrecs_temporal-07632c50461a7682.d: crates/temporal/src/lib.rs crates/temporal/src/sharded.rs crates/temporal/src/store.rs crates/temporal/src/target_list.rs crates/temporal/src/wheel.rs

/root/repo/target/debug/deps/libmagicrecs_temporal-07632c50461a7682.rlib: crates/temporal/src/lib.rs crates/temporal/src/sharded.rs crates/temporal/src/store.rs crates/temporal/src/target_list.rs crates/temporal/src/wheel.rs

/root/repo/target/debug/deps/libmagicrecs_temporal-07632c50461a7682.rmeta: crates/temporal/src/lib.rs crates/temporal/src/sharded.rs crates/temporal/src/store.rs crates/temporal/src/target_list.rs crates/temporal/src/wheel.rs

crates/temporal/src/lib.rs:
crates/temporal/src/sharded.rs:
crates/temporal/src/store.rs:
crates/temporal/src/target_list.rs:
crates/temporal/src/wheel.rs:
