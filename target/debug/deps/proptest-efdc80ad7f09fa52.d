/root/repo/target/debug/deps/proptest-efdc80ad7f09fa52.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-efdc80ad7f09fa52: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
