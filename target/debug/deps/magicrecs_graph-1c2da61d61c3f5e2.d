/root/repo/target/debug/deps/magicrecs_graph-1c2da61d61c3f5e2.d: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/follow.rs crates/graph/src/intern.rs crates/graph/src/io.rs crates/graph/src/partition.rs crates/graph/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmagicrecs_graph-1c2da61d61c3f5e2.rmeta: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/follow.rs crates/graph/src/intern.rs crates/graph/src/io.rs crates/graph/src/partition.rs crates/graph/src/stats.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/follow.rs:
crates/graph/src/intern.rs:
crates/graph/src/io.rs:
crates/graph/src/partition.rs:
crates/graph/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
