/root/repo/target/debug/deps/magicrecs_stream-eda314c3a5664d56.d: crates/stream/src/lib.rs crates/stream/src/delay.rs crates/stream/src/live.rs crates/stream/src/queue.rs crates/stream/src/sched.rs

/root/repo/target/debug/deps/libmagicrecs_stream-eda314c3a5664d56.rlib: crates/stream/src/lib.rs crates/stream/src/delay.rs crates/stream/src/live.rs crates/stream/src/queue.rs crates/stream/src/sched.rs

/root/repo/target/debug/deps/libmagicrecs_stream-eda314c3a5664d56.rmeta: crates/stream/src/lib.rs crates/stream/src/delay.rs crates/stream/src/live.rs crates/stream/src/queue.rs crates/stream/src/sched.rs

crates/stream/src/lib.rs:
crates/stream/src/delay.rs:
crates/stream/src/live.rs:
crates/stream/src/queue.rs:
crates/stream/src/sched.rs:
