/root/repo/target/debug/deps/properties-a9b7ca25ea7bf0f7.d: crates/delivery/tests/properties.rs

/root/repo/target/debug/deps/properties-a9b7ca25ea7bf0f7: crates/delivery/tests/properties.rs

crates/delivery/tests/properties.rs:
