/root/repo/target/debug/deps/end_to_end-621a3b5fa41774f9.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-621a3b5fa41774f9: tests/end_to_end.rs

tests/end_to_end.rs:
