/root/repo/target/debug/deps/rand-cc08f8a2dc13e4c3.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-cc08f8a2dc13e4c3.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-cc08f8a2dc13e4c3.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
