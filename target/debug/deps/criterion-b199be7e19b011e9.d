/root/repo/target/debug/deps/criterion-b199be7e19b011e9.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b199be7e19b011e9.rlib: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b199be7e19b011e9.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
