/root/repo/target/debug/deps/crossbeam-054a3fd236b6f4d3.d: shims/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-054a3fd236b6f4d3.rmeta: shims/crossbeam/src/lib.rs Cargo.toml

shims/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
