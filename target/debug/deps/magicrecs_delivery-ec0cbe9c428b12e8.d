/root/repo/target/debug/deps/magicrecs_delivery-ec0cbe9c428b12e8.d: crates/delivery/src/lib.rs crates/delivery/src/dedup.rs crates/delivery/src/fatigue.rs crates/delivery/src/pipeline.rs crates/delivery/src/quiet.rs

/root/repo/target/debug/deps/magicrecs_delivery-ec0cbe9c428b12e8: crates/delivery/src/lib.rs crates/delivery/src/dedup.rs crates/delivery/src/fatigue.rs crates/delivery/src/pipeline.rs crates/delivery/src/quiet.rs

crates/delivery/src/lib.rs:
crates/delivery/src/dedup.rs:
crates/delivery/src/fatigue.rs:
crates/delivery/src/pipeline.rs:
crates/delivery/src/quiet.rs:
