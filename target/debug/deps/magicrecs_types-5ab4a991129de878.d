/root/repo/target/debug/deps/magicrecs_types-5ab4a991129de878.d: crates/types/src/lib.rs crates/types/src/config.rs crates/types/src/error.rs crates/types/src/event.rs crates/types/src/hash.rs crates/types/src/ids.rs crates/types/src/metrics.rs crates/types/src/time.rs

/root/repo/target/debug/deps/magicrecs_types-5ab4a991129de878: crates/types/src/lib.rs crates/types/src/config.rs crates/types/src/error.rs crates/types/src/event.rs crates/types/src/hash.rs crates/types/src/ids.rs crates/types/src/metrics.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/config.rs:
crates/types/src/error.rs:
crates/types/src/event.rs:
crates/types/src/hash.rs:
crates/types/src/ids.rs:
crates/types/src/metrics.rs:
crates/types/src/time.rs:
