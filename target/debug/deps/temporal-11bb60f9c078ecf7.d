/root/repo/target/debug/deps/temporal-11bb60f9c078ecf7.d: crates/bench/benches/temporal.rs

/root/repo/target/debug/deps/temporal-11bb60f9c078ecf7: crates/bench/benches/temporal.rs

crates/bench/benches/temporal.rs:
