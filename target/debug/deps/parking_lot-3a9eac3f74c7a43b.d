/root/repo/target/debug/deps/parking_lot-3a9eac3f74c7a43b.d: shims/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-3a9eac3f74c7a43b.rmeta: shims/parking_lot/src/lib.rs Cargo.toml

shims/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
