/root/repo/target/debug/deps/temporal-d68ad3afadc22f55.d: crates/bench/benches/temporal.rs Cargo.toml

/root/repo/target/debug/deps/libtemporal-d68ad3afadc22f55.rmeta: crates/bench/benches/temporal.rs Cargo.toml

crates/bench/benches/temporal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
