/root/repo/target/debug/deps/magicrecs_baseline-4e384c04ba9f242b.d: crates/baseline/src/lib.rs crates/baseline/src/batch.rs crates/baseline/src/bloom.rs crates/baseline/src/polling.rs crates/baseline/src/two_hop.rs

/root/repo/target/debug/deps/libmagicrecs_baseline-4e384c04ba9f242b.rlib: crates/baseline/src/lib.rs crates/baseline/src/batch.rs crates/baseline/src/bloom.rs crates/baseline/src/polling.rs crates/baseline/src/two_hop.rs

/root/repo/target/debug/deps/libmagicrecs_baseline-4e384c04ba9f242b.rmeta: crates/baseline/src/lib.rs crates/baseline/src/batch.rs crates/baseline/src/bloom.rs crates/baseline/src/polling.rs crates/baseline/src/two_hop.rs

crates/baseline/src/lib.rs:
crates/baseline/src/batch.rs:
crates/baseline/src/bloom.rs:
crates/baseline/src/polling.rs:
crates/baseline/src/two_hop.rs:
