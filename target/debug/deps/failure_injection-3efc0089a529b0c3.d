/root/repo/target/debug/deps/failure_injection-3efc0089a529b0c3.d: tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-3efc0089a529b0c3.rmeta: tests/failure_injection.rs Cargo.toml

tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
