/root/repo/target/debug/deps/magicrecs_temporal-18d4cb96fe989c1a.d: crates/temporal/src/lib.rs crates/temporal/src/sharded.rs crates/temporal/src/store.rs crates/temporal/src/target_list.rs crates/temporal/src/wheel.rs

/root/repo/target/debug/deps/libmagicrecs_temporal-18d4cb96fe989c1a.rmeta: crates/temporal/src/lib.rs crates/temporal/src/sharded.rs crates/temporal/src/store.rs crates/temporal/src/target_list.rs crates/temporal/src/wheel.rs

crates/temporal/src/lib.rs:
crates/temporal/src/sharded.rs:
crates/temporal/src/store.rs:
crates/temporal/src/target_list.rs:
crates/temporal/src/wheel.rs:
