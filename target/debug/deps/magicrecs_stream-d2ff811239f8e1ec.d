/root/repo/target/debug/deps/magicrecs_stream-d2ff811239f8e1ec.d: crates/stream/src/lib.rs crates/stream/src/delay.rs crates/stream/src/live.rs crates/stream/src/queue.rs crates/stream/src/sched.rs

/root/repo/target/debug/deps/magicrecs_stream-d2ff811239f8e1ec: crates/stream/src/lib.rs crates/stream/src/delay.rs crates/stream/src/live.rs crates/stream/src/queue.rs crates/stream/src/sched.rs

crates/stream/src/lib.rs:
crates/stream/src/delay.rs:
crates/stream/src/live.rs:
crates/stream/src/queue.rs:
crates/stream/src/sched.rs:
