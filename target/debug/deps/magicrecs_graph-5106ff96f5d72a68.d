/root/repo/target/debug/deps/magicrecs_graph-5106ff96f5d72a68.d: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/follow.rs crates/graph/src/intern.rs crates/graph/src/io.rs crates/graph/src/partition.rs crates/graph/src/stats.rs

/root/repo/target/debug/deps/libmagicrecs_graph-5106ff96f5d72a68.rmeta: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/follow.rs crates/graph/src/intern.rs crates/graph/src/io.rs crates/graph/src/partition.rs crates/graph/src/stats.rs

crates/graph/src/lib.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/follow.rs:
crates/graph/src/intern.rs:
crates/graph/src/io.rs:
crates/graph/src/partition.rs:
crates/graph/src/stats.rs:
