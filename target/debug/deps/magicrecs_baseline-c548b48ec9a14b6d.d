/root/repo/target/debug/deps/magicrecs_baseline-c548b48ec9a14b6d.d: crates/baseline/src/lib.rs crates/baseline/src/batch.rs crates/baseline/src/bloom.rs crates/baseline/src/polling.rs crates/baseline/src/two_hop.rs

/root/repo/target/debug/deps/magicrecs_baseline-c548b48ec9a14b6d: crates/baseline/src/lib.rs crates/baseline/src/batch.rs crates/baseline/src/bloom.rs crates/baseline/src/polling.rs crates/baseline/src/two_hop.rs

crates/baseline/src/lib.rs:
crates/baseline/src/batch.rs:
crates/baseline/src/bloom.rs:
crates/baseline/src/polling.rs:
crates/baseline/src/two_hop.rs:
