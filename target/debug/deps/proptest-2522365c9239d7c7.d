/root/repo/target/debug/deps/proptest-2522365c9239d7c7.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-2522365c9239d7c7.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
