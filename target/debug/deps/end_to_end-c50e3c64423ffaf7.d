/root/repo/target/debug/deps/end_to_end-c50e3c64423ffaf7.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-c50e3c64423ffaf7: tests/end_to_end.rs

tests/end_to_end.rs:
