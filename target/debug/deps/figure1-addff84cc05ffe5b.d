/root/repo/target/debug/deps/figure1-addff84cc05ffe5b.d: tests/figure1.rs Cargo.toml

/root/repo/target/debug/deps/libfigure1-addff84cc05ffe5b.rmeta: tests/figure1.rs Cargo.toml

tests/figure1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
