/root/repo/target/debug/deps/magicrecs_cluster-3f6130657d998314.d: crates/cluster/src/lib.rs crates/cluster/src/broker.rs crates/cluster/src/partition.rs crates/cluster/src/replica.rs crates/cluster/src/threaded.rs

/root/repo/target/debug/deps/magicrecs_cluster-3f6130657d998314: crates/cluster/src/lib.rs crates/cluster/src/broker.rs crates/cluster/src/partition.rs crates/cluster/src/replica.rs crates/cluster/src/threaded.rs

crates/cluster/src/lib.rs:
crates/cluster/src/broker.rs:
crates/cluster/src/partition.rs:
crates/cluster/src/replica.rs:
crates/cluster/src/threaded.rs:
