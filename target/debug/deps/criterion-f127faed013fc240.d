/root/repo/target/debug/deps/criterion-f127faed013fc240.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f127faed013fc240.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
