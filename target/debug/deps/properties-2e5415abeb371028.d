/root/repo/target/debug/deps/properties-2e5415abeb371028.d: crates/graph/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-2e5415abeb371028.rmeta: crates/graph/tests/properties.rs Cargo.toml

crates/graph/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
