/root/repo/target/debug/deps/intersect-15d5a55aaec5925d.d: crates/bench/benches/intersect.rs Cargo.toml

/root/repo/target/debug/deps/libintersect-15d5a55aaec5925d.rmeta: crates/bench/benches/intersect.rs Cargo.toml

crates/bench/benches/intersect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
