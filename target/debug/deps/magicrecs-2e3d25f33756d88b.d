/root/repo/target/debug/deps/magicrecs-2e3d25f33756d88b.d: src/lib.rs

/root/repo/target/debug/deps/magicrecs-2e3d25f33756d88b: src/lib.rs

src/lib.rs:
