/root/repo/target/debug/deps/consistency-45b4049b6697ce98.d: tests/consistency.rs

/root/repo/target/debug/deps/consistency-45b4049b6697ce98: tests/consistency.rs

tests/consistency.rs:
