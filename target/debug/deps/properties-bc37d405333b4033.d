/root/repo/target/debug/deps/properties-bc37d405333b4033.d: crates/temporal/tests/properties.rs

/root/repo/target/debug/deps/properties-bc37d405333b4033: crates/temporal/tests/properties.rs

crates/temporal/tests/properties.rs:
