/root/repo/target/debug/deps/magicrecs_stream-9e6528bcbd4675a9.d: crates/stream/src/lib.rs crates/stream/src/delay.rs crates/stream/src/live.rs crates/stream/src/queue.rs crates/stream/src/sched.rs

/root/repo/target/debug/deps/libmagicrecs_stream-9e6528bcbd4675a9.rmeta: crates/stream/src/lib.rs crates/stream/src/delay.rs crates/stream/src/live.rs crates/stream/src/queue.rs crates/stream/src/sched.rs

crates/stream/src/lib.rs:
crates/stream/src/delay.rs:
crates/stream/src/live.rs:
crates/stream/src/queue.rs:
crates/stream/src/sched.rs:
