/root/repo/target/debug/deps/magicrecs_cluster-ff4e457022811f4c.d: crates/cluster/src/lib.rs crates/cluster/src/broker.rs crates/cluster/src/partition.rs crates/cluster/src/replica.rs crates/cluster/src/threaded.rs Cargo.toml

/root/repo/target/debug/deps/libmagicrecs_cluster-ff4e457022811f4c.rmeta: crates/cluster/src/lib.rs crates/cluster/src/broker.rs crates/cluster/src/partition.rs crates/cluster/src/replica.rs crates/cluster/src/threaded.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/broker.rs:
crates/cluster/src/partition.rs:
crates/cluster/src/replica.rs:
crates/cluster/src/threaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
