/root/repo/target/debug/deps/magicrecs-e9756250ccdf1242.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmagicrecs-e9756250ccdf1242.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
