/root/repo/target/debug/deps/magicrecs_temporal-83723a89dd68bf25.d: crates/temporal/src/lib.rs crates/temporal/src/sharded.rs crates/temporal/src/store.rs crates/temporal/src/target_list.rs crates/temporal/src/wheel.rs Cargo.toml

/root/repo/target/debug/deps/libmagicrecs_temporal-83723a89dd68bf25.rmeta: crates/temporal/src/lib.rs crates/temporal/src/sharded.rs crates/temporal/src/store.rs crates/temporal/src/target_list.rs crates/temporal/src/wheel.rs Cargo.toml

crates/temporal/src/lib.rs:
crates/temporal/src/sharded.rs:
crates/temporal/src/store.rs:
crates/temporal/src/target_list.rs:
crates/temporal/src/wheel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
