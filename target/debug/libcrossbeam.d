/root/repo/target/debug/libcrossbeam.rlib: /root/repo/shims/crossbeam/src/lib.rs
