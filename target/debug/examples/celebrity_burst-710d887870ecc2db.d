/root/repo/target/debug/examples/celebrity_burst-710d887870ecc2db.d: examples/celebrity_burst.rs

/root/repo/target/debug/examples/celebrity_burst-710d887870ecc2db: examples/celebrity_burst.rs

examples/celebrity_burst.rs:
