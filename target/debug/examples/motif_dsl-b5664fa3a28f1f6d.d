/root/repo/target/debug/examples/motif_dsl-b5664fa3a28f1f6d.d: examples/motif_dsl.rs

/root/repo/target/debug/examples/motif_dsl-b5664fa3a28f1f6d: examples/motif_dsl.rs

examples/motif_dsl.rs:
