/root/repo/target/debug/examples/motif_dsl-a6d34f47e250bf8b.d: examples/motif_dsl.rs Cargo.toml

/root/repo/target/debug/examples/libmotif_dsl-a6d34f47e250bf8b.rmeta: examples/motif_dsl.rs Cargo.toml

examples/motif_dsl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
