/root/repo/target/debug/examples/celebrity_burst-05133781bc5e0a40.d: examples/celebrity_burst.rs

/root/repo/target/debug/examples/celebrity_burst-05133781bc5e0a40: examples/celebrity_burst.rs

examples/celebrity_burst.rs:
