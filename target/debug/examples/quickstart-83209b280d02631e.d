/root/repo/target/debug/examples/quickstart-83209b280d02631e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-83209b280d02631e: examples/quickstart.rs

examples/quickstart.rs:
