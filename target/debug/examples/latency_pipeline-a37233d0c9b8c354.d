/root/repo/target/debug/examples/latency_pipeline-a37233d0c9b8c354.d: examples/latency_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/liblatency_pipeline-a37233d0c9b8c354.rmeta: examples/latency_pipeline.rs Cargo.toml

examples/latency_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
