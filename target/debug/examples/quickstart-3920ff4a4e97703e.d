/root/repo/target/debug/examples/quickstart-3920ff4a4e97703e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3920ff4a4e97703e: examples/quickstart.rs

examples/quickstart.rs:
