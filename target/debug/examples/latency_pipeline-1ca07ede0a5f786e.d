/root/repo/target/debug/examples/latency_pipeline-1ca07ede0a5f786e.d: examples/latency_pipeline.rs

/root/repo/target/debug/examples/latency_pipeline-1ca07ede0a5f786e: examples/latency_pipeline.rs

examples/latency_pipeline.rs:
