/root/repo/target/debug/examples/latency_pipeline-ebc02880b377e4af.d: examples/latency_pipeline.rs

/root/repo/target/debug/examples/latency_pipeline-ebc02880b377e4af: examples/latency_pipeline.rs

examples/latency_pipeline.rs:
