/root/repo/target/debug/examples/celebrity_burst-b03ada90ae2a5739.d: examples/celebrity_burst.rs Cargo.toml

/root/repo/target/debug/examples/libcelebrity_burst-b03ada90ae2a5739.rmeta: examples/celebrity_burst.rs Cargo.toml

examples/celebrity_burst.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
