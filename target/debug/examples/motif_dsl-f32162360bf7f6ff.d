/root/repo/target/debug/examples/motif_dsl-f32162360bf7f6ff.d: examples/motif_dsl.rs

/root/repo/target/debug/examples/motif_dsl-f32162360bf7f6ff: examples/motif_dsl.rs

examples/motif_dsl.rs:
