/root/repo/target/debug/libproptest.rlib: /root/repo/shims/proptest/src/lib.rs
