/root/repo/target/debug/libcriterion.rlib: /root/repo/shims/criterion/src/lib.rs
