/root/repo/target/release/libserde_derive.so: /root/repo/shims/serde_derive/src/lib.rs
