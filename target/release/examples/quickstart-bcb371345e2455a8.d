/root/repo/target/release/examples/quickstart-bcb371345e2455a8.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-bcb371345e2455a8: examples/quickstart.rs

examples/quickstart.rs:
