/root/repo/target/release/examples/latency_pipeline-2d2d9501d2cab82a.d: examples/latency_pipeline.rs

/root/repo/target/release/examples/latency_pipeline-2d2d9501d2cab82a: examples/latency_pipeline.rs

examples/latency_pipeline.rs:
