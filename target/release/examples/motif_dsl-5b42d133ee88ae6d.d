/root/repo/target/release/examples/motif_dsl-5b42d133ee88ae6d.d: examples/motif_dsl.rs

/root/repo/target/release/examples/motif_dsl-5b42d133ee88ae6d: examples/motif_dsl.rs

examples/motif_dsl.rs:
