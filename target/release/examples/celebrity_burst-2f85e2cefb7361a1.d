/root/repo/target/release/examples/celebrity_burst-2f85e2cefb7361a1.d: examples/celebrity_burst.rs

/root/repo/target/release/examples/celebrity_burst-2f85e2cefb7361a1: examples/celebrity_burst.rs

examples/celebrity_burst.rs:
