/root/repo/target/release/deps/serde_derive-306af5c3887b30a7.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-306af5c3887b30a7.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
