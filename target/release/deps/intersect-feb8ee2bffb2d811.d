/root/repo/target/release/deps/intersect-feb8ee2bffb2d811.d: crates/bench/benches/intersect.rs

/root/repo/target/release/deps/intersect-feb8ee2bffb2d811: crates/bench/benches/intersect.rs

crates/bench/benches/intersect.rs:
