/root/repo/target/release/deps/magicrecs_types-b009e6953b00dad6.d: crates/types/src/lib.rs crates/types/src/config.rs crates/types/src/error.rs crates/types/src/event.rs crates/types/src/hash.rs crates/types/src/ids.rs crates/types/src/metrics.rs crates/types/src/time.rs

/root/repo/target/release/deps/libmagicrecs_types-b009e6953b00dad6.rlib: crates/types/src/lib.rs crates/types/src/config.rs crates/types/src/error.rs crates/types/src/event.rs crates/types/src/hash.rs crates/types/src/ids.rs crates/types/src/metrics.rs crates/types/src/time.rs

/root/repo/target/release/deps/libmagicrecs_types-b009e6953b00dad6.rmeta: crates/types/src/lib.rs crates/types/src/config.rs crates/types/src/error.rs crates/types/src/event.rs crates/types/src/hash.rs crates/types/src/ids.rs crates/types/src/metrics.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/config.rs:
crates/types/src/error.rs:
crates/types/src/event.rs:
crates/types/src/hash.rs:
crates/types/src/ids.rs:
crates/types/src/metrics.rs:
crates/types/src/time.rs:
