/root/repo/target/release/deps/magicrecs_baseline-c641304e0921f19e.d: crates/baseline/src/lib.rs crates/baseline/src/batch.rs crates/baseline/src/bloom.rs crates/baseline/src/polling.rs crates/baseline/src/two_hop.rs

/root/repo/target/release/deps/libmagicrecs_baseline-c641304e0921f19e.rlib: crates/baseline/src/lib.rs crates/baseline/src/batch.rs crates/baseline/src/bloom.rs crates/baseline/src/polling.rs crates/baseline/src/two_hop.rs

/root/repo/target/release/deps/libmagicrecs_baseline-c641304e0921f19e.rmeta: crates/baseline/src/lib.rs crates/baseline/src/batch.rs crates/baseline/src/bloom.rs crates/baseline/src/polling.rs crates/baseline/src/two_hop.rs

crates/baseline/src/lib.rs:
crates/baseline/src/batch.rs:
crates/baseline/src/bloom.rs:
crates/baseline/src/polling.rs:
crates/baseline/src/two_hop.rs:
