/root/repo/target/release/deps/hotpath-ef9ebdab8a282ec8.d: crates/bench/src/bin/hotpath.rs

/root/repo/target/release/deps/hotpath-ef9ebdab8a282ec8: crates/bench/src/bin/hotpath.rs

crates/bench/src/bin/hotpath.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
