/root/repo/target/release/deps/magicrecs_graph-509623cdd07d8305.d: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/follow.rs crates/graph/src/intern.rs crates/graph/src/io.rs crates/graph/src/partition.rs crates/graph/src/stats.rs

/root/repo/target/release/deps/libmagicrecs_graph-509623cdd07d8305.rlib: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/follow.rs crates/graph/src/intern.rs crates/graph/src/io.rs crates/graph/src/partition.rs crates/graph/src/stats.rs

/root/repo/target/release/deps/libmagicrecs_graph-509623cdd07d8305.rmeta: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/follow.rs crates/graph/src/intern.rs crates/graph/src/io.rs crates/graph/src/partition.rs crates/graph/src/stats.rs

crates/graph/src/lib.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/follow.rs:
crates/graph/src/intern.rs:
crates/graph/src/io.rs:
crates/graph/src/partition.rs:
crates/graph/src/stats.rs:
