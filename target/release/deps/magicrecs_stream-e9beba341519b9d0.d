/root/repo/target/release/deps/magicrecs_stream-e9beba341519b9d0.d: crates/stream/src/lib.rs crates/stream/src/delay.rs crates/stream/src/live.rs crates/stream/src/queue.rs crates/stream/src/sched.rs

/root/repo/target/release/deps/libmagicrecs_stream-e9beba341519b9d0.rlib: crates/stream/src/lib.rs crates/stream/src/delay.rs crates/stream/src/live.rs crates/stream/src/queue.rs crates/stream/src/sched.rs

/root/repo/target/release/deps/libmagicrecs_stream-e9beba341519b9d0.rmeta: crates/stream/src/lib.rs crates/stream/src/delay.rs crates/stream/src/live.rs crates/stream/src/queue.rs crates/stream/src/sched.rs

crates/stream/src/lib.rs:
crates/stream/src/delay.rs:
crates/stream/src/live.rs:
crates/stream/src/queue.rs:
crates/stream/src/sched.rs:
