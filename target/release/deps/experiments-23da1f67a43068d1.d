/root/repo/target/release/deps/experiments-23da1f67a43068d1.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-23da1f67a43068d1: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
