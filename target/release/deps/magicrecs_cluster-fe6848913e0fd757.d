/root/repo/target/release/deps/magicrecs_cluster-fe6848913e0fd757.d: crates/cluster/src/lib.rs crates/cluster/src/broker.rs crates/cluster/src/partition.rs crates/cluster/src/replica.rs crates/cluster/src/threaded.rs

/root/repo/target/release/deps/libmagicrecs_cluster-fe6848913e0fd757.rlib: crates/cluster/src/lib.rs crates/cluster/src/broker.rs crates/cluster/src/partition.rs crates/cluster/src/replica.rs crates/cluster/src/threaded.rs

/root/repo/target/release/deps/libmagicrecs_cluster-fe6848913e0fd757.rmeta: crates/cluster/src/lib.rs crates/cluster/src/broker.rs crates/cluster/src/partition.rs crates/cluster/src/replica.rs crates/cluster/src/threaded.rs

crates/cluster/src/lib.rs:
crates/cluster/src/broker.rs:
crates/cluster/src/partition.rs:
crates/cluster/src/replica.rs:
crates/cluster/src/threaded.rs:
