/root/repo/target/release/deps/magicrecs_core-2a39e16fddcc4e70.d: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/engine.rs crates/core/src/intersect.rs crates/core/src/scoring.rs crates/core/src/threshold.rs

/root/repo/target/release/deps/libmagicrecs_core-2a39e16fddcc4e70.rlib: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/engine.rs crates/core/src/intersect.rs crates/core/src/scoring.rs crates/core/src/threshold.rs

/root/repo/target/release/deps/libmagicrecs_core-2a39e16fddcc4e70.rmeta: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/engine.rs crates/core/src/intersect.rs crates/core/src/scoring.rs crates/core/src/threshold.rs

crates/core/src/lib.rs:
crates/core/src/detector.rs:
crates/core/src/engine.rs:
crates/core/src/intersect.rs:
crates/core/src/scoring.rs:
crates/core/src/threshold.rs:
