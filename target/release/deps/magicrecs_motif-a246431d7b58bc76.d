/root/repo/target/release/deps/magicrecs_motif-a246431d7b58bc76.d: crates/motif/src/lib.rs crates/motif/src/cluster.rs crates/motif/src/exec.rs crates/motif/src/library.rs crates/motif/src/parse.rs crates/motif/src/plan.rs crates/motif/src/planner.rs crates/motif/src/spec.rs

/root/repo/target/release/deps/libmagicrecs_motif-a246431d7b58bc76.rlib: crates/motif/src/lib.rs crates/motif/src/cluster.rs crates/motif/src/exec.rs crates/motif/src/library.rs crates/motif/src/parse.rs crates/motif/src/plan.rs crates/motif/src/planner.rs crates/motif/src/spec.rs

/root/repo/target/release/deps/libmagicrecs_motif-a246431d7b58bc76.rmeta: crates/motif/src/lib.rs crates/motif/src/cluster.rs crates/motif/src/exec.rs crates/motif/src/library.rs crates/motif/src/parse.rs crates/motif/src/plan.rs crates/motif/src/planner.rs crates/motif/src/spec.rs

crates/motif/src/lib.rs:
crates/motif/src/cluster.rs:
crates/motif/src/exec.rs:
crates/motif/src/library.rs:
crates/motif/src/parse.rs:
crates/motif/src/plan.rs:
crates/motif/src/planner.rs:
crates/motif/src/spec.rs:
