/root/repo/target/release/deps/criterion-1c00206d1f02c7e6.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-1c00206d1f02c7e6.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-1c00206d1f02c7e6.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
