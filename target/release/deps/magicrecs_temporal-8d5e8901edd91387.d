/root/repo/target/release/deps/magicrecs_temporal-8d5e8901edd91387.d: crates/temporal/src/lib.rs crates/temporal/src/sharded.rs crates/temporal/src/store.rs crates/temporal/src/target_list.rs crates/temporal/src/wheel.rs

/root/repo/target/release/deps/libmagicrecs_temporal-8d5e8901edd91387.rlib: crates/temporal/src/lib.rs crates/temporal/src/sharded.rs crates/temporal/src/store.rs crates/temporal/src/target_list.rs crates/temporal/src/wheel.rs

/root/repo/target/release/deps/libmagicrecs_temporal-8d5e8901edd91387.rmeta: crates/temporal/src/lib.rs crates/temporal/src/sharded.rs crates/temporal/src/store.rs crates/temporal/src/target_list.rs crates/temporal/src/wheel.rs

crates/temporal/src/lib.rs:
crates/temporal/src/sharded.rs:
crates/temporal/src/store.rs:
crates/temporal/src/target_list.rs:
crates/temporal/src/wheel.rs:
