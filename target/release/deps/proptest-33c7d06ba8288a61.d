/root/repo/target/release/deps/proptest-33c7d06ba8288a61.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-33c7d06ba8288a61.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-33c7d06ba8288a61.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
