/root/repo/target/release/deps/rand-05471e78abdf9204.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-05471e78abdf9204.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-05471e78abdf9204.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
