/root/repo/target/release/deps/magicrecs_bench-8252c85954d6f532.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmagicrecs_bench-8252c85954d6f532.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmagicrecs_bench-8252c85954d6f532.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
