/root/repo/target/release/deps/magicrecs_gen-d190a27e7329198a.d: crates/gen/src/lib.rs crates/gen/src/arrivals.rs crates/gen/src/graph_gen.rs crates/gen/src/scenario.rs crates/gen/src/zipf.rs

/root/repo/target/release/deps/libmagicrecs_gen-d190a27e7329198a.rlib: crates/gen/src/lib.rs crates/gen/src/arrivals.rs crates/gen/src/graph_gen.rs crates/gen/src/scenario.rs crates/gen/src/zipf.rs

/root/repo/target/release/deps/libmagicrecs_gen-d190a27e7329198a.rmeta: crates/gen/src/lib.rs crates/gen/src/arrivals.rs crates/gen/src/graph_gen.rs crates/gen/src/scenario.rs crates/gen/src/zipf.rs

crates/gen/src/lib.rs:
crates/gen/src/arrivals.rs:
crates/gen/src/graph_gen.rs:
crates/gen/src/scenario.rs:
crates/gen/src/zipf.rs:
