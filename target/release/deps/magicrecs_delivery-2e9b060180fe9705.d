/root/repo/target/release/deps/magicrecs_delivery-2e9b060180fe9705.d: crates/delivery/src/lib.rs crates/delivery/src/dedup.rs crates/delivery/src/fatigue.rs crates/delivery/src/pipeline.rs crates/delivery/src/quiet.rs

/root/repo/target/release/deps/libmagicrecs_delivery-2e9b060180fe9705.rlib: crates/delivery/src/lib.rs crates/delivery/src/dedup.rs crates/delivery/src/fatigue.rs crates/delivery/src/pipeline.rs crates/delivery/src/quiet.rs

/root/repo/target/release/deps/libmagicrecs_delivery-2e9b060180fe9705.rmeta: crates/delivery/src/lib.rs crates/delivery/src/dedup.rs crates/delivery/src/fatigue.rs crates/delivery/src/pipeline.rs crates/delivery/src/quiet.rs

crates/delivery/src/lib.rs:
crates/delivery/src/dedup.rs:
crates/delivery/src/fatigue.rs:
crates/delivery/src/pipeline.rs:
crates/delivery/src/quiet.rs:
