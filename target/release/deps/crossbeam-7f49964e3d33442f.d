/root/repo/target/release/deps/crossbeam-7f49964e3d33442f.d: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-7f49964e3d33442f.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-7f49964e3d33442f.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
