/root/repo/target/release/deps/parking_lot-14158ffccc875d75.d: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-14158ffccc875d75.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-14158ffccc875d75.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
