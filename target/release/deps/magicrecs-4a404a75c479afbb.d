/root/repo/target/release/deps/magicrecs-4a404a75c479afbb.d: src/lib.rs

/root/repo/target/release/deps/libmagicrecs-4a404a75c479afbb.rlib: src/lib.rs

/root/repo/target/release/deps/libmagicrecs-4a404a75c479afbb.rmeta: src/lib.rs

src/lib.rs:
