/root/repo/target/release/deps/detector-042a89fbf7fa8f7e.d: crates/bench/benches/detector.rs

/root/repo/target/release/deps/detector-042a89fbf7fa8f7e: crates/bench/benches/detector.rs

crates/bench/benches/detector.rs:
