/root/repo/target/release/deps/serde_derive-705cad3ceff8d49c.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-705cad3ceff8d49c.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
