/root/repo/target/release/deps/serde-18036b3becf4f495.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-18036b3becf4f495.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-18036b3becf4f495.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
