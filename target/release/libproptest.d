/root/repo/target/release/libproptest.rlib: /root/repo/shims/proptest/src/lib.rs
