/root/repo/target/release/libcriterion.rlib: /root/repo/shims/criterion/src/lib.rs
