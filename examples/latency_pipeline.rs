//! End-to-end latency decomposition on the simulated pipeline.
//!
//! Reproduces the paper's headline measurement: "The system operates with a
//! median latency of 7s and p99 latency of 15s, measured from the edge
//! creation event to the delivery of the recommendation. Nearly all the
//! latency comes from event propagation delays in various message queues;
//! the actual graph queries take only a few milliseconds."
//!
//! Events flow origin → simulated queue (log-normal delay fitted to the
//! paper's profile) → engine (real measured detection time) → delivery.
//! Because the queue is a discrete-event simulation, the 7-second delays
//! cost nothing to "wait" for.
//!
//! Run with: `cargo run --release --example latency_pipeline`

use magicrecs::gen::{GraphGen, GraphGenConfig, Scenario, ScenarioConfig};
use magicrecs::prelude::*;
use magicrecs::stream::SimulatedQueue;
use magicrecs::types::Histogram;

fn main() {
    let users = 2_000u64;
    let graph = GraphGen::new(GraphGenConfig {
        users,
        ..GraphGenConfig::small()
    })
    .generate();

    let trace = Scenario::steady(
        users,
        ScenarioConfig {
            rate_per_sec: 200.0,
            duration: Duration::from_secs(300),
            ..ScenarioConfig::small()
        },
    );
    println!("Trace: {} events over 300 s (simulated)", trace.len());

    // The queue with the paper's delay profile.
    let mut queue = SimulatedQueue::paper_profile(42);
    queue.publish_all(trace.events().iter().copied());

    let mut engine = Engine::new(graph, DetectorConfig::example()).expect("valid config");

    let mut end_to_end = Histogram::new();
    let mut queue_only = Histogram::new();
    while let Some((delivered_at, event)) = queue.deliver_next() {
        let queue_delay = delivered_at.saturating_since(event.created_at);
        queue_only.record_duration(queue_delay);

        let t0 = std::time::Instant::now();
        let candidates = engine.on_event(event);
        let query_us = t0.elapsed().as_micros() as u64;

        for _c in &candidates {
            // Delivery timestamp = arrival + measured query time.
            let total = queue_delay + Duration::from_micros(query_us);
            end_to_end.record_duration(total);
        }
    }

    let q = queue_only.snapshot();
    let e = end_to_end.snapshot();
    let d = engine.stats().detect_time.snapshot();

    println!("\n── Latency decomposition (vs. paper) ─────────────────────");
    println!("                       median       p99");
    println!(
        "queue propagation     {:>7.2}s  {:>7.2}s   (paper: ~7s / ~15s)",
        q.p50_secs(),
        q.p99_secs()
    );
    println!(
        "graph query           {:>7} µs {:>7} µs  (paper: \"a few milliseconds\")",
        d.p50_us, d.p99_us
    );
    println!(
        "end-to-end            {:>7.2}s  {:>7.2}s",
        e.p50_secs(),
        e.p99_secs()
    );
    let share = 1.0 - (d.p50_us as f64 / (e.p50_us.max(1) as f64));
    println!(
        "\nQueue share of end-to-end latency: {:.2}% — \"nearly all\"",
        share * 100.0
    );

    assert!((q.p50_secs() - 7.0).abs() < 1.0, "queue median off profile");
    assert!(share > 0.99, "queries should be a negligible share");
}
