//! Celebrity burst: the paper's motivating flash-crowd scenario at
//! cluster scale.
//!
//! Generates a Twitter-shaped follow graph, deploys the paper's 20-partition
//! architecture, and replays a steady background stream plus a celebrity
//! joining — a burst of follows converging on one fresh account. The motif
//! detector turns that temporal correlation into recommendations, which
//! then pass through the production delivery funnel (dedup → quiet hours →
//! fatigue).
//!
//! Run with: `cargo run --release --example celebrity_burst`

use magicrecs::cluster::Broker;
use magicrecs::delivery::Funnel;
use magicrecs::gen::{GraphGen, GraphGenConfig, Scenario, ScenarioConfig};
use magicrecs::prelude::*;

fn main() {
    // ── A Twitter-shaped graph: power-law in/out degrees ────────────────
    let users = 5_000u64;
    let gen = GraphGen::new(GraphGenConfig {
        users,
        mean_out_degree: 30.0,
        ..GraphGenConfig::small()
    });
    let graph = gen.generate();
    println!(
        "Generated follow graph: {} users, {} edges",
        users,
        graph.num_follow_edges()
    );

    // ── The paper's deployment: 20 partitions, k = 3 ────────────────────
    let detector = DetectorConfig::production();
    let mut broker =
        Broker::new(&graph, ClusterConfig::production(), detector).expect("valid configs");
    println!(
        "Cluster: {} partitions (partitioned by A, full D per partition)",
        broker.num_partitions()
    );

    // ── Workload: steady background + a celebrity joining at t=noon+60s ─
    // Start at noon UTC so pushes land in waking hours (quiet window is
    // 23:00–08:00 local).
    let noon = Timestamp::from_secs(12 * 3600);
    let cfg = ScenarioConfig {
        rate_per_sec: 50.0,
        duration: Duration::from_secs(120),
        start: noon,
        ..ScenarioConfig::small()
    };
    let background = Scenario::steady(users, cfg);
    let celebrity = UserId(users + 1); // a brand-new account
    let burst = Scenario::celebrity_join(
        &graph,
        celebrity,
        400,
        Duration::from_secs(60),
        ScenarioConfig {
            start: noon + Duration::from_secs(60),
            ..cfg
        },
    );
    let trace = background.merge(burst);
    println!(
        "Trace: {} events over {:.0}s (burst of 400 follows to the celebrity at t=60s)",
        trace.len(),
        trace.end().unwrap().as_secs_f64()
    );

    // ── Replay through the cluster and the delivery funnel ──────────────
    let mut funnel = Funnel::new(FunnelConfig::production()).expect("valid funnel");
    let mut delivered = Vec::new();
    let mut celebrity_candidates = 0u64;
    for &event in trace.events() {
        for candidate in broker.on_event(event) {
            if candidate.target == celebrity {
                celebrity_candidates += 1;
            }
            // Delivery happens at event time here; E3 adds queue delays.
            if let Some(rec) = funnel.offer(candidate, event.created_at) {
                delivered.push(rec);
            }
        }
    }

    // Flush anything deferred into the next morning.
    delivered.extend(funnel.poll_deferred(trace.end().unwrap() + Duration::from_hours(24)));

    let stats = funnel.stats();
    println!("\n── Results ───────────────────────────────────────────────");
    println!("Raw candidates:        {}", stats.offered.get());
    println!("  of which celebrity:  {celebrity_candidates}");
    println!("Dedup dropped:         {}", stats.dedup_dropped.get());
    println!("Quiet-hours deferred:  {}", stats.quiet_deferred.get());
    println!("Fatigue dropped:       {}", stats.fatigue_dropped.get());
    println!("Delivered pushes:      {}", stats.delivered.get());
    println!(
        "Funnel reduction:      {:.1}x (paper: billions -> millions ≈ 1000x at full scale)",
        stats.reduction_factor()
    );

    let to_celebrity = delivered
        .iter()
        .filter(|r| r.candidate.target == celebrity)
        .count();
    println!(
        "\nPushes recommending the new celebrity: {to_celebrity} \
         (each user's own followings vouched for it)"
    );

    // Per-partition detection cost: the paper's "a few milliseconds".
    let mut worst_p99 = 0;
    for p in broker.partitions() {
        worst_p99 = worst_p99.max(p.engine().stats().detect_time.snapshot().p99_us);
    }
    println!("Worst per-partition detection p99: {worst_p99} µs");
    assert!(
        celebrity_candidates > 0,
        "the burst should produce candidates"
    );
    assert!(
        stats.delivered.get() > 0,
        "waking-hours pushes should be delivered"
    );
}
