//! The §3 vision: declaratively specified motifs compiled to query plans.
//!
//! Parses a motif from text, EXPLAINs its plan, and runs a suite of four
//! motif programs (who-to-follow diamond, content co-engagement, breaking
//! news) over one shared graph infrastructure — "additional programs that
//! use the graph infrastructure".
//!
//! Run with: `cargo run --example motif_dsl`

use magicrecs::gen::{GraphGen, GraphGenConfig, Scenario, ScenarioConfig};
use magicrecs::motif::{library, parse_motif, plan_motif, MotifSuite};
use magicrecs::prelude::*;
use magicrecs::types::EdgeKind;
use std::sync::Arc;

fn main() {
    // ── Declare a motif in text ──────────────────────────────────────────
    let src = r#"
        # Who-to-follow, production parameters.
        motif diamond {
            A -> B : static;
            B -> C : dynamic within 600s kinds follow;
            trigger B -> C;
            emit (A, C) when count(B) >= 3;
        }
    "#;
    let spec = parse_motif(src).expect("well-formed spec");
    println!(
        "Parsed motif `{}` with roles {:?}",
        spec.name,
        spec.variables()
    );

    // ── EXPLAIN the compiled plan ────────────────────────────────────────
    let plan = plan_motif(&spec).expect("plannable");
    println!("\n{}", plan.explain());

    // ── A plan the current planner rejects, with a diagnostic ───────────
    let too_deep = parse_motif(
        "motif deep { A -> X : static; X -> B : static; B -> C : dynamic; \
         trigger B -> C; emit (A, C) when count(B) >= 2; }",
    )
    .unwrap();
    match plan_motif(&too_deep) {
        Err(e) => println!("Planner frontier: {e}\n"),
        Ok(_) => unreachable!(),
    }

    // ── Run the built-in suite over one shared graph ─────────────────────
    let graph = Arc::new(GraphGen::new(GraphGenConfig::small()).generate());
    let mut suite = MotifSuite::new();
    for engine in library::builtin_engines(Arc::clone(&graph)).unwrap() {
        println!(
            "Registered `{}` (window {}, k = {})",
            engine.name(),
            engine.plan().window,
            engine.plan().k
        );
        suite.register(engine);
    }

    // Workload: follow traffic + a retweet storm on one author.
    let follows = Scenario::steady(1_000, ScenarioConfig::small());
    let author = graph
        .iter_inverse()
        .max_by_key(|(_, f)| f.len())
        .map(|(b, _)| b)
        .unwrap();
    let retweets = Scenario::breaking_news(
        &graph,
        author,
        30,
        Duration::from_secs(45),
        ScenarioConfig {
            start: Timestamp::from_secs(20),
            ..ScenarioConfig::small()
        },
    );
    let trace = follows.merge(retweets);

    let mut per_motif: std::collections::BTreeMap<String, usize> = Default::default();
    for &event in trace.events() {
        for (name, _candidate) in suite.on_event(event) {
            *per_motif.entry(name).or_default() += 1;
        }
    }

    println!("\n── Candidates per motif program ──────────────────────────");
    for engine in suite.engines() {
        let n = per_motif.get(engine.name()).copied().unwrap_or(0);
        println!(
            "  {:<16} {:>6} candidates  ({} events accepted)",
            engine.name(),
            n,
            engine.events_processed()
        );
    }

    // The retweet storm must reach the co-engagement motif but not the
    // follow-only diamond's event filter.
    let co_events = suite
        .engines()
        .iter()
        .find(|e| e.name() == "co_engagement")
        .unwrap()
        .events_processed();
    let retweet_count = trace
        .events()
        .iter()
        .filter(|e| e.kind == EdgeKind::Retweet)
        .count() as u64;
    assert!(co_events >= retweet_count, "co-engagement missed retweets");
    println!(
        "\n\"Beyond the diamond motif there may exist others … implemented as \
         additional programs that use the graph infrastructure\" — §3, reproduced."
    );
}
