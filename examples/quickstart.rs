//! Quickstart: the paper's Figure 1 walkthrough, end to end.
//!
//! Builds the schematic graph fragment, runs the online engine with the
//! paper's example parameters (k = 2), and shows the diamond motif closing
//! in real time when `B2 → C2` arrives.
//!
//! Run with: `cargo run --example quickstart`

use magicrecs::prelude::*;

fn main() {
    // ── Figure 1 of the paper ───────────────────────────────────────────
    // A1 follows B1; A2 follows B1 and B2; A3 follows B2.
    // The dashed B→C edges arrive on the live stream.
    let a1 = UserId(1);
    let a2 = UserId(2);
    let a3 = UserId(3);
    let b1 = UserId(11);
    let b2 = UserId(12);
    let c2 = UserId(22);

    let mut builder = GraphBuilder::new();
    builder.add_edge(a1, b1);
    builder.add_edge(a2, b1);
    builder.add_edge(a2, b2);
    builder.add_edge(a3, b2);
    let graph = builder.build();

    println!(
        "Static graph loaded: {} follow edges",
        graph.num_follow_edges()
    );
    println!("  followers(B1) = {:?}", graph.followers(b1));
    println!("  followers(B2) = {:?}", graph.followers(b2));

    // ── Online engine, k = 2 (the paper's running example) ─────────────
    let mut engine = Engine::new(graph, DetectorConfig::example()).expect("valid config");

    // B1 → C2 arrives: one witness, no recommendation yet.
    let t0 = Timestamp::from_secs(100);
    let recs = engine.on_event(EdgeEvent::follow(b1, c2, t0));
    println!("\n[{t0}] B1 follows C2 -> {} recommendations", recs.len());

    // B2 → C2 arrives 30 s later: the diamond closes.
    let t1 = t0 + Duration::from_secs(30);
    let recs = engine.on_event(EdgeEvent::follow(b2, c2, t1));
    println!("[{t1}] B2 follows C2 -> {} recommendation(s)", recs.len());
    for r in &recs {
        println!(
            "  push C{} to A{}  (because followings {:?} followed within τ)",
            r.target, r.user, r.witnesses
        );
    }

    assert_eq!(recs.len(), 1);
    assert_eq!(recs[0].user, a2);
    assert_eq!(recs[0].target, c2);

    // ── What the paper says should happen ───────────────────────────────
    println!(
        "\nPaper §2: \"when the edge B2 → C2 is created, we want to push C2 \
         to A2 as a recommendation\" — reproduced."
    );
    let s = engine.stats();
    println!(
        "Engine stats: {} events, {} candidates, detection p50 = {} µs",
        s.events.get(),
        s.candidates.get(),
        s.detect_time.snapshot().p50_us
    );
}
