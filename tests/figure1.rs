//! Figure 1 of the paper, verified across every implementation in the
//! workspace: the hand-coded engine, the sequential broker, the threaded
//! cluster, the replica set, the batch oracle, the polling baseline, the
//! two-hop baselines, and the declarative motif engine all agree that
//! creating `B2 → C2` recommends `C2` to `A2` (and to no one else).

use magicrecs::baseline::{BatchOracle, PollingDetector, TwoHopBloom, TwoHopExact};
use magicrecs::cluster::{Broker, ReplicaSet, ThreadedCluster};
use magicrecs::motif::MotifEngine;
use magicrecs::prelude::*;
use magicrecs::types::PartitionId;
use std::sync::Arc;

fn a(n: u64) -> UserId {
    UserId(n)
}

/// A1→B1, A2→{B1,B2}, A3→B2 — the paper's schematic fragment.
fn figure1_graph() -> FollowGraph {
    let mut g = GraphBuilder::new();
    g.extend([(a(1), a(11)), (a(2), a(11)), (a(2), a(12)), (a(3), a(12))]);
    g.build()
}

fn events() -> Vec<EdgeEvent> {
    vec![
        EdgeEvent::follow(a(11), a(22), Timestamp::from_secs(10)),
        EdgeEvent::follow(a(12), a(22), Timestamp::from_secs(40)),
    ]
}

/// The expected outcome: exactly one recommendation, C2 → A2, witnessed by
/// B1 and B2, triggered by the second edge.
fn assert_figure1(candidates: &[Candidate], impl_name: &str) {
    assert_eq!(candidates.len(), 1, "{impl_name}: wrong candidate count");
    let c = &candidates[0];
    assert_eq!(c.user, a(2), "{impl_name}: wrong user");
    assert_eq!(c.target, a(22), "{impl_name}: wrong target");
    assert_eq!(c.witnesses, vec![a(11), a(12)], "{impl_name}: witnesses");
    assert_eq!(
        c.triggered_at,
        Timestamp::from_secs(40),
        "{impl_name}: trigger time"
    );
}

#[test]
fn engine_reproduces_figure1() {
    let mut engine = Engine::new(figure1_graph(), DetectorConfig::example()).unwrap();
    let out = engine.process_trace(events());
    assert_figure1(&out, "Engine");
}

#[test]
fn broker_reproduces_figure1() {
    let mut broker = Broker::new(
        &figure1_graph(),
        ClusterConfig::single().with_partitions(5),
        DetectorConfig::example(),
    )
    .unwrap();
    let out = broker.process_trace(events());
    assert_figure1(&out, "Broker");
}

#[test]
fn threaded_cluster_reproduces_figure1() {
    let cluster = ThreadedCluster::new(
        &figure1_graph(),
        ClusterConfig::single().with_partitions(3),
        DetectorConfig::example(),
    )
    .unwrap();
    let report = cluster.run_trace(&events()).unwrap();
    assert_figure1(&report.candidates, "ThreadedCluster");
}

#[test]
fn replica_set_reproduces_figure1() {
    let mut rs = ReplicaSet::new(
        PartitionId(0),
        figure1_graph(),
        DetectorConfig::example(),
        3,
    )
    .unwrap();
    let mut out = Vec::new();
    for e in events() {
        out.extend(rs.on_event(e).unwrap());
    }
    assert_figure1(&out, "ReplicaSet");
}

#[test]
fn batch_oracle_reproduces_figure1() {
    let oracle = BatchOracle::new(DetectorConfig::example()).unwrap();
    let out = oracle.replay(&figure1_graph(), &events());
    assert_figure1(&out, "BatchOracle");
}

#[test]
fn polling_baseline_reproduces_figure1_late() {
    let det = PollingDetector::new(DetectorConfig::example(), Duration::from_secs(60)).unwrap();
    let report = det.run(&figure1_graph(), &events());
    assert_eq!(report.recommendations.len(), 1, "polling found the motif");
    assert_eq!(report.recommendations[0].user, a(2));
    // But late: the poll tick trails the completion.
    assert!(
        report.latency.p50_us > 0,
        "polling latency must be non-zero"
    );
}

#[test]
fn two_hop_baselines_reproduce_figure1() {
    let g = figure1_graph();
    let mut exact = TwoHopExact::new(DetectorConfig::example()).unwrap();
    let mut out = Vec::new();
    for e in events() {
        out.extend(exact.on_event(&g, e));
    }
    assert_eq!(out.len(), 1, "TwoHopExact");
    assert_eq!(out[0].user, a(2));

    let mut bloom = TwoHopBloom::new(DetectorConfig::example(), 1000, 0.01).unwrap();
    let mut pairs = Vec::new();
    for e in events() {
        pairs.extend(bloom.on_event(&g, e));
    }
    assert_eq!(pairs, vec![(a(2), a(22))], "TwoHopBloom");
}

#[test]
fn declarative_motif_reproduces_figure1() {
    let mut m = MotifEngine::from_text(
        "motif d { A -> B : static; B -> C : dynamic within 600s; \
         trigger B -> C; emit (A, C) when count(B) >= 2; }",
        Arc::new(figure1_graph()),
    )
    .unwrap();
    let mut out = Vec::new();
    for e in events() {
        out.extend(m.on_event(e));
    }
    assert_figure1(&out, "MotifEngine");
}

#[test]
fn no_motif_when_window_elapses() {
    // Same fragment, but the second follow arrives after τ: every
    // implementation stays silent.
    let stale = vec![
        EdgeEvent::follow(a(11), a(22), Timestamp::from_secs(10)),
        EdgeEvent::follow(a(12), a(22), Timestamp::from_secs(10_000)),
    ];
    let mut engine = Engine::new(figure1_graph(), DetectorConfig::example()).unwrap();
    assert!(engine.process_trace(stale.clone()).is_empty());
    let oracle = BatchOracle::new(DetectorConfig::example()).unwrap();
    assert!(oracle.replay(&figure1_graph(), &stale).is_empty());
}
